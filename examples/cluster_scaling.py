"""Cluster scalability sweep — regenerates Fig 4 and Fig 5 interactively.

Runs one workload across 4/6/8/10 simulated EC2 nodes on both engines and
prints the runtime series plus parallel efficiency, the quantities the
paper plots in Figs 4-5.  Pass a different workload name to sweep it::

    python examples/cluster_scaling.py taxi-lion-500

Default is taxi-nycb at a small scale so the sweep finishes in seconds.
"""

import sys

from repro.bench import materialize
from repro.bench.runner import run_ispmc, run_spatialspark
from repro.cluster import parallel_efficiency


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "taxi-nycb"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    nodes_list = (4, 6, 8, 10)
    mat = materialize(workload, scale=scale)
    print(f"workload {workload} at scale {scale} "
          f"({len(mat.left)} x {len(mat.right)} records)")
    series = {}
    for label, runner in (("SpatialSpark", run_spatialspark), ("ISP-MC", run_ispmc)):
        points = []
        for nodes in nodes_list:
            result = runner(mat, nodes)
            points.append((nodes, result.simulated_seconds))
        series[label] = points
        cells = "  ".join(f"{n}n:{t:8.1f}s" for n, t in points)
        efficiency = parallel_efficiency(
            points[0][1], nodes_list[0], points[-1][1], nodes_list[-1]
        )
        print(f"{label:>13}: {cells}  efficiency {efficiency:.0%}")
    gap = series["ISP-MC"][-1][1] / series["SpatialSpark"][-1][1]
    print(f"at 10 nodes SpatialSpark is {gap:.1f}x faster than ISP-MC "
          "(paper: 4.7x-10.5x)")


if __name__ == "__main__":
    main()
