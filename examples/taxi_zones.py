"""Taxi pickups per census block — the paper's Fig 2 workload on SpatialSpark.

This script is a line-for-line port of the paper's Fig 2 Scala skeleton:
load both sides from HDFS text files as (id, WKT) rows, zip with indexes,
parse geometry with a dirty-row filter, run the broadcast R-tree join, and
then aggregate trips per block with ``reduceByKey`` — the urban-analytics
use case the introduction motivates (understanding mobility patterns per
administrative zone).

Run:  python examples/taxi_zones.py
"""

from repro.bench.workloads import materialize
from repro.core import SpatialOperator, broadcast_spatial_join, read_geometry_pairs
from repro.spark import SparkContext
from repro.bench.runner import cluster_spec


def main() -> None:
    # Synthetic stand-ins for the 170M-trip taxi table and the 40K-block
    # census layer, written to simulated HDFS in the paper's text layout.
    mat = materialize("taxi-nycb", scale=0.02)
    sc = SparkContext(cluster_spec(4), hdfs=mat.hdfs)

    # -- Fig 2, step by step -------------------------------------------------
    # val leftGeometryById = sc.textFile(leftFile).map(_.split).zipWithIndex...
    left_geometry_by_id = read_geometry_pairs(sc, mat.left_path, geometry_index=1)
    right_geometry_by_id = read_geometry_pairs(sc, mat.right_path, geometry_index=1)

    # val matchedPairs = BroadcastSpatialJoin(sc, left, right, Within)
    matched_pairs = broadcast_spatial_join(
        sc,
        left_geometry_by_id,
        right_geometry_by_id,
        SpatialOperator.WITHIN,
    )

    # Aggregate: trips per block, top 10 (the analytics step).
    trips_per_block = (
        matched_pairs.map(lambda pair: (pair[1], 1)).reduce_by_key(lambda a, b: a + b)
    )
    top = sorted(trips_per_block.collect(), key=lambda kv: -kv[1])[:10]

    print(f"pickups joined: {matched_pairs.count()}")
    print("top 10 blocks by pickups:")
    for block_id, trips in top:
        print(f"  block {block_id:>6}: {trips} trips")
    print(f"simulated cluster time: {sc.simulated_seconds():.1f}s "
          f"on {sc.cluster.num_nodes} nodes")


if __name__ == "__main__":
    main()
