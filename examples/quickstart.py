"""Quickstart: spatial joins with the in-memory API.

Runs the two predicates the paper evaluates — point-in-polygon (Within)
and point-to-polyline distance (NearestD) — on a toy city, with both
refinement engines, and checks they agree with the naive baseline.
``spatial_join`` defaults to ``method="auto"``: the optimizer samples
both inputs and picks the cheapest strategy, and the returned
``JoinResult`` still behaves like the plain list of pairs.

Run:  python examples/quickstart.py
"""

from repro import (
    JoinConfig,
    LineString,
    Point,
    Polygon,
    SpatialOperator,
    spatial_join,
    wkt_loads,
)
from repro.core import naive_spatial_join


def main() -> None:
    # Three pickup points and two "census blocks".
    pickups = [
        ("trip-1", Point(2.0, 2.0)),
        ("trip-2", Point(7.5, 8.0)),
        ("trip-3", "POINT (9 1)"),  # WKT strings work too
    ]
    blocks = [
        ("block-A", Polygon([(0, 0), (5, 0), (5, 5), (0, 5)])),
        ("block-B", "POLYGON ((5 5, 10 5, 10 10, 5 10, 5 5))"),
    ]

    print("== Within (point-in-polygon) ==")
    pairs = spatial_join(pickups, blocks, SpatialOperator.WITHIN)
    for trip, block in pairs:
        print(f"  {trip} picked up inside {block}")

    def as_geometry(pair):
        payload, geometry = pair
        if isinstance(geometry, str):
            geometry = wkt_loads(geometry)
        return (payload, geometry)

    baseline = naive_spatial_join(
        [as_geometry(p) for p in pickups],
        [as_geometry(b) for b in blocks],
        SpatialOperator.WITHIN,
    )
    assert sorted(pairs) == sorted(baseline), "indexed join must match naive baseline"

    print("== NearestD (points within 2.0 of a street) ==")
    streets = [
        ("main-st", LineString([(0, 6), (10, 6)])),
        ("side-st", LineString([(8, 0), (8, 10)])),
    ]
    near = spatial_join(pickups, streets, "nearestd", radius=2.0)
    for trip, street in near:
        print(f"  {trip} is within 2.0 of {street}")

    print("== Engines agree (fast/JTS-like vs slow/GEOS-like) ==")
    fast = sorted(spatial_join(pickups, blocks, engine="fast"))
    slow = sorted(spatial_join(pickups, blocks, engine="slow"))
    assert fast == slow
    print(f"  {len(fast)} pairs from both engines")

    print("== The optimizer's plan (method='auto' is the default) ==")
    result = spatial_join(pickups, blocks)
    print(f"  executed as {result.method!r}; pairs: {list(result)}")
    print("  " + result.explain().replace("\n", "\n  "))

    print("== Profiled run via JoinConfig ==")
    profiled = spatial_join(
        pickups, blocks, config=JoinConfig(method="broadcast", profile=True)
    )
    phases = [c.name for c in profiled.profile.root.children]
    print(f"  phases: {phases}")


if __name__ == "__main__":
    main()
