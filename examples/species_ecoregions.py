"""Species occurrences per ecoregion — the paper's G10M-wwf science workload.

The introduction's second motivating application: map GBIF occurrence
records onto WWF ecoregions "to understand the biodiversity patterns and
make conservation plans".  This script runs the Within join with the
*partitioned* spatial join (both sides spatially partitioned and
shuffled), the strategy SpatialSpark shares with SpatialHadoop/HadoopGIS
for when the polygon side outgrows broadcast, then verifies it against
the broadcast plan.

Run:  python examples/species_ecoregions.py
"""

from repro.bench.runner import cluster_spec
from repro.bench.workloads import materialize
from repro.core import (
    SpatialOperator,
    broadcast_spatial_join,
    partitioned_spatial_join,
    read_geometry_pairs,
)
from repro.spark import SparkContext


def main() -> None:
    mat = materialize("G10M-wwf", scale=0.05)
    sc = SparkContext(cluster_spec(4), hdfs=mat.hdfs)

    occurrences = read_geometry_pairs(sc, mat.left_path, geometry_index=1)
    ecoregions = read_geometry_pairs(sc, mat.right_path, geometry_index=1)

    # Partitioned plan: derive tiles from an occurrence sample, route both
    # sides, join tile-by-tile with duplicate suppression.
    matched = partitioned_spatial_join(
        sc, occurrences, ecoregions, SpatialOperator.WITHIN, num_tiles=16
    )
    per_region = matched.map(lambda pair: (pair[1], 1)).reduce_by_key(
        lambda a, b: a + b
    )
    richness = sorted(per_region.collect(), key=lambda kv: -kv[1])

    print(f"occurrences mapped: {matched.count()} of {occurrences.count()}")
    print("top ecoregions by occurrence count:")
    for region_id, count in richness[:8]:
        print(f"  ecoregion {region_id:>4}: {count} occurrences")

    # Cross-check: the broadcast plan must produce identical pairs.
    broadcast_pairs = broadcast_spatial_join(
        sc, occurrences, ecoregions, SpatialOperator.WITHIN
    )
    assert sorted(matched.collect()) == sorted(broadcast_pairs.collect())
    print("partitioned plan verified against broadcast plan")
    print(f"simulated cluster time: {sc.simulated_seconds():.1f}s")


if __name__ == "__main__":
    main()
