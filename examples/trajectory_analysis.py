"""Trajectory analytics — the paper's future-work data type, working today.

The conclusion proposes "apply[ing] similar designs to other non-relational
data types, such as trajectory data".  Trajectories are timestamped
polylines, so the existing join plans apply unchanged:

1. join trips to census blocks with Intersects (which zones did each trip
   cross?);
2. restrict to the morning rush window using the timestamps;
3. find each rush-hour pickup point's 2 nearest streets with the kNN join.

Run:  python examples/trajectory_analysis.py
"""

from collections import Counter

from repro.core import SpatialOperator, knn_join, spatial_join
from repro.data import generate_lion, generate_nycb, generate_trajectories
from repro.geometry import Point


def main() -> None:
    trajectories, trips = generate_trajectories(400)
    zones = generate_nycb(60)
    streets = generate_lion(300)

    # 1. Which zones did each trip cross?
    crossings = spatial_join(trips.records, zones.records, SpatialOperator.INTERSECTS)
    per_trip = Counter(trip_id for trip_id, _ in crossings)
    print(f"trips: {len(trips)}; zone crossings: {len(crossings)} "
          f"(avg {len(crossings) / len(trips):.1f} zones/trip)")

    # 2. Morning rush (07:00-10:00): which zones are busiest?
    rush = {t.trip_id for t in trajectories
            if t.active_during(7 * 3600, 10 * 3600)}
    rush_zones = Counter(zone for trip_id, zone in crossings if trip_id in rush)
    print(f"trips active in the morning rush: {len(rush)}")
    print("busiest zones during the rush:")
    for zone, hits in rush_zones.most_common(5):
        print(f"  zone {zone:>4}: crossed by {hits} rush trips")

    # 3. Nearest streets to each rush pickup (kNN join extension).
    pickups = [
        (t.trip_id, Point(*t.position_at(t.start_time)))
        for t in trajectories if t.trip_id in rush
    ]
    nearest = knn_join(pickups, streets.records, k=2)
    sample = nearest[:6]
    print("nearest streets to rush pickups (trip, street, distance):")
    for trip_id, street_id, dist in sample:
        print(f"  trip {trip_id:>4} -> street {street_id:>4} at {dist:8.1f}")

    # Sanity: every rush pickup found its k streets.
    assert len(nearest) == 2 * len(pickups)


if __name__ == "__main__":
    main()
