"""NearestD and Within through ISP-MC's SQL frontend — the paper's Fig 1.

Registers the taxi and street tables in the mini-Impala metastore and runs
the exact query shapes of Fig 1::

    SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly
    WHERE ST_NearestD (pnt.geom, poly.geom, 5000)

plus an aggregation variant (pickups per street) to show the full SQL
pipeline (join -> GROUP BY -> ORDER BY -> LIMIT) running on row batches
with static scheduling.

Run:  python examples/nearest_street.py
"""

from repro.bench.runner import cluster_spec
from repro.bench.workloads import materialize
from repro.impala import ColumnType, ImpalaBackend


def main() -> None:
    mat = materialize("taxi-lion-100", scale=0.02)
    backend = ImpalaBackend(cluster_spec(4), hdfs=mat.hdfs)
    schema = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
    backend.metastore.create_table("pnt", schema, mat.left_path)
    backend.metastore.create_table("street", schema, mat.right_path)

    # Fig 1 right-hand query: nearest street within distance D.
    sql = (
        "SELECT pnt.id, street.id FROM pnt SPATIAL JOIN street "
        f"WHERE ST_NEARESTD (pnt.geom, street.geom, {mat.radius})"
    )
    result = backend.execute(sql)
    print(f"query: {sql[:72]}...")
    print(f"matched pairs: {len(result)}; "
          f"simulated time {result.simulated_seconds:.1f}s; "
          f"straggler instance {result.straggler_seconds:.1f}s")
    for row in result.rows[:5]:
        print(f"  point {row[0]} near street {row[1]}")

    # Analytics variant: busiest streets.
    sql_top = (
        "SELECT street.id, COUNT(*) AS pickups FROM pnt SPATIAL JOIN street "
        f"WHERE ST_NEARESTD(pnt.geom, street.geom, {mat.radius}) "
        "GROUP BY street.id ORDER BY pickups DESC LIMIT 5"
    )
    top = backend.execute(sql_top)
    print("busiest streets:")
    for street_id, pickups in top.rows:
        print(f"  street {street_id:>5}: {pickups} pickups nearby")


if __name__ == "__main__":
    main()
