"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry import LineString, Point, Polygon
from repro.geometry.envelope import Envelope


@pytest.fixture
def unit_square() -> Polygon:
    """A 10x10 square at the origin."""
    return Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


@pytest.fixture
def square_with_hole() -> Polygon:
    """A 10x10 square with a 2x2 hole in the middle."""
    return Polygon(
        [(0, 0), (10, 0), (10, 10), (0, 10)],
        holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
    )


@pytest.fixture
def l_shape() -> Polygon:
    """A concave L-shaped polygon."""
    return Polygon([(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)])


@pytest.fixture
def diagonal_line() -> LineString:
    """A three-vertex polyline."""
    return LineString([(0, 0), (5, 5), (10, 0)])


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for randomised (but stable) tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def random_points(rng) -> list[Point]:
    """200 points scattered over [-2, 12]^2 (some outside the square)."""
    return [
        Point(rng.uniform(-2, 12), rng.uniform(-2, 12)) for _ in range(200)
    ]


@pytest.fixture
def world() -> Envelope:
    return Envelope(0.0, 0.0, 100.0, 100.0)
