"""The pool's hard invariant: byte-identical results with executors on or off.

Every test runs the same work serially and on 2- and 4-worker process
pools and asserts equality of everything observable — result pairs and
their order, resource-counter totals, registry counters, rendered query
profiles and simulated seconds.  Covers both substrates (mini-Spark and
mini-Impala), both predicates (within, nearestd), the core join API, and
the crash-retry semantics under pool execution.
"""

import random

import pytest

from repro.cluster import ClusterSpec, Resource
from repro.core import JoinConfig, spatial_join
from repro.errors import SparkError
from repro.geometry import LineString, Point, Polygon
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala import ColumnType, ImpalaBackend
from repro.obs.registry import collecting
from repro.spark import SparkContext

from repro.runtime import ProcessBackend

HAS_FORK = ProcessBackend(2).supports_closures
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fork start method unavailable"
)

EXECUTORS = ("serial", 2, 4)


def _box(x0, y0, size=25.0):
    return Polygon(
        [(x0, y0), (x0 + size, y0), (x0 + size, y0 + size), (x0, y0 + size)]
    )


def _points(n=400, seed=99):
    rng = random.Random(seed)
    return [
        (i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(n)
    ]


def _polygons():
    return [
        (row * 4 + col, _box(col * 25.0, row * 25.0))
        for row in range(4)
        for col in range(4)
    ]


def _lines():
    rng = random.Random(7)
    lines = []
    for i in range(60):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        lines.append((i, LineString([(x, y), (x + rng.uniform(1, 5), y + 2)])))
    return lines


@needs_fork
class TestCoreJoinEquivalence:
    """spatial_join with the executors knob: identical pairs and metrics."""

    @pytest.mark.parametrize("method", ["broadcast", "partitioned"])
    def test_within_identical_across_pools(self, method):
        left, right = _points(), _polygons()

        def run(executors):
            result = spatial_join(
                left,
                right,
                config=JoinConfig(
                    operator="within",
                    method=method,
                    executors=executors,
                    profile=True,
                ),
            )
            return result.pairs, result.profile.render()

        base_pairs, base_totals = run("serial")
        assert base_pairs  # non-trivial workload
        for executors in (2, 4):
            pairs, totals = run(executors)
            assert pairs == base_pairs
            assert totals == base_totals

    @pytest.mark.parametrize("method", ["broadcast", "partitioned"])
    def test_nearestd_identical_across_pools(self, method):
        left, right = _points(200), _lines()

        def run(executors):
            result = spatial_join(
                left,
                right,
                config=JoinConfig(
                    operator="nearestd",
                    radius=5.0,
                    method=method,
                    executors=executors,
                    profile=True,
                ),
            )
            return result.pairs, result.profile.render()

        base_pairs, base_totals = run("serial")
        assert base_pairs
        for executors in (2, 4):
            pairs, totals = run(executors)
            assert pairs == base_pairs
            assert totals == base_totals


def _spark_job(executors):
    """A shuffle-bearing Spark job; returns every observable output."""
    sc = SparkContext(ClusterSpec(num_nodes=2, cores_per_node=2), executors=executors)
    with collecting() as reg:
        pairs = (
            sc.parallelize(list(range(200)), 4)
            .map(lambda x: (x % 7, x))
            .reduce_by_key(lambda a, b: a + b)
        )
        rows = pairs.collect()
        counters = dict(reg.snapshot()["counters"])
    return (
        rows,
        sc.totals(),
        sc.simulated_seconds(),
        sc.to_profile("job").render(),
        counters,
    )


@needs_fork
class TestSparkEquivalence:
    def test_shuffle_job_identical_across_pools(self):
        base = _spark_job("serial")
        assert base[0]  # rows came back
        for executors in (2, 4):
            got = _spark_job(executors)
            assert got == base

    def test_result_order_preserved(self):
        serial = SparkContext(ClusterSpec(2, 2), executors="serial")
        pooled = SparkContext(ClusterSpec(2, 2), executors=2)
        data = list(range(50))
        expected = serial.parallelize(data, 5).map(lambda x: x * 3).collect()
        assert pooled.parallelize(data, 5).map(lambda x: x * 3).collect() == expected
        # Not just same elements: same order (partition order, then record).
        assert expected == [x * 3 for x in data]


def _impala_city():
    rng = random.Random(99)
    fs = SimulatedHDFS(block_size=2048)
    write_text(
        fs,
        "/pnt.txt",
        [
            f"{i}\tPOINT ({rng.uniform(0, 100)} {rng.uniform(0, 100)})"
            for i in range(400)
        ],
    )
    polys = []
    pid = 0
    for row in range(4):
        for col in range(4):
            x0, y0 = col * 25, row * 25
            polys.append(
                f"{pid}\tPOLYGON (({x0} {y0}, {x0+25} {y0}, {x0+25} {y0+25}, "
                f"{x0} {y0+25}, {x0} {y0}))\t{pid % 3}"
            )
            pid += 1
    write_text(fs, "/poly.txt", polys)
    return fs


def _impala_query(sql, executors, nodes=3):
    fs = _impala_city()
    backend = ImpalaBackend(
        ClusterSpec(nodes, 4), hdfs=fs, executors=executors
    )
    backend.metastore.create_table(
        "pnt", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)], "/pnt.txt"
    )
    backend.metastore.create_table(
        "poly",
        [
            ("id", ColumnType.BIGINT),
            ("geom", ColumnType.STRING),
            ("zone", ColumnType.BIGINT),
        ],
        "/poly.txt",
    )
    with collecting() as reg:
        result = backend.execute(sql)
        counters = dict(reg.snapshot()["counters"])
    return (
        result.rows,
        result.simulated_seconds,
        result.to_profile("q").render(),
        counters,
    )


@needs_fork
class TestImpalaEquivalence:
    def test_spatial_join_identical_across_pools(self):
        sql = (
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom)"
        )
        base = _impala_query(sql, "serial")
        assert base[0]
        for executors in (2, 4):
            assert _impala_query(sql, executors) == base

    def test_aggregation_identical_across_pools(self):
        sql = (
            "SELECT poly.zone, COUNT(*) FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom) GROUP BY poly.zone"
        )
        base = _impala_query(sql, "serial")
        assert base[0]
        for executors in (2, 4):
            assert _impala_query(sql, executors) == base

    def test_nearestd_identical_across_pools(self):
        sql = (
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_NEARESTD(pnt.geom, poly.geom, 3.0)"
        )
        base = _impala_query(sql, "serial")
        assert base[0]
        for executors in (2, 4):
            assert _impala_query(sql, executors) == base


class FlakyOnce:
    """Raises on the first ``failures`` calls for the victim record."""

    def __init__(self, failures=1, victim=0):
        self.failures = failures
        self.victim = victim
        self.crashes = 0

    def __call__(self, record):
        if record == self.victim and self.crashes < self.failures:
            self.crashes += 1
            raise OSError("simulated executor loss")
        return record


@needs_fork
class TestPoolRetrySemantics:
    """Worker-side task failure still honours MAX_TASK_ATTEMPTS."""

    def test_transient_failure_recovers_in_worker(self):
        sc = SparkContext(ClusterSpec(2, 2), executors=2)
        flaky = FlakyOnce(failures=2)
        result = sc.parallelize([0, 1, 2, 3], 2).map(flaky).collect()
        assert sorted(result) == [0, 1, 2, 3]
        # Retries happened inside the worker; the failure count ships back.
        assert sc._scheduler.task_failures == 2

    def test_retry_cost_parity_with_serial(self):
        def job(executors):
            sc = SparkContext(ClusterSpec(2, 2), executors=executors)
            flaky = FlakyOnce(failures=2)

            def charge(record):
                from repro.spark import current_task

                current_task().add(Resource.WKT_BYTES, 1000)
                return flaky(record)

            rows = sc.parallelize([0, 1], 1).map(charge).collect()
            return rows, sc.totals(), sc.simulated_seconds()

        assert job(2) == job("serial")

    def test_persistent_failure_fails_job_in_pool(self):
        sc = SparkContext(ClusterSpec(2, 2), executors=2)
        flaky = FlakyOnce(failures=99)
        with pytest.raises(SparkError, match="failed 4 times"):
            sc.parallelize([0, 1], 1).map(flaky).collect()

    def test_persistent_failure_message_parity(self):
        def message(executors):
            sc = SparkContext(ClusterSpec(2, 2), executors=executors)
            with pytest.raises(SparkError) as info:
                sc.parallelize([0], 1).map(FlakyOnce(failures=99)).collect()
            return str(info.value)

        assert message(2) == message("serial")

    def test_fatal_spark_error_not_retried(self):
        def attempts(executors):
            sc = SparkContext(ClusterSpec(2, 2), executors=executors)
            counter = {"calls": 0}

            def fatal(record):
                counter["calls"] += 1
                raise SparkError("fatal driver condition")

            with pytest.raises(SparkError, match="fatal driver condition"):
                sc.parallelize([0], 1).map(fatal).collect()
            return counter["calls"]

        # SparkError aborts immediately in serial mode; the pool keeps the
        # same no-retry semantics (worker-side call count is invisible
        # here, so assert via the serial counter and the matching message).
        assert attempts("serial") == 1
        sc = SparkContext(ClusterSpec(2, 2), executors=2)

        def fatal(record):
            raise SparkError("fatal driver condition")

        with pytest.raises(SparkError, match="fatal driver condition"):
            sc.parallelize([0], 1).map(fatal).collect()
