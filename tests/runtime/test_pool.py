"""Unit tests for the executor-pool layer itself (no substrates)."""

import functools
import multiprocessing as mp
import os

import pytest

from repro.errors import ReproError
from repro.runtime import (
    PoolError,
    ProcessBackend,
    SerialBackend,
    TaskPool,
    get_payload,
    make_pool,
    validate_executors,
)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")


class TestValidateExecutors:
    def test_serial_spellings(self):
        assert validate_executors(None) == 1
        assert validate_executors("serial") == 1
        assert validate_executors(1) == 1

    def test_integers_pass_through(self):
        assert validate_executors(2) == 2
        assert validate_executors(16) == 16

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "parallel", True, False, []])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ReproError, match="must be 'serial' or an integer >= 1"):
            validate_executors(bad)

    def test_error_names_the_knob(self):
        with pytest.raises(ReproError, match="num_workers must be"):
            validate_executors(0, what="num_workers")


class TestMakePool:
    def test_serial_values_give_serial_backend(self):
        assert isinstance(make_pool(None), SerialBackend)
        assert isinstance(make_pool("serial"), SerialBackend)
        assert isinstance(make_pool(1), SerialBackend)

    def test_integer_gives_process_backend(self):
        pool = make_pool(3)
        assert isinstance(pool, ProcessBackend)
        assert pool.workers == 3

    def test_existing_pool_passes_through(self):
        pool = SerialBackend()
        assert make_pool(pool) is pool

    def test_serial_flags(self):
        assert make_pool(1).is_serial
        assert not make_pool(2).is_serial


class TestSerialBackend:
    def test_runs_in_order(self):
        order = []

        def make(i):
            return lambda: (order.append(i), i * 10)[1]

        assert SerialBackend().run([make(i) for i in range(5)]) == [
            0, 10, 20, 30, 40,
        ]
        assert order == [0, 1, 2, 3, 4]

    def test_on_result_hook(self):
        seen = []
        SerialBackend().run(
            [lambda: "a", lambda: "b"],
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert seen == [(0, "a"), (1, "b")]

    def test_exception_propagates(self):
        def boom():
            raise ValueError("inline")

        with pytest.raises(ValueError, match="inline"):
            SerialBackend().run([boom])

    def test_empty_batch(self):
        assert SerialBackend().run([]) == []


@needs_fork
class TestProcessBackendFork:
    def test_results_in_task_order(self):
        pool = ProcessBackend(2)
        tasks = [(lambda i=i: i * i) for i in range(8)]
        assert pool.run(tasks) == [i * i for i in range(8)]

    def test_runs_in_separate_processes(self):
        pool = ProcessBackend(2)
        pids = pool.run([os.getpid for _ in range(4)])
        assert all(pid != os.getpid() for pid in pids)

    def test_closures_capture_driver_state(self):
        big = {"lookup": list(range(1000))}
        pool = ProcessBackend(2)
        assert pool.supports_closures
        assert pool.run([lambda: big["lookup"][-1]]) == [999]

    def test_on_result_sees_every_completion(self):
        pool = ProcessBackend(2)
        seen = []
        results = pool.run(
            [(lambda i=i: i) for i in range(6)],
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert sorted(seen) == [(i, i) for i in range(6)]
        assert results == list(range(6))

    def test_lowest_index_error_raised(self):
        def ok():
            return 1

        def boom(msg):
            raise RuntimeError(msg)

        pool = ProcessBackend(2)
        with pytest.raises(RuntimeError, match="first"):
            pool.run([ok, lambda: boom("first"), ok, lambda: boom("second")])

    def test_worker_traceback_attached_as_note(self):
        def boom():
            raise RuntimeError("with context")

        try:
            ProcessBackend(2).run([boom])
        except RuntimeError as exc:
            notes = "".join(getattr(exc, "__notes__", []))
            assert "in pool worker" in notes
            assert "boom" in notes
        else:  # pragma: no cover
            pytest.fail("worker error not raised")

    def test_unpicklable_result_ships_as_error(self):
        # The worker's own pickling failure ships back and re-raises on the
        # driver instead of hanging the queue's feeder thread.
        pool = ProcessBackend(2)
        with pytest.raises(Exception, match="[Pp]ickle"):
            pool.run([lambda: (lambda: 1)])  # lambdas don't pickle

    def test_empty_batch_spawns_nothing(self):
        assert ProcessBackend(2).run([]) == []

    def test_more_workers_than_tasks(self):
        assert ProcessBackend(8).run([lambda: 42]) == [42]

    def test_payload_inherited_by_fork(self):
        pool = ProcessBackend(2)
        pool.install_payload("index", {"tree": [1, 2, 3]})
        assert pool.run([lambda: get_payload("index")["tree"]]) == [[1, 2, 3]]


@needs_fork
class TestTeardownOnDriverError:
    """Regression: a raising ``on_result`` callback must reap the pool.

    The old code propagated the callback's exception without shutting the
    workers down: with queued tasks still pending the children stayed
    alive past ``run()`` (leaked processes, and a hung interpreter exit
    on the queue feeder threads).  Now any driver-side error mid-collect
    terminates and joins every worker before re-raising.
    """

    def test_raising_callback_reaps_workers_and_propagates(self):
        import time

        def slow(i):
            return lambda: (time.sleep(0.05), i)[1]

        pool = ProcessBackend(2)

        def explode(index, value):
            raise RuntimeError("driver-side callback failure")

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="driver-side callback failure"):
            pool.run([slow(i) for i in range(12)], on_result=explode)
        elapsed = time.monotonic() - start
        deadline = time.monotonic() + 10.0
        while mp.active_children() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert mp.active_children() == [], "workers leaked past run()"
        # The error path terminates instead of draining the 11 queued
        # tasks (or burning the old 5 s-per-worker graceful join).
        assert elapsed < 5.0

    def test_pool_is_reusable_after_error_teardown(self):
        pool = ProcessBackend(2)
        with pytest.raises(RuntimeError):
            pool.run(
                [(lambda i=i: i) for i in range(4)],
                on_result=lambda i, v: (_ for _ in ()).throw(
                    RuntimeError("boom")
                ),
            )
        assert pool.run([(lambda i=i: i * 2) for i in range(4)]) == [0, 2, 4, 6]


def _square(x):
    return x * x


def _crash(msg):
    raise RuntimeError(msg)


def _read_payload(key):
    return get_payload(key)


class TestProcessBackendSpawn:
    """Spawn dispatch: picklable tasks, payloads installed once per worker."""

    def test_results_in_task_order(self):
        pool = ProcessBackend(2, start_method="spawn")
        assert not pool.supports_closures
        tasks = [functools.partial(_square, i) for i in range(5)]
        assert pool.run(tasks) == [0, 1, 4, 9, 16]

    def test_closure_rejected_with_clear_error(self):
        pool = ProcessBackend(2, start_method="spawn")
        with pytest.raises(PoolError, match="picklable tasks"):
            pool.run([lambda: 1])

    def test_error_propagates(self):
        pool = ProcessBackend(2, start_method="spawn")
        with pytest.raises(RuntimeError, match="spawn boom"):
            pool.run([functools.partial(_crash, "spawn boom")])

    def test_installed_payload_reaches_workers(self):
        pool = ProcessBackend(2, start_method="spawn")
        pool.install_payload("cfg", {"radius": 2.5})
        results = pool.run([functools.partial(_read_payload, "cfg")] * 3)
        assert results == [{"radius": 2.5}] * 3


class TestProcessBackendConfig:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "2"])
    def test_bad_worker_counts(self, bad):
        with pytest.raises(PoolError, match="workers must be"):
            ProcessBackend(bad)

    def test_unknown_start_method(self):
        with pytest.raises(PoolError, match="not available"):
            ProcessBackend(2, start_method="teleport")

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TaskPool().run([lambda: 1])
