"""RuntimeConfig: validation, the single precedence rule, plumbing.

The precedence rule under test (documented in repro/runtime/config.py):
an explicit ``RuntimeConfig`` wins over loose keywords; without one, the
loose ``executors``/``events_out`` keywords are packed into an implicit
``RuntimeConfig`` so existing call shapes keep working.
"""

import os

import pytest

from repro.cluster import ClusterSpec
from repro.core import JoinConfig, spatial_join
from repro.errors import ReproError
from repro.impala import ImpalaBackend
from repro.obs.events import read_events
from repro.runtime import FaultPlan, RuntimeConfig, SerialBackend
from repro.spark import SparkContext

SPEC = ClusterSpec(num_nodes=2, cores_per_node=2, mem_per_node_gb=4.0)

LEFT = [(0, "POINT (1 1)"), (1, "POINT (9 9)"), (2, "POINT (3 2)")]
RIGHT = [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")]


class TestValidation:
    def test_defaults_are_valid_and_frozen(self):
        runtime = RuntimeConfig()
        assert runtime.executors is None
        assert runtime.max_task_attempts == 4
        assert runtime.speculation is True
        assert runtime.fault_plan is None
        with pytest.raises(Exception):
            runtime.executors = 2

    def test_with_returns_modified_copy(self):
        base = RuntimeConfig()
        changed = base.with_(executors=2, restart_budget=5)
        assert changed.executors == 2 and changed.restart_budget == 5
        assert base.executors is None  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"executors": "parallel-ish"},
            {"executors": 0},
            {"max_task_attempts": 0},
            {"max_task_attempts": True},
            {"task_timeout": 0},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"backoff_jitter": 1.5},
            {"speculation_k": 0},
            {"speculation_min_tasks": 0},
            {"blacklist_after": 0},
            {"restart_budget": -1},
            {"fault_plan": "chaos"},
        ],
    )
    def test_bad_fields_raise(self, kwargs):
        with pytest.raises(ReproError):
            RuntimeConfig(**kwargs)

    def test_accepts_task_pool_instance_and_fault_plan(self):
        runtime = RuntimeConfig(
            executors=SerialBackend(), fault_plan=FaultPlan(seed=1)
        )
        assert runtime.fault_plan.seed == 1


class TestPrecedence:
    def test_spark_context_explicit_runtime_wins(self):
        sc = SparkContext(
            SPEC, executors=2, runtime=RuntimeConfig(executors="serial")
        )
        assert sc.runtime.executors == "serial"
        assert sc.task_pool.is_serial

    def test_spark_context_loose_keywords_pack_implicitly(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sc = SparkContext(SPEC, executors="serial", events_out=path)
        assert sc.runtime == RuntimeConfig(executors="serial", events_out=path)
        sc.parallelize([1, 2, 3], 2).collect()
        sc.close_events()
        assert any(e["event"] == "QueryEnd" for e in read_events(path))

    def test_impala_backend_explicit_runtime_wins(self):
        backend = ImpalaBackend(
            SPEC, executors=2, runtime=RuntimeConfig(executors="serial")
        )
        assert backend.runtime.executors == "serial"
        assert backend.task_pool.is_serial

    def test_join_config_resolved_runtime(self):
        explicit = RuntimeConfig(executors="serial")
        cfg = JoinConfig(workers=4, runtime=explicit)
        assert cfg.resolved_runtime() is explicit
        implicit = JoinConfig(executors=2, events_out=None).resolved_runtime()
        assert implicit == RuntimeConfig(executors=2)

    def test_join_config_rejects_non_runtime(self):
        with pytest.raises(ReproError, match="runtime"):
            JoinConfig(runtime="serial")

    def test_spatial_join_runtime_keyword_beats_config_runtime(self, tmp_path):
        config_path = str(tmp_path / "from-config.jsonl")
        keyword_path = str(tmp_path / "from-keyword.jsonl")
        pairs = spatial_join(
            LEFT,
            RIGHT,
            config=JoinConfig(runtime=RuntimeConfig(events_out=config_path)),
            runtime=RuntimeConfig(events_out=keyword_path),
        )
        assert sorted(pairs) == [(0, "cell"), (2, "cell")]
        assert os.path.exists(keyword_path)
        assert not os.path.exists(config_path)

    def test_spatial_join_loose_events_out_still_works(self, tmp_path):
        path = str(tmp_path / "loose.jsonl")
        spatial_join(LEFT, RIGHT, events_out=path)
        assert any(e["event"] == "QueryEnd" for e in read_events(path))


class TestPlumbing:
    def test_max_task_attempts_reaches_the_scheduler(self):
        sc = SparkContext(SPEC, runtime=RuntimeConfig(max_task_attempts=7))
        assert sc._scheduler.max_task_attempts == 7

    def test_default_scheduler_attempts_match_runtime_default(self):
        sc = SparkContext(SPEC)
        assert sc._scheduler.max_task_attempts == RuntimeConfig().max_task_attempts

    def test_recovery_context_installed_on_both_substrates(self):
        plan = FaultPlan(seed=5, fault_rate=0.1)
        sc = SparkContext(SPEC, runtime=RuntimeConfig(fault_plan=plan))
        backend = ImpalaBackend(SPEC, runtime=RuntimeConfig(fault_plan=plan))
        assert sc.recovery.active and backend.recovery.active
        assert SparkContext(SPEC).recovery.active is False

    def test_runtime_exported_at_package_root(self):
        import repro

        assert repro.RuntimeConfig is RuntimeConfig
        assert repro.FaultPlan is FaultPlan
