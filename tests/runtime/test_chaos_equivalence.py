"""The fault-tolerance invariant: chaos must not change a single byte.

Acceptance matrix for the fault-injection layer, across substrates
(core API, mini-Spark, mini-Impala), join methods and fault plans:

* every seeded-chaos run produces the same pairs, registry counters,
  rendered profiles and simulated seconds as the fault-free run;
* recovery itself is deterministic: the *full* normalized event stream
  of a chaos run (recovery events included — they carry virtual worker
  ids, not physical ones) is identical under serial, 2- and 4-worker
  execution;
* the marquee recovery paths fire and recover: lineage recompute of a
  lost shuffle output (``StageRecomputed``) on Spark, bounded
  whole-query restart (``QueryRestarted``) on Impala, and restart-budget
  exhaustion fails loudly.
"""

import random

import pytest

from repro.cluster import ClusterSpec
from repro.core import JoinConfig, spatial_join
from repro.errors import ImpalaError
from repro.geometry import Point, Polygon
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala import ColumnType, ImpalaBackend
from repro.obs.events import (
    RECOVERY_EVENT_TYPES,
    normalize_events,
    read_events,
)
from repro.obs.registry import collecting
from repro.runtime import FaultPlan, ProcessBackend, RuntimeConfig
from repro.spark import SparkContext

HAS_FORK = ProcessBackend(2).supports_closures
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fork start method unavailable"
)

SPEC = ClusterSpec(num_nodes=2, cores_per_node=2, mem_per_node_gb=4.0)


def _grid_polygons(n=3, cell=4.0):
    out = []
    for i in range(n):
        for j in range(n):
            x0, y0 = i * cell, j * cell
            out.append(
                (
                    f"cell-{i}-{j}",
                    Polygon(
                        [
                            (x0, y0),
                            (x0 + cell, y0),
                            (x0 + cell, y0 + cell),
                            (x0, y0 + cell),
                        ]
                    ),
                )
            )
    return out


def _points(count=96, extent=12.0, seed=13):
    rng = random.Random(seed)
    return [
        (k, Point(rng.uniform(0.0, extent), rng.uniform(0.0, extent)))
        for k in range(count)
    ]


def _chaotic_plan(seed=7, rate=0.35):
    return FaultPlan(seed=seed, fault_rate=rate)


def _core_snapshot(method, runtime, events_out=None):
    config = JoinConfig(
        method=method,
        profile=True,
        batch_size=16,
        workers=4,
        runtime=runtime.with_(events_out=events_out),
    )
    with collecting() as reg:
        result = spatial_join(_points(), _grid_polygons(), config=config)
    return {
        "pairs": list(result.pairs),
        "sim_seconds": result.profile.root.sim_seconds,
        "profile": result.profile.render(),
        "counters": dict(reg.snapshot()["counters"]),
    }


class TestCoreChaosEquivalence:
    @pytest.mark.parametrize("method", ("broadcast", "partitioned"))
    def test_chaos_run_matches_fault_free(self, method):
        baseline = _core_snapshot(method, RuntimeConfig())
        chaos = _core_snapshot(
            method, RuntimeConfig(fault_plan=_chaotic_plan())
        )
        assert chaos == baseline

    @pytest.mark.parametrize("method", ("broadcast", "partitioned"))
    @needs_fork
    def test_chaos_run_matches_across_executor_counts(self, method):
        runtime = RuntimeConfig(fault_plan=_chaotic_plan())
        serial = _core_snapshot(method, runtime.with_(executors="serial"))
        for executors in (2, 4):
            pooled = _core_snapshot(method, runtime.with_(executors=executors))
            assert pooled == serial

    @needs_fork
    def test_recovery_event_stream_pinned_across_executor_counts(self, tmp_path):
        """Speculation/retry decisions are placement-free: the normalized
        event stream — recovery events *included* — is identical whether
        tasks ran serially or on 2 or 4 worker processes."""
        plan = _chaotic_plan(rate=0.5)
        streams = {}
        for executors in ("serial", 2, 4):
            path = str(tmp_path / f"events-{executors}.jsonl")
            _core_snapshot(
                "partitioned",
                RuntimeConfig(executors=executors, fault_plan=plan),
                events_out=path,
            )
            streams[executors] = normalize_events(read_events(path))
        assert streams["serial"] == streams[2] == streams[4]
        kinds = {e["event"] for e in streams["serial"]}
        assert kinds & RECOVERY_EVENT_TYPES, "chaos at rate 0.5 must recover"

    def test_recovery_events_are_the_only_stream_difference(self, tmp_path):
        base_path = str(tmp_path / "baseline.jsonl")
        chaos_path = str(tmp_path / "chaos.jsonl")
        baseline = _core_snapshot("broadcast", RuntimeConfig(), base_path)
        chaos = _core_snapshot(
            "broadcast", RuntimeConfig(fault_plan=_chaotic_plan()), chaos_path
        )
        assert chaos == baseline

        def comparable(path):
            return [
                e
                for e in normalize_events(read_events(path))
                if e["event"] not in RECOVERY_EVENT_TYPES
            ]

        assert comparable(chaos_path) == comparable(base_path)


def _spark_shuffle_snapshot(runtime, events_out=None):
    sc = SparkContext(SPEC, runtime=runtime.with_(events_out=events_out))
    rows = (
        sc.parallelize(list(range(48)), 4)
        .map(lambda value: (value % 6, value))
        .group_by_key(3)
        .map_values(sum)
        .collect()
    )
    snapshot = {
        "rows": sorted(rows),
        "sim_seconds": sc.simulated_seconds(),
        "counters": sc.totals(),
    }
    sc.close_events()
    return snapshot


class TestSparkChaosEquivalence:
    def test_random_chaos_matches_fault_free(self):
        baseline = _spark_shuffle_snapshot(RuntimeConfig())
        chaos = _spark_shuffle_snapshot(
            RuntimeConfig(
                fault_plan=FaultPlan(seed=7, fault_rate=0.4)
            )
        )
        assert chaos == baseline

    def test_lost_shuffle_output_recomputed_from_lineage(self, tmp_path):
        """An injected ``shuffle_loss`` on the result stage drops a map
        output; the scheduler recomputes it from the parent lineage
        (``StageRecomputed``) and the job's answer does not move."""
        baseline = _spark_shuffle_snapshot(RuntimeConfig())
        path = str(tmp_path / "events.jsonl")
        plan = FaultPlan(seed=1).at("*", task=0, kind="shuffle_loss")
        chaos = _spark_shuffle_snapshot(
            RuntimeConfig(fault_plan=plan), events_out=path
        )
        assert chaos == baseline
        events = read_events(path)
        recomputed = [e for e in events if e["event"] == "StageRecomputed"]
        assert recomputed, "expected a lineage recompute"
        record = recomputed[0]
        assert record["reason"] == "shuffle_loss"
        assert {"shuffle_id", "map_partition", "query", "stage"} <= set(record)
        assert any(e["event"] == "TaskRetried" for e in events)


def _impala_backend(runtime, events_out=None):
    hdfs = SimulatedHDFS(datanodes=("node0", "node1"), block_size=2048)
    write_text(
        hdfs,
        "/chaos/points.tsv",
        [f"{k}\tPOINT ({geom.x} {geom.y})" for k, geom in _points()],
    )
    write_text(
        hdfs,
        "/chaos/cells.tsv",
        [f"{name}\t{geom.wkt()}" for name, geom in _grid_polygons()],
    )
    backend = ImpalaBackend(
        SPEC, hdfs=hdfs, runtime=runtime.with_(events_out=events_out)
    )
    backend.metastore.create_table(
        "points", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)],
        "/chaos/points.tsv",
    )
    backend.metastore.create_table(
        "cells", [("id", ColumnType.STRING), ("geom", ColumnType.STRING)],
        "/chaos/cells.tsv",
    )
    return backend


_IMPALA_SQL = (
    "SELECT l.id, r.id FROM points l SPATIAL JOIN cells r "
    "WHERE ST_WITHIN(l.geom, r.geom)"
)


def _impala_snapshot(runtime, events_out=None):
    backend = _impala_backend(runtime, events_out)
    with collecting() as reg:
        result = backend.execute(_IMPALA_SQL)
    snapshot = {
        "rows": sorted(result.rows),
        "sim_seconds": result.simulated_seconds,
        "instance_counters": {
            f"instance-{ctx.node_id}": dict(sorted(ctx.metrics.counts.items()))
            for ctx in result.instances
        },
        "registry": dict(reg.snapshot()["counters"]),
    }
    backend.close_events()
    return snapshot


class TestImpalaChaosEquivalence:
    def test_injected_crash_restarts_the_whole_query(self, tmp_path):
        """The static engine has no lineage: a lost fragment cancels the
        query and the coordinator restarts it from scratch — the paper's
        static-scheduling recovery model — yet every number matches the
        fault-free run because the failed attempt charged nothing."""
        baseline = _impala_snapshot(RuntimeConfig())
        path = str(tmp_path / "events.jsonl")
        plan = FaultPlan(seed=1).at("query-1", task=1, kind="crash")
        chaos = _impala_snapshot(RuntimeConfig(fault_plan=plan), events_out=path)
        assert chaos == baseline
        events = read_events(path)
        restarted = [e for e in events if e["event"] == "QueryRestarted"]
        assert len(restarted) == 1
        record = restarted[0]
        assert record["restart"] == 1 and record["reason"] == "crash"
        assert record["fragment"] == 1
        # Exactly one QueryStart/QueryEnd pair: the restart reuses the
        # query's identity rather than pretending to be a new query.
        assert sum(e["event"] == "QueryStart" for e in events) == 1
        assert sum(e["event"] == "QueryEnd" for e in events) == 1

    def test_random_chaos_matches_fault_free(self):
        baseline = _impala_snapshot(RuntimeConfig())
        chaos = _impala_snapshot(
            RuntimeConfig(fault_plan=FaultPlan(seed=3, fault_rate=0.5))
        )
        assert chaos == baseline

    def test_restart_budget_exhaustion_fails_loudly(self):
        plan = (
            FaultPlan(seed=1)
            .at("query-1", task=0, kind="crash", round=0)
            .at("query-1", task=0, kind="crash", round=1)
        )
        backend = _impala_backend(
            RuntimeConfig(fault_plan=plan, restart_budget=1)
        )
        with pytest.raises(ImpalaError, match="restart budget"):
            backend.execute(_IMPALA_SQL)

    def test_budget_covers_repeated_failures(self):
        """Two pinned crashes, budget 2: the third attempt succeeds."""
        plan = (
            FaultPlan(seed=1)
            .at("query-1", task=0, kind="crash", round=0)
            .at("query-1", task=1, kind="crash", round=1)
        )
        baseline = _impala_snapshot(RuntimeConfig())
        chaos = _impala_snapshot(
            RuntimeConfig(fault_plan=plan, restart_budget=2)
        )
        assert chaos == baseline

    def test_explain_is_never_faulted(self):
        plan = FaultPlan(seed=1, fault_rate=1.0, max_rounds=10)
        backend = _impala_backend(RuntimeConfig(fault_plan=plan))
        text = "\n".join(
            row[0] for row in backend.execute("EXPLAIN " + _IMPALA_SQL).rows
        )
        assert "SCAN" in text.upper() and "JOIN" in text.upper()
