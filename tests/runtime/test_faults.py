"""FaultPlan / RecoveryContext / run_recovered unit tests.

Everything here runs on the SerialBackend: fault injection is a
driver-side decision keyed on logical task identity, so the recovery
machinery is fully testable without spawning a single process.
"""

import pytest

from repro.errors import ReproError
from repro.obs.events import logging_events
from repro.runtime import (
    DEFAULT_KINDS,
    FatalFault,
    Fault,
    FaultEscalation,
    FaultPlan,
    RuntimeConfig,
    SerialBackend,
    TaskHang,
    WorkerCrash,
)
from repro.runtime.recovery import Outcome, RecoveryContext, resolve_faults, run_recovered


class TestFaultPlan:
    def test_draws_are_deterministic_across_calls_and_instances(self):
        a = FaultPlan(seed=11, fault_rate=0.5)
        b = FaultPlan(seed=11, fault_rate=0.5)
        draws_a = [a.fault_for("stage-0", t) for t in range(64)]
        draws_b = [b.fault_for("stage-0", t) for t in range(64)]
        assert draws_a == draws_b
        assert draws_a == [a.fault_for("stage-0", t) for t in range(64)]

    def test_seed_and_scope_both_matter(self):
        plan = FaultPlan(seed=1, fault_rate=0.5)
        other_seed = FaultPlan(seed=2, fault_rate=0.5)
        assert [plan.fault_for("s", t) for t in range(64)] != [
            other_seed.fault_for("s", t) for t in range(64)
        ]
        assert [plan.fault_for("s", t) for t in range(64)] != [
            plan.fault_for("other", t) for t in range(64)
        ]

    def test_rate_zero_never_faults(self):
        plan = FaultPlan(seed=3, fault_rate=0.0)
        assert all(
            plan.fault_for(scope, t) is None
            for scope in ("a", "b")
            for t in range(100)
        )

    def test_rate_one_always_faults_with_known_kinds(self):
        plan = FaultPlan(seed=3, fault_rate=1.0)
        faults = [plan.fault_for("s", t) for t in range(50)]
        assert all(f is not None for f in faults)
        assert {f.kind for f in faults} <= set(DEFAULT_KINDS)
        assert all(0 <= f.worker < plan.virtual_workers for f in faults)

    def test_max_rounds_gates_the_random_draw(self):
        plan = FaultPlan(seed=3, fault_rate=1.0, max_rounds=1)
        assert plan.fault_for("s", 0, round=0) is not None
        assert plan.fault_for("s", 0, round=1) is None
        deeper = FaultPlan(seed=3, fault_rate=1.0, max_rounds=3)
        assert deeper.fault_for("s", 0, round=2) is not None
        assert deeper.fault_for("s", 0, round=3) is None

    def test_explicit_rule_fires_despite_rate_and_rounds(self):
        plan = FaultPlan(seed=0, fault_rate=0.0).at(
            "stage-1", task=2, kind="crash", round=5
        )
        fault = plan.fault_for("stage-1", 2, round=5)
        assert fault == Fault(kind="crash", factor=1.0, worker=fault.worker)
        assert plan.fault_for("stage-1", 2, round=0) is None
        assert plan.fault_for("stage-1", 3, round=5) is None

    def test_wildcard_scope_matches_everything(self):
        plan = FaultPlan().at("*", task=0, kind="slow", factor=8.0)
        for scope in ("stage-a", "stage-b"):
            fault = plan.fault_for(scope, 0)
            assert fault is not None and fault.kind == "slow"
            assert fault.factor == 8.0
        assert plan.fault_for("stage-a", 1) is None

    def test_exact_scope_beats_wildcard(self):
        plan = (
            FaultPlan()
            .at("*", task=0, kind="transient")
            .at("stage-x", task=0, kind="fatal")
        )
        assert plan.fault_for("stage-x", 0).kind == "fatal"
        assert plan.fault_for("stage-y", 0).kind == "transient"

    def test_uniform_is_deterministic_and_in_range(self):
        plan = FaultPlan(seed=9)
        values = [plan.uniform("s", t, 0) for t in range(32)]
        assert values == [plan.uniform("s", t, 0) for t in range(32)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert plan.uniform("s", 0, 0) != plan.uniform("s", 0, 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_rate": -0.1},
            {"fault_rate": 1.5},
            {"kinds": ("transient", "nope")},
            {"slow_factor": 0.5},
            {"virtual_workers": 0},
            {"max_rounds": -1},
        ],
    )
    def test_validation_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ReproError):
            FaultPlan(**kwargs)

    def test_at_rejects_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultPlan().at("s", task=0, kind="gremlin")


def _recovery(**runtime_kwargs) -> RecoveryContext:
    return RecoveryContext(RuntimeConfig(**runtime_kwargs))


class TestRecoveryContext:
    def test_inactive_without_a_plan(self):
        recovery = _recovery()
        assert not recovery.active
        assert recovery.consult("s", 0, 0) is None

    def test_blacklist_after_threshold_then_suppresses(self):
        plan = FaultPlan(seed=0)
        for r in range(3):
            plan.at("s", task=r, kind="crash", round=0, worker=1)
        recovery = _recovery(fault_plan=plan, blacklist_after=2)
        assert recovery.consult("s", 0, 0).worker == 1
        assert recovery.record_failure(1) is False
        assert recovery.record_failure(1) is True  # hits blacklist_after=2
        assert recovery.record_failure(1) is False  # only reported once
        assert 1 in recovery.blacklisted
        assert recovery.failures(1) == 3
        # Faults attributed to a blacklisted virtual worker never happen.
        assert recovery.consult("s", 2, 0) is None

    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        recovery = _recovery(
            fault_plan=FaultPlan(seed=4),
            backoff_base=1.0,
            backoff_factor=2.0,
            backoff_jitter=0.1,
        )
        delays = [recovery.backoff_seconds("s", 0, a) for a in range(4)]
        for attempt, delay in enumerate(delays):
            nominal = 2.0**attempt
            assert nominal * 0.9 <= delay <= nominal * 1.1
        assert delays == [recovery.backoff_seconds("s", 0, a) for a in range(4)]

    def test_backoff_without_jitter_is_exact(self):
        recovery = _recovery(backoff_base=0.5, backoff_factor=3.0, backoff_jitter=0.0)
        assert recovery.backoff_seconds("s", 0, 0) == 0.5
        assert recovery.backoff_seconds("s", 0, 2) == 4.5


class TestRunRecovered:
    EVENTS = ("q-1", "stage-0")

    def _run(self, recovery, thunks, **kwargs):
        with logging_events() as log:
            outcomes = run_recovered(
                SerialBackend(),
                thunks,
                recovery,
                scope="s",
                events=self.EVENTS,
                **kwargs,
            )
        return outcomes, log.events

    def test_no_plan_is_a_plain_pool_run(self):
        outcomes, events = self._run(_recovery(), [lambda: 7, lambda: 8])
        assert [o.value for o in outcomes] == [7, 8]
        assert all(o.attempts == 1 and not o.speculated for o in outcomes)
        assert events == []

    def test_transient_fault_retries_and_emits_task_retried(self):
        plan = FaultPlan().at("s", task=0, kind="transient")
        outcomes, events = self._run(
            _recovery(fault_plan=plan), [lambda: "a", lambda: "b"]
        )
        assert [o.value for o in outcomes] == ["a", "b"]
        assert outcomes[0].attempts == 2
        assert outcomes[1].attempts == 1
        retried = [e for e in events if e["event"] == "TaskRetried"]
        assert len(retried) == 1
        record = retried[0]
        assert record["query"] == "q-1" and record["stage"] == "stage-0"
        assert record["task"] == 0 and record["attempt"] == 1
        assert record["reason"] == "transient"
        assert record["backoff_seconds"] > 0
        assert "vworker" in record

    def test_hang_retries_with_timeout_reason(self):
        plan = FaultPlan().at("s", task=1, kind="hang")
        _, events = self._run(_recovery(fault_plan=plan), [lambda: 1, lambda: 2])
        (record,) = [e for e in events if e["event"] == "TaskRetried"]
        assert record["reason"] == "timeout"

    def test_heartbeat_loss_reason(self):
        plan = FaultPlan().at("s", task=0, kind="heartbeat_loss")
        _, events = self._run(_recovery(fault_plan=plan), [lambda: 1, lambda: 2])
        (record,) = [e for e in events if e["event"] == "TaskRetried"]
        assert record["reason"] == "heartbeat-loss"

    def test_fatal_fault_raises_before_any_work(self):
        plan = FaultPlan().at("s", task=0, kind="fatal")
        ran = []
        with pytest.raises(FatalFault, match="injected fatal fault"):
            self._run(
                _recovery(fault_plan=plan), [lambda: ran.append(1), lambda: 2]
            )
        assert ran == []  # eager cancel: the batch never dispatched

    def test_exhausted_budget_escalates(self):
        plan = FaultPlan()
        for r in range(3):
            plan.at("s", task=0, kind="crash", round=r)
        recovery = _recovery(fault_plan=plan, max_task_attempts=3)
        with pytest.raises(FaultEscalation, match=r"failed 3 attempt\(s\)"):
            self._run(recovery, [lambda: 1, lambda: 2])

    def test_limit_one_surfaces_the_original_error_class(self):
        plan = FaultPlan().at("s", task=0, kind="crash")
        recovery = _recovery(fault_plan=plan)
        with pytest.raises(WorkerCrash):
            resolve_faults(recovery, 2, scope="s", limit=1)
        hang_plan = FaultPlan().at("s", task=1, kind="hang")
        with pytest.raises(TaskHang):
            resolve_faults(_recovery(fault_plan=hang_plan), 2, scope="s", limit=1)

    def test_base_round_offsets_the_draw(self):
        plan = FaultPlan().at("s", task=0, kind="crash", round=2)
        recovery = _recovery(fault_plan=plan)
        # Round 0: no fault pinned there, runs clean even with limit=1.
        attempts, _ = resolve_faults(recovery, 1, scope="s", limit=1)
        assert attempts == [1]
        with pytest.raises(WorkerCrash):
            resolve_faults(recovery, 1, scope="s", limit=1, base_round=2)

    def test_shuffle_loss_invokes_repair_then_retries(self):
        plan = FaultPlan().at("s", task=1, kind="shuffle_loss")
        repaired = []
        outcomes, events = self._run(
            _recovery(fault_plan=plan),
            [lambda: "x", lambda: "y"],
            repair=lambda task, fault: repaired.append((task, fault.kind)),
        )
        assert repaired == [(1, "shuffle_loss")]
        assert [o.value for o in outcomes] == ["x", "y"]
        (record,) = [e for e in events if e["event"] == "TaskRetried"]
        assert record["reason"] == "shuffle-loss"

    def test_shuffle_loss_without_repair_degrades_to_transient_retry(self):
        plan = FaultPlan().at("s", task=0, kind="shuffle_loss")
        outcomes, events = self._run(
            _recovery(fault_plan=plan), [lambda: "x", lambda: "y"]
        )
        assert [o.value for o in outcomes] == ["x", "y"]
        assert outcomes[0].attempts == 2

    def test_blacklisting_emits_worker_blacklisted(self):
        plan = FaultPlan()
        plan.at("s", task=0, kind="crash", round=0, worker=3)
        plan.at("s", task=1, kind="crash", round=0, worker=3)
        recovery = _recovery(fault_plan=plan, blacklist_after=2)
        outcomes, events = self._run(recovery, [lambda: 1, lambda: 2, lambda: 3])
        assert [o.value for o in outcomes] == [1, 2, 3]
        (record,) = [e for e in events if e["event"] == "WorkerBlacklisted"]
        assert record["vworker"] == 3 and record["failures"] == 2
        assert 3 in recovery.blacklisted

    def test_slow_fault_speculates_and_duplicate_wins(self):
        plan = FaultPlan().at("s", task=2, kind="slow", factor=6.0)
        recovery = _recovery(fault_plan=plan, speculation_k=2.0)
        thunks = [lambda: "r0", lambda: "r1", lambda: "r2", lambda: "r3"]
        outcomes, events = self._run(
            recovery, thunks, sim_seconds=lambda i, value: 1.0
        )
        assert [o.value for o in outcomes] == ["r0", "r1", "r2", "r3"]
        assert outcomes[2].speculated and outcomes[2].attempts == 2
        assert outcomes[2].slow_factor == 1.0  # duplicate ran at full speed
        (record,) = [e for e in events if e["event"] == "TaskSpeculated"]
        assert record["task"] == 2 and record["winner"] == "speculative"
        assert record["factor"] == 6.0
        assert record["effective_seconds"] == pytest.approx(6.0)

    def test_mild_slowdown_below_threshold_not_speculated(self):
        plan = FaultPlan().at("s", task=0, kind="slow", factor=1.5)
        recovery = _recovery(fault_plan=plan, speculation_k=2.0)
        outcomes, events = self._run(
            recovery,
            [lambda: 1, lambda: 2, lambda: 3],
            sim_seconds=lambda i, value: 1.0,
        )
        assert not any(o.speculated for o in outcomes)
        assert not any(e["event"] == "TaskSpeculated" for e in events)
        assert outcomes[0].slow_factor == 1.5

    def test_speculation_disabled_by_runtime_flag(self):
        plan = FaultPlan().at("s", task=0, kind="slow", factor=10.0)
        recovery = _recovery(fault_plan=plan, speculation=False)
        outcomes, events = self._run(
            recovery,
            [lambda: 1, lambda: 2, lambda: 3],
            sim_seconds=lambda i, value: 1.0,
        )
        assert not any(o.speculated for o in outcomes)
        assert not any(e["event"] == "TaskSpeculated" for e in events)

    def test_speculation_needs_minimum_sibling_tasks(self):
        plan = FaultPlan().at("s", task=0, kind="slow", factor=10.0)
        recovery = _recovery(fault_plan=plan, speculation_min_tasks=4)
        outcomes, _ = self._run(
            recovery,
            [lambda: 1, lambda: 2, lambda: 3],
            sim_seconds=lambda i, value: 1.0,
        )
        assert not any(o.speculated for o in outcomes)

    def test_outcome_defaults(self):
        outcome = Outcome(value=42)
        assert (outcome.attempts, outcome.slow_factor, outcome.speculated) == (
            1,
            1.0,
            False,
        )
