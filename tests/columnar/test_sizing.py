"""Shuffle sizing fast path and cache accounting for column-backed values.

``records_bytes`` is a hot-loop optimisation, not a new size model: for
every input it must return exactly ``sum(estimate_bytes(r) for r in
records)``, and a ``ColumnBlock``'s ``charge_bytes`` must pin the same
total so ``SHUFFLE_BYTES`` charges cannot drift between representations.
"""

from __future__ import annotations

import random

import pytest

from repro.columnar import COLUMNAR_STATS, ColumnBlock, GeometryColumn
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.spark.shuffle import ShuffleStore, estimate_bytes, records_bytes


def routed_records(n=200, seed=3):
    rng = random.Random(seed)
    records = []
    for i in range(n):
        geometry = Point(rng.uniform(0, 100), rng.uniform(0, 100))
        records.append((i % 8, (i, geometry)))
    return records


class TestRecordsBytes:
    @pytest.mark.parametrize(
        "records",
        [
            [],
            routed_records(50),
            [(1, (2, LineString([(0, 0), (1, 1), (2, 2)])))],
            [(0.5, (True, Point(1, 1)))],  # float/bool keys hit the fast path
            [(1, (2, 3))],  # scalar instead of geometry: generic walk
            [("a", (1, Point(0, 0)))],  # str key: generic walk
            [(1, (2, Point(0, 0)), 3)],  # wrong arity
            [(1, [2, Point(0, 0)])],  # list, not tuple
            [{"k": 1}, None, "text", (1, 2)],
            [(1, (2, Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])))],
        ],
    )
    def test_equals_per_record_walk(self, records):
        assert records_bytes(records) == sum(
            estimate_bytes(record) for record in records
        )

    def test_column_block_charges_object_path_total(self):
        records = routed_records(120)
        block = ColumnBlock.from_records(records)
        expected = sum(estimate_bytes(record) for record in records)
        assert block.charge_bytes == expected
        assert records_bytes(block) == expected

    def test_estimate_bytes_sizes_columns_honestly(self):
        column = GeometryColumn.from_geometries([Point(0, 0)] * 10)
        assert estimate_bytes(column) == 16 + column.nbytes


class TestColumnBlock:
    def test_iteration_is_value_identical(self):
        records = routed_records(60)
        block = ColumnBlock.from_records(records)
        assert list(block) == records
        # In-process iteration hands back the original geometry objects.
        assert list(block)[0][1][1] is records[0][1][1]

    def test_non_record_shapes_return_none(self):
        assert ColumnBlock.from_records([]) is None
        assert ColumnBlock.from_records([(1, 2)]) is None
        assert ColumnBlock.from_records([(1, (2, 3))]) is None

    def test_pickle_round_trip(self):
        import pickle

        records = routed_records(80)
        block = ColumnBlock.from_records(records)
        revived = pickle.loads(pickle.dumps(block))
        assert list(revived) == records
        assert revived.charge_bytes == block.charge_bytes


class TestShuffleStoreWrite:
    def test_blocks_and_lists_charge_identically(self):
        records = routed_records(150)
        buckets_obj = {0: records[:75], 1: records[75:]}
        buckets_col = {
            k: ColumnBlock.from_records(v) for k, v in buckets_obj.items()
        }

        store_obj, store_col = ShuffleStore(), ShuffleStore()
        sid_obj = store_obj.new_shuffle_id()
        sid_col = store_col.new_shuffle_id()
        written_obj = store_obj.write(sid_obj, 0, buckets_obj)
        written_col = store_col.write(sid_col, 0, buckets_col)
        assert written_obj == written_col
        assert store_obj.bytes_for(sid_obj) == store_col.bytes_for(sid_col)
        assert ShuffleStore.bucket_bytes(buckets_obj) == written_obj
        assert ShuffleStore.bucket_bytes(buckets_col) == written_col
        # The reduce side sees identical records either way.
        assert list(store_obj.read(sid_obj, 1, 0)) == list(
            store_col.read(sid_col, 1, 0)
        )

    def test_write_tracks_honest_encoded_bytes(self):
        records = routed_records(100)
        block = ColumnBlock.from_records(records)
        COLUMNAR_STATS.reset()
        store = ShuffleStore()
        store.write(store.new_shuffle_id(), 0, {0: block})
        assert COLUMNAR_STATS.shuffle_blocks == 1
        assert COLUMNAR_STATS.shuffle_block_nbytes == block.nbytes
        assert COLUMNAR_STATS.shuffle_object_bytes == block.charge_bytes
        # The packed representation genuinely ships fewer bytes.
        assert block.nbytes < block.charge_bytes
        COLUMNAR_STATS.reset()


class TestIndexByteEstimate:
    def test_column_backed_index_is_sized_from_buffers(self):
        from repro.cache.manager import estimate_index_bytes
        from repro.core.operators import SpatialOperator
        from repro.core.probe import BroadcastIndex

        entries = [(i, Point(float(i), float(i))) for i in range(64)]
        column = GeometryColumn.from_entries(entries)
        op = SpatialOperator.WITHIN
        from_col = BroadcastIndex.from_column(column, op)
        from_obj = BroadcastIndex(entries, op)
        col_size = estimate_index_bytes(from_col)
        obj_size = estimate_index_bytes(from_obj)
        assert col_size > 0
        # The packed estimate may differ from the object walk but must
        # stay the same order of magnitude — no budget-dodging tiny sizes.
        assert col_size > obj_size / 4
