"""GeometryColumn round-trip and slicing properties.

The binary encoding must reproduce every geometry bit for bit (types,
coordinates, ring/part structure, emptiness) and every payload value,
including the edge cases: empty columns, single points, multi-ring
polygons, empty members inside multi geometries, None-mixed payloads,
and negative ints in the zigzag-varint pair lane.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.columnar import COLUMNAR_STATS, GeometryColumn, column_from_wkt
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPoint, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.wkt import dumps, loads


def square(x, y, side=1.0):
    return Polygon([(x, y), (x + side, y), (x + side, y + side), (x, y + side)])


def donut(x, y):
    shell = [(x, y), (x + 10, y), (x + 10, y + 10), (x, y + 10)]
    hole1 = [(x + 1, y + 1), (x + 2, y + 1), (x + 2, y + 2), (x + 1, y + 2)]
    hole2 = [(x + 5, y + 5), (x + 7, y + 5), (x + 7, y + 7), (x + 5, y + 7)]
    return Polygon(shell, [hole1, hole2])


def assert_geometry_equal(a, b):
    assert type(a) is type(b)
    assert a.is_empty == b.is_empty
    if not a.is_empty:
        assert a.wkb() == b.wkb()


def roundtrip(column: GeometryColumn) -> GeometryColumn:
    blob = column.to_bytes()
    decoded = GeometryColumn.from_bytes(blob)
    assert len(decoded) == len(column)
    for i in range(len(column)):
        assert decoded.payload(i) == column.payload(i)
        assert_geometry_equal(decoded.geometry(i), column.geometry(i))
    return decoded


class TestRoundTrip:
    def test_empty_column(self):
        column = GeometryColumn.from_entries([])
        assert len(column) == 0
        decoded = roundtrip(column)
        assert list(decoded.entries()) == []

    def test_single_point(self):
        column = GeometryColumn.from_entries([(7, Point(1.5, -2.25))])
        decoded = roundtrip(column)
        assert decoded.payload(0) == 7
        assert decoded.geometry(0).x == 1.5

    def test_points_use_compact_layout(self):
        column = GeometryColumn.from_entries(
            [(i, Point(float(i), float(-i))) for i in range(5)]
        )
        blob = column.to_bytes()
        assert blob[:4] == b"GCOL"
        assert blob[5] & 0x01  # compact points flag
        roundtrip(column)

    def test_mixed_types_do_not_use_compact_layout(self):
        column = GeometryColumn.from_entries(
            [(0, Point(0.0, 0.0)), (1, square(3, 3))]
        )
        blob = column.to_bytes()
        assert not blob[5] & 0x01
        roundtrip(column)

    def test_multi_ring_polygons(self):
        column = GeometryColumn.from_entries(
            [(0, donut(0, 0)), (1, square(20, 20)), (2, donut(-50, 12.5))]
        )
        decoded = roundtrip(column)
        assert len(decoded.geometry(0).holes) == 2
        assert len(decoded.geometry(1).holes) == 0

    def test_every_geometry_type(self):
        geometries = [
            Point(3.0, 4.0),
            LineString([(0, 0), (1, 1), (2, 0)]),
            donut(5, 5),
            MultiPoint([Point(0, 0), Point(1, 2)]),
            MultiLineString(
                [LineString([(0, 0), (1, 0)]), LineString([(5, 5), (6, 6), (7, 5)])]
            ),
            MultiPolygon([square(0, 0), donut(100, 100)]),
        ]
        column = GeometryColumn.from_geometries(geometries)
        roundtrip(column)

    def test_empty_geometries_and_empty_members(self):
        geometries = [
            Point.empty(),
            Polygon.empty(),
            LineString.empty(),
            MultiPoint([Point(1, 1), Point.empty(), Point(2, 2)]),
            MultiPolygon([Polygon.empty(), square(0, 0)]),
            Point(9, 9),
        ]
        column = GeometryColumn.from_geometries(geometries)
        decoded = roundtrip(column)
        assert decoded.geometry(0).is_empty
        parts = decoded.geometry(3).parts
        assert [p.is_empty for p in parts] == [False, True, False]

    def test_coordinates_bit_identical(self):
        xs = [0.1, 1e-300, 1e300, -0.0, 3.141592653589793]
        column = GeometryColumn.from_geometries([Point(x, -x) for x in xs])
        decoded = GeometryColumn.from_bytes(column.to_bytes())
        for i, x in enumerate(xs):
            got = decoded.geometry(i)
            assert (got.x, got.y) == (x, -x)
        assert np.signbit(decoded.geometry(3).x)

    def test_unsupported_types_return_none(self):
        from repro.geometry.multi import GeometryCollection

        collection = GeometryCollection([Point(0, 0)])
        assert GeometryColumn.from_geometries([collection]) is None
        assert GeometryColumn.from_entries([(1, None)]) is None


class TestPayloadLanes:
    @pytest.mark.parametrize(
        "payloads",
        [
            [None, None, None],
            [1, 2, 3],
            [-5, 0, 2**62],
            ["a", "", "héllo wörld"],
            [(0, 1), (2, 3), (4, 5)],
            [(-1, -2), (3, -4), (-(2**40), 2**40)],
            [None, 1, 2],  # mixed None/int: no compact lane, pickled
            [(1, 2), None, (3, 4)],
            [1, "a", 2.5],
            [{"k": 1}, [1, 2], (1, 2, 3)],
            [2**100, 1, 2],  # beyond int64: object lane
            [(2**80, 1), (0, 0)],
        ],
    )
    def test_payload_round_trip(self, payloads):
        geometries = [Point(float(i), 0.0) for i in range(len(payloads))]
        column = GeometryColumn.from_entries(zip(payloads, geometries))
        decoded = GeometryColumn.from_bytes(column.to_bytes())
        assert decoded.payloads() == payloads

    def test_bool_payloads_stay_bool(self):
        # bool is an int subclass; the int64 lane must not swallow it.
        column = GeometryColumn.from_entries(
            [(True, Point(0, 0)), (False, Point(1, 1))]
        )
        decoded = GeometryColumn.from_bytes(column.to_bytes())
        assert decoded.payloads() == [True, False]
        assert all(type(p) is bool for p in decoded.payloads())

    def test_int_pair_lane_is_compact(self):
        n = 500
        column = GeometryColumn.from_entries(
            ((i % 16, i), Point(float(i), float(i))) for i in range(n)
        )
        pickled = pickle.dumps(
            [((i % 16, i), (float(i), float(i))) for i in range(n)]
        )
        assert len(column.to_bytes()) < len(pickled) + 16 * n


class TestSlicing:
    def make(self, n=20):
        entries = [(i, Point(float(i), float(2 * i))) for i in range(n)]
        entries[3] = (3, donut(30, 30))
        entries[11] = (11, LineString([(0, 0), (5, 5)]))
        return GeometryColumn.from_entries(entries)

    def test_take_shares_buffers(self):
        column = self.make()
        view = column.take([3, 5, 11])
        assert view._data is column._data  # no coordinate copies
        assert len(view) == 3
        assert view.payload(0) == 3
        assert_geometry_equal(view.geometry(0), column.geometry(3))

    def test_take_of_take_composes(self):
        column = self.make()
        view = column.take([1, 3, 5, 7, 9]).take([1, 3])
        assert [view.payload(i) for i in range(len(view))] == [3, 7]

    def test_slice_matches_take(self):
        column = self.make()
        a = column.slice(4, 9)
        b = column.take(range(4, 9))
        assert [a.payload(i) for i in range(len(a))] == [
            b.payload(i) for i in range(len(b))
        ]

    def test_sliced_encoding_equals_compacted(self):
        column = self.make()
        view = column.take([0, 3, 11, 17])
        decoded = GeometryColumn.from_bytes(view.to_bytes())
        assert decoded.payloads() == view.payloads()
        for i in range(len(view)):
            assert_geometry_equal(decoded.geometry(i), view.geometry(i))

    def test_bounds_follow_selection(self):
        column = self.make()
        view = column.take([3])
        min_x, min_y, max_x, max_y = view.bounds()
        assert (min_x[0], min_y[0], max_x[0], max_y[0]) == (30.0, 30.0, 40.0, 40.0)

    def test_from_entries_preserves_identity(self):
        # geometry(i) must return the original object, keeping
        # identity-keyed prepared-geometry caches effective.
        entries = [(i, Point(float(i), 0.0)) for i in range(4)]
        column = GeometryColumn.from_entries(entries)
        for i, (_, g) in enumerate(entries):
            assert column.geometry(i) is g


class TestSizingAndPickle:
    def test_nbytes_matches_encoding(self):
        for column in (
            GeometryColumn.from_geometries([Point(1, 2), Point(3, 4)]),
            GeometryColumn.from_geometries([donut(0, 0), Point(1, 1)]),
            GeometryColumn.from_entries([]),
        ):
            # All-None payloads encode to zero payload bytes, so the full
            # encoding is the geometry buffers plus the 4-byte payload frame.
            assert len(column.to_bytes()) == column.nbytes + 4

    def test_pickle_ships_binary_encoding(self):
        column = GeometryColumn.from_entries(
            [(i, Point(float(i), float(i))) for i in range(100)]
        )
        revived = pickle.loads(pickle.dumps(column))
        assert revived.payloads() == column.payloads()
        for i in range(len(column)):
            assert_geometry_equal(revived.geometry(i), column.geometry(i))
        objects = pickle.dumps([column.entry(i) for i in range(len(column))])
        assert len(pickle.dumps(column)) < len(objects)

    def test_encoding_updates_columnar_stats(self):
        before = COLUMNAR_STATS.as_dict()
        column = GeometryColumn.from_geometries([Point(0, 0)])
        blob = column.to_bytes()
        assert COLUMNAR_STATS.columns_encoded == before["columns_encoded"] + 1
        assert (
            COLUMNAR_STATS.encoded_bytes == before["encoded_bytes"] + len(blob)
        )

    def test_bad_magic_and_version_rejected(self):
        column = GeometryColumn.from_geometries([Point(0, 0)])
        blob = bytearray(column.to_bytes())
        with pytest.raises(ValueError):
            GeometryColumn.from_bytes(b"XXXX" + bytes(blob[4:]))
        blob[4] = 99  # unsupported version
        with pytest.raises(ValueError):
            GeometryColumn.from_bytes(bytes(blob))


class TestBulkWKT:
    def test_point_fast_path_bit_identical_to_scalar(self):
        texts = [
            "POINT (1.5 2.5)",
            "POINT(-73.98765432109876 40.12345678901234)",
            "point (1e-300 -0.0)",
        ]
        column = column_from_wkt(texts, payloads=[0, 1, 2])
        for i, text in enumerate(texts):
            scalar = loads(text)
            got = column.geometry(i)
            assert got.x == scalar.x and got.y == scalar.y
        assert column.payloads() == [0, 1, 2]

    def test_fallback_handles_mixed_wkt(self):
        texts = [dumps(donut(0, 0)), "POINT (1 2)", dumps(square(5, 5))]
        column = column_from_wkt(texts)
        assert len(column) == 3
        assert len(column.geometry(0).holes) == 2

    def test_geometry_collection_returns_none(self):
        assert column_from_wkt(["GEOMETRYCOLLECTION (POINT (1 2))"]) is None

    def test_payload_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            column_from_wkt(["POINT (1 2)"], payloads=[1, 2])
