"""The section-13 hard invariant: columnar changes wall-clock only.

``columnar=True`` runs must match ``columnar=False`` runs byte for byte —
same pairs in the same order, same registry counters, same simulated
seconds, same rendered profile — across operators, executor counts, and
both cluster substrates.  The object path is the reference oracle; any
divergence is a columnar bug by definition.
"""

from __future__ import annotations

import random

import pytest

from repro import JoinConfig, spatial_join
from repro.cache import CacheManager, set_cache
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.prepared import clear_prepared_cache
from repro.geometry.wkt import clear_wkt_cache
from repro.obs.registry import collecting
from repro.runtime.config import RuntimeConfig


@pytest.fixture(autouse=True)
def fresh_process_caches():
    """Each run starts cold so neither arm inherits the other's memos."""
    old = set_cache(CacheManager(budget_bytes=None, emit_events=True))
    clear_prepared_cache()
    clear_wkt_cache()
    yield
    set_cache(old)
    clear_prepared_cache()
    clear_wkt_cache()


def mixed_workload(seed, n_points=300, n_polygons=24):
    rng = random.Random(seed)
    left = [
        (i, Point(rng.uniform(0, 100), rng.uniform(0, 100)))
        for i in range(n_points)
    ]
    right = []
    for j in range(n_polygons):
        x, y = rng.uniform(0, 90), rng.uniform(0, 90)
        w, h = rng.uniform(2, 12), rng.uniform(2, 12)
        right.append(
            (1000 + j, Polygon([(x, y), (x + w, y), (x + w, y + h), (x, y + h)]))
        )
    return left, right


def observed_run(left, right, method, operator, radius, executors, columnar):
    runtime = RuntimeConfig(executors=executors, columnar=columnar)
    config = JoinConfig(
        method=method, operator=operator, radius=radius, profile=True
    )
    with collecting() as reg:
        result = spatial_join(left, right, runtime=runtime, config=config)
        counters = reg.snapshot()["counters"]
    return list(result), counters, result.profile.render()


class TestCoreByteIdentity:
    @pytest.mark.parametrize("executors", ["serial", 2, 4])
    @pytest.mark.parametrize("operator,radius", [("within", 0.0), ("nearestd", 2.5)])
    @pytest.mark.parametrize("method", ["broadcast", "partitioned"])
    def test_columnar_matches_object_path(self, method, operator, radius, executors):
        left, right = mixed_workload(7)
        on = observed_run(left, right, method, operator, radius, executors, True)
        off = observed_run(left, right, method, operator, radius, executors, False)
        assert on[0] == off[0]  # pairs, in order
        assert on[1] == off[1]  # registry counters, incl. no new keys
        assert on[2] == off[2]  # rendered profile

    def test_columnar_handles_nonconvertible_fallback(self):
        # A geometry outside the columnar model falls back to the object
        # path inside the columnar run — results still identical.
        from repro.geometry.multi import GeometryCollection

        left, right = mixed_workload(3, n_points=60, n_polygons=6)
        left = list(left)
        left[0] = (0, GeometryCollection([Point(50, 50)]))
        on = observed_run(left, right, "broadcast", "within", 0.0, "serial", True)
        off = observed_run(left, right, "broadcast", "within", 0.0, "serial", False)
        assert on == off


class TestSubstrateByteIdentity:
    @pytest.mark.parametrize("engine", ["spatialspark", "isp-mc"])
    @pytest.mark.parametrize("executors", ["serial", 2, 4])
    def test_cluster_runs_identical(self, engine, executors):
        from repro.bench.runner import run_ispmc, run_spatialspark
        from repro.bench.workloads import materialize

        mat = materialize("taxi-nycb", scale=0.04, num_datanodes=2)
        runner = run_spatialspark if engine == "spatialspark" else run_ispmc

        def run(columnar):
            clear_prepared_cache()
            clear_wkt_cache()
            runtime = RuntimeConfig(executors=executors, columnar=columnar)
            with collecting() as reg:
                result = runner(mat, 2, runtime=runtime)
                counters = reg.snapshot()["counters"]
            return result.result_rows, result.simulated_seconds, counters

        assert run(True) == run(False)

    def test_normalized_events_identical(self, tmp_path):
        """The structured event log is representation-blind."""
        from repro.obs.events import read_events

        left, right = mixed_workload(5, n_points=120, n_polygons=8)

        def events(columnar, path):
            runtime = RuntimeConfig(
                executors="serial", columnar=columnar, events_out=str(path)
            )
            spatial_join(
                left, right, method="partitioned", runtime=runtime
            )
            normalized = []
            for event in read_events(str(path)):
                fields = {
                    k: v
                    for k, v in event.items()
                    if k not in ("ts", "pid", "unix_time")
                    and not k.startswith("wall")
                }
                normalized.append(fields)
            return normalized

        on = events(True, tmp_path / "on.jsonl")
        off = events(False, tmp_path / "off.jsonl")
        assert on == off
