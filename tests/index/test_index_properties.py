"""Property-based tests: every index agrees with brute force."""

from hypothesis import given, settings, strategies as st

from repro.geometry.envelope import Envelope
from repro.index import GridIndex, QuadTree, RTree, STRtree

coordinate = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def envelopes(draw):
    x = draw(coordinate)
    y = draw(coordinate)
    w = draw(st.floats(min_value=0.0, max_value=20.0))
    h = draw(st.floats(min_value=0.0, max_value=20.0))
    return Envelope(x, y, x + w, y + h)


entry_lists = st.lists(envelopes(), min_size=0, max_size=60)


class TestTreesMatchBruteForce:
    @given(entry_lists, envelopes())
    @settings(max_examples=150, deadline=None)
    def test_strtree(self, envs, query):
        entries = list(enumerate(envs))
        tree = STRtree(entries, node_capacity=4)
        expected = sorted(i for i, e in entries if e.intersects(query))
        assert sorted(tree.query(query)) == expected

    @given(entry_lists, envelopes())
    @settings(max_examples=100, deadline=None)
    def test_dynamic_rtree(self, envs, query):
        tree = RTree(max_entries=4)
        for i, env in enumerate(envs):
            tree.insert(i, env)
        expected = sorted(i for i, e in enumerate(envs) if e.intersects(query))
        assert sorted(tree.query(query)) == expected

    @given(entry_lists, envelopes())
    @settings(max_examples=100, deadline=None)
    def test_grid(self, envs, query):
        grid = GridIndex(Envelope(0, 0, 120, 120), 8, 8)
        for i, env in enumerate(envs):
            grid.insert(i, env)
        expected = sorted(i for i, e in enumerate(envs) if e.intersects(query))
        assert sorted(grid.query(query)) == expected

    @given(
        st.lists(st.tuples(coordinate, coordinate), min_size=0, max_size=80),
        envelopes(),
    )
    @settings(max_examples=100, deadline=None)
    def test_quadtree(self, points, query):
        qt = QuadTree(Envelope(0, 0, 100, 100), capacity=4)
        for i, (x, y) in enumerate(points):
            qt.insert(x, y, i)
        expected = sorted(
            i for i, (x, y) in enumerate(points) if query.contains_point(x, y)
        )
        assert sorted(qt.query(query)) == expected


class TestDeleteProperties:
    @given(entry_lists, st.integers(min_value=0, max_value=59))
    @settings(max_examples=80, deadline=None)
    def test_rtree_delete_removes_exactly_one(self, envs, victim_index):
        if not envs:
            return
        victim_index %= len(envs)
        tree = RTree(max_entries=4)
        for i, env in enumerate(envs):
            tree.insert(i, env)
        assert tree.delete(victim_index, envs[victim_index])
        everything = Envelope(0, 0, 200, 200)
        expected = sorted(i for i in range(len(envs)) if i != victim_index)
        assert sorted(tree.query(everything)) == expected
