"""STR-packed R-tree: the broadcast join's filtering index."""

import math

import pytest

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope
from repro.index import STRtree


def random_entries(rng, n, extent=100.0, max_size=3.0):
    entries = []
    for i in range(n):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        entries.append(
            (i, Envelope(x, y, x + rng.uniform(0, max_size), y + rng.uniform(0, max_size)))
        )
    return entries


def brute_force(entries, query):
    return sorted(i for i, env in entries if env.intersects(query))


class TestBuildAndQuery:
    def test_empty_tree(self):
        tree = STRtree()
        assert len(tree) == 0
        assert tree.query(Envelope(0, 0, 1, 1)) == []
        assert tree.root is None
        assert tree.depth() == 0

    def test_single_entry(self):
        tree = STRtree([("only", Envelope(0, 0, 1, 1))])
        assert tree.query(Envelope(0.5, 0.5, 2, 2)) == ["only"]
        assert tree.query(Envelope(5, 5, 6, 6)) == []
        assert tree.depth() == 1

    def test_matches_brute_force(self, rng):
        entries = random_entries(rng, 500)
        tree = STRtree(entries)
        for _ in range(50):
            x = rng.uniform(0, 100)
            y = rng.uniform(0, 100)
            query = Envelope(x, y, x + rng.uniform(0, 20), y + rng.uniform(0, 20))
            assert sorted(tree.query(query)) == brute_force(entries, query)

    def test_query_point(self, rng):
        entries = random_entries(rng, 300)
        tree = STRtree(entries)
        for _ in range(30):
            x = rng.uniform(0, 100)
            y = rng.uniform(0, 100)
            expected = sorted(i for i, e in entries if e.contains_point(x, y))
            assert sorted(tree.query_point(x, y)) == expected

    def test_empty_query_returns_nothing(self, rng):
        tree = STRtree(random_entries(rng, 50))
        assert tree.query(Envelope.empty()) == []

    def test_empty_envelopes_skipped_on_insert(self):
        tree = STRtree([("a", Envelope.empty()), ("b", Envelope(0, 0, 1, 1))])
        assert len(tree) == 1

    def test_insert_before_build(self):
        tree = STRtree()
        tree.insert("x", Envelope(0, 0, 1, 1))
        assert tree.query(Envelope(0, 0, 2, 2)) == ["x"]

    def test_insert_after_build_rejected(self):
        tree = STRtree([("x", Envelope(0, 0, 1, 1))])
        tree.build()
        with pytest.raises(SpatialIndexError):
            tree.insert("y", Envelope(2, 2, 3, 3))

    def test_bad_capacity(self):
        with pytest.raises(SpatialIndexError):
            STRtree(node_capacity=1)

    def test_duplicate_envelopes_all_returned(self):
        env = Envelope(0, 0, 1, 1)
        tree = STRtree([(i, env) for i in range(25)])
        assert sorted(tree.query(env)) == list(range(25))


class TestStructure:
    def test_node_capacity_respected(self, rng):
        tree = STRtree(random_entries(rng, 200), node_capacity=4)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert 1 <= len(node.items) <= 4
            else:
                assert 1 <= len(node.children) <= 4
                stack.extend(node.children)

    def test_parent_envelope_covers_children(self, rng):
        tree = STRtree(random_entries(rng, 300))
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for _, env in node.items:
                    assert node.envelope.contains(env)
            else:
                for child in node.children:
                    assert node.envelope.contains(child.envelope)
                stack.extend(child for child in node.children)

    def test_depth_logarithmic(self, rng):
        tree = STRtree(random_entries(rng, 1000), node_capacity=10)
        assert tree.depth() <= 4  # ceil(log10(1000)) + 1

    def test_visit_counter(self, rng):
        tree = STRtree(random_entries(rng, 500))
        tree.build()
        tree.reset_stats()
        tree.query(Envelope(0, 0, 5, 5))
        small = tree.nodes_visited
        tree.reset_stats()
        tree.query(Envelope(0, 0, 100, 100))
        full = tree.nodes_visited
        assert 0 < small < full


class TestNearest:
    def test_nearest_single(self):
        entries = [(i, Envelope.of_point(float(i * 10), 0.0)) for i in range(10)]
        tree = STRtree(entries)
        found = tree.nearest(34.0, 0.0, k=1)
        assert found == [(3, pytest.approx(4.0))]

    def test_nearest_k_ordered(self, rng):
        entries = [(i, Envelope.of_point(rng.uniform(0, 100), rng.uniform(0, 100)))
                   for i in range(200)]
        tree = STRtree(entries)
        found = tree.nearest(50, 50, k=10)
        distances = [d for _, d in found]
        assert distances == sorted(distances)
        # Cross-check against brute force.
        brute = sorted(
            (math.hypot(env.min_x - 50, env.min_y - 50), i) for i, env in entries
        )[:10]
        assert [i for _, i in brute] == [i for i, _ in found]

    def test_nearest_max_distance(self):
        entries = [(0, Envelope.of_point(0, 0)), (1, Envelope.of_point(10, 0))]
        tree = STRtree(entries)
        found = tree.nearest(2, 0, k=5, max_distance=5.0)
        assert [i for i, _ in found] == [0]

    def test_nearest_item_distance_callback(self):
        # Item distance can differ from envelope distance (polyline case).
        entries = [("far", Envelope(0, 0, 10, 10)), ("near", Envelope(20, 0, 30, 10))]

        def item_distance(x, y, item):
            return 1.0 if item == "near" else 5.0

        tree = STRtree(entries)
        found = tree.nearest(15, 5, k=2, item_distance=item_distance)
        assert [i for i, _ in found] == ["near", "far"]

    def test_nearest_empty_tree(self):
        assert STRtree().nearest(0, 0) == []

    def test_nearest_k_zero(self, rng):
        tree = STRtree(random_entries(rng, 10))
        assert tree.nearest(0, 0, k=0) == []


class TestIteration:
    def test_iter_all(self, rng):
        entries = random_entries(rng, 40)
        tree = STRtree(entries)
        assert sorted(i for i, _ in tree.iter_all()) == list(range(40))


class TestDualTreeJoin:
    def test_matches_nested_loop(self, rng):
        a = random_entries(rng, 200, max_size=4)
        b = random_entries(rng, 150, max_size=4)
        tree_a = STRtree(a, node_capacity=6)
        tree_b = STRtree(b, node_capacity=6)
        got = sorted(tree_a.join(tree_b))
        expected = sorted(
            (i, j) for i, ea in a for j, eb in b if ea.intersects(eb)
        )
        assert got == expected

    def test_expand_radius(self, rng):
        a = random_entries(rng, 100, max_size=1)
        b = random_entries(rng, 100, max_size=1)
        got = sorted(STRtree(a).join(STRtree(b), expand=5.0))
        expected = sorted(
            (i, j)
            for i, ea in a
            for j, eb in b
            if ea.expand_by(5.0).intersects(eb)
        )
        assert got == expected

    def test_empty_sides(self, rng):
        full = STRtree(random_entries(rng, 10))
        assert STRtree().join(full) == []
        assert full.join(STRtree()) == []

    def test_self_join(self, rng):
        entries = random_entries(rng, 80)
        tree1 = STRtree(entries)
        tree2 = STRtree(entries)
        got = tree1.join(tree2)
        # Every entry intersects itself, so at least n pairs.
        assert len(got) >= 80

    def test_prunes_disjoint_regions(self, rng):
        left = [(i, Envelope(i, 0.0, i + 0.5, 0.5)) for i in range(100)]
        right = [(i, Envelope(i, 1000.0, i + 0.5, 1000.5)) for i in range(100)]
        tree_a = STRtree(left)
        tree_b = STRtree(right)
        tree_a.build(); tree_b.build()
        tree_a.reset_stats()
        assert tree_a.join(tree_b) == []
        # Disjoint roots: the traversal stops after one node pair.
        assert tree_a.nodes_visited == 1
