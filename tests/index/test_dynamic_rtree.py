"""Dynamic (Guttman) R-tree: insert, query, delete."""

import pytest

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope
from repro.index import RTree


def random_entries(rng, n):
    entries = []
    for i in range(n):
        x = rng.uniform(0, 100)
        y = rng.uniform(0, 100)
        entries.append((i, Envelope(x, y, x + rng.uniform(0, 4), y + rng.uniform(0, 4))))
    return entries


class TestInsertQuery:
    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.query(Envelope(0, 0, 100, 100)) == []

    def test_single(self):
        tree = RTree()
        tree.insert("a", Envelope(1, 1, 2, 2))
        assert tree.query(Envelope(0, 0, 3, 3)) == ["a"]
        assert len(tree) == 1

    def test_matches_brute_force(self, rng):
        entries = random_entries(rng, 400)
        tree = RTree(max_entries=6)
        for i, env in entries:
            tree.insert(i, env)
        for _ in range(40):
            x = rng.uniform(0, 100)
            y = rng.uniform(0, 100)
            query = Envelope(x, y, x + 15, y + 15)
            expected = sorted(i for i, e in entries if e.intersects(query))
            assert sorted(tree.query(query)) == expected

    def test_empty_envelope_rejected(self):
        with pytest.raises(SpatialIndexError):
            RTree().insert("x", Envelope.empty())

    def test_small_max_entries_rejected(self):
        with pytest.raises(SpatialIndexError):
            RTree(max_entries=3)

    def test_iter_all(self, rng):
        entries = random_entries(rng, 50)
        tree = RTree()
        for i, env in entries:
            tree.insert(i, env)
        assert sorted(i for i, _ in tree.iter_all()) == list(range(50))


class TestDelete:
    def test_delete_existing(self, rng):
        entries = random_entries(rng, 100)
        tree = RTree(max_entries=5)
        for i, env in entries:
            tree.insert(i, env)
        removed = entries[::3]
        for i, env in removed:
            assert tree.delete(i, env)
        assert len(tree) == 100 - len(removed)
        remaining = {i for i, _ in entries} - {i for i, _ in removed}
        query = Envelope(0, 0, 100, 104)
        assert set(tree.query(query)) == remaining

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert("a", Envelope(0, 0, 1, 1))
        assert not tree.delete("b", Envelope(0, 0, 1, 1))
        assert not tree.delete("a", Envelope(5, 5, 6, 6))

    def test_delete_all_then_reuse(self, rng):
        entries = random_entries(rng, 60)
        tree = RTree(max_entries=4)
        for i, env in entries:
            tree.insert(i, env)
        for i, env in entries:
            assert tree.delete(i, env)
        assert len(tree) == 0
        tree.insert("fresh", Envelope(0, 0, 1, 1))
        assert tree.query(Envelope(0, 0, 2, 2)) == ["fresh"]

    def test_interleaved_insert_delete(self, rng):
        tree = RTree(max_entries=4)
        live = {}
        entries = random_entries(rng, 300)
        for step, (i, env) in enumerate(entries):
            tree.insert(i, env)
            live[i] = env
            if step % 3 == 2:
                victim = rng.choice(list(live))
                assert tree.delete(victim, live.pop(victim))
        query = Envelope(0, 0, 100, 104)
        assert set(tree.query(query)) == set(live)
        assert len(tree) == len(live)
