"""Uniform grid and PR quadtree indexes."""

import pytest

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope
from repro.index import GridIndex, QuadTree


class TestGridIndex:
    def test_construction_validation(self, world):
        with pytest.raises(SpatialIndexError):
            GridIndex(Envelope.empty(), 4, 4)
        with pytest.raises(SpatialIndexError):
            GridIndex(world, 0, 4)

    def test_cell_of_clamps(self, world):
        grid = GridIndex(world, 10, 10)
        assert grid.cell_of(-5, -5) == (0, 0)
        assert grid.cell_of(500, 500) == (9, 9)
        assert grid.cell_of(55, 25) == (5, 2)

    def test_cells_overlapping(self, world):
        grid = GridIndex(world, 10, 10)
        cells = list(grid.cells_overlapping(Envelope(5, 5, 25, 15)))
        assert set(cells) == {(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)}

    def test_query_matches_brute_force(self, rng, world):
        entries = []
        for i in range(300):
            x = rng.uniform(0, 95)
            y = rng.uniform(0, 95)
            entries.append((i, Envelope(x, y, x + rng.uniform(0, 8), y + rng.uniform(0, 8))))
        grid = GridIndex(world, 12, 12)
        grid.extend(entries)
        assert len(grid) == 300
        for _ in range(40):
            x = rng.uniform(0, 90)
            y = rng.uniform(0, 90)
            query = Envelope(x, y, x + 10, y + 10)
            expected = sorted(i for i, e in entries if e.intersects(query))
            assert sorted(grid.query(query)) == expected

    def test_query_deduplicates_spanning_items(self, world):
        grid = GridIndex(world, 10, 10)
        grid.insert("wide", Envelope(0, 0, 99, 5))  # spans many cells
        assert grid.query(Envelope(0, 0, 100, 100)) == ["wide"]

    def test_query_point(self, world):
        grid = GridIndex(world, 10, 10)
        grid.insert("a", Envelope(10, 10, 20, 20))
        grid.insert("b", Envelope(15, 15, 25, 25))
        assert sorted(grid.query_point(17, 17)) == ["a", "b"]
        assert grid.query_point(5, 5) == []

    def test_cell_counts(self, world):
        grid = GridIndex(world, 2, 2)
        grid.insert("a", Envelope(10, 10, 20, 20))
        grid.insert("b", Envelope(60, 60, 70, 70))
        counts = grid.cell_counts()
        assert counts[(0, 0)] == 1
        assert counts[(1, 1)] == 1

    def test_empty_envelope_rejected(self, world):
        grid = GridIndex(world, 4, 4)
        with pytest.raises(SpatialIndexError):
            grid.insert("x", Envelope.empty())


class TestQuadTree:
    def test_construction_validation(self, world):
        with pytest.raises(SpatialIndexError):
            QuadTree(Envelope.empty())
        with pytest.raises(SpatialIndexError):
            QuadTree(world, capacity=0)

    def test_insert_outside_extent_rejected(self, world):
        qt = QuadTree(world)
        with pytest.raises(SpatialIndexError):
            qt.insert(200, 200, "x")

    def test_query_matches_brute_force(self, rng, world):
        qt = QuadTree(world, capacity=8)
        points = [
            (rng.uniform(0, 100), rng.uniform(0, 100), i) for i in range(500)
        ]
        for x, y, i in points:
            qt.insert(x, y, i)
        assert len(qt) == 500
        for _ in range(40):
            x = rng.uniform(0, 80)
            y = rng.uniform(0, 80)
            query = Envelope(x, y, x + 20, y + 20)
            expected = sorted(i for px, py, i in points if query.contains_point(px, py))
            assert sorted(qt.query(query)) == expected

    def test_subdivision_happens(self, rng, world):
        qt = QuadTree(world, capacity=4)
        for i in range(100):
            qt.insert(rng.uniform(0, 100), rng.uniform(0, 100), i)
        assert qt.depth() >= 2

    def test_max_depth_caps_subdivision(self, world):
        qt = QuadTree(world, capacity=1, max_depth=3)
        # Identical points can never be separated; depth must stay capped.
        for i in range(10):
            qt.insert(50.0, 50.0, i)
        assert qt.depth() <= 3
        assert sorted(qt.query(Envelope(49, 49, 51, 51))) == list(range(10))

    def test_leaf_extents_partition_the_extent(self, rng, world):
        qt = QuadTree(world, capacity=4)
        for i in range(200):
            qt.insert(rng.uniform(0, 100), rng.uniform(0, 100), i)
        leaves = list(qt.leaf_extents())
        total_area = sum(extent.area for extent, _ in leaves)
        assert total_area == pytest.approx(world.area)
        assert sum(count for _, count in leaves) == 200
