"""Spatial partitioners and routing semantics."""

import pytest

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope
from repro.index import (
    BinarySplitPartitioner,
    FixedGridPartitioner,
    SortTilePartitioner,
    reference_point_in,
)


@pytest.fixture
def skewed_sample(rng):
    """80% of points clustered in one corner, 20% uniform."""
    points = []
    for _ in range(800):
        points.append((rng.gauss(20, 5), rng.gauss(20, 5)))
    for _ in range(200):
        points.append((rng.uniform(0, 100), rng.uniform(0, 100)))
    return [(min(max(x, 0), 100), min(max(y, 0), 100)) for x, y in points]


class TestFixedGrid:
    def test_tile_count(self, world):
        part = FixedGridPartitioner(4, 3).partition(world)
        assert len(part) == 12

    def test_tiles_tessellate(self, world):
        part = FixedGridPartitioner(5, 5).partition(world)
        assert sum(t.area for t in part.tiles) == pytest.approx(world.area)

    def test_validation(self, world):
        with pytest.raises(SpatialIndexError):
            FixedGridPartitioner(0, 3)
        with pytest.raises(SpatialIndexError):
            FixedGridPartitioner(2, 2).partition(Envelope.empty())


class TestBinarySplit:
    def test_tile_count_is_power_of_two(self, world, skewed_sample):
        part = BinarySplitPartitioner(4).partition(world, skewed_sample)
        assert len(part) == 16

    def test_balances_skewed_sample(self, world, skewed_sample):
        part = BinarySplitPartitioner(4).partition(world, skewed_sample)
        counts = [0] * len(part)
        for x, y in skewed_sample:
            counts[part.route_point(x, y)] += 1
        # Median splits should keep the max tile within ~3x the mean even
        # under heavy skew (a fixed grid would concentrate ~80% in a few).
        mean = len(skewed_sample) / len(part)
        assert max(counts) < 3 * mean

    def test_zero_levels(self, world, skewed_sample):
        part = BinarySplitPartitioner(0).partition(world, skewed_sample)
        assert len(part) == 1
        assert part.tiles[0] == world

    def test_beats_fixed_grid_on_skew(self, world, skewed_sample):
        adaptive = BinarySplitPartitioner(4).partition(world, skewed_sample)
        fixed = FixedGridPartitioner(4, 4).partition(world)

        def max_count(partitioning):
            counts = [0] * len(partitioning)
            for x, y in skewed_sample:
                counts[partitioning.route_point(x, y)] += 1
            return max(counts)

        assert max_count(adaptive) < max_count(fixed)


class TestSortTile:
    def test_tile_count_close_to_target(self, world, skewed_sample):
        part = SortTilePartitioner(16).partition(world, skewed_sample)
        assert 8 <= len(part) <= 24

    def test_single_tile(self, world, skewed_sample):
        part = SortTilePartitioner(1).partition(world, skewed_sample)
        assert len(part) == 1

    def test_empty_sample_gives_whole_extent(self, world):
        part = SortTilePartitioner(9).partition(world, [])
        assert len(part) == 1
        assert part.tiles[0] == world

    def test_balanced_counts(self, world, skewed_sample):
        part = SortTilePartitioner(16).partition(world, skewed_sample)
        counts = [0] * len(part)
        for x, y in skewed_sample:
            counts[part.route_point(x, y)] += 1
        mean = len(skewed_sample) / len(part)
        assert max(counts) < 3 * mean


class TestRouting:
    def test_route_point_covers_extent(self, world, rng, skewed_sample):
        for partitioner in (
            FixedGridPartitioner(4, 4).partition(world),
            BinarySplitPartitioner(3).partition(world, skewed_sample),
            SortTilePartitioner(9).partition(world, skewed_sample),
        ):
            for _ in range(200):
                x = rng.uniform(0, 100)
                y = rng.uniform(0, 100)
                tile = partitioner.route_point(x, y)
                assert 0 <= tile < len(partitioner)

    def test_route_envelope_multi_assignment(self, world):
        part = FixedGridPartitioner(2, 2).partition(world)
        spanning = Envelope(40, 40, 60, 60)  # overlaps all four tiles
        assert len(part.route(spanning)) == 4

    def test_route_outside_extent_falls_back_to_nearest(self, world):
        part = FixedGridPartitioner(2, 2).partition(world)
        outside = Envelope(200, 200, 201, 201)
        assert part.route(outside) == [3]  # top-right tile is nearest

    def test_route_empty_envelope(self, world):
        part = FixedGridPartitioner(2, 2).partition(world)
        assert part.route(Envelope.empty()) == []


class TestReferencePoint:
    def test_owned_by_containing_tile(self):
        tile = Envelope(0, 0, 10, 10)
        assert reference_point_in(Envelope(2, 2, 15, 15), tile)
        assert not reference_point_in(Envelope(12, 12, 20, 20), tile)

    def test_exactly_one_grid_tile_owns(self, world, rng):
        part = FixedGridPartitioner(4, 4).partition(world)
        for _ in range(100):
            x = rng.uniform(0, 90)
            y = rng.uniform(0, 90)
            pair_env = Envelope(x, y, x + rng.uniform(0, 30), y + rng.uniform(0, 30))
            owners = [t for t in part.tiles if reference_point_in(pair_env, t)]
            # Grid tiles share edges, so a reference point exactly on a
            # boundary may belong to up to 4 tiles; interior points to 1.
            assert 1 <= len(owners) <= 4

    def test_empty_inputs(self):
        assert not reference_point_in(Envelope.empty(), Envelope(0, 0, 1, 1))
        assert not reference_point_in(Envelope(0, 0, 1, 1), Envelope.empty())
