"""Bulk STRtree probes: same candidates, same order, same visit counts.

``query_batch`` / ``query_batch_points`` promise per-probe candidate
lists (including order) and per-probe node-visit counts identical to one
``query`` per probe; ``query_batch_points_chunks`` additionally promises
that each build item surfaces in at most one chunk and that the
flattened pairs, stably sorted by probe, reproduce the scalar order.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.envelope import Envelope
from repro.index import STRtree, morton_code, morton_codes


def build_tree(rng, n=300, node_capacity=8):
    tree = STRtree(node_capacity=node_capacity)
    for i in range(n):
        x = rng.uniform(0, 100)
        y = rng.uniform(0, 100)
        tree.insert(i, Envelope(x, y, x + rng.uniform(0, 5), y + rng.uniform(0, 5)))
    return tree


def probe_envelopes(rng, n=80):
    envs = []
    for _ in range(n):
        x = rng.uniform(-5, 100)
        y = rng.uniform(-5, 100)
        envs.append(Envelope(x, y, x + rng.uniform(0, 8), y + rng.uniform(0, 8)))
    return envs


class TestQueryBatch:
    def test_matches_scalar_queries(self, rng):
        tree = build_tree(rng)
        envs = probe_envelopes(rng)
        scalar = [tree.query(env) for env in envs]
        batch = tree.query_batch(envs)
        assert batch == scalar  # lists AND per-probe order

    def test_per_probe_visits_match_scalar(self, rng):
        tree = build_tree(rng)
        envs = probe_envelopes(rng)
        tree.build()
        scalar_visits = []
        for env in envs:
            before = tree.nodes_visited
            tree.query(env)
            scalar_visits.append(tree.nodes_visited - before)
        before = tree.nodes_visited
        _, visits = tree.query_batch(envs, with_visits=True)
        assert visits.tolist() == scalar_visits
        assert tree.nodes_visited - before == sum(scalar_visits)

    def test_empty_envelope_probe(self, rng):
        tree = build_tree(rng, n=50)
        envs = [Envelope.empty(), Envelope(10, 10, 30, 30), Envelope.empty()]
        results, visits = tree.query_batch(envs, with_visits=True)
        assert results[0] == [] and results[2] == []
        assert visits[0] == 0 and visits[2] == 0
        assert results[1] == tree.query(envs[1])

    def test_empty_tree(self):
        tree = STRtree()
        assert tree.query_batch([Envelope(0, 0, 1, 1)]) == [[]]
        assert tree.query_batch([]) == []


class TestQueryBatchPoints:
    def test_matches_point_queries(self, rng):
        tree = build_tree(rng)
        xs = np.array([rng.uniform(-5, 105) for _ in range(120)])
        ys = np.array([rng.uniform(-5, 105) for _ in range(120)])
        scalar = [tree.query_point(x, y) for x, y in zip(xs, ys)]
        assert tree.query_batch_points(xs, ys) == scalar

    def test_accepts_plain_lists(self, rng):
        tree = build_tree(rng, n=40)
        xs = [10.0, 50.0, 99.0]
        ys = [10.0, 50.0, 99.0]
        scalar = [tree.query_point(x, y) for x, y in zip(xs, ys)]
        assert tree.query_batch_points(xs, ys) == scalar


class TestQueryBatchPointsChunks:
    def flatten(self, tree, xs, ys):
        """Reconstruct per-probe candidate lists from the chunk primitive."""
        chunks, visits = tree.query_batch_points_chunks(xs, ys)
        if not chunks:
            return [[] for _ in range(len(xs))], visits, chunks
        pair_probe = np.concatenate([positions for _, positions in chunks])
        pair_item = np.repeat(
            np.arange(len(chunks)),
            np.fromiter((len(p) for _, p in chunks), dtype=np.int64),
        )
        order = np.argsort(pair_probe, kind="stable")
        results = [[] for _ in range(len(xs))]
        items = [item for item, _ in chunks]
        for probe, k in zip(pair_probe[order].tolist(), pair_item[order].tolist()):
            results[probe].append(items[k])
        return results, visits, chunks

    def test_reproduces_scalar_order(self, rng):
        tree = build_tree(rng)
        xs = np.array([rng.uniform(-5, 105) for _ in range(150)])
        ys = np.array([rng.uniform(-5, 105) for _ in range(150)])
        scalar = [tree.query_point(x, y) for x, y in zip(xs, ys)]
        results, _, _ = self.flatten(tree, xs, ys)
        assert results == scalar

    def test_each_item_at_most_one_chunk(self, rng):
        tree = build_tree(rng)
        xs = np.array([rng.uniform(0, 100) for _ in range(200)])
        ys = np.array([rng.uniform(0, 100) for _ in range(200)])
        chunks, _ = tree.query_batch_points_chunks(xs, ys)
        items = [item for item, _ in chunks]
        assert len(items) == len(set(items))

    def test_chunk_probes_unique(self, rng):
        tree = build_tree(rng)
        xs = np.array([rng.uniform(0, 100) for _ in range(200)])
        ys = np.array([rng.uniform(0, 100) for _ in range(200)])
        chunks, _ = tree.query_batch_points_chunks(xs, ys)
        for _, positions in chunks:
            assert len(positions) == len(set(positions.tolist()))

    def test_visits_match_scalar(self, rng):
        tree = build_tree(rng)
        xs = np.array([rng.uniform(-5, 105) for _ in range(100)])
        ys = np.array([rng.uniform(-5, 105) for _ in range(100)])
        tree.build()
        scalar_visits = []
        for x, y in zip(xs, ys):
            before = tree.nodes_visited
            tree.query_point(x, y)
            scalar_visits.append(tree.nodes_visited - before)
        before = tree.nodes_visited
        _, visits = tree.query_batch_points_chunks(xs, ys)
        assert visits.tolist() == scalar_visits
        assert tree.nodes_visited - before == sum(scalar_visits)

    def test_empty_batch_and_empty_tree(self, rng):
        tree = build_tree(rng, n=20)
        chunks, visits = tree.query_batch_points_chunks(
            np.array([]), np.array([])
        )
        assert chunks == [] and len(visits) == 0
        empty = STRtree()
        chunks, visits = empty.query_batch_points_chunks(
            np.array([1.0]), np.array([1.0])
        )
        assert chunks == [] and visits.tolist() == [0]


class TestMortonConsistency:
    def test_vectorized_matches_scalar(self, rng, world):
        xs = np.array([rng.uniform(-10, 110) for _ in range(500)])
        ys = np.array([rng.uniform(-10, 110) for _ in range(500)])
        vectorised = morton_codes(
            xs, ys, world.min_x, world.min_y, world.width, world.height
        )
        scalar = [morton_code(x, y, world) for x, y in zip(xs, ys)]
        assert vectorised.tolist() == scalar
