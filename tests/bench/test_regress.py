"""The perf-regression gate: committed baselines pass, doctored ones fail."""

import json
import os
import shutil

import pytest

from repro.bench.__main__ import main
from repro.obs.regress import (
    BASELINE_FILES,
    at_least,
    check_optimizer,
    load_baselines,
    render_regress,
    run_regress,
    within_slack,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


@pytest.fixture(scope="module")
def committed(tmp_path_factory):
    """One full --quick gate run against the committed baselines."""
    tmp = tmp_path_factory.mktemp("regress")
    out = str(tmp / "regress-report.json")
    explain_out = str(tmp / "explain-report.json")
    code = run_regress(
        baseline_dir=REPO_ROOT, quick=True, explain_out=explain_out, out=out
    )
    return code, out, explain_out


class TestSlackMath:
    def test_within_slack_lower_is_better(self):
        assert within_slack(10.0, 10.9, rel=0.10, floor=0.5)
        assert not within_slack(10.0, 11.5, rel=0.10, floor=0.5)
        # The absolute floor keeps tiny baselines from flapping.
        assert within_slack(0.01, 0.4, rel=0.10, floor=0.5)

    def test_at_least_higher_is_better(self):
        assert at_least(4.0, 3.0, rel=0.5, floor=1.0)
        assert not at_least(4.0, 1.5, rel=0.25, floor=0.5)
        assert at_least(1.1, 1.0, rel=0.0, floor=0.5)


class TestBaselineLoading:
    def test_committed_baselines_validate(self):
        docs, rows = load_baselines(REPO_ROOT)
        assert set(docs) == set(BASELINE_FILES)
        assert all(row.status == "ok" for row in rows)

    def test_missing_files_skip(self, tmp_path):
        docs, rows = load_baselines(str(tmp_path))
        assert docs == {}
        assert {row.status for row in rows} == {"skip"}

    def test_corrupt_json_fails(self, tmp_path):
        (tmp_path / BASELINE_FILES["kernels"]).write_text("{nope")
        docs, rows = load_baselines(str(tmp_path))
        (row,) = [r for r in rows if r.baseline == "kernels"]
        assert row.status == "FAIL"
        assert "kernels" not in docs

    def test_unknown_schema_version_fails(self, tmp_path):
        with open(os.path.join(REPO_ROOT, BASELINE_FILES["kernels"])) as handle:
            doc = json.load(handle)
        doc["schema_version"] = 99
        (tmp_path / BASELINE_FILES["kernels"]).write_text(json.dumps(doc))
        _, rows = load_baselines(str(tmp_path))
        (row,) = [r for r in rows if r.baseline == "kernels"]
        assert row.status == "FAIL"
        assert "schema_version" in row.detail

    def test_foreign_generator_fails(self, tmp_path):
        with open(os.path.join(REPO_ROOT, BASELINE_FILES["kernels"])) as handle:
            doc = json.load(handle)
        doc["generated_by"] = "someone-else/9.9"
        (tmp_path / BASELINE_FILES["kernels"]).write_text(json.dumps(doc))
        _, rows = load_baselines(str(tmp_path))
        (row,) = [r for r in rows if r.baseline == "kernels"]
        assert row.status == "FAIL"


class TestCommittedBaselinesPass:
    def test_exit_zero(self, committed):
        code, _, _ = committed
        assert code == 0

    def test_report_json(self, committed):
        _, out, _ = committed
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["schema_version"] == 1
        assert doc["quick"] is True
        assert doc["failed"] == 0
        statuses = {row["status"] for row in doc["checks"]}
        assert "ok" in statuses and "FAIL" not in statuses

    def test_explain_artifact(self, committed):
        _, _, explain_out = committed
        with open(explain_out) as handle:
            doc = json.load(handle)
        assert doc["mode"] == "analyze"
        # The canned skew case must keep its seeded misestimate flagged.
        assert doc["misestimates"]

    def test_table_verdict(self, committed):
        _, out, _ = committed
        with open(out) as handle:
            doc = json.load(handle)
        from repro.obs.regress import CheckRow

        rows = [CheckRow(**row) for row in doc["checks"]]
        text = render_regress(rows)
        assert "no regressions:" in text
        assert "FAIL" not in text


class TestDoctoredBaselineFails:
    def test_doctored_estimate_trips_the_gate(self):
        with open(os.path.join(REPO_ROOT, BASELINE_FILES["optimizer"])) as handle:
            base = json.load(handle)
        base["plans"][0]["est_seconds"]["broadcast"] *= 2.0
        rows = check_optimizer(base)
        assert any(row.status == "FAIL" for row in rows)

    def test_doctored_method_trips_the_gate(self):
        with open(os.path.join(REPO_ROOT, BASELINE_FILES["optimizer"])) as handle:
            base = json.load(handle)
        doctored = base["plans"][0]
        doctored["method"] = "naive"
        rows = check_optimizer(base)
        (row,) = [
            r for r in rows if r.metric == f"plan:{doctored['workload']}"
        ]
        assert row.status == "FAIL"
        assert row.baseline_value == "naive"
        assert row.current_value != "naive"

    def test_render_reports_failures(self):
        from repro.obs.regress import CheckRow

        rows = [
            CheckRow("optimizer", "plan:x", "ok"),
            CheckRow("optimizer", "plan:y", "FAIL", 1.0, 2.0, "doctored"),
        ]
        text = render_regress(rows)
        assert "REGRESSION" in text and "FAIL" in text


class TestCli:
    def test_cli_exit_codes(self, tmp_path):
        # A doctored optimizer baseline must propagate to a nonzero exit.
        with open(os.path.join(REPO_ROOT, BASELINE_FILES["optimizer"])) as handle:
            base = json.load(handle)
        base["plans"][0]["est_seconds"]["broadcast"] += 1.0
        (tmp_path / BASELINE_FILES["optimizer"]).write_text(json.dumps(base))
        for name, filename in BASELINE_FILES.items():
            if name != "optimizer":
                shutil.copy(
                    os.path.join(REPO_ROOT, filename), tmp_path / filename
                )
        code = main(
            ["regress", "--quick", "--baseline-dir", str(tmp_path)]
        )
        assert code == 1


class TestStampedBenchDocs:
    def test_stamp_is_idempotent(self):
        from repro import __version__
        from repro.bench.report import (
            BENCH_SCHEMA_VERSION,
            stamp_bench_doc,
        )

        doc = stamp_bench_doc({"benchmark": "x"})
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["generated_by"] == f"repro.bench/{__version__}"
        assert stamp_bench_doc(dict(doc)) == doc

    def test_committed_artifacts_are_stamped(self):
        for filename in BASELINE_FILES.values():
            with open(os.path.join(REPO_ROOT, filename)) as handle:
                doc = json.load(handle)
            assert doc["schema_version"] == 1, filename
            assert doc["generated_by"].startswith("repro.bench/"), filename


class TestConsoleScript:
    def test_repro_bench_entry_point_resolves(self):
        import tomllib

        with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
            pyproject = tomllib.load(handle)
        target = pyproject["project"]["scripts"]["repro-bench"]
        module_name, _, attr = target.partition(":")
        import importlib

        module = importlib.import_module(module_name)
        entry = getattr(module, attr)
        assert callable(entry)
        assert entry is main
