"""Benchmark harness: workloads, runners, paper-shape assertions.

These run at a tiny scale so the whole suite stays fast; the full-scale
shapes are produced by the ``benchmarks/`` tree.
"""

import pytest

from repro.bench import (
    WORKLOADS,
    materialize,
    run_isp_standalone,
    run_ispmc,
    run_spatialspark,
)
from repro.bench.report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    BenchCache,
    parallel_efficiency_of,
    render_table1,
    render_table2,
    render_scaling,
)
from repro.bench.runner import cluster_spec, run_engine
from repro.errors import BenchError

SCALE = 0.02


@pytest.fixture(scope="module")
def mats():
    return {name: materialize(name, scale=SCALE) for name in WORKLOADS}


class TestWorkloads:
    def test_all_four_defined(self):
        # The paper's four, plus the optimizer study's skew stress case.
        assert set(WORKLOADS) == {
            "taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf",
            "hotspot-nycb",
        }

    def test_materialize_memoised(self):
        a = materialize("taxi-nycb", scale=SCALE)
        b = materialize("taxi-nycb", scale=SCALE)
        assert a is b

    def test_unknown_workload(self):
        with pytest.raises(BenchError):
            materialize("taxi-mars")

    def test_radius_scales_with_street_pitch(self):
        r100 = WORKLOADS["taxi-lion-100"].radius_at(SCALE)
        r500 = WORKLOADS["taxi-lion-500"].radius_at(SCALE)
        assert r500 / r100 == pytest.approx(1.9 / 0.38)

    def test_within_workloads_have_zero_radius(self, mats):
        assert mats["taxi-nycb"].radius == 0.0
        assert mats["G10M-wwf"].radius == 0.0

    def test_files_written(self, mats):
        mat = mats["taxi-nycb"]
        assert mat.hdfs.exists(mat.left_path)
        assert mat.hdfs.exists(mat.right_path)

    def test_morton_order(self, mats):
        from repro.bench.workloads import morton_key

        mat = mats["taxi-nycb"]
        keys = [
            morton_key(*g.envelope.center, mat.left.extent)
            for _, g in mat.left.records[:200]
        ]
        assert keys == sorted(keys)

    def test_build_cost_weight_below_one(self, mats):
        # The right sides are over-represented at reduced scale, so the
        # correction must down-weight them.
        for mat in mats.values():
            assert 0.0 < mat.build_cost_weight < 1.0

    def test_gbif_aligned_with_regions(self, mats):
        mat = mats["G10M-wwf"]
        from repro.core import spatial_join, SpatialOperator

        pairs = spatial_join(
            mat.left.records[:300], mat.right.records, SpatialOperator.WITHIN
        )
        matched = {pid for pid, _ in pairs}
        assert len(matched) > 100  # most occurrences fall on "land"


class TestRunners:
    def test_three_engines_agree(self, mats):
        mat = mats["taxi-nycb"]
        ss = run_spatialspark(mat, 2)
        isp = run_ispmc(mat, 2)
        sta = run_isp_standalone(mat)
        assert ss.result_rows == isp.result_rows == sta.result_rows
        assert ss.result_rows > 0

    def test_nearestd_engines_agree(self, mats):
        mat = mats["taxi-lion-100"]
        ss = run_spatialspark(mat, 2)
        isp = run_ispmc(mat, 2)
        assert ss.result_rows == isp.result_rows

    def test_lion500_more_pairs_than_lion100(self, mats):
        r100 = run_isp_standalone(mats["taxi-lion-100"])
        r500 = run_isp_standalone(mats["taxi-lion-500"])
        assert r500.result_rows > 2 * r100.result_rows

    def test_run_engine_dispatch(self):
        result = run_engine("taxi-nycb", "spatialspark", 2, scale=SCALE)
        assert result.engine == "SpatialSpark"
        with pytest.raises(BenchError):
            run_engine("taxi-nycb", "warp", 2, scale=SCALE)
        with pytest.raises(BenchError):
            run_engine("taxi-nycb", "isp-standalone", 4, scale=SCALE)

    def test_single_node_is_inhouse_machine(self):
        spec = cluster_spec(1)
        assert spec.cores_per_node == 16
        assert spec.mem_per_node_gb == 128.0
        assert cluster_spec(10).cores_per_node == 8

    def test_deterministic_runtimes(self, mats):
        mat = mats["taxi-nycb"]
        a = run_spatialspark(mat, 4).simulated_seconds
        b = run_spatialspark(mat, 4).simulated_seconds
        assert a == pytest.approx(b)

    def test_run_result_str(self, mats):
        text = str(run_isp_standalone(mats["taxi-nycb"]))
        assert "taxi-nycb" in text and "Standalone" in text


class TestPaperShapes:
    """Directional assertions on the reproduced tables (tiny scale)."""

    def test_cluster_faster_than_single_node_for_spark(self, mats):
        mat = mats["taxi-nycb"]
        single = run_spatialspark(mat, 1).simulated_seconds
        ten = run_spatialspark(mat, 10).simulated_seconds
        assert ten < single

    def test_spark_beats_impala_on_cluster(self, mats):
        # Table 2's headline: SpatialSpark wins on every workload at 10
        # nodes.
        for name in ("taxi-lion-500", "G10M-wwf"):
            mat = mats[name]
            ss = run_spatialspark(mat, 10).simulated_seconds
            isp = run_ispmc(mat, 10).simulated_seconds
            assert isp > ss

    def test_impala_infra_overhead_band(self, mats):
        # Table 1: ISP-MC carries 7-14%+ infrastructure overhead over the
        # standalone program (single node, so memory pressure is off).
        mat = mats["taxi-lion-500"]
        isp = run_ispmc(mat, 1).simulated_seconds
        sta = run_isp_standalone(mat).simulated_seconds
        assert 1.02 < isp / sta < 1.6

    def test_fast_engine_helps_impala_too(self, mats):
        mat = mats["taxi-lion-500"]
        slow = run_ispmc(mat, 1, engine="slow").simulated_seconds
        fast = run_ispmc(mat, 1, engine="fast").simulated_seconds
        assert fast < slow


class TestReport:
    def test_tables_and_figures_render(self):
        cache = BenchCache(scale=SCALE)
        from repro.bench.report import fig4, fig5, table1, table2

        t1 = table1(cache)
        t2 = table2(cache)
        assert len(t1) == len(t2) == 4
        f4 = fig4(cache)
        f5 = fig5(cache)
        assert set(f4) == set(PAPER_TABLE1)
        text1 = render_table1(t1)
        text2 = render_table2(t2)
        assert "taxi-nycb" in text1 and "paper" in text1
        assert "G10M-wwf" in text2
        scaling_text = render_scaling(f4, "Fig 4")
        assert "efficiency" in scaling_text
        # Efficiency must be a sane fraction on every series.
        for series in list(f4.values()) + list(f5.values()):
            assert 0.2 < parallel_efficiency_of(series) <= 1.3

    def test_paper_constants_complete(self):
        from repro.bench.report import WORKLOAD_ORDER

        # Paper numbers exist for the paper's workloads; the skewed
        # optimizer-study workload has none by construction.
        assert set(PAPER_TABLE1) == set(PAPER_TABLE2) == set(WORKLOAD_ORDER)
        assert set(WORKLOAD_ORDER) <= set(WORKLOADS)
