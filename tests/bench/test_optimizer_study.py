"""The --method auto optimizer study and its skewed workload."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import build_parser, main
from repro.bench.optimizer_study import (
    SKEW_WORKLOAD,
    STUDY_WORKLOADS,
    optimizer_study,
    render_optimizer_study,
)
from repro.data.catalog import load_dataset


@pytest.fixture(scope="module")
def study() -> dict:
    return optimizer_study(scale=0.02, nodes=2)


class TestHotspotDataset:
    def test_registered_and_extremely_clustered(self):
        ds = load_dataset("hotspot", 0.02)
        assert ds.records
        # The defining property: over half the points inside the tightest
        # tenth of the extent (three spots in the lower-left quadrant).
        hot = sum(
            1
            for _, p in ds.records
            if p.x < ds.extent.width / 2 and p.y < ds.extent.height / 2
        )
        assert hot / len(ds.records) > 0.8


class TestOptimizerStudy:
    def test_covers_every_study_workload(self, study):
        assert [p["workload"] for p in study["plans"]] == list(STUDY_WORKLOADS)
        for plan in study["plans"]:
            assert plan["method"] in plan["est_seconds"]
            assert plan["est_seconds"][plan["method"]] == min(
                plan["est_seconds"].values()
            )

    def test_skew_section_shows_makespan_win(self, study):
        skew = study["skew"]
        assert skew["workload"] == SKEW_WORKLOAD
        assert skew["split_tiles_added"] > 0
        assert (
            skew["makespan_after"]["static_chunked"]
            < skew["makespan_before"]["static_chunked"]
        )
        assert skew["speedup"]["static_chunked"] > 1.0

    def test_json_safe(self, study):
        assert json.loads(json.dumps(study)) == study

    def test_render_mentions_winner_and_speedup(self, study):
        text = render_optimizer_study(study)
        assert "PLAN CHOICE" in text
        assert "Skew-aware splitting" in text
        assert "speedup" in text


class TestCli:
    def test_parser_accepts_method_auto(self):
        args = build_parser().parse_args(["0.02", "--method", "auto"])
        assert args.method == "auto"

    def test_method_auto_json_mode(self, capsys):
        assert main(["0.02", "--method", "auto", "--nodes", "2", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert {"plans", "skew"} <= set(out)
