"""The ``python -m repro.bench`` command line."""

import json

import pytest

from repro.bench.__main__ import build_parser, main
from repro.bench.report import DEFAULT_SCALE, experiments_json

SCALE = "0.02"


class TestParser:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--help"])
        assert exc.value.code == 0
        assert "--profile" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == DEFAULT_SCALE
        assert not args.json and not args.profile
        assert args.workload == "taxi-nycb"
        assert args.engine == "spatialspark"
        assert args.nodes == 1

    def test_scale_positional(self):
        assert build_parser().parse_args(["0.5"]).scale == 0.5

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "warp"])

    def test_kernels_positional(self):
        args = build_parser().parse_args(["kernels"])
        assert args.scale == "kernels"
        assert args.points == 100_000
        assert args.out is None and not args.assert_not_slower

    def test_kernels_options(self):
        args = build_parser().parse_args(
            ["kernels", "--points", "5000", "--out", "k.json",
             "--assert-not-slower"]
        )
        assert args.points == 5000
        assert args.out == "k.json"
        assert args.assert_not_slower

    def test_bad_positional_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-speed"])


class TestKernelsMode:
    def test_kernels_runs_and_writes(self, tmp_path, capsys):
        path = tmp_path / "kernels.json"
        assert main(["kernels", "--points", "500", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Columnar kernels microbenchmark" in out
        doc = json.loads(path.read_text())
        assert set(doc["kernels"]) == {"within", "nearestd"}
        assert all(k["identical"] for k in doc["kernels"].values())
        assert doc["equivalence"]["all_identical"]


class TestProfileMode:
    def test_profile_prints_tree(self, capsys):
        assert main([SCALE, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Query Profile: SpatialSpark:taxi-nycb" in out
        assert "simulated total" in out

    def test_profile_json(self, capsys):
        assert main([SCALE, "--profile", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_simulated_seconds"] > 0
        assert sum(doc["phases"].values()) == pytest.approx(
            doc["total_simulated_seconds"], rel=1e-9
        )

    def test_trace_out_writes_merged_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main([SCALE, "--profile", "--engine", "isp-mc",
                     "--trace-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert events
        # Both clocks present: the simulated profile track and the
        # wall-clock span track ride on distinct pids.
        assert len({e["pid"] for e in events}) == 2


class TestJsonReport:
    @pytest.mark.slow
    def test_experiments_json_is_dumpable_and_complete(self):
        doc = experiments_json(scale=float(SCALE))
        json.dumps(doc)
        assert set(doc) >= {"scale", "table1", "table2", "fig4", "fig5", "paper"}
        assert len(doc["table1"]) == 4
        assert all(len(series) == 4 for series in doc["fig4"].values())


class TestEventsAndMonitorMode:
    def test_profile_writes_events_and_profile_json(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        profile_path = tmp_path / "profile.json"
        assert main([SCALE, "--profile", "--nodes", "2",
                     "--events-out", str(events_path),
                     "--profile-out", str(profile_path)]) == 0
        from repro.obs.events import read_events
        from repro.obs.profile import QueryProfile

        events = read_events(str(events_path))
        assert any(e["event"] == "QueryEnd" for e in events)
        doc = json.loads(profile_path.read_text())
        rebuilt = QueryProfile.from_dict(doc)
        assert rebuilt.to_dict() == doc

    def test_monitor_replays_written_log(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main([SCALE, "--profile", "--nodes", "2",
                     "--events-out", str(events_path)]) == 0
        capsys.readouterr()
        assert main(["monitor", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "stage summary (simulated seconds)" in out
        assert "wall-clock timeline" in out
        assert "stragglers (>" in out

    def test_monitor_straggler_k_knob(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main([SCALE, "--profile", "--nodes", "2",
                     "--events-out", str(events_path)]) == 0
        capsys.readouterr()
        assert main(["monitor", str(events_path),
                     "--straggler-k", "50"]) == 0
        assert "stragglers (> 50x stage median)" in capsys.readouterr().out

    def test_monitor_without_target_errors(self, capsys):
        assert main(["monitor"]) == 2
        assert "events.jsonl" in capsys.readouterr().err

    def test_monitor_missing_file_errors(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot replay" in capsys.readouterr().err
