"""Calibration utilities: the cost-model constants are reproducible."""

from repro.bench.calibrate import calibration_report, derive_work_scale, micro_ratio
from repro.cluster import CostModel

SCALE = 0.02


class TestCalibration:
    def test_derived_work_scale_near_shipped(self):
        """Re-deriving the global scale at the calibration scale lands
        within the documented factor of the frozen default (the default
        sits ~2x below the pure anchor to preserve overhead fractions;
        see derive_work_scale's docstring)."""
        derived = derive_work_scale(scale=0.12)
        shipped = CostModel().work_scale
        assert shipped < derived < shipped * 4

    def test_derived_scale_inversely_tracks_data_size(self):
        """Smaller benchmark data needs a proportionally larger scale."""
        small = derive_work_scale(scale=0.02)
        large = derive_work_scale(scale=0.12)
        assert small > 2 * large

    def test_micro_ratio_in_paper_band(self):
        """Charged slow/fast cost sits in the GEOS/JTS band of SV.B."""
        assert 3.0 <= micro_ratio("taxi-nycb", scale=SCALE, sample=400) <= 5.0
        assert 3.0 <= micro_ratio("G10M-wwf", scale=SCALE, sample=400) <= 5.0

    def test_report_renders(self):
        text = calibration_report(scale=SCALE)
        assert "work_scale" in text
        assert "paper 3.3x" in text
