"""Cross-stack integration: the same question asked four ways, one answer.

The scenario mirrors the paper's motivating analytics — "pickups per
census block" — and runs it through every layer of the repository:

1. the in-memory API + plain Python aggregation;
2. SpatialSpark: broadcast join + reduceByKey;
3. ISP-MC: SQL with SPATIAL JOIN + GROUP BY;
4. standalone ISP-MC + plain aggregation.

All four must produce exactly the same (block, count) table.
"""

from collections import Counter

import pytest

from repro.bench.runner import cluster_spec
from repro.core import (
    SpatialOperator,
    broadcast_spatial_join,
    read_geometry_pairs,
    spatial_join,
    standalone_spatial_join,
)
from repro.data import generate_nycb, generate_taxi
from repro.hdfs import SimulatedHDFS
from repro.impala import ColumnType, ImpalaBackend
from repro.spark import SparkContext


@pytest.fixture(scope="module")
def city():
    taxi = generate_taxi(600)
    nycb = generate_nycb(40)
    fs = SimulatedHDFS(block_size=4096)
    taxi.write_to_hdfs(fs, "/taxi.txt", precision=9)
    nycb.write_to_hdfs(fs, "/nycb.txt", precision=9)
    return {"taxi": taxi, "nycb": nycb, "fs": fs}


@pytest.fixture(scope="module")
def truth(city):
    pairs = spatial_join(
        city["taxi"].records, city["nycb"].records, SpatialOperator.WITHIN
    )
    return dict(Counter(block for _, block in pairs))


def test_spark_pipeline_matches_api(city, truth):
    sc = SparkContext(cluster_spec(4), hdfs=city["fs"])
    left = read_geometry_pairs(sc, "/taxi.txt", 1)
    right = read_geometry_pairs(sc, "/nycb.txt", 1)
    counts = dict(
        broadcast_spatial_join(sc, left, right, SpatialOperator.WITHIN)
        .map(lambda pair: (pair[1], 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    assert counts == truth


def test_sql_pipeline_matches_api(city, truth):
    backend = ImpalaBackend(cluster_spec(4), hdfs=city["fs"])
    schema = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
    backend.metastore.create_table("taxi", schema, "/taxi.txt")
    backend.metastore.create_table("nycb", schema, "/nycb.txt")
    result = backend.execute(
        "SELECT nycb.id, COUNT(*) AS pickups FROM taxi SPATIAL JOIN nycb "
        "WHERE ST_WITHIN(taxi.geom, nycb.geom) GROUP BY nycb.id"
    )
    assert dict(result.rows) == truth


def test_standalone_matches_api(city, truth):
    result = standalone_spatial_join(
        city["fs"], "/taxi.txt", "/nycb.txt", SpatialOperator.WITHIN
    )
    assert dict(Counter(block for _, block in result.pairs)) == truth


def test_every_point_lands_somewhere(city, truth):
    # The tessellation invariant, end to end through file serialisation.
    assert sum(truth.values()) >= len(city["taxi"])
