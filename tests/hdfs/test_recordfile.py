"""Paged binary record files (the on-HDFS half of binary geometry)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HDFSError
from repro.hdfs import (
    SimulatedHDFS,
    read_records,
    read_split_records,
    record_split_boundaries,
    write_records,
)


@pytest.fixture
def fs():
    return SimulatedHDFS(block_size=512)


class TestRoundtrip:
    def test_basic(self, fs):
        records = [b"alpha", b"", b"gamma" * 10]
        write_records(fs, "/r.bin", records)
        assert read_records(fs, "/r.bin") == records

    def test_empty_file(self, fs):
        write_records(fs, "/r.bin", [])
        assert read_records(fs, "/r.bin") == []
        assert record_split_boundaries(fs, "/r.bin") == [(0, 0)]
        assert read_split_records(fs, "/r.bin", 0, 0) == []

    def test_record_larger_than_page(self, fs):
        big = b"x" * 10_000
        write_records(fs, "/r.bin", [b"small", big, b"tail"], page_size=64)
        assert read_records(fs, "/r.bin") == [b"small", big, b"tail"]

    def test_non_bytes_rejected(self, fs):
        with pytest.raises(HDFSError):
            write_records(fs, "/r.bin", ["not bytes"])

    def test_tiny_page_size_rejected(self, fs):
        with pytest.raises(HDFSError):
            write_records(fs, "/r.bin", [b"x"], page_size=4)


class TestSplits:
    def test_split_union_equals_whole(self, fs):
        records = [bytes([i % 256]) * (i % 90) for i in range(400)]
        write_records(fs, "/r.bin", records, page_size=256)
        for min_splits in (1, 2, 5, 17):
            splits = record_split_boundaries(fs, "/r.bin", min_splits)
            recovered = []
            for offset, length in splits:
                recovered.extend(read_split_records(fs, "/r.bin", offset, length))
            assert recovered == records

    def test_splits_tile_the_file(self, fs):
        records = [b"r" * 40 for _ in range(100)]
        write_records(fs, "/r.bin", records, page_size=128)
        splits = record_split_boundaries(fs, "/r.bin", 6)
        cursor = 0
        for offset, length in splits:
            assert offset == cursor
            cursor += length
        assert cursor == fs.status("/r.bin").size
        assert len(splits) >= 4

    def test_corrupt_magic_detected(self, fs):
        write_records(fs, "/r.bin", [b"data"])
        raw = bytearray(fs.read("/r.bin"))
        raw[0] ^= 0xFF
        fs.write("/r.bin", bytes(raw))
        with pytest.raises(HDFSError):
            read_records(fs, "/r.bin")

    def test_truncated_file_detected(self, fs):
        write_records(fs, "/r.bin", [b"payload-data"])
        raw = fs.read("/r.bin")
        fs.write("/r.bin", raw[:-3])
        with pytest.raises(HDFSError):
            read_records(fs, "/r.bin")

    @given(
        st.lists(st.binary(max_size=60), min_size=0, max_size=60),
        st.integers(min_value=16, max_value=256),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_invariance_property(self, records, page_size, min_splits):
        fs = SimulatedHDFS(block_size=333)
        write_records(fs, "/f.bin", records, page_size=page_size)
        recovered = []
        for offset, length in record_split_boundaries(fs, "/f.bin", min_splits):
            recovered.extend(read_split_records(fs, "/f.bin", offset, length))
        assert recovered == records


class TestWkbPipeline:
    def test_dataset_wkb_roundtrip(self, fs):
        from repro.data import generate_nycb
        from repro.geometry import wkb_loads

        ds = generate_nycb(12)
        ds.write_wkb_to_hdfs(fs, "/nycb.bin")
        records = read_records(fs, "/nycb.bin")
        assert len(records) == 12
        for payload, (_, geometry) in zip(records, ds):
            assert wkb_loads(payload) == geometry

    def test_spark_wkb_reader_matches_wkt_reader(self, fs):
        from repro.bench.runner import cluster_spec
        from repro.core import read_geometry_pairs, read_geometry_pairs_wkb
        from repro.data import generate_taxi
        from repro.spark import SparkContext

        ds = generate_taxi(200)
        ds.write_to_hdfs(fs, "/taxi.txt", precision=9)
        ds.write_wkb_to_hdfs(fs, "/taxi.bin")
        sc = SparkContext(cluster_spec(2), hdfs=fs)
        wkt_pairs = read_geometry_pairs(sc, "/taxi.txt", 1).collect()
        wkb_pairs = read_geometry_pairs_wkb(sc, "/taxi.bin").collect()
        assert len(wkt_pairs) == len(wkb_pairs) == 200
        for (i, gt), (j, gb) in zip(wkt_pairs, wkb_pairs):
            assert i == j
            assert gt.envelope.distance(gb.envelope) < 1e-6

    def test_wkb_join_matches_wkt_join(self, fs):
        from repro.bench.runner import cluster_spec
        from repro.core import (
            SpatialOperator,
            broadcast_spatial_join,
            read_geometry_pairs,
            read_geometry_pairs_wkb,
        )
        from repro.data import generate_nycb, generate_taxi
        from repro.spark import SparkContext

        taxi = generate_taxi(300)
        nycb = generate_nycb(25)
        taxi.write_wkb_to_hdfs(fs, "/taxi.bin")
        nycb.write_wkb_to_hdfs(fs, "/nycb.bin")
        taxi.write_to_hdfs(fs, "/taxi.txt", precision=9)
        nycb.write_to_hdfs(fs, "/nycb.txt", precision=9)
        sc = SparkContext(cluster_spec(2), hdfs=fs)
        wkb = broadcast_spatial_join(
            sc,
            read_geometry_pairs_wkb(sc, "/taxi.bin"),
            read_geometry_pairs_wkb(sc, "/nycb.bin"),
            SpatialOperator.WITHIN,
        ).collect()
        wkt = broadcast_spatial_join(
            sc,
            read_geometry_pairs(sc, "/taxi.txt", 1),
            read_geometry_pairs(sc, "/nycb.txt", 1),
            SpatialOperator.WITHIN,
        ).collect()
        assert sorted(wkb) == sorted(wkt)

    def test_corrupt_wkb_record_dropped(self, fs):
        from repro.bench.runner import cluster_spec
        from repro.core import read_geometry_pairs_wkb
        from repro.geometry import Point, wkb_dumps
        from repro.hdfs import write_records
        from repro.spark import SparkContext

        write_records(
            fs, "/dirty.bin",
            [wkb_dumps(Point(1, 1)), b"\x01garbage", wkb_dumps(Point(2, 2))],
        )
        sc = SparkContext(cluster_spec(2), hdfs=fs)
        pairs = read_geometry_pairs_wkb(sc, "/dirty.bin").collect()
        assert [i for i, _ in pairs] == [0, 2]
