"""Simulated HDFS: blocks, replicas, line-split semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HDFSError
from repro.hdfs import (
    SimulatedHDFS,
    read_lines,
    read_split_lines,
    split_boundaries,
    write_text,
)


@pytest.fixture
def fs():
    return SimulatedHDFS(
        datanodes=("n0", "n1", "n2", "n3"), block_size=128, replication=2
    )


class TestFilesystem:
    def test_write_read_roundtrip(self, fs):
        fs.write("/a/b.txt", b"hello world")
        assert fs.read("/a/b.txt") == b"hello world"
        assert fs.exists("/a/b.txt")

    def test_missing_file(self, fs):
        with pytest.raises(HDFSError):
            fs.read("/nope")
        with pytest.raises(HDFSError):
            fs.status("/nope")
        assert not fs.exists("/nope")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(HDFSError):
            fs.write("relative.txt", b"x")

    def test_str_payload_rejected(self, fs):
        with pytest.raises(HDFSError):
            fs.write("/x.txt", "text not bytes")

    def test_path_normalisation(self, fs):
        fs.write("/a//b//c.txt", b"x")
        assert fs.exists("/a/b/c.txt")

    def test_blocks_cover_file(self, fs):
        data = bytes(range(256)) * 3  # 768 bytes over 128-byte blocks
        status = fs.write("/big.bin", data)
        assert status.size == 768
        assert len(status.blocks) == 6
        reassembled = b"".join(
            fs.read_block("/big.bin", i) for i in range(len(status.blocks))
        )
        assert reassembled == data

    def test_block_replication(self, fs):
        status = fs.write("/r.bin", b"z" * 300)
        for block in status.blocks:
            assert len(block.hosts) == 2
            assert len(set(block.hosts)) == 2

    def test_replication_capped_by_datanodes(self):
        fs = SimulatedHDFS(datanodes=("only",), replication=3)
        status = fs.write("/x.bin", b"abc")
        assert status.blocks[0].hosts == ("only",)

    def test_read_block_out_of_range(self, fs):
        fs.write("/x.bin", b"abc")
        with pytest.raises(HDFSError):
            fs.read_block("/x.bin", 5)

    def test_delete(self, fs):
        fs.write("/x.bin", b"abc")
        fs.delete("/x.bin")
        assert not fs.exists("/x.bin")
        with pytest.raises(HDFSError):
            fs.delete("/x.bin")

    def test_list_dir(self, fs):
        fs.write("/data/a.txt", b"1")
        fs.write("/data/b.txt", b"2")
        fs.write("/other/c.txt", b"3")
        assert fs.list_dir("/data") == ["/data/a.txt", "/data/b.txt"]

    def test_overwrite_replaces(self, fs):
        fs.write("/x.txt", b"old")
        fs.write("/x.txt", b"new longer content")
        assert fs.read("/x.txt") == b"new longer content"

    def test_total_bytes(self, fs):
        fs.write("/a", b"12345")
        fs.write("/b", b"123")
        assert fs.total_bytes() == 8

    def test_empty_file(self, fs):
        status = fs.write("/empty", b"")
        assert status.size == 0
        assert fs.read("/empty") == b""


class TestTextSplits:
    def test_write_read_lines(self, fs):
        lines = [f"row {i}" for i in range(100)]
        write_text(fs, "/t.txt", lines)
        assert read_lines(fs, "/t.txt") == lines

    def test_empty_lines_preserved(self, fs):
        lines = ["a", "", "b", ""]
        write_text(fs, "/t.txt", lines)
        assert read_lines(fs, "/t.txt") == lines

    def test_empty_file_lines(self, fs):
        write_text(fs, "/t.txt", [])
        assert read_lines(fs, "/t.txt") == []
        assert split_boundaries(fs, "/t.txt") == [(0, 0)]
        assert read_split_lines(fs, "/t.txt", 0, 0) == []

    def test_splits_default_to_blocks(self, fs):
        write_text(fs, "/t.txt", ["x" * 50 for _ in range(20)])
        status = fs.status("/t.txt")
        assert len(split_boundaries(fs, "/t.txt")) == len(status.blocks)

    def test_min_splits_subdivides(self, fs):
        write_text(fs, "/t.txt", ["x" * 50 for _ in range(20)])
        blocks = len(fs.status("/t.txt").blocks)
        splits = split_boundaries(fs, "/t.txt", min_splits=blocks * 3)
        assert len(splits) > blocks
        # Splits must tile the byte range exactly.
        cursor = 0
        for offset, length in splits:
            assert offset == cursor
            cursor += length
        assert cursor == fs.status("/t.txt").size

    def test_split_union_equals_whole_file(self, fs):
        lines = [f"{i}:" + "v" * (i % 37) for i in range(200)]
        write_text(fs, "/t.txt", lines)
        for min_splits in (1, 2, 5, 13, 40):
            recovered = []
            for offset, length in split_boundaries(fs, "/t.txt", min_splits):
                recovered.extend(read_split_lines(fs, "/t.txt", offset, length))
            assert recovered == lines

    def test_line_exactly_at_block_boundary(self):
        fs = SimulatedHDFS(block_size=10)
        lines = ["aaaaaaaaa", "bbbb", "c"]  # first line+newline = 10 bytes
        write_text(fs, "/t.txt", lines)
        recovered = []
        for offset, length in split_boundaries(fs, "/t.txt"):
            recovered.extend(read_split_lines(fs, "/t.txt", offset, length))
        assert recovered == lines

    def test_giant_line_spanning_blocks(self):
        fs = SimulatedHDFS(block_size=16)
        lines = ["A" * 100, "short"]
        write_text(fs, "/t.txt", lines)
        recovered = []
        for offset, length in split_boundaries(fs, "/t.txt"):
            recovered.extend(read_split_lines(fs, "/t.txt", offset, length))
        assert recovered == lines

    @given(
        st.lists(st.text(alphabet="xyz", max_size=30), min_size=1, max_size=50),
        st.integers(min_value=5, max_value=64),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_invariance_property(self, lines, block_size, min_splits):
        fs = SimulatedHDFS(block_size=block_size)
        write_text(fs, "/f.txt", lines)
        recovered = []
        for offset, length in split_boundaries(fs, "/f.txt", min_splits):
            recovered.extend(read_split_lines(fs, "/f.txt", offset, length))
        assert recovered == lines
