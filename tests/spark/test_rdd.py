"""Mini-Spark RDD API: transformations, actions, lineage."""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import SparkError
from repro.hdfs import write_text
from repro.spark import SparkContext


@pytest.fixture
def sc():
    return SparkContext(ClusterSpec(num_nodes=2, cores_per_node=2))


class TestBasics:
    def test_parallelize_collect(self, sc):
        assert sc.parallelize([1, 2, 3], 2).collect() == [1, 2, 3]

    def test_count(self, sc):
        assert sc.parallelize(list(range(100)), 7).count() == 100

    def test_empty_rdd(self, sc):
        rdd = sc.parallelize([], 3)
        assert rdd.collect() == []
        assert rdd.count() == 0

    def test_more_partitions_than_records(self, sc):
        rdd = sc.parallelize([1, 2], 8)
        assert sorted(rdd.collect()) == [1, 2]

    def test_bad_partition_count(self, sc):
        with pytest.raises(SparkError):
            sc.parallelize([1], 0)


class TestTransformations:
    def test_map(self, sc):
        assert sc.parallelize([1, 2, 3], 2).map(lambda x: x * 10).collect() == [10, 20, 30]

    def test_filter(self, sc):
        result = sc.parallelize(range(10), 3).filter(lambda x: x % 2 == 0).collect()
        assert result == [0, 2, 4, 6, 8]

    def test_flat_map(self, sc):
        result = sc.parallelize([1, 2], 2).flat_map(lambda x: [x] * x).collect()
        assert result == [1, 2, 2]

    def test_map_partitions(self, sc):
        result = sc.parallelize(range(10), 2).map_partitions(lambda it: [sum(it)]).collect()
        assert sum(result) == 45
        assert len(result) == 2

    def test_map_partitions_with_index(self, sc):
        result = sc.parallelize(range(4), 2).map_partitions_with_index(
            lambda split, it: ((split, x) for x in it)
        ).collect()
        assert result == [(0, 0), (0, 1), (1, 2), (1, 3)]

    def test_zip_with_index(self, sc):
        result = sc.parallelize(["a", "b", "c", "d", "e"], 3).zip_with_index().collect()
        assert result == [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)]

    def test_key_by(self, sc):
        assert sc.parallelize([5, 6], 1).key_by(lambda x: x % 2).collect() == [
            (1, 5), (0, 6),
        ]

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3], 1)
        union = a.union(b)
        assert union.num_partitions == 3
        assert sorted(union.collect()) == [1, 2, 3]

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([3, 1, 3, 2, 1], 3).distinct().collect()) == [1, 2, 3]

    def test_repartition(self, sc):
        rdd = sc.parallelize(list(range(20)), 2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(20))

    def test_sample_deterministic(self, sc):
        rdd = sc.parallelize(list(range(1000)), 4)
        a = rdd.sample(0.1, seed=7).collect()
        b = rdd.sample(0.1, seed=7).collect()
        assert a == b
        assert 40 < len(a) < 200

    def test_sample_fraction_validation(self, sc):
        with pytest.raises(SparkError):
            sc.parallelize([1], 1).sample(1.5)

    def test_sort_by(self, sc):
        data = [5, 3, 9, 1, 7, 2, 8]
        assert sc.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_laziness(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3], 1).map(spy)
        assert calls == []  # nothing computed yet
        rdd.collect()
        assert calls == [1, 2, 3]


class TestPairOperations:
    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        result = dict(sc.parallelize(pairs, 3).reduce_by_key(lambda x, y: x + y).collect())
        assert result == {"a": 4, "b": 6}

    def test_group_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        result = dict(sc.parallelize(pairs, 2).group_by_key().collect())
        assert sorted(result["a"]) == [1, 3]
        assert result["b"] == [2]

    def test_combine_by_key_avg(self, sc):
        pairs = [("x", 1.0), ("x", 3.0), ("y", 10.0)]
        states = sc.parallelize(pairs, 2).combine_by_key(
            lambda v: (v, 1),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        ).collect()
        averages = {k: s / n for k, (s, n) in states}
        assert averages == {"x": 2.0, "y": 10.0}

    def test_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        right = sc.parallelize([("a", "x"), ("c", "y")], 2)
        assert sorted(left.join(right).collect()) == [("a", (1, "x")), ("a", (3, "x"))]

    def test_cogroup(self, sc):
        left = sc.parallelize([("k", 1)], 1)
        right = sc.parallelize([("k", 2), ("k", 3)], 1)
        result = dict(left.cogroup(right).collect())
        assert result["k"] == ([1], [2, 3])

    def test_map_values(self, sc):
        assert sc.parallelize([("a", 1)], 1).map_values(lambda v: v * 2).collect() == [
            ("a", 2)
        ]

    def test_count_by_key(self, sc):
        pairs = [("a", "x"), ("b", "y"), ("a", "z")]
        assert sc.parallelize(pairs, 2).count_by_key() == {"a": 2, "b": 1}


class TestActions:
    def test_take_partial(self, sc):
        assert sc.parallelize(list(range(100)), 10).take(5) == [0, 1, 2, 3, 4]

    def test_take_more_than_available(self, sc):
        assert sc.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_first(self, sc):
        assert sc.parallelize([7, 8], 2).first() == 7

    def test_first_empty_raises(self, sc):
        with pytest.raises(SparkError):
            sc.parallelize([], 1).first()

    def test_reduce(self, sc):
        assert sc.parallelize(list(range(10)), 4).reduce(lambda a, b: a + b) == 45

    def test_reduce_with_empty_partitions(self, sc):
        assert sc.parallelize([5], 4).reduce(lambda a, b: a + b) == 5

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(SparkError):
            sc.parallelize([], 2).reduce(lambda a, b: a + b)


class TestTextFile:
    def test_read_lines(self, sc):
        write_text(sc.hdfs, "/in.txt", ["one", "two", "three"])
        assert sc.text_file("/in.txt").collect() == ["one", "two", "three"]

    def test_min_partitions(self, sc):
        write_text(sc.hdfs, "/in.txt", [f"line-{i}" for i in range(100)])
        rdd = sc.text_file("/in.txt", min_partitions=8)
        assert rdd.num_partitions >= 8
        assert rdd.count() == 100


class TestCaching:
    def test_cache_computes_once(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3], 1).map(spy).cache()
        rdd.collect()
        rdd.collect()
        assert calls == [1, 2, 3]  # second collect served from cache

    def test_uncached_recomputes(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1], 1).map(spy)
        rdd.collect()
        rdd.collect()
        assert calls == [1, 1]


class TestChaining:
    def test_wordcount(self, sc):
        write_text(sc.hdfs, "/words.txt", ["a b a", "b a"])
        counts = dict(
            sc.text_file("/words.txt")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda x, y: x + y)
            .collect()
        )
        assert counts == {"a": 3, "b": 2}

    def test_shuffle_then_narrow_then_shuffle(self, sc):
        result = dict(
            sc.parallelize([(i % 3, i) for i in range(30)], 4)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[0] % 2, kv[1]))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        total = sum(range(30))
        assert sum(result.values()) == total
