"""``RDD.cache()`` must prevent recomputation across jobs.

Regression tests with a side-effect counter in the lineage: the first
job computes and populates the cache, every later job over the cached
RDD (or its descendants) must hit the cache instead of re-running the
lineage.  The pool variant checks that partitions computed inside pool
workers land in the driver cache all the same.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.spark import SparkContext


@pytest.fixture
def sc():
    return SparkContext(ClusterSpec(num_nodes=2, cores_per_node=2))


class Counting:
    """Identity map that counts how many times each record is computed."""

    def __init__(self):
        self.computed = []

    def __call__(self, record):
        self.computed.append(record)
        return record


class TestCacheAcrossJobs:
    def test_cached_rdd_not_recomputed_by_second_job(self, sc):
        counting = Counting()
        rdd = sc.parallelize([1, 2, 3, 4], 2).map(counting).cache()
        assert rdd.collect() == [1, 2, 3, 4]  # job 1: computes
        assert rdd.collect() == [1, 2, 3, 4]  # job 2: cache hit
        assert sorted(counting.computed) == [1, 2, 3, 4]

    def test_descendant_jobs_reuse_cached_parent(self, sc):
        counting = Counting()
        base = sc.parallelize([1, 2, 3], 1).map(counting).cache()
        assert base.map(lambda x: x * 10).collect() == [10, 20, 30]
        assert base.filter(lambda x: x > 1).count() == 2
        assert counting.computed == [1, 2, 3]

    def test_uncached_rdd_recomputes_every_job(self, sc):
        counting = Counting()
        rdd = sc.parallelize([1, 2], 1).map(counting)
        rdd.collect()
        rdd.collect()
        assert counting.computed == [1, 2, 1, 2]

    def test_cache_populated_per_partition(self, sc):
        rdd = sc.parallelize([1, 2, 3, 4], 2).map(lambda x: x).cache()
        rdd.collect()
        assert {(rdd.id, 0), (rdd.id, 1)} <= set(sc._cache)


class TestCacheUnderPool:
    def test_pool_job_populates_driver_cache(self):
        sc = SparkContext(
            ClusterSpec(num_nodes=2, cores_per_node=2), executors=2
        )
        if not sc.task_pool.supports_closures:
            pytest.skip("fork start method unavailable")
        rdd = sc.parallelize([1, 2, 3, 4], 2).map(lambda x: x * 2).cache()
        assert rdd.collect() == [2, 4, 6, 8]
        # Partitions computed in workers shipped back into the driver cache.
        assert {(rdd.id, 0), (rdd.id, 1)} <= set(sc._cache)
        assert sorted(v for vs in sc._cache.values() for v in vs) == [
            2, 4, 6, 8,
        ]

    def test_pool_second_job_hits_cache(self):
        sc = SparkContext(
            ClusterSpec(num_nodes=2, cores_per_node=2), executors=2
        )
        if not sc.task_pool.supports_closures:
            pytest.skip("fork start method unavailable")
        rdd = sc.parallelize([1, 2, 3, 4], 2).map(lambda x: x).cache()
        rdd.collect()
        # Poison the driver cache: if job 2 recomputed the lineage (in
        # workers or anywhere else) it would return 1..4; reading the
        # poisoned values proves the cache was used.
        for key in list(sc._cache):
            if key[0] == rdd.id:
                sc._cache[key] = [v * 100 for v in sc._cache[key]]
        assert sorted(rdd.collect()) == [100, 200, 300, 400]
