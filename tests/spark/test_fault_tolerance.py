"""Fault tolerance: task retry via lineage recomputation (Section III).

Spark's answer to failures is recomputation from lineage; the mini-Spark
scheduler retries a crashing task up to 4 times (Spark's
``spark.task.maxFailures``) before failing the job, and failed attempts
still cost simulated time.
"""

import pytest

from repro.cluster import ClusterSpec, Resource
from repro.errors import SparkError
from repro.spark import SparkContext, current_task


@pytest.fixture
def sc():
    return SparkContext(ClusterSpec(num_nodes=2, cores_per_node=2))


class FlakyOnce:
    """Raises on the first ``failures`` calls for a given record."""

    def __init__(self, failures: int = 1, victim=0):
        self.failures = failures
        self.victim = victim
        self.crashes = 0

    def __call__(self, record):
        if record == self.victim and self.crashes < self.failures:
            self.crashes += 1
            raise OSError("simulated executor loss")
        return record


class TestTaskRetry:
    def test_transient_failure_recovers(self, sc):
        flaky = FlakyOnce(failures=2)
        result = sc.parallelize([0, 1, 2, 3], 2).map(flaky).collect()
        assert sorted(result) == [0, 1, 2, 3]
        assert flaky.crashes == 2
        assert sc._scheduler.task_failures == 2

    def test_persistent_failure_fails_job(self, sc):
        flaky = FlakyOnce(failures=99)
        with pytest.raises(SparkError, match="failed 4 times"):
            sc.parallelize([0, 1], 1).map(flaky).collect()
        assert flaky.crashes == 4  # MAX_TASK_ATTEMPTS

    def test_original_error_chained(self, sc):
        flaky = FlakyOnce(failures=99)
        with pytest.raises(SparkError) as info:
            sc.parallelize([0], 1).map(flaky).collect()
        assert isinstance(info.value.__cause__, OSError)

    def test_retry_in_shuffle_map_stage(self, sc):
        flaky = FlakyOnce(failures=1, victim=("k", 0))
        pairs = sc.parallelize([("k", 0), ("k", 1)], 1).map(flaky)
        result = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert result == {"k": 1}
        assert flaky.crashes == 1

    def test_failed_attempts_still_cost_time(self, sc):
        def charge_then_crash(record, state={"crashed": False}):
            current_task().add(Resource.WKT_BYTES, 1000)
            if not state["crashed"]:
                state["crashed"] = True
                raise OSError("boom")
            return record

        sc.parallelize([1], 1).map(charge_then_crash).collect()
        # Two attempts, each charging 1000 bytes: lineage recompute paid for.
        assert sc.totals()[Resource.WKT_BYTES] == 2000

    def test_failure_isolated_to_one_task(self, sc):
        flaky = FlakyOnce(failures=1, victim=5)
        result = sc.parallelize(list(range(10)), 5).map(flaky).collect()
        assert sorted(result) == list(range(10))
        # Only the victim partition's task recorded a failure.
        assert sc._scheduler.task_failures == 1


class TestLineageRecompute:
    def test_cache_eviction_recomputes_from_lineage(self, sc):
        calls = []
        rdd = sc.parallelize([1, 2], 1).map(lambda x: (calls.append(x), x)[1]).cache()
        assert rdd.collect() == [1, 2]
        sc.clear_state()  # evict the cache (simulated memory pressure)
        assert rdd.collect() == [1, 2]  # recomputed from lineage
        assert calls == [1, 2, 1, 2]

    def test_shuffle_loss_requires_new_shuffle(self, sc):
        reduced = sc.parallelize([("k", 1), ("k", 2)], 2).reduce_by_key(
            lambda a, b: a + b
        )
        assert dict(reduced.collect()) == {"k": 3}
        # Losing the shuffle store invalidates materialised map output; a
        # fresh lineage (new RDD) recomputes cleanly.
        sc.clear_state()
        fresh = sc.parallelize([("k", 1), ("k", 2)], 2).reduce_by_key(
            lambda a, b: a + b
        )
        assert dict(fresh.collect()) == {"k": 3}
