"""Shuffle machinery: partitioners, block store, size estimation."""

import pytest

from repro.errors import SparkError
from repro.geometry import LineString, Point
from repro.spark.shuffle import (
    HashPartitioner,
    RangePartitioner,
    ShuffleStore,
    estimate_bytes,
)


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner(7)
        for key in ["a", 42, (1, 2), None, 3.5]:
            assert 0 <= p.partition(key) < 7

    def test_deterministic(self):
        p = HashPartitioner(5)
        assert p.partition("k") == p.partition("k")

    def test_equality(self):
        assert HashPartitioner(3) == HashPartitioner(3)
        assert HashPartitioner(3) != HashPartitioner(4)

    def test_validation(self):
        with pytest.raises(SparkError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_boundaries(self):
        p = RangePartitioner([10, 20, 30])
        assert p.num_partitions == 4
        assert p.partition(5) == 0
        assert p.partition(10) == 0  # boundary inclusive on the left side
        assert p.partition(15) == 1
        assert p.partition(25) == 2
        assert p.partition(99) == 3

    def test_empty_boundaries_single_partition(self):
        p = RangePartitioner([])
        assert p.num_partitions == 1
        assert p.partition("anything") == 0

    def test_ordering_preserved(self):
        p = RangePartitioner([10, 20])
        keys = [1, 11, 25, 9, 15]
        partitions = [p.partition(k) for k in sorted(keys)]
        assert partitions == sorted(partitions)


class TestShuffleStore:
    def test_write_read(self):
        store = ShuffleStore()
        sid = store.new_shuffle_id()
        store.write(sid, 0, {0: [("k", 1)], 1: [("j", 2)]})
        store.write(sid, 1, {0: [("k", 3)]})
        assert sorted(store.read(sid, 2, 0)) == [("k", 1), ("k", 3)]
        assert list(store.read(sid, 2, 1)) == [("j", 2)]

    def test_missing_blocks_are_empty(self):
        store = ShuffleStore()
        sid = store.new_shuffle_id()
        assert list(store.read(sid, 3, 0)) == []

    def test_bytes_accounted(self):
        store = ShuffleStore()
        sid = store.new_shuffle_id()
        written = store.write(sid, 0, {0: ["abcdef"]})
        assert written == 6
        assert store.bytes_for(sid) == 6

    def test_ids_monotonic(self):
        store = ShuffleStore()
        assert store.new_shuffle_id() != store.new_shuffle_id()

    def test_clear(self):
        store = ShuffleStore()
        sid = store.new_shuffle_id()
        store.write(sid, 0, {0: [1]})
        store.clear()
        assert list(store.read(sid, 1, 0)) == []
        assert store.bytes_for(sid) == 0


class TestEstimateBytes:
    def test_scalars(self):
        assert estimate_bytes(42) == 8
        assert estimate_bytes(3.14) == 8
        assert estimate_bytes(True) == 8
        assert estimate_bytes(None) == 1

    def test_strings_by_length(self):
        assert estimate_bytes("hello") == 5
        assert estimate_bytes(b"hello!") == 6

    def test_containers_sum_elements(self):
        assert estimate_bytes((1, 2)) == 8 + 16
        assert estimate_bytes([1, 2, 3]) == 8 + 24
        assert estimate_bytes({"k": 1}) == 16 + 1 + 8

    def test_geometry_by_vertex_count(self):
        point = Point(1, 2)
        line = LineString([(0, 0), (1, 1), (2, 2)])
        assert estimate_bytes(line) - estimate_bytes(point) == 32  # 2 extra vertices

    def test_opaque_object(self):
        class Thing:
            pass

        assert estimate_bytes(Thing()) == 64

    def test_non_ascii_strings_weigh_utf8_bytes(self):
        # len("héllo") is 5 but its UTF-8 encoding is 6 bytes.
        assert estimate_bytes("héllo") == 6
        assert estimate_bytes("日本") == 6  # 3 bytes per CJK character
        assert estimate_bytes("🙂") == 4  # astral-plane emoji
        assert estimate_bytes("") == 0

    def test_mixed_record_totals(self):
        record = ("trip-1", {"fare": 12.5}, [None, b"xy"])
        expected = (
            8  # outer tuple header
            + 6  # "trip-1"
            + 16 + 4 + 8  # dict header + "fare" + float
            + 8 + 1 + 2  # list header + None + b"xy"
        )
        assert estimate_bytes(record) == expected

    def test_deep_nesting_does_not_recurse(self):
        record = 1
        depth = 100_000  # far beyond sys.getrecursionlimit()
        for _ in range(depth):
            record = [record]
        assert estimate_bytes(record) == depth * 8 + 8

    def test_bucket_bytes_matches_write(self):
        bucketed = {
            0: [("a", 1), ("b", 2)],
            1: [("héllo", [1, 2, None])],
        }
        store = ShuffleStore()
        written = store.write(store.new_shuffle_id(), 0, bucketed)
        assert ShuffleStore.bucket_bytes(bucketed) == written
