"""DAG scheduler: stages, metrics, overheads, shuffle reuse."""

import pytest

from repro.cluster import ClusterSpec, CostModel, Resource
from repro.spark import SparkContext, current_task, task_scope
from repro.cluster.metrics import TaskMetrics


@pytest.fixture
def sc():
    return SparkContext(ClusterSpec(num_nodes=2, cores_per_node=4))


class TestStageSplitting:
    def test_narrow_job_has_one_stage(self, sc):
        sc.parallelize([1, 2, 3], 2).map(lambda x: x).collect()
        assert len(sc.job_log) == 1
        assert len(sc.job_log[-1].stages) == 1

    def test_shuffle_job_has_two_stages(self, sc):
        sc.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a).collect()
        assert len(sc.job_log[-1].stages) == 2

    def test_cogroup_has_three_stages(self, sc):
        left = sc.parallelize([("k", 1)], 2)
        right = sc.parallelize([("k", 2)], 2)
        left.cogroup(right).collect()
        # two shuffle-map stages (one per side) + result stage
        assert len(sc.job_log[-1].stages) == 3

    def test_shuffle_output_reused_across_jobs(self, sc):
        reduced = sc.parallelize([(i % 2, i) for i in range(10)], 3).reduce_by_key(
            lambda a, b: a + b
        )
        reduced.collect()
        first_stages = len(sc.job_log[-1].stages)
        reduced.count()  # second job over the same shuffled RDD
        second_stages = len(sc.job_log[-1].stages)
        assert first_stages == 2
        assert second_stages == 1  # map stage skipped, like Spark

    def test_task_count_matches_partitions(self, sc):
        sc.parallelize(list(range(10)), 5).collect()
        result_stage = sc.job_log[-1].stages[-1]
        assert result_stage.num_tasks == 5


class TestOverheadAccounting:
    def test_jar_ship_charged_once(self, sc):
        rdd = sc.parallelize([1], 1)
        rdd.collect()
        rdd.collect()
        jar = sc.cost_model.spark_jar_ship
        overheads = [job.overhead_seconds for job in sc.job_log]
        assert overheads[0] == pytest.approx(jar)
        assert overheads[1] == 0.0

    def test_reset_metrics_rearms_jar(self, sc):
        sc.parallelize([1], 1).collect()
        sc.reset_metrics()
        assert sc.job_log == []
        sc.parallelize([1], 1).collect()
        assert sc.job_log[0].overhead_seconds == pytest.approx(
            sc.cost_model.spark_jar_ship
        )

    def test_shuffle_stage_pays_stage_overhead(self, sc):
        sc.parallelize([(1, 1)], 4).reduce_by_key(lambda a, b: a).collect()
        map_stage, result_stage = sc.job_log[-1].stages
        assert map_stage.overhead_seconds > 0
        assert result_stage.overhead_seconds > 0  # reads a shuffle

    def test_narrow_stage_pays_metadata_but_not_actor_overhead(self, sc):
        sc.parallelize([1], 4).map(lambda x: x).collect()
        narrow_overhead = sc.job_log[-1].stages[0].overhead_seconds
        assert narrow_overhead == pytest.approx(
            sc.cost_model.spark_stage_per_partition * 4
        )
        # A shuffling stage additionally pays the actor-system rebuild.
        sc.parallelize([(1, 1)], 4).reduce_by_key(lambda a, b: a).collect()
        shuffle_overhead = sc.job_log[-1].stages[0].overhead_seconds
        assert shuffle_overhead > narrow_overhead + sc.cost_model.spark_stage_base / 2

    def test_stage_overhead_grows_with_partitions(self):
        model = CostModel()
        few = SparkContext(ClusterSpec(2, 4), cost_model=model)
        many = SparkContext(ClusterSpec(2, 4), cost_model=model)
        few.parallelize([(1, 1)], 4).reduce_by_key(lambda a, b: a).collect()
        many.parallelize([(1, 1)], 64).reduce_by_key(lambda a, b: a).collect()
        few_overhead = sum(s.overhead_seconds for s in few.job_log[-1].stages)
        many_overhead = sum(s.overhead_seconds for s in many.job_log[-1].stages)
        assert many_overhead > few_overhead


class TestTaskMetricsFlow:
    def test_user_function_metrics_reach_stage(self, sc):
        def charge(x):
            current_task().add(Resource.WKT_BYTES, 100)
            return x

        sc.parallelize([1, 2, 3, 4], 2).map(charge).collect()
        totals = sc.job_log[-1].totals()
        assert totals[Resource.WKT_BYTES] == 400

    def test_shuffle_bytes_counted(self, sc):
        sc.parallelize([(i, "payload" * 10) for i in range(50)], 4).group_by_key().collect()
        totals = sc.totals()
        assert totals[Resource.SHUFFLE_BYTES] > 0

    def test_simulated_seconds_positive_and_deterministic(self):
        def run():
            sc = SparkContext(ClusterSpec(2, 4))
            sc.parallelize([(i % 5, i) for i in range(100)], 8).reduce_by_key(
                lambda a, b: a + b
            ).collect()
            return sc.simulated_seconds()

        first = run()
        second = run()
        assert first > 0
        assert first == second

    def test_current_task_outside_scope_is_sink(self):
        task = current_task()
        task.add(Resource.WKT_BYTES, 1)  # must not raise

    def test_task_scope_nesting(self):
        outer = TaskMetrics()
        inner = TaskMetrics()
        with task_scope(outer):
            current_task().add(Resource.ROWS_OUT, 1)
            with task_scope(inner):
                current_task().add(Resource.ROWS_OUT, 5)
            current_task().add(Resource.ROWS_OUT, 1)
        assert outer.get(Resource.ROWS_OUT) == 2
        assert inner.get(Resource.ROWS_OUT) == 5


class TestBroadcast:
    def test_value_accessible(self, sc):
        b = sc.broadcast([1, 2, 3])
        assert b.value == [1, 2, 3]

    def test_destroy(self, sc):
        b = sc.broadcast("x")
        b.destroy()
        with pytest.raises(RuntimeError):
            _ = b.value

    def test_broadcast_charges_overhead(self, sc):
        before = sc.broadcast_overhead_seconds
        sc.broadcast("payload" * 1000)
        assert sc.broadcast_overhead_seconds > before

    def test_broadcast_cost_grows_with_cluster(self):
        small = SparkContext(ClusterSpec(2, 4))
        large = SparkContext(ClusterSpec(10, 4))
        payload = "x" * 100000
        small.broadcast(payload)
        large.broadcast(payload)
        assert large.broadcast_overhead_seconds > small.broadcast_overhead_seconds


class TestDynamicPlacement:
    def test_more_cores_faster(self):
        def simulated(nodes):
            sc = SparkContext(ClusterSpec(nodes, 8))
            data = [(i % 7, "v" * 50) for i in range(2000)]
            sc.parallelize(data, 64).group_by_key().collect()
            return sc.simulated_seconds()

        assert simulated(8) < simulated(1)
