"""WKB codec tests (the a3 ablation's binary representation)."""

import struct

import pytest

from repro.errors import WKBParseError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkb_dumps,
    wkb_loads,
)


SAMPLES = [
    Point(1.5, -2.25),
    Point.empty(),
    LineString([(0, 0), (1, 1), (2, 0)]),
    LineString.empty(),
    Polygon([(0, 0), (4, 0), (4, 4), (0, 4)]),
    Polygon(
        [(0, 0), (10, 0), (10, 10), (0, 10)],
        holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
    ),
    Polygon.empty(),
    MultiPoint.of([(1, 2), (3, 4)]),
    MultiLineString([LineString([(0, 0), (1, 1)])]),
    MultiPolygon([Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])]),
    GeometryCollection([Point(5, 5), LineString([(0, 0), (2, 2)])]),
]


@pytest.mark.parametrize("geometry", SAMPLES, ids=lambda g: type(g).__name__ + str(g.num_points))
def test_roundtrip(geometry):
    assert wkb_loads(wkb_dumps(geometry)) == geometry


def test_point_encoding_layout():
    data = wkb_dumps(Point(1.0, 2.0))
    assert data[0] == 1  # little-endian flag
    assert struct.unpack_from("<I", data, 1)[0] == 1  # point type code
    assert struct.unpack_from("<2d", data, 5) == (1.0, 2.0)
    assert len(data) == 21


def test_empty_point_encodes_nan():
    data = wkb_dumps(Point.empty())
    x, y = struct.unpack_from("<2d", data, 5)
    assert x != x and y != y


def test_big_endian_input_accepted():
    data = struct.pack(">BI2d", 0, 1, 3.0, 4.0)
    assert wkb_loads(data) == Point(3, 4)


class TestErrors:
    def test_truncated(self):
        good = wkb_dumps(LineString([(0, 0), (1, 1)]))
        with pytest.raises(WKBParseError):
            wkb_loads(good[:-4])

    def test_bad_byte_order(self):
        with pytest.raises(WKBParseError):
            wkb_loads(b"\x07" + b"\x00" * 20)

    def test_unknown_type_code(self):
        data = struct.pack("<BI", 1, 99)
        with pytest.raises(WKBParseError):
            wkb_loads(data)

    def test_trailing_bytes(self):
        data = wkb_dumps(Point(1, 2)) + b"\x00"
        with pytest.raises(WKBParseError):
            wkb_loads(data)

    def test_empty_input(self):
        with pytest.raises(WKBParseError):
            wkb_loads(b"")


def test_wkb_smaller_than_wkt_for_big_polygons():
    # The representation ablation's premise: binary beats text for size.
    ring = [(i * 1.2345678, (i % 7) * 3.7654321) for i in range(200)]
    ring.append(ring[0])
    poly = Polygon(ring)
    assert len(wkb_dumps(poly)) < len(poly.wkt())
