"""Batch refinement kernels agree with the scalar predicates, bit for bit.

The columnar execution path promises that ``contains_batch`` /
``within_distance_batch`` / ``distance_batch`` over N points return
exactly what N scalar calls return — same booleans, same distances, and
(through the ``*_counted`` variants) the same counter totals on both the
fast (JTS-like) and slow (GEOS-like) engines.  These tests check that
promise on seeded random geometry as well as the degenerate shapes the
strip index is most likely to get wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.engine import create_engine
from repro.geometry.prepared import clear_prepared_cache, prepare_cached


@pytest.fixture(params=["fast", "slow"])
def engine(request):
    return create_engine(request.param)


def random_polygon(rng, cx, cy, num_vertices=8, radius=3.0):
    """A simple star-shaped polygon around (cx, cy)."""
    angles = sorted(rng.uniform(0, 2 * np.pi) for _ in range(num_vertices))
    return Polygon(
        [
            (
                cx + rng.uniform(0.3, 1.0) * radius * np.cos(a),
                cy + rng.uniform(0.3, 1.0) * radius * np.sin(a),
            )
            for a in angles
        ]
    )


def random_polyline(rng, num_vertices=6):
    x, y = rng.uniform(-5, 5), rng.uniform(-5, 5)
    coords = [(x, y)]
    for _ in range(num_vertices - 1):
        x += rng.uniform(-3, 3)
        y += rng.uniform(-3, 3)
        coords.append((x, y))
    return LineString(coords)


def batch_xy(points):
    xs = np.array([p.x for p in points], dtype=np.float64)
    ys = np.array([p.y for p in points], dtype=np.float64)
    return xs, ys


def assert_contains_parity(engine, geometry, points):
    handle = engine.prepare(geometry)
    xs, ys = batch_xy(points)
    batch = engine.contains_batch(handle, xs, ys)
    scalar = [engine.point_within(p, handle) for p in points]
    assert batch.tolist() == scalar


def assert_distance_parity(engine, geometry, points, d):
    handle = engine.prepare(geometry)
    xs, ys = batch_xy(points)
    within = engine.within_distance_batch(handle, xs, ys, d)
    dist = engine.distance_batch(handle, xs, ys)
    assert within.tolist() == [
        engine.point_within_distance(p, handle, d) for p in points
    ]
    assert dist.tolist() == [engine.point_distance(p, handle) for p in points]


class TestRandomizedEquivalence:
    def test_contains_random_polygons(self, engine, rng):
        for _ in range(20):
            polygon = random_polygon(
                rng, rng.uniform(-5, 5), rng.uniform(-5, 5), rng.randint(3, 12)
            )
            points = [
                Point(rng.uniform(-10, 10), rng.uniform(-10, 10))
                for _ in range(40)
            ]
            assert_contains_parity(engine, polygon, points)

    def test_within_distance_random_polylines(self, engine, rng):
        for _ in range(20):
            line = random_polyline(rng, rng.randint(2, 10))
            points = [
                Point(rng.uniform(-10, 10), rng.uniform(-10, 10))
                for _ in range(40)
            ]
            assert_distance_parity(engine, line, points, rng.uniform(0.5, 4.0))

    def test_random_multipolygons(self, engine, rng):
        for _ in range(10):
            multi = MultiPolygon(
                [
                    random_polygon(rng, rng.uniform(-6, 6), rng.uniform(-6, 6))
                    for _ in range(rng.randint(1, 3))
                ]
            )
            points = [
                Point(rng.uniform(-10, 10), rng.uniform(-10, 10))
                for _ in range(30)
            ]
            assert_contains_parity(engine, multi, points)

    def test_random_multilinestrings(self, engine, rng):
        for _ in range(10):
            multi = MultiLineString(
                [random_polyline(rng) for _ in range(rng.randint(1, 3))]
            )
            points = [
                Point(rng.uniform(-10, 10), rng.uniform(-10, 10))
                for _ in range(30)
            ]
            assert_distance_parity(engine, multi, points, rng.uniform(0.5, 4.0))

    def test_point_build_geometry(self, engine, rng):
        target = Point(1.5, -2.5)
        points = [
            Point(rng.uniform(-5, 5), rng.uniform(-5, 5)) for _ in range(50)
        ]
        assert_distance_parity(engine, target, points, 2.0)


class TestEdgeCases:
    def test_point_on_vertex(self, engine, unit_square):
        assert_contains_parity(engine, unit_square, [Point(0, 0), Point(10, 10)])

    def test_point_on_edge(self, engine, unit_square):
        assert_contains_parity(engine, unit_square, [Point(5, 0), Point(0, 5)])

    def test_empty_batch(self, engine, unit_square):
        handle = engine.prepare(unit_square)
        xs = np.array([], dtype=np.float64)
        result = engine.contains_batch(handle, xs, xs)
        assert result.shape == (0,)
        dist = engine.distance_batch(handle, xs, xs)
        assert dist.shape == (0,)

    def test_all_outside_batch(self, engine, unit_square):
        points = [Point(100 + i, 100 + i) for i in range(20)]
        assert_contains_parity(engine, unit_square, points)
        handle = engine.prepare(unit_square)
        xs, ys = batch_xy(points)
        assert not engine.contains_batch(handle, xs, ys).any()

    def test_single_strip_polygon(self, engine):
        # A triangle: few enough edges that the strip index degenerates to
        # a single strip, exercising the one-bucket binning path.
        triangle = Polygon([(0, 0), (4, 0), (2, 3)])
        points = [
            Point(2, 1),  # inside
            Point(2, 3),  # apex vertex
            Point(2, 0),  # on the base edge
            Point(5, 5),  # outside
        ]
        assert_contains_parity(engine, triangle, points)

    def test_hole_and_concave(self, engine, square_with_hole, l_shape, random_points):
        assert_contains_parity(engine, square_with_hole, random_points)
        assert_contains_parity(engine, l_shape, random_points)

    def test_polyline_distances(self, engine, diagonal_line, random_points):
        assert_distance_parity(engine, diagonal_line, random_points, 1.5)


class TestCounterParity:
    """A batch of N charges exactly what N scalar calls charge."""

    @pytest.mark.parametrize("name", ["fast", "slow"])
    def test_contains_counters(self, name, unit_square, random_points):
        scalar_engine = create_engine(name)
        handle = scalar_engine.prepare(unit_square)
        for p in random_points:
            scalar_engine.point_within(p, handle)

        batch_engine = create_engine(name)
        handle = batch_engine.prepare(unit_square)
        xs, ys = batch_xy(random_points)
        batch_engine.contains_batch(handle, xs, ys)

        assert (
            batch_engine.counters.predicate_calls
            == scalar_engine.counters.predicate_calls
        )
        assert batch_engine.counters.vertex_ops == scalar_engine.counters.vertex_ops
        assert (
            batch_engine.counters.allocations == scalar_engine.counters.allocations
        )

    @pytest.mark.parametrize("name", ["fast", "slow"])
    def test_distance_counters(self, name, diagonal_line, random_points):
        scalar_engine = create_engine(name)
        handle = scalar_engine.prepare(diagonal_line)
        for p in random_points:
            scalar_engine.point_within_distance(p, handle, 2.0)

        batch_engine = create_engine(name)
        handle = batch_engine.prepare(diagonal_line)
        xs, ys = batch_xy(random_points)
        batch_engine.within_distance_batch(handle, xs, ys, 2.0)

        assert (
            batch_engine.counters.predicate_calls
            == scalar_engine.counters.predicate_calls
        )
        assert batch_engine.counters.vertex_ops == scalar_engine.counters.vertex_ops
        assert (
            batch_engine.counters.allocations == scalar_engine.counters.allocations
        )

    def test_counted_per_point_arrays(self, engine, unit_square, random_points):
        """The counted variant's per-point arrays sum to the counter delta."""
        handle = engine.prepare(unit_square)
        xs, ys = batch_xy(random_points)
        before = engine.counters.vertex_ops
        results, vertex, alloc = engine.contains_batch_counted(handle, xs, ys)
        assert len(results) == len(vertex) == len(alloc) == len(random_points)
        assert engine.counters.vertex_ops - before == int(vertex.sum())


class TestPreparedCache:
    def test_identity_memoisation(self, unit_square):
        clear_prepared_cache()
        first = prepare_cached(unit_square)
        assert prepare_cached(unit_square) is first

    def test_equal_content_shares_handle(self):
        # Memoisation is by content fingerprint (not object identity):
        # two polygons with identical coordinates share one handle.
        clear_prepared_cache()
        a = Polygon([(0, 0), (1, 0), (1, 1)])
        b = Polygon([(0, 0), (1, 0), (1, 1)])
        assert prepare_cached(a) is prepare_cached(b)

    def test_distinct_content_gets_distinct_handles(self):
        clear_prepared_cache()
        a = Polygon([(0, 0), (1, 0), (1, 1)])
        b = Polygon([(0, 0), (2, 0), (2, 2)])
        assert prepare_cached(a) is not prepare_cached(b)

    def test_clear_resets(self, unit_square):
        clear_prepared_cache()
        first = prepare_cached(unit_square)
        clear_prepared_cache()
        assert prepare_cached(unit_square) is not first
