"""Low-level segment primitives."""

import pytest

from repro.geometry.algorithms.segments import (
    on_segment,
    orientation,
    segment_intersection_point,
    segments_intersect,
)


class TestOrientation:
    def test_ccw(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1

    def test_cw(self):
        assert orientation(0, 0, 1, 0, 1, -1) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0

    def test_nearly_collinear_treated_as_collinear(self):
        assert orientation(0, 0, 1e6, 1e6, 2e6, 2e6 + 1e-12) == 0


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment(0, 0, 10, 10, 5, 5)

    def test_endpoint(self):
        assert on_segment(0, 0, 10, 10, 10, 10)

    def test_beyond(self):
        assert not on_segment(0, 0, 10, 10, 11, 11)


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect(0, 0, 10, 10, 0, 10, 10, 0)

    def test_disjoint(self):
        assert not segments_intersect(0, 0, 1, 1, 5, 5, 6, 6)

    def test_t_junction(self):
        assert segments_intersect(0, 0, 10, 0, 5, -5, 5, 0)

    def test_shared_endpoint(self):
        assert segments_intersect(0, 0, 5, 5, 5, 5, 10, 0)

    def test_collinear_overlap(self):
        assert segments_intersect(0, 0, 5, 0, 3, 0, 8, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 2, 0, 3, 0, 8, 0)

    def test_parallel(self):
        assert not segments_intersect(0, 0, 10, 0, 0, 1, 10, 1)


class TestIntersectionPoint:
    def test_proper_crossing(self):
        p = segment_intersection_point(0, 0, 10, 10, 0, 10, 10, 0)
        assert p == pytest.approx((5.0, 5.0))

    def test_no_intersection(self):
        assert segment_intersection_point(0, 0, 1, 1, 5, 0, 6, 1) is None

    def test_parallel_returns_none(self):
        assert segment_intersection_point(0, 0, 10, 0, 0, 1, 10, 1) is None

    def test_would_cross_beyond_segment(self):
        assert segment_intersection_point(0, 0, 1, 1, 0, 10, 10, 0) is None
