"""Refinement engines: identical answers, asymmetric cost counters."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPolygon,
    Point,
    Polygon,
    create_engine,
)
from repro.geometry.engine import EngineCounters, FastGeometryEngine, SlowGeometryEngine


@pytest.fixture(params=["fast", "slow"])
def engine(request):
    return create_engine(request.param)


class TestFactory:
    def test_names(self):
        assert isinstance(create_engine("fast"), FastGeometryEngine)
        assert isinstance(create_engine("slow"), SlowGeometryEngine)

    def test_paper_aliases(self):
        assert isinstance(create_engine("jts"), FastGeometryEngine)
        assert isinstance(create_engine("GEOS"), SlowGeometryEngine)

    def test_unknown(self):
        with pytest.raises(GeometryError):
            create_engine("warp")


class TestWithin:
    def test_polygon(self, engine, unit_square, random_points):
        handle = engine.prepare(unit_square)
        for p in random_points:
            assert engine.point_within(p, handle) == p.within(unit_square)

    def test_polygon_with_hole(self, engine, square_with_hole, random_points):
        handle = engine.prepare(square_with_hole)
        for p in random_points:
            assert engine.point_within(p, handle) == p.within(square_with_hole)

    def test_multipolygon(self, engine, unit_square):
        far = Polygon([(20, 20), (22, 20), (22, 22), (20, 22)])
        handle = engine.prepare(MultiPolygon([unit_square, far]))
        assert engine.point_within(Point(21, 21), handle)
        assert engine.point_within(Point(5, 5), handle)
        assert not engine.point_within(Point(15, 15), handle)


class TestWithinDistance:
    def test_linestring(self, engine, diagonal_line, random_points):
        handle = engine.prepare(diagonal_line)
        for p in random_points:
            expected = p.distance(diagonal_line) <= 2.0
            assert engine.point_within_distance(p, handle, 2.0) == expected

    def test_multilinestring(self, engine):
        mls = MultiLineString(
            [LineString([(0, 0), (10, 0)]), LineString([(0, 20), (10, 20)])]
        )
        handle = engine.prepare(mls)
        assert engine.point_within_distance(Point(5, 18.5), handle, 2.0)
        assert not engine.point_within_distance(Point(5, 10), handle, 2.0)

    def test_polygon_inside_is_within_any_distance(self, engine, unit_square):
        handle = engine.prepare(unit_square)
        assert engine.point_within_distance(Point(5, 5), handle, 0.001)

    def test_point_handle(self, engine):
        handle = engine.prepare(Point(0, 0))
        assert engine.point_within_distance(Point(3, 4), handle, 5.0)
        assert not engine.point_within_distance(Point(3, 4), handle, 4.9)


class TestDistance:
    def test_linestring(self, engine, diagonal_line, random_points):
        handle = engine.prepare(diagonal_line)
        for p in random_points[:50]:
            assert engine.point_distance(p, handle) == pytest.approx(
                p.distance(diagonal_line), abs=1e-9
            )

    def test_point(self, engine):
        handle = engine.prepare(Point(0, 0))
        assert engine.point_distance(Point(3, 4), handle) == 5.0


class TestEnginesAgree:
    """The headline invariant: swapping engines never changes results."""

    def test_within_cross_engine(self, square_with_hole, l_shape, random_points):
        fast = create_engine("fast")
        slow = create_engine("slow")
        for polygon in (square_with_hole, l_shape):
            fast_handle = fast.prepare(polygon)
            slow_handle = slow.prepare(polygon)
            for p in random_points:
                assert fast.point_within(p, fast_handle) == slow.point_within(
                    p, slow_handle
                )

    def test_distance_cross_engine(self, diagonal_line, random_points):
        fast = create_engine("fast")
        slow = create_engine("slow")
        fh = fast.prepare(diagonal_line)
        sh = slow.prepare(diagonal_line)
        for p in random_points[:80]:
            assert fast.point_distance(p, fh) == pytest.approx(
                slow.point_distance(p, sh), abs=1e-9
            )


class TestCounters:
    def test_fast_counts_predicate_calls(self, unit_square):
        engine = create_engine("fast")
        handle = engine.prepare(unit_square)
        engine.point_within(Point(5, 5), handle)
        engine.point_within(Point(50, 5), handle)
        assert engine.counters.predicate_calls == 2
        assert engine.counters.vertex_ops > 0
        assert engine.counters.allocations == 0

    def test_slow_counts_allocations(self, unit_square):
        engine = create_engine("slow")
        handle = engine.prepare(unit_square)
        engine.point_within(Point(5, 5), handle)
        assert engine.counters.allocations > 0
        assert engine.counters.vertex_ops > 0

    def test_slow_allocates_even_for_far_points_inside_mbb_check(self, unit_square):
        # GEOS-style: churn happens before the (recomputed) envelope test.
        engine = create_engine("slow")
        handle = engine.prepare(unit_square)
        before = engine.counters.allocations
        engine.point_within(Point(9.5, 9.5), handle)
        assert engine.counters.allocations > before

    def test_merge_and_reset(self):
        a = EngineCounters(predicate_calls=1, vertex_ops=10, allocations=3)
        b = EngineCounters(predicate_calls=2, vertex_ops=5, allocations=0)
        a.merge(b)
        assert (a.predicate_calls, a.vertex_ops, a.allocations) == (3, 15, 3)
        a.reset()
        assert a.predicate_calls == 0

    def test_fast_early_exit_charges_fewer_vertices(self):
        # JTS-style early exit: a probe matching the first segment charges
        # fewer vertex ops than one matching only the last.
        line = LineString([(float(i), 0.0) for i in range(20)])
        engine = create_engine("fast")
        handle = engine.prepare(line)
        engine.point_within_distance(Point(0.5, 0.1), handle, 0.5)
        near_first = engine.counters.vertex_ops
        engine.counters.reset()
        engine.point_within_distance(Point(18.5, 0.1), handle, 0.5)
        near_last = engine.counters.vertex_ops
        assert near_first < near_last

    def test_slow_no_early_exit(self):
        # GEOS computes the full minimum distance: all vertices churned.
        line = LineString([(float(i), 0.0) for i in range(20)])
        engine = create_engine("slow")
        handle = engine.prepare(line)
        engine.point_within_distance(Point(0.5, 0.1), handle, 0.5)
        assert engine.counters.vertex_ops == 20
