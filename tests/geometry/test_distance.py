"""Distance kernels: the NearestD refinement path."""

import math

import pytest

from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    Point,
    Polygon,
)
from repro.geometry.algorithms.distance import (
    distance,
    point_linestring_distance,
    point_linestring_distance_vectorized,
    point_segment_distance,
    segment_segment_distance,
)


class TestPointSegment:
    def test_perpendicular_foot_inside(self):
        assert point_segment_distance(5, 3, 0, 0, 10, 0) == 3.0

    def test_clamped_to_start(self):
        assert point_segment_distance(-3, 4, 0, 0, 10, 0) == 5.0

    def test_clamped_to_end(self):
        assert point_segment_distance(13, 4, 0, 0, 10, 0) == 5.0

    def test_degenerate_segment(self):
        assert point_segment_distance(3, 4, 0, 0, 0, 0) == 5.0

    def test_point_on_segment(self):
        assert point_segment_distance(5, 0, 0, 0, 10, 0) == 0.0


class TestPointLineString:
    def test_scalar_and_vectorized_agree(self, diagonal_line, rng):
        for _ in range(100):
            x = rng.uniform(-5, 15)
            y = rng.uniform(-5, 15)
            scalar = point_linestring_distance(x, y, diagonal_line)
            vectorized = point_linestring_distance_vectorized(x, y, diagonal_line)
            assert scalar == pytest.approx(vectorized, abs=1e-12)

    def test_closest_segment_chosen(self):
        line = LineString([(0, 0), (10, 0), (10, 10)])
        assert point_linestring_distance(11, 5, line) == 1.0

    def test_empty_line_is_inf(self):
        assert point_linestring_distance(0, 0, LineString.empty()) == math.inf


class TestSegmentSegment:
    def test_crossing_is_zero(self):
        assert segment_segment_distance(0, 0, 10, 10, 0, 10, 10, 0) == 0.0

    def test_parallel(self):
        assert segment_segment_distance(0, 0, 10, 0, 0, 3, 10, 3) == 3.0

    def test_endpoint_to_endpoint(self):
        assert segment_segment_distance(0, 0, 1, 0, 4, 4, 7, 4) == pytest.approx(5.0)


class TestGeometryDistance:
    def test_point_point(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_point_line_both_orders(self, diagonal_line):
        p = Point(5, 10)
        assert distance(p, diagonal_line) == distance(diagonal_line, p) == 5.0

    def test_point_inside_polygon_is_zero(self, unit_square):
        assert distance(Point(5, 5), unit_square) == 0.0

    def test_point_outside_polygon(self, unit_square):
        assert distance(Point(13, 14), unit_square) == 5.0

    def test_point_in_hole_measures_to_hole_boundary(self, square_with_hole):
        assert distance(Point(5, 5), square_with_hole) == 1.0

    def test_line_line(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 4), (10, 4)])
        assert distance(a, b) == 4.0

    def test_line_polygon_touching(self, unit_square):
        line = LineString([(10, 0), (20, 0)])
        assert distance(line, unit_square) == 0.0

    def test_line_inside_polygon_is_zero(self, unit_square):
        assert distance(LineString([(2, 2), (3, 3)]), unit_square) == 0.0

    def test_polygon_polygon(self, unit_square):
        far = Polygon([(13, 0), (20, 0), (20, 10), (13, 10)])
        assert distance(unit_square, far) == 3.0

    def test_nested_polygons_zero(self, unit_square):
        inner = Polygon([(4, 4), (6, 4), (6, 6), (4, 6)])
        assert distance(unit_square, inner) == 0.0

    def test_multi_takes_min(self):
        mp = MultiPoint.of([(100, 0), (0, 7)])
        assert distance(Point(0, 0), mp) == 7.0

    def test_multilinestring(self):
        mls = MultiLineString(
            [LineString([(5, 5), (6, 6)]), LineString([(0, 2), (2, 2)])]
        )
        assert distance(Point(0, 0), mls) == 2.0

    def test_empty_is_inf(self, unit_square):
        assert distance(Point.empty(), unit_square) == math.inf

    def test_symmetry(self, rng, unit_square, diagonal_line):
        geoms = [Point(15, 15), diagonal_line, unit_square,
                 Polygon([(30, 30), (32, 30), (32, 32), (30, 32)])]
        for i, a in enumerate(geoms):
            for b in geoms[i + 1:]:
                assert distance(a, b) == pytest.approx(distance(b, a))

    def test_method_sugar(self, unit_square):
        assert Point(13, 14).distance(unit_square) == 5.0
