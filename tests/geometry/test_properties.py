"""Property-based tests on the geometry substrate (hypothesis).

These pin down the invariants the join engines lean on: codec roundtrips,
engine agreement, prepared-vs-plain predicate agreement, and metric
properties of the distance kernels.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.geometry import (
    LineString,
    Point,
    Polygon,
    create_engine,
    wkb_dumps,
    wkb_loads,
    wkt_dumps,
    wkt_loads,
)
from repro.geometry.algorithms.distance import distance, point_segment_distance
from repro.geometry.algorithms.predicates import point_in_polygon
from repro.geometry.envelope import Envelope
from repro.geometry.prepared import PreparedLineString, PreparedPolygon

coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small_coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

points = st.builds(Point, coordinate, coordinate)
coords_list = st.lists(
    st.tuples(small_coordinate, small_coordinate), min_size=2, max_size=12
)
linestrings = coords_list.map(LineString)


@st.composite
def convex_polygons(draw):
    """Random convex polygons via angular sweep around a centre."""
    cx = draw(small_coordinate)
    cy = draw(small_coordinate)
    n = draw(st.integers(min_value=3, max_value=12))
    radius = draw(st.floats(min_value=0.5, max_value=50.0))
    # Angles from positive gaps, normalised to < 2*pi, so consecutive
    # vertices are always angularly separated and never coincide.
    gaps = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    total = sum(gaps) * (1.0 + 1e-9)
    angles = []
    acc = 0.0
    for gap in gaps:
        acc += gap
        angles.append(2 * math.pi * acc / total)
    ring = [(cx + radius * math.cos(a), cy + radius * math.sin(a)) for a in angles]
    return Polygon(ring)


class TestCodecRoundtrips:
    @given(points)
    def test_wkt_point(self, p):
        assert wkt_loads(wkt_dumps(p)) == p

    @given(linestrings)
    def test_wkt_linestring(self, line):
        assert wkt_loads(wkt_dumps(line)) == line

    @given(convex_polygons())
    def test_wkt_polygon(self, poly):
        parsed = wkt_loads(wkt_dumps(poly))
        assert parsed == poly

    @given(points)
    def test_wkb_point(self, p):
        assert wkb_loads(wkb_dumps(p)) == p

    @given(linestrings)
    def test_wkb_linestring(self, line):
        assert wkb_loads(wkb_dumps(line)) == line

    @given(convex_polygons())
    def test_wkb_polygon(self, poly):
        assert wkb_loads(wkb_dumps(poly)) == poly


class TestEnvelopeProperties:
    @given(coords_list)
    def test_envelope_contains_all_vertices(self, coords):
        line = LineString(coords)
        for x, y in coords:
            assert line.envelope.contains_point(x, y)

    @given(coords_list, coords_list)
    def test_union_commutative_and_covering(self, a, b):
        ea = LineString(a).envelope
        eb = LineString(b).envelope
        u = ea.union(eb)
        assert u == eb.union(ea)
        assert u.contains(ea) and u.contains(eb)

    @given(coords_list, coords_list)
    def test_intersects_symmetric(self, a, b):
        ea = LineString(a).envelope
        eb = LineString(b).envelope
        assert ea.intersects(eb) == eb.intersects(ea)

    @given(coords_list, st.floats(min_value=0, max_value=100))
    def test_expand_preserves_containment(self, coords, d):
        env = LineString(coords).envelope
        assert env.expand_by(d).contains(env)


class TestPredicateProperties:
    @given(convex_polygons(), small_coordinate, small_coordinate)
    @settings(max_examples=200)
    def test_engines_agree_on_within(self, poly, x, y):
        fast = create_engine("fast")
        slow = create_engine("slow")
        p = Point(x, y)
        assert fast.point_within(p, fast.prepare(poly)) == slow.point_within(
            p, slow.prepare(poly)
        )

    @given(convex_polygons(), small_coordinate, small_coordinate)
    @settings(max_examples=200)
    def test_prepared_matches_plain(self, poly, x, y):
        assert PreparedPolygon(poly).contains_point(x, y) == point_in_polygon(
            x, y, poly
        )

    @given(convex_polygons())
    def test_centroid_inside_convex(self, poly):
        c = poly.centroid()
        # The centroid of a convex polygon lies inside it.
        assert point_in_polygon(c.x, c.y, poly)

    @given(convex_polygons(), small_coordinate, small_coordinate)
    def test_inside_implies_zero_distance(self, poly, x, y):
        if point_in_polygon(x, y, poly):
            assert distance(Point(x, y), poly) == 0.0


class TestDistanceProperties:
    @given(points, points)
    def test_point_distance_is_euclidean(self, a, b):
        assert distance(a, b) == math.hypot(a.x - b.x, a.y - b.y)

    @given(linestrings, small_coordinate, small_coordinate)
    @settings(max_examples=200)
    def test_prepared_distance_matches_plain(self, line, x, y):
        from repro.geometry.algorithms.distance import point_linestring_distance

        prepared = PreparedLineString(line)
        assert math.isclose(
            prepared.distance_to_point(x, y),
            point_linestring_distance(x, y, line),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(linestrings, small_coordinate, small_coordinate,
           st.floats(min_value=0.01, max_value=50))
    @settings(max_examples=200)
    def test_within_distance_consistent_with_distance(self, line, x, y, d):
        from repro.geometry.algorithms.distance import point_linestring_distance

        prepared = PreparedLineString(line)
        exact = point_linestring_distance(x, y, line)
        result, _ = prepared.within_distance_counted(x, y, d)
        if exact <= d * (1 - 1e-9):
            assert result
        if exact > d * (1 + 1e-9):
            assert not result

    @given(small_coordinate, small_coordinate, small_coordinate,
           small_coordinate, small_coordinate, small_coordinate)
    def test_point_segment_bounded_by_endpoints(self, px, py, x1, y1, x2, y2):
        d = point_segment_distance(px, py, x1, y1, x2, y2)
        d_start = math.hypot(px - x1, py - y1)
        d_end = math.hypot(px - x2, py - y2)
        assert d <= min(d_start, d_end) + 1e-9
        assert d >= 0.0


class TestGeneratorlessShapes:
    @given(st.lists(st.tuples(small_coordinate, small_coordinate),
                    min_size=1, max_size=30))
    def test_of_points_envelope_is_tight(self, pts):
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        env = Envelope.of_points(xs, ys)
        assert env.min_x == min(xs) and env.max_y == max(ys)
