"""Geometry type construction, envelopes, equality, measures."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    GeometryCollection,
    GeometryType,
    LineString,
    LinearRing,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.envelope import Envelope


class TestPoint:
    def test_coords(self):
        p = Point(3, 4)
        assert p.coords() == (3.0, 4.0)
        assert p.num_points == 1

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            Point(math.nan, 0)

    def test_empty_point(self):
        p = Point.empty()
        assert p.is_empty
        assert p.num_points == 0
        assert p.envelope.is_empty
        with pytest.raises(GeometryError):
            p.coords()

    def test_envelope_is_degenerate(self):
        assert Point(1, 2).envelope == Envelope(1, 2, 1, 2)

    def test_equality(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)
        assert Point.empty() == Point.empty()
        assert Point(1, 2) != Point.empty()

    def test_geometry_type(self):
        assert Point(0, 0).geometry_type is GeometryType.POINT


class TestLineString:
    def test_basic(self):
        line = LineString([(0, 0), (3, 4)])
        assert line.num_points == 2
        assert line.length() == 5.0

    def test_single_vertex_rejected(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0)])

    def test_empty(self):
        line = LineString.empty()
        assert line.is_empty
        assert line.length() == 0.0
        assert line.envelope.is_empty

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0), (math.nan, 1)])

    def test_coords_are_immutable(self):
        line = LineString([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            line.coords[0, 0] = 99.0

    def test_is_closed(self):
        assert LineString([(0, 0), (1, 0), (1, 1), (0, 0)]).is_closed
        assert not LineString([(0, 0), (1, 0)]).is_closed

    def test_segments_shape(self):
        segs = LineString([(0, 0), (1, 0), (1, 1)]).segments()
        assert segs.shape == (2, 4)
        assert list(segs[0]) == [0, 0, 1, 0]

    def test_envelope(self):
        line = LineString([(1, 5), (-2, 3), (4, 0)])
        assert line.envelope == Envelope(-2, 0, 4, 5)

    def test_interpolate_endpoints(self):
        line = LineString([(0, 0), (10, 0)])
        assert line.interpolate(0.0) == (0.0, 0.0)
        assert line.interpolate(1.0) == (10.0, 0.0)
        assert line.interpolate(0.25) == (2.5, 0.0)

    def test_interpolate_multi_segment(self):
        line = LineString([(0, 0), (10, 0), (10, 10)])
        assert line.interpolate(0.5) == (10.0, 0.0)

    def test_interpolate_out_of_range(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0), (1, 0)]).interpolate(1.5)


class TestLinearRing:
    def test_auto_closure(self):
        ring = LinearRing([(0, 0), (1, 0), (0, 1)])
        assert ring.num_points == 4
        assert np.array_equal(ring.coords[0], ring.coords[-1])

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            LinearRing([(0, 0), (1, 1)])

    def test_signed_area_ccw_positive(self):
        ccw = LinearRing([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert ccw.signed_area() == 4.0
        assert ccw.is_ccw()

    def test_signed_area_cw_negative(self):
        cw = LinearRing([(0, 0), (0, 2), (2, 2), (2, 0)])
        assert cw.signed_area() == -4.0
        assert not cw.is_ccw()


class TestPolygon:
    def test_area_square(self, unit_square):
        assert unit_square.area() == 100.0

    def test_area_with_hole(self, square_with_hole):
        assert square_with_hole.area() == 96.0

    def test_num_points_counts_all_rings(self, square_with_hole):
        assert square_with_hole.num_points == 10  # 5 + 5 with closures

    def test_empty(self):
        p = Polygon.empty()
        assert p.is_empty
        assert p.area() == 0.0

    def test_hole_on_empty_shell_rejected(self):
        with pytest.raises(GeometryError):
            Polygon(LinearRing([]), holes=[[(0, 0), (1, 0), (0, 1)]])

    def test_from_envelope(self):
        p = Polygon.from_envelope(Envelope(1, 2, 3, 5))
        assert p.area() == 6.0
        assert p.envelope == Envelope(1, 2, 3, 5)

    def test_from_empty_envelope(self):
        assert Polygon.from_envelope(Envelope.empty()).is_empty

    def test_rings_order(self, square_with_hole):
        rings = square_with_hole.rings
        assert rings[0] is square_with_hole.shell
        assert rings[1] is square_with_hole.holes[0]


class TestMultiGeometries:
    def test_multipoint_of(self):
        mp = MultiPoint.of([(0, 0), (1, 1)])
        assert len(mp) == 2
        assert mp.num_points == 2

    def test_multipoint_type_check(self):
        with pytest.raises(GeometryError):
            MultiPoint([LineString([(0, 0), (1, 1)])])

    def test_multilinestring_length(self):
        mls = MultiLineString(
            [LineString([(0, 0), (3, 4)]), LineString([(0, 0), (0, 2)])]
        )
        assert mls.length() == 7.0

    def test_multipolygon_area(self, unit_square):
        other = Polygon([(20, 20), (22, 20), (22, 22), (20, 22)])
        mp = MultiPolygon([unit_square, other])
        assert mp.area() == 104.0

    def test_envelope_union_of_parts(self, unit_square):
        other = Polygon([(20, 20), (22, 20), (22, 22), (20, 22)])
        mp = MultiPolygon([unit_square, other])
        assert mp.envelope == Envelope(0, 0, 22, 22)

    def test_empty_multi(self):
        assert MultiPolygon([]).is_empty
        assert MultiPolygon([]).envelope.is_empty

    def test_collection_heterogeneous(self, unit_square):
        gc = GeometryCollection([Point(1, 1), unit_square])
        assert len(gc) == 2
        assert gc.geometry_type is GeometryType.GEOMETRYCOLLECTION

    def test_indexing_and_iteration(self):
        mp = MultiPoint.of([(0, 0), (1, 1), (2, 2)])
        assert mp[1] == Point(1, 1)
        assert [p.x for p in mp] == [0.0, 1.0, 2.0]

    def test_equality(self):
        a = MultiPoint.of([(0, 0), (1, 1)])
        b = MultiPoint.of([(0, 0), (1, 1)])
        c = MultiPoint.of([(1, 1), (0, 0)])
        assert a == b
        assert a != c  # order matters for coordinate equality


class TestReprAndHash:
    def test_repr_contains_wkt(self):
        assert "POINT" in repr(Point(1, 2))

    def test_repr_truncates_long_wkt(self):
        ring = [(float(i), float(i * i % 97)) for i in range(30)]
        assert repr(Polygon(ring)).endswith("...>")

    def test_hashable(self, unit_square):
        assert {Point(1, 2), Point(1, 2)} == {Point(1, 2)}
        assert hash(unit_square) == hash(Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]))
