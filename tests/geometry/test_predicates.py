"""Refinement predicates: point-in-polygon, within, intersects."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.algorithms.predicates import (
    intersects,
    point_in_polygon,
    point_in_ring,
    point_on_linestring,
    within,
)


class TestPointInRing:
    def test_inside_outside_boundary(self, unit_square):
        ring = unit_square.shell.coords
        assert point_in_ring(5, 5, ring) == 1
        assert point_in_ring(15, 5, ring) == 0
        assert point_in_ring(0, 5, ring) == 2
        assert point_in_ring(10, 10, ring) == 2

    def test_vertex_is_boundary(self, unit_square):
        assert point_in_ring(0, 0, unit_square.shell.coords) == 2


class TestPointInPolygon:
    def test_simple(self, unit_square):
        assert point_in_polygon(5, 5, unit_square)
        assert not point_in_polygon(-1, 5, unit_square)

    def test_hole_excluded(self, square_with_hole):
        assert not point_in_polygon(5, 5, square_with_hole)
        assert point_in_polygon(2, 2, square_with_hole)

    def test_hole_boundary_counts_as_inside(self, square_with_hole):
        assert point_in_polygon(4, 5, square_with_hole)

    def test_boundary_flag(self, unit_square):
        assert point_in_polygon(0, 5, unit_square, boundary_counts=True)
        assert not point_in_polygon(0, 5, unit_square, boundary_counts=False)

    def test_concave(self, l_shape):
        assert point_in_polygon(2, 2, l_shape)
        assert point_in_polygon(2, 8, l_shape)
        assert point_in_polygon(8, 2, l_shape)
        assert not point_in_polygon(8, 8, l_shape)  # the notch

    def test_empty_polygon(self):
        assert not point_in_polygon(0, 0, Polygon.empty())

    def test_outside_envelope_short_circuit(self, unit_square):
        assert not point_in_polygon(1e9, 1e9, unit_square)

    def test_ray_through_vertex(self):
        # Classic ray-casting corner case: the +x ray passes exactly
        # through a polygon vertex.
        diamond = Polygon([(0, -2), (2, 0), (0, 2), (-2, 0)])
        assert point_in_polygon(0, 0, diamond)
        assert not point_in_polygon(-3, 0, diamond)
        assert not point_in_polygon(3, 0, diamond)


class TestPointOnLineString:
    def test_on_segment(self, diagonal_line):
        assert point_on_linestring(2.5, 2.5, diagonal_line)

    def test_on_vertex(self, diagonal_line):
        assert point_on_linestring(5, 5, diagonal_line)

    def test_off_line(self, diagonal_line):
        assert not point_on_linestring(5, 4, diagonal_line)


class TestWithin:
    def test_point_in_polygon(self, unit_square):
        assert within(Point(1, 1), unit_square)
        assert not within(Point(11, 1), unit_square)

    def test_point_in_multipolygon(self, unit_square):
        far = Polygon([(20, 20), (21, 20), (21, 21), (20, 21)])
        mp = MultiPolygon([unit_square, far])
        assert within(Point(20.5, 20.5), mp)
        assert within(Point(5, 5), mp)
        assert not within(Point(15, 15), mp)

    def test_point_on_linestring(self, diagonal_line):
        assert within(Point(2.5, 2.5), diagonal_line)
        assert not within(Point(0, 1), diagonal_line)

    def test_point_within_point(self):
        assert within(Point(1, 2), Point(1, 2))
        assert not within(Point(1, 2), Point(1, 3))

    def test_multipoint_all_semantics(self, unit_square):
        inside = MultiPoint.of([(1, 1), (2, 2)])
        straddling = MultiPoint.of([(1, 1), (20, 20)])
        assert within(inside, unit_square)
        assert not within(straddling, unit_square)

    def test_linestring_in_polygon(self, unit_square):
        assert within(LineString([(1, 1), (9, 9)]), unit_square)
        assert not within(LineString([(1, 1), (11, 11)]), unit_square)

    def test_linestring_avoiding_hole(self, square_with_hole):
        assert within(LineString([(1, 1), (1, 9)]), square_with_hole)
        assert not within(LineString([(1, 5), (9, 5)]), square_with_hole)

    def test_polygon_in_polygon(self, unit_square):
        inner = Polygon([(2, 2), (8, 2), (8, 8), (2, 8)])
        assert within(inner, unit_square)
        assert not within(unit_square, inner)

    def test_polygon_not_within_when_poking_out(self, unit_square):
        poking = Polygon([(5, 5), (15, 5), (15, 8), (5, 8)])
        assert not within(poking, unit_square)

    def test_polygon_within_excludes_hole_overlap(self, square_with_hole):
        over_hole = Polygon([(3, 3), (7, 3), (7, 7), (3, 7)])
        assert not within(over_hole, square_with_hole)

    def test_empty_never_within(self, unit_square):
        assert not within(Point.empty(), unit_square)
        assert not within(Point(1, 1), Polygon.empty())

    def test_higher_dim_in_lower_dim_is_false(self, unit_square):
        assert not within(unit_square, LineString([(0, 0), (1, 1)]))
        assert not within(unit_square, Point(5, 5))

    def test_unsupported_combination(self, diagonal_line):
        with pytest.raises(GeometryError):
            within(diagonal_line, LineString([(0, 0), (1, 1)]))


class TestIntersects:
    def test_point_polygon(self, unit_square):
        assert intersects(Point(5, 5), unit_square)
        assert intersects(unit_square, Point(5, 5))  # symmetric dispatch
        assert not intersects(Point(50, 5), unit_square)

    def test_lines_crossing(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert intersects(a, b)

    def test_lines_parallel(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 1), (10, 1)])
        assert not intersects(a, b)

    def test_lines_touching_at_endpoint(self):
        a = LineString([(0, 0), (5, 5)])
        b = LineString([(5, 5), (10, 0)])
        assert intersects(a, b)

    def test_line_polygon_crossing(self, unit_square):
        crossing = LineString([(-5, 5), (15, 5)])
        assert intersects(crossing, unit_square)

    def test_line_inside_polygon(self, unit_square):
        inside = LineString([(2, 2), (8, 8)])
        assert intersects(inside, unit_square)

    def test_polygons_overlapping(self, unit_square):
        other = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert intersects(unit_square, other)

    def test_polygons_nested(self, unit_square):
        inner = Polygon([(4, 4), (6, 4), (6, 6), (4, 6)])
        assert intersects(unit_square, inner)
        assert intersects(inner, unit_square)

    def test_polygons_disjoint(self, unit_square):
        far = Polygon([(50, 50), (60, 50), (60, 60), (50, 60)])
        assert not intersects(unit_square, far)

    def test_multi_any_semantics(self, unit_square):
        mp = MultiPoint.of([(50, 50), (5, 5)])
        assert intersects(mp, unit_square)
        mls = MultiLineString([LineString([(50, 50), (60, 60)])])
        assert not intersects(mls, unit_square)

    def test_empty_never_intersects(self, unit_square):
        assert not intersects(Point.empty(), unit_square)

    def test_envelope_short_circuit(self, unit_square):
        assert not intersects(Point(1000, 1000), unit_square)


class TestGeometryMethodSugar:
    def test_within_contains_duality(self, unit_square):
        p = Point(3, 3)
        assert p.within(unit_square)
        assert unit_square.contains(p)
        assert not unit_square.within(p)

    def test_intersects_method(self, unit_square, diagonal_line):
        assert unit_square.intersects(diagonal_line)
