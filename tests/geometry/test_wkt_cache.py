"""The WKT parse memo's bounds: entry cap and byte budget both bite.

An unbounded memo would quietly pin every polygon table ever parsed in
process memory; these tests prove the LRU shrinks under either limit,
that stats track the retained footprint, and that memoisation stays
observation-neutral (``on_parse`` charges fire on hits too).
"""

from __future__ import annotations

import pytest

from repro.geometry.wkt import (
    WKTReader,
    clear_wkt_cache,
    dumps,
    loads,
    set_wkt_cache_limits,
    wkt_cache_stats,
)
from repro.geometry.polygon import Polygon


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_wkt_cache()
    defaults = wkt_cache_stats()
    yield
    set_wkt_cache_limits(
        capacity=defaults["capacity"], byte_budget=defaults["byte_budget"]
    )
    clear_wkt_cache()


def big_polygon_wkt(seed: int, vertices: int = 40) -> str:
    ring = [
        (float(seed * 1000 + i), float(i * i % 97)) for i in range(vertices)
    ]
    ring.append(ring[0])
    return dumps(Polygon(ring))


class TestMemoBounds:
    def test_entry_cap_holds(self):
        set_wkt_cache_limits(capacity=10, byte_budget=1 << 30)
        for seed in range(50):
            loads(big_polygon_wkt(seed))
        stats = wkt_cache_stats()
        assert stats["entries"] <= 10

    def test_byte_budget_holds(self):
        budget = 4096
        set_wkt_cache_limits(capacity=1 << 20, byte_budget=budget)
        for seed in range(50):
            loads(big_polygon_wkt(seed))
        stats = wkt_cache_stats()
        assert 0 < stats["bytes"] <= budget

    def test_eviction_is_lru(self):
        set_wkt_cache_limits(capacity=2, byte_budget=1 << 30)
        first = big_polygon_wkt(1)
        second = big_polygon_wkt(2)
        loads(first)
        loads(second)
        loads(first)  # refresh: second is now the LRU victim
        loads(big_polygon_wkt(3))
        cached_first = loads(first)
        assert cached_first is loads(first)  # still memoised
        entries = wkt_cache_stats()["entries"]
        assert entries == 2

    def test_zero_capacity_disables_memoisation(self):
        set_wkt_cache_limits(capacity=0)
        text = big_polygon_wkt(9)
        a, b = loads(text), loads(text)
        assert a is not b
        assert wkt_cache_stats()["entries"] == 0

    def test_oversized_entry_is_not_retained(self):
        set_wkt_cache_limits(capacity=100, byte_budget=64)
        loads(big_polygon_wkt(4))  # bigger than the whole budget
        assert wkt_cache_stats()["entries"] == 0

    def test_bytes_return_to_zero_after_clear(self):
        loads(big_polygon_wkt(5))
        assert wkt_cache_stats()["bytes"] > 0
        clear_wkt_cache()
        assert wkt_cache_stats()["bytes"] == 0

    def test_shrink_applies_when_limits_tighten(self):
        for seed in range(8):
            loads(big_polygon_wkt(seed))
        assert wkt_cache_stats()["entries"] == 8
        set_wkt_cache_limits(capacity=3)
        assert wkt_cache_stats()["entries"] == 3


class TestMemoNeutrality:
    def test_hits_still_charge_on_parse(self):
        charges = []
        reader = WKTReader(on_parse=charges.append)
        text = big_polygon_wkt(7)
        first = reader.read(text)
        second = reader.read(text)
        assert second is first  # memo hit
        assert charges == [len(text), len(text)]  # both runs billed

    def test_short_texts_never_enter_the_memo(self):
        loads("POINT (1 2)")
        assert wkt_cache_stats()["entries"] == 0
