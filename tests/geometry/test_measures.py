"""Area, length, centroid."""

import pytest

from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.algorithms.measures import area, centroid, length


class TestArea:
    def test_polygon(self, unit_square):
        assert area(unit_square) == 100.0

    def test_polygon_with_hole(self, square_with_hole):
        assert area(square_with_hole) == 96.0

    def test_point_and_line_are_zero(self, diagonal_line):
        assert area(Point(1, 1)) == 0.0
        assert area(diagonal_line) == 0.0

    def test_multipolygon(self, unit_square):
        mp = MultiPolygon([unit_square, Polygon([(20, 0), (22, 0), (22, 2), (20, 2)])])
        assert area(mp) == 104.0


class TestLength:
    def test_linestring(self):
        assert length(LineString([(0, 0), (3, 4), (3, 10)])) == 11.0

    def test_polygon_perimeter(self, unit_square):
        assert length(unit_square) == 40.0

    def test_polygon_with_hole_includes_hole_ring(self, square_with_hole):
        assert length(square_with_hole) == 48.0

    def test_point_is_zero(self):
        assert length(Point(0, 0)) == 0.0

    def test_multilinestring(self):
        mls = MultiLineString([LineString([(0, 0), (3, 4)]), LineString([(0, 0), (1, 0)])])
        assert length(mls) == 6.0


class TestCentroid:
    def test_point(self):
        assert centroid(Point(3, 7)) == Point(3, 7)

    def test_square(self, unit_square):
        assert centroid(unit_square) == Point(5, 5)

    def test_square_with_symmetric_hole_unchanged(self, square_with_hole):
        c = centroid(square_with_hole)
        assert c.x == pytest.approx(5.0)
        assert c.y == pytest.approx(5.0)

    def test_asymmetric_hole_shifts_centroid(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(6, 4), (9, 4), (9, 6), (6, 6)]],
        )
        c = centroid(poly)
        assert c.x < 5.0  # mass removed on the right

    def test_l_shape(self, l_shape):
        c = centroid(l_shape)
        # Decompose: 10x4 bottom bar (area 40, centre (5, 2)) plus 4x6
        # upper arm (area 24, centre (2, 7)).
        assert c.x == pytest.approx((5 * 40 + 2 * 24) / 64)
        assert c.y == pytest.approx((2 * 40 + 7 * 24) / 64)

    def test_linestring_length_weighted(self):
        line = LineString([(0, 0), (10, 0), (10, 2)])
        c = centroid(line)
        assert c.x == pytest.approx((5 * 10 + 10 * 2) / 12)
        assert c.y == pytest.approx((0 * 10 + 1 * 2) / 12)

    def test_multipoint_mean(self):
        mp = MultiPoint.of([(0, 0), (4, 0), (2, 6)])
        assert centroid(mp) == Point(2, 2)

    def test_multipolygon_area_weighted(self):
        small = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        big = Polygon([(10, 0), (13, 0), (13, 3), (10, 3)])
        c = centroid(MultiPolygon([small, big]))
        assert c.x == pytest.approx((0.5 * 1 + 11.5 * 9) / 10)

    def test_empty_geometry(self):
        assert centroid(Point.empty()).is_empty

    def test_method_sugar(self, unit_square):
        assert unit_square.centroid() == Point(5, 5)
