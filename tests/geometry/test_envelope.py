"""Envelope (MBB) behaviour: the filtering phase's core primitive."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.envelope import Envelope


class TestConstruction:
    def test_basic_fields(self):
        env = Envelope(1, 2, 3, 4)
        assert (env.min_x, env.min_y, env.max_x, env.max_y) == (1, 2, 3, 4)

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            Envelope(math.nan, 0, 1, 1)

    def test_empty_is_empty(self):
        assert Envelope.empty().is_empty

    def test_inverted_bounds_are_empty(self):
        assert Envelope(5, 0, 1, 1).is_empty
        assert Envelope(0, 5, 1, 1).is_empty

    def test_of_point_is_degenerate_not_empty(self):
        env = Envelope.of_point(3, 4)
        assert not env.is_empty
        assert env.width == 0.0
        assert env.height == 0.0

    def test_of_points(self):
        env = Envelope.of_points([1, 5, 3], [2, 0, 9])
        assert env == Envelope(1, 0, 5, 9)

    def test_of_points_empty_input(self):
        assert Envelope.of_points([], []).is_empty


class TestMeasures:
    def test_width_height_area(self):
        env = Envelope(0, 0, 4, 3)
        assert env.width == 4
        assert env.height == 3
        assert env.area == 12
        assert env.perimeter == 14

    def test_empty_measures_are_zero(self):
        empty = Envelope.empty()
        assert empty.width == 0.0
        assert empty.height == 0.0
        assert empty.area == 0.0
        assert empty.perimeter == 0.0

    def test_center(self):
        assert Envelope(0, 0, 4, 2).center == (2.0, 1.0)

    def test_center_of_empty_raises(self):
        with pytest.raises(GeometryError):
            Envelope.empty().center


class TestPredicates:
    def test_intersects_overlapping(self):
        assert Envelope(0, 0, 5, 5).intersects(Envelope(3, 3, 8, 8))

    def test_intersects_touching_edge(self):
        # Boundary contact counts (false negatives would lose join rows).
        assert Envelope(0, 0, 5, 5).intersects(Envelope(5, 0, 10, 5))

    def test_intersects_touching_corner(self):
        assert Envelope(0, 0, 5, 5).intersects(Envelope(5, 5, 10, 10))

    def test_disjoint(self):
        assert not Envelope(0, 0, 1, 1).intersects(Envelope(2, 2, 3, 3))

    def test_empty_intersects_nothing(self):
        assert not Envelope.empty().intersects(Envelope(0, 0, 1, 1))
        assert not Envelope(0, 0, 1, 1).intersects(Envelope.empty())

    def test_contains(self):
        assert Envelope(0, 0, 10, 10).contains(Envelope(2, 2, 8, 8))
        assert Envelope(0, 0, 10, 10).contains(Envelope(0, 0, 10, 10))
        assert not Envelope(2, 2, 8, 8).contains(Envelope(0, 0, 10, 10))

    def test_contains_point(self):
        env = Envelope(0, 0, 5, 5)
        assert env.contains_point(2.5, 2.5)
        assert env.contains_point(0, 0)  # boundary included
        assert env.contains_point(5, 5)
        assert not env.contains_point(5.01, 2)


class TestOperations:
    def test_expand_by_grows_all_sides(self):
        env = Envelope(2, 2, 4, 4).expand_by(1)
        assert env == Envelope(1, 1, 5, 5)

    def test_expand_by_negative_can_empty(self):
        assert Envelope(0, 0, 1, 1).expand_by(-2).is_empty

    def test_expand_by_on_empty_stays_empty(self):
        assert Envelope.empty().expand_by(5).is_empty

    def test_union(self):
        a = Envelope(0, 0, 2, 2)
        b = Envelope(5, 5, 6, 6)
        assert a.union(b) == Envelope(0, 0, 6, 6)

    def test_union_with_empty_is_identity(self):
        a = Envelope(0, 0, 2, 2)
        assert a.union(Envelope.empty()) == a
        assert Envelope.empty().union(a) == a

    def test_intersection(self):
        a = Envelope(0, 0, 5, 5)
        b = Envelope(3, 3, 8, 8)
        assert a.intersection(b) == Envelope(3, 3, 5, 5)

    def test_intersection_disjoint_is_empty(self):
        assert Envelope(0, 0, 1, 1).intersection(Envelope(2, 2, 3, 3)).is_empty


class TestDistance:
    def test_distance_overlapping_is_zero(self):
        assert Envelope(0, 0, 5, 5).distance(Envelope(3, 3, 8, 8)) == 0.0

    def test_distance_horizontal(self):
        assert Envelope(0, 0, 1, 1).distance(Envelope(4, 0, 5, 1)) == 3.0

    def test_distance_diagonal(self):
        d = Envelope(0, 0, 1, 1).distance(Envelope(4, 5, 6, 7))
        assert d == pytest.approx(5.0)  # 3-4-5 triangle

    def test_distance_to_empty_is_inf(self):
        assert Envelope(0, 0, 1, 1).distance(Envelope.empty()) == math.inf

    def test_distance_to_point(self):
        env = Envelope(0, 0, 2, 2)
        assert env.distance_to_point(1, 1) == 0.0
        assert env.distance_to_point(5, 1) == 3.0
        assert env.distance_to_point(5, 6) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        a = Envelope(0, 0, 1, 1)
        b = Envelope(7, 3, 9, 4)
        assert a.distance(b) == b.distance(a)
