"""Prepared geometries: fast-path correctness against the plain predicates."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import LineString, MultiPolygon, Point, Polygon
from repro.geometry.algorithms.distance import point_linestring_distance
from repro.geometry.algorithms.predicates import point_in_polygon
from repro.geometry.prepared import PreparedLineString, PreparedPolygon, prepare


def wiggly_polygon(n: int = 200) -> Polygon:
    ring = []
    for i in range(n):
        theta = 2 * math.pi * i / n
        r = 10 * (1 + 0.3 * math.sin(5 * theta))
        ring.append((r * math.cos(theta), r * math.sin(theta)))
    ring.append(ring[0])
    return Polygon(ring)


class TestPreparedPolygon:
    def test_agrees_with_plain_predicate_small(self, unit_square, random_points):
        prepared = PreparedPolygon(unit_square)
        for p in random_points:
            assert prepared.contains_point(p.x, p.y) == point_in_polygon(
                p.x, p.y, unit_square
            )

    def test_agrees_with_plain_predicate_large(self, rng):
        poly = wiggly_polygon(300)  # forces the vectorised strip path
        prepared = PreparedPolygon(poly)
        for _ in range(300):
            x = rng.uniform(-14, 14)
            y = rng.uniform(-14, 14)
            assert prepared.contains_point(x, y) == point_in_polygon(x, y, poly)

    def test_agrees_with_holes(self, square_with_hole, random_points):
        prepared = PreparedPolygon(square_with_hole)
        for p in random_points:
            assert prepared.contains_point(p.x, p.y) == point_in_polygon(
                p.x, p.y, square_with_hole
            )

    def test_boundary_points_contained(self, unit_square):
        prepared = PreparedPolygon(unit_square)
        assert prepared.contains_point(0, 5)
        assert prepared.contains_point(10, 10)

    def test_explicit_strip_count(self, unit_square, random_points):
        for strips in (1, 2, 7):
            prepared = PreparedPolygon(unit_square, num_strips=strips)
            for p in random_points[:50]:
                assert prepared.contains_point(p.x, p.y) == point_in_polygon(
                    p.x, p.y, unit_square
                )

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            PreparedPolygon(Polygon.empty())

    def test_edge_count(self, square_with_hole):
        assert PreparedPolygon(square_with_hole).edge_count == 8

    def test_count_edges_tested_bounded(self):
        poly = wiggly_polygon(300)
        prepared = PreparedPolygon(poly)
        assert prepared.count_edges_tested(0.0) <= prepared.edge_count


class TestPreparedLineString:
    def test_distance_agrees(self, diagonal_line, rng):
        prepared = PreparedLineString(diagonal_line)
        for _ in range(200):
            x = rng.uniform(-5, 15)
            y = rng.uniform(-5, 15)
            assert prepared.distance_to_point(x, y) == pytest.approx(
                point_linestring_distance(x, y, diagonal_line), abs=1e-12
            )

    def test_long_line_vectorized_path(self, rng):
        coords = [(i * 1.0, math.sin(i / 3.0)) for i in range(100)]
        line = LineString(coords)
        prepared = PreparedLineString(line)
        assert prepared._segment_tuples is None  # vectorised path in use
        for _ in range(100):
            x = rng.uniform(-5, 105)
            y = rng.uniform(-3, 3)
            assert prepared.distance_to_point(x, y) == pytest.approx(
                point_linestring_distance(x, y, line), abs=1e-9
            )

    def test_within_distance(self, diagonal_line):
        prepared = PreparedLineString(diagonal_line)
        assert prepared.within_distance(5, 6, 1.0)
        assert not prepared.within_distance(5, 6, 0.5)

    def test_within_distance_counted_early_exit(self):
        # A point close to the FIRST segment must not examine all of them.
        coords = [(float(i), 0.0) for i in range(10)]
        prepared = PreparedLineString(LineString(coords))
        result, examined = prepared.within_distance_counted(0.5, 0.1, 0.5)
        assert result
        assert examined == 1

    def test_within_distance_counted_envelope_prune(self, diagonal_line):
        prepared = PreparedLineString(diagonal_line)
        result, examined = prepared.within_distance_counted(100, 100, 1.0)
        assert not result
        assert examined == 1  # only the envelope check

    def test_within_distance_counted_no_match_scans_all(self):
        # Zigzag line: the probe sits within the envelope (so the prune
        # does not fire) but beyond the threshold of every segment.
        coords = [(float(i), 2.0 if i % 2 else 0.0) for i in range(10)]
        prepared = PreparedLineString(LineString(coords))
        result, examined = prepared.within_distance_counted(20.0, 1.0, 11.0)
        assert not result
        assert examined == 9

    def test_counted_vectorized_matches_scalar(self, rng):
        coords = [(i * 1.0, math.sin(i)) for i in range(80)]
        line = LineString(coords)
        prepared = PreparedLineString(line)
        for _ in range(100):
            x = rng.uniform(0, 80)
            y = rng.uniform(-2, 2)
            result, _ = prepared.within_distance_counted(x, y, 0.8)
            assert result == (point_linestring_distance(x, y, line) <= 0.8)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            PreparedLineString(LineString.empty())


class TestPrepareDispatch:
    def test_polygon(self, unit_square):
        assert isinstance(prepare(unit_square), PreparedPolygon)

    def test_linestring(self, diagonal_line):
        assert isinstance(prepare(diagonal_line), PreparedLineString)

    def test_multipolygon(self, unit_square):
        handles = prepare(MultiPolygon([unit_square]))
        assert isinstance(handles, list)
        assert isinstance(handles[0], PreparedPolygon)

    def test_point_passthrough(self):
        p = Point(1, 2)
        assert prepare(p) is p

    def test_unsupported(self):
        from repro.geometry import GeometryCollection

        with pytest.raises(GeometryError):
            prepare(GeometryCollection([]))
