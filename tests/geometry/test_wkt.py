"""WKT parser/writer tests, including the dirty-row tolerance of Fig 2."""

import pytest

from repro.errors import WKTParseError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkt_dumps,
    wkt_loads,
)
from repro.geometry.wkt import WKTReader, WKTWriter


class TestParsePoint:
    def test_simple(self):
        assert wkt_loads("POINT (1 2)") == Point(1, 2)

    def test_case_insensitive(self):
        assert wkt_loads("point (1 2)") == Point(1, 2)

    def test_negative_and_scientific(self):
        p = wkt_loads("POINT (-1.5e2 3.25)")
        assert p == Point(-150.0, 3.25)

    def test_empty(self):
        assert wkt_loads("POINT EMPTY").is_empty

    def test_extra_whitespace(self):
        assert wkt_loads("  POINT   (  1   2  )  ") == Point(1, 2)


class TestParseLineString:
    def test_simple(self):
        line = wkt_loads("LINESTRING (0 0, 1 1, 2 0)")
        assert isinstance(line, LineString)
        assert line.num_points == 3

    def test_empty(self):
        assert wkt_loads("LINESTRING EMPTY").is_empty


class TestParsePolygon:
    def test_shell_only(self):
        poly = wkt_loads("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
        assert isinstance(poly, Polygon)
        assert poly.area() == 16.0
        assert not poly.holes

    def test_with_hole(self):
        poly = wkt_loads(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        assert len(poly.holes) == 1
        assert poly.area() == 96.0

    def test_unclosed_ring_is_closed(self):
        poly = wkt_loads("POLYGON ((0 0, 4 0, 4 4, 0 4))")
        assert poly.area() == 16.0

    def test_empty(self):
        assert wkt_loads("POLYGON EMPTY").is_empty


class TestParseMulti:
    def test_multipoint_with_parens(self):
        mp = wkt_loads("MULTIPOINT ((1 2), (3 4))")
        assert isinstance(mp, MultiPoint)
        assert len(mp) == 2

    def test_multipoint_bare(self):
        mp = wkt_loads("MULTIPOINT (1 2, 3 4)")
        assert len(mp) == 2
        assert mp[1] == Point(3, 4)

    def test_multilinestring(self):
        mls = wkt_loads("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))")
        assert isinstance(mls, MultiLineString)
        assert [part.num_points for part in mls] == [2, 3]

    def test_multipolygon(self):
        mp = wkt_loads(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))"
        )
        assert isinstance(mp, MultiPolygon)
        assert mp.area() == 2.0

    def test_multipolygon_with_holes(self):
        mp = wkt_loads(
            "MULTIPOLYGON (((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4)))"
        )
        assert mp.area() == 96.0

    def test_collection(self):
        gc = wkt_loads("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))")
        assert isinstance(gc, GeometryCollection)
        assert len(gc) == 2

    def test_empty_variants(self):
        for tag in ("MULTIPOINT", "MULTILINESTRING", "MULTIPOLYGON",
                    "GEOMETRYCOLLECTION"):
            assert wkt_loads(f"{tag} EMPTY").is_empty


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "CIRCLE (0 0, 5)",
            "POINT 1 2",
            "POINT (1)",
            "POINT (1 2",
            "POINT (1 2) trailing",
            "POLYGON (0 0, 1 1)",
            "LINESTRING (0 0 1 1)",
            "POINT (a b)",
            "POINT (1 2)) ",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(WKTParseError):
            wkt_loads(bad)

    def test_try_read_returns_none(self):
        reader = WKTReader()
        assert reader.try_read("GARBAGE") is None
        assert reader.try_read("POINT (1 2)") == Point(1, 2)

    def test_error_carries_position(self):
        with pytest.raises(WKTParseError) as info:
            wkt_loads("POINT (1 x)")
        assert info.value.position is not None

    def test_non_string_input(self):
        with pytest.raises(WKTParseError):
            WKTReader().read(42)


class TestWriter:
    def test_roundtrip_point(self):
        assert wkt_loads(wkt_dumps(Point(1.5, -2.25))) == Point(1.5, -2.25)

    def test_roundtrip_polygon_with_hole(self, square_with_hole):
        assert wkt_loads(wkt_dumps(square_with_hole)) == square_with_hole

    def test_roundtrip_all_empties(self):
        for text in ("POINT EMPTY", "LINESTRING EMPTY", "POLYGON EMPTY",
                     "MULTIPOLYGON EMPTY"):
            assert wkt_dumps(wkt_loads(text)) == text

    def test_integer_coordinates_have_no_decimal(self):
        assert wkt_dumps(Point(1, 2)) == "POINT (1 2)"

    def test_precision_rounds(self):
        text = wkt_dumps(Point(1.23456789, 2.0), precision=3)
        assert text == "POINT (1.235 2)"

    def test_writer_precision_strips_trailing_zeros(self):
        writer = WKTWriter(precision=4)
        assert writer.write(Point(1.5, 2.25)) == "POINT (1.5 2.25)"

    def test_collection_roundtrip(self):
        gc = GeometryCollection([Point(1, 2), LineString([(0, 0), (1, 1)])])
        assert wkt_loads(wkt_dumps(gc)) == gc


class TestParseCallback:
    def test_on_parse_counts_characters(self):
        counted = []
        reader = WKTReader(on_parse=counted.append)
        text = "POINT (1 2)"
        reader.read(text)
        assert counted == [len(text)]

    def test_on_parse_not_called_on_failure(self):
        counted = []
        reader = WKTReader(on_parse=counted.append)
        assert reader.try_read("NOPE") is None
        assert counted == []
