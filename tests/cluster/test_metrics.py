"""Unit tests for the task/stage/query metrics hierarchy."""

import math

from repro.cluster.metrics import QueryMetrics, StageMetrics, TaskMetrics
from repro.cluster.model import CostModel, Resource


def make_task(**counts) -> TaskMetrics:
    task = TaskMetrics()
    for resource, units in counts.items():
        task.add(resource, units)
    return task


class TestTaskMetrics:
    def test_add_accumulates(self):
        task = TaskMetrics()
        task.add(Resource.HDFS_BYTES, 100.0)
        task.add(Resource.HDFS_BYTES, 50.0)
        assert task.get(Resource.HDFS_BYTES) == 150.0

    def test_get_defaults_to_zero(self):
        assert TaskMetrics().get(Resource.WKT_BYTES) == 0.0

    def test_merge(self):
        a = make_task(**{Resource.HDFS_BYTES: 10.0, Resource.ROWS_OUT: 3.0})
        b = make_task(**{Resource.HDFS_BYTES: 5.0, Resource.WKT_BYTES: 7.0})
        a.merge(b)
        assert a.get(Resource.HDFS_BYTES) == 15.0
        assert a.get(Resource.ROWS_OUT) == 3.0
        assert a.get(Resource.WKT_BYTES) == 7.0
        # The merged-from task is untouched.
        assert b.get(Resource.HDFS_BYTES) == 5.0

    def test_seconds_uses_cost_model(self):
        model = CostModel()
        task = make_task(**{Resource.HDFS_BYTES: 1000.0})
        assert task.seconds(model) == model.task_seconds({Resource.HDFS_BYTES: 1000.0})


class TestStageMetrics:
    def test_total_task_seconds_sums_tasks(self):
        model = CostModel()
        stage = StageMetrics(name="s")
        stage.tasks = [
            make_task(**{Resource.HDFS_BYTES: 100.0}),
            make_task(**{Resource.HDFS_BYTES: 300.0}),
        ]
        expected = sum(t.seconds(model) for t in stage.tasks)
        assert math.isclose(stage.total_task_seconds(model), expected)

    def test_skew_stats(self):
        model = CostModel()
        stage = StageMetrics(name="s")
        stage.tasks = [
            make_task(**{Resource.HDFS_BYTES: 100.0}),
            make_task(**{Resource.HDFS_BYTES: 100.0}),
            make_task(**{Resource.HDFS_BYTES: 400.0}),
        ]
        assert stage.max_task_seconds(model) == make_task(
            **{Resource.HDFS_BYTES: 400.0}
        ).seconds(model)
        assert math.isclose(stage.skew(model), 4.0)

    def test_skew_degenerate_cases(self):
        model = CostModel()
        assert StageMetrics(name="empty").skew(model) == 1.0
        zero = StageMetrics(name="zero", tasks=[TaskMetrics()])
        assert zero.skew(model) == 1.0

    def test_counter_totals(self):
        stage = StageMetrics(name="s")
        stage.tasks = [
            make_task(**{Resource.ROWS_OUT: 2.0}),
            make_task(**{Resource.ROWS_OUT: 3.0, Resource.WKT_BYTES: 10.0}),
        ]
        assert stage.counter_totals() == {
            Resource.ROWS_OUT: 5.0,
            Resource.WKT_BYTES: 10.0,
        }


class TestQueryMetrics:
    def make_query(self) -> QueryMetrics:
        query = QueryMetrics(name="q", overhead_seconds=1.5)
        s1 = StageMetrics(name="scan", makespan_seconds=4.0, overhead_seconds=0.5)
        s1.tasks = [make_task(**{Resource.HDFS_BYTES: 100.0})]
        s2 = StageMetrics(name="probe", makespan_seconds=10.0)
        s2.tasks = [make_task(**{Resource.ROWS_OUT: 7.0})]
        query.add_stage(s1)
        query.add_stage(s2)
        return query

    def test_simulated_seconds(self):
        assert self.make_query().simulated_seconds == 1.5 + 4.0 + 0.5 + 10.0

    def test_totals(self):
        totals = self.make_query().totals()
        assert totals[Resource.HDFS_BYTES] == 100.0
        assert totals[Resource.ROWS_OUT] == 7.0

    def test_to_profile_children_sum_to_total(self):
        query = self.make_query()
        profile = query.to_profile(CostModel())
        assert profile.metrics is query
        phases = profile.phase_seconds()
        assert math.isclose(sum(phases.values()), query.simulated_seconds)
        # Overhead surfaces as its own node; stages keep their names.
        assert phases["query-overhead"] == 1.5
        assert phases["scan"] == 4.5
        assert phases["probe"] == 10.0

    def test_to_profile_carries_skew_stats_and_counters(self):
        profile = self.make_query().to_profile(CostModel())
        node = profile.find("scan")
        assert node is not None
        assert node.info["tasks"] == 1
        assert node.info["skew"] == 1.0
        assert node.counters[Resource.HDFS_BYTES] == 100.0
