"""Cluster model: specs, cost accounting, makespan simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterSpec,
    CostModel,
    EC2_G2_2XLARGE,
    QueryMetrics,
    Resource,
    StageMetrics,
    TaskMetrics,
    parallel_efficiency,
    simulate_dynamic,
    simulate_static_chunked,
    simulate_static_round_robin,
)
from repro.errors import BenchError


class TestClusterSpec:
    def test_paper_fleet(self):
        spec = EC2_G2_2XLARGE(10)
        assert spec.total_cores == 80
        assert spec.mem_per_node_gb == 15.0

    def test_scaled(self):
        spec = EC2_G2_2XLARGE(10).scaled(4)
        assert spec.num_nodes == 4
        assert spec.cores_per_node == 8

    def test_validation(self):
        with pytest.raises(BenchError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(BenchError):
            ClusterSpec(num_nodes=1, cores_per_node=0)


class TestCostModel:
    def test_task_seconds_scales_with_work_scale(self):
        fast = CostModel(work_scale=1.0)
        slow = CostModel(work_scale=100.0)
        counts = {Resource.WKT_BYTES: 1000.0}
        assert slow.task_seconds(counts) == pytest.approx(
            100.0 * fast.task_seconds(counts)
        )

    def test_unknown_resource_rejected(self):
        with pytest.raises(BenchError):
            CostModel().task_seconds({"warp_drive": 1.0})

    def test_empty_counts_is_zero(self):
        assert CostModel().task_seconds({}) == 0.0

    def test_slow_refinement_dearer_than_fast(self):
        model = CostModel()
        fast = model.task_seconds({Resource.REFINE_VERTEX_FAST: 100.0})
        slow = model.task_seconds(
            {Resource.REFINE_VERTEX_SLOW: 100.0, Resource.REFINE_ALLOC: 100.0}
        )
        # The calibrated JTS-vs-GEOS micro gap of Section V.B (3.3-3.9x).
        assert 3.0 <= slow / fast <= 4.5


class TestTaskMetrics:
    def test_add_and_get(self):
        task = TaskMetrics()
        task.add(Resource.WKT_BYTES, 10)
        task.add(Resource.WKT_BYTES, 5)
        assert task.get(Resource.WKT_BYTES) == 15
        assert task.get(Resource.ROWS_OUT) == 0.0

    def test_merge(self):
        a = TaskMetrics({Resource.WKT_BYTES: 10})
        b = TaskMetrics({Resource.WKT_BYTES: 2, Resource.ROWS_OUT: 1})
        a.merge(b)
        assert a.get(Resource.WKT_BYTES) == 12
        assert a.get(Resource.ROWS_OUT) == 1

    def test_query_metrics_aggregation(self):
        query = QueryMetrics("q")
        stage = StageMetrics("s")
        stage.tasks.append(TaskMetrics({Resource.ROWS_OUT: 5}))
        stage.tasks.append(TaskMetrics({Resource.ROWS_OUT: 7}))
        stage.makespan_seconds = 2.0
        stage.overhead_seconds = 0.5
        query.add_stage(stage)
        query.overhead_seconds = 1.0
        assert query.simulated_seconds == pytest.approx(3.5)
        assert query.totals() == {Resource.ROWS_OUT: 12}


class TestSimulation:
    def test_dynamic_single_worker_is_sum(self):
        assert simulate_dynamic([1, 2, 3], 1) == 6.0

    def test_dynamic_many_workers_is_max(self):
        assert simulate_dynamic([1, 2, 3], 10) == 3.0

    def test_dynamic_balances(self):
        # 4 tasks of 1s on 2 workers -> 2s.
        assert simulate_dynamic([1, 1, 1, 1], 2) == 2.0

    def test_dynamic_per_task_overhead(self):
        assert simulate_dynamic([1, 1], 2, per_task_overhead=0.5) == 1.5

    def test_dynamic_empty(self):
        assert simulate_dynamic([], 4) == 0.0

    def test_round_robin_straggles_on_periodic_skew(self):
        # Expensive task every third position, aligned with 3 workers:
        # round-robin piles all of them on worker 0.
        tasks = [10, 1, 1] * 6
        static = simulate_static_round_robin(tasks, 3)
        dynamic = simulate_dynamic(tasks, 3)
        assert static == 60.0
        assert dynamic < static

    def test_chunked_straggles_on_clustered_skew(self):
        # All the expensive tasks sit in one contiguous run (spatially
        # sorted data): contiguous chunking gives them to one worker.
        tasks = [10.0] * 8 + [1.0] * 24
        chunked = simulate_static_chunked(tasks, 4)
        dynamic = simulate_dynamic(tasks, 4)
        assert chunked == 80.0
        assert dynamic < chunked

    def test_chunked_even_split(self):
        assert simulate_static_chunked([1.0] * 8, 4) == 2.0

    def test_chunked_remainder_distribution(self):
        # 10 equal tasks over 4 workers: chunks of 3,3,2,2.
        assert simulate_static_chunked([1.0] * 10, 4) == 3.0

    def test_workers_validation(self):
        with pytest.raises(BenchError):
            simulate_dynamic([1.0], 0)
        with pytest.raises(BenchError):
            simulate_static_round_robin([1.0], 0)
        with pytest.raises(BenchError):
            simulate_static_chunked([1.0], 0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=150, deadline=None)
    def test_makespan_bounds(self, tasks, workers):
        """Any schedule sits between max(task) and sum(tasks)."""
        lower = max(tasks)
        upper = sum(tasks)
        for policy in (
            simulate_dynamic,
            simulate_static_round_robin,
            simulate_static_chunked,
        ):
            makespan = policy(tasks, workers)
            assert lower - 1e-9 <= makespan <= upper + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=150, deadline=None)
    def test_dynamic_at_most_twice_optimal(self, tasks, workers):
        """Greedy list scheduling is a 2-approximation of the optimum."""
        optimal_lower = max(max(tasks), sum(tasks) / workers)
        assert simulate_dynamic(tasks, workers) <= 2 * optimal_lower + 1e-9


class TestParallelEfficiency:
    def test_perfect_scaling(self):
        assert parallel_efficiency(100.0, 4, 40.0, 10) == pytest.approx(1.0)

    def test_no_scaling(self):
        assert parallel_efficiency(100.0, 4, 100.0, 10) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(BenchError):
            parallel_efficiency(0.0, 4, 10.0, 10)
