"""Vectorized Impala execution: same rows, same bills, batch or scalar.

``batch_refine`` switches the spatial join node and filter node onto the
columnar path; these tests pin down that rows, row order, and simulated
seconds are identical either way, that ``batch_size`` plumbs through the
exec nodes, and that conjunct vectorization falls back to the scalar
interpreter whenever it cannot reproduce its semantics exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterSpec, CostModel
from repro.errors import ImpalaError
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala import ColumnType, ImpalaBackend
from repro.impala.ast_nodes import BinaryOp, ColumnRef, Literal
from repro.impala.exec_nodes import FilterNode, InstanceContext
from repro.impala.exprs import Slot, TupleDescriptor, vectorize_conjuncts
from repro.impala.rowbatch import BATCH_SIZE, RowBatch, batches_of


@pytest.fixture
def city():
    rng = random.Random(99)
    fs = SimulatedHDFS(block_size=2048)
    points = [f"{i}\tPOINT ({rng.uniform(0, 100)} {rng.uniform(0, 100)})"
              for i in range(400)]
    write_text(fs, "/pnt.txt", points)
    polys = []
    pid = 0
    for row in range(4):
        for col in range(4):
            x0, y0 = col * 25, row * 25
            polys.append(
                f"{pid}\tPOLYGON (({x0} {y0}, {x0+25} {y0}, {x0+25} {y0+25}, "
                f"{x0} {y0+25}, {x0} {y0}))\t{pid % 3}"
            )
            pid += 1
    write_text(fs, "/poly.txt", polys)
    return fs


def make_backend(city, nodes=2, **kwargs) -> ImpalaBackend:
    backend = ImpalaBackend(ClusterSpec(nodes, 4), hdfs=city, **kwargs)
    backend.metastore.create_table(
        "pnt", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)], "/pnt.txt"
    )
    backend.metastore.create_table(
        "poly",
        [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING),
         ("zone", ColumnType.BIGINT)],
        "/poly.txt",
    )
    return backend


QUERIES = [
    "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
    "WHERE ST_WITHIN(pnt.geom, poly.geom)",
    "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
    "WHERE ST_NEARESTD(pnt.geom, poly.geom, 5.0)",
    "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
    "WHERE ST_WITHIN(pnt.geom, poly.geom) AND poly.zone = 1",
    "SELECT id FROM pnt WHERE id < 25",
]


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize("engine", ["fast", "slow"])
    def test_rows_and_runtime_identical(self, city, sql, engine):
        batch = make_backend(city, engine=engine, batch_refine=True).execute(sql)
        scalar = make_backend(city, engine=engine, batch_refine=False).execute(sql)
        assert batch.rows == scalar.rows  # values AND order
        assert batch.simulated_seconds == scalar.simulated_seconds

    def test_custom_cost_model_still_identical(self, city):
        model = CostModel(work_scale=72_000.0)
        sql = QUERIES[0]
        batch = make_backend(city, cost_model=model, batch_refine=True).execute(sql)
        scalar = make_backend(city, cost_model=model, batch_refine=False).execute(sql)
        assert batch.rows == scalar.rows
        assert batch.simulated_seconds == scalar.simulated_seconds


class TestBatchSizePlumbing:
    def test_small_batch_same_rows(self, city):
        sql = QUERIES[0]
        default = make_backend(city).execute(sql)
        small = make_backend(city, batch_size=7).execute(sql)
        assert small.rows == default.rows

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "1024"])
    def test_backend_rejects_bad_batch_size(self, city, bad):
        with pytest.raises(ImpalaError):
            ImpalaBackend(ClusterSpec(1, 2), hdfs=city, batch_size=bad)

    def test_rowbatch_capacity_validation(self):
        with pytest.raises(ImpalaError):
            RowBatch(capacity=0)

    def test_batches_of_validation(self):
        with pytest.raises(ImpalaError):
            list(batches_of([(1,)], batch_size=0))
        batches = list(batches_of([(i,) for i in range(10)], batch_size=4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert all(b.capacity == 4 for b in batches)

    def test_rowbatch_columns(self):
        batch = RowBatch([(1, "a"), (2, "b")])
        assert batch.column(0) == [1, 2]
        assert batch.columns() == [[1, 2], ["a", "b"]]
        assert RowBatch().columns() == []


class _StubChild:
    def __init__(self, batches):
        self._batches = batches

    def batches(self):
        yield from self._batches


def _ctx() -> InstanceContext:
    return InstanceContext(node_id=0, cores=4, cost_model=CostModel())


class TestFilterNodeVectorized:
    ROWS = [(i, float(i) * 0.5) for i in range(10)]

    def test_mask_matches_scalar_predicate(self):
        predicate = lambda row: row[0] < 5  # noqa: E731
        child = _StubChild([RowBatch(list(self.ROWS), capacity=BATCH_SIZE)])
        scalar_node = FilterNode(_ctx(), child, predicate)
        scalar = [r for b in scalar_node.batches() for r in b]

        child = _StubChild([RowBatch(list(self.ROWS), capacity=BATCH_SIZE)])
        vector_node = FilterNode(
            _ctx(),
            child,
            predicate,
            vector_predicate=lambda cols: [v < 5 for v in cols[0]],
        )
        assert [r for b in vector_node.batches() for r in b] == scalar

    def test_none_mask_falls_back_to_scalar(self):
        calls = []

        def predicate(row):
            calls.append(row)
            return row[0] < 5

        child = _StubChild([RowBatch(list(self.ROWS), capacity=BATCH_SIZE)])
        node = FilterNode(_ctx(), child, predicate, vector_predicate=lambda cols: None)
        kept = [r for b in node.batches() for r in b]
        assert kept == self.ROWS[:5]
        assert len(calls) == len(self.ROWS)  # every row went through the scalar path

    def test_filter_charges_no_time(self):
        ctx = _ctx()
        child = _StubChild([RowBatch(list(self.ROWS), capacity=BATCH_SIZE)])
        node = FilterNode(
            ctx,
            child,
            lambda row: True,
            vector_predicate=lambda cols: [True] * len(cols[0]),
        )
        list(node.batches())
        assert ctx.serial_seconds == 0.0
        assert ctx.parallel_seconds == 0.0


class TestVectorizeConjuncts:
    DESCRIPTOR = TupleDescriptor([Slot("t", "id"), Slot("t", "name")])

    def conjunct(self, op, column="id", value=5):
        return BinaryOp(op, ColumnRef("t", column), Literal(value))

    def test_numeric_comparisons_vectorize(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            vector = vectorize_conjuncts([self.conjunct(op)], self.DESCRIPTOR)
            assert vector is not None
            mask = vector([[1, 5, 9], ["a", "b", "c"]])
            expected = {
                "=": [False, True, False],
                "<>": [True, False, True],
                "<": [True, False, False],
                "<=": [True, True, False],
                ">": [False, False, True],
                ">=": [False, True, True],
            }[op]
            assert list(mask) == expected

    def test_flipped_operands(self):
        conjunct = BinaryOp("<", Literal(5), ColumnRef("t", "id"))
        vector = vectorize_conjuncts([conjunct], self.DESCRIPTOR)
        assert list(vector([[1, 5, 9], ["a", "b", "c"]])) == [False, False, True]

    def test_multiple_conjuncts_and_together(self):
        vector = vectorize_conjuncts(
            [self.conjunct(">", value=2), self.conjunct("<", value=8)],
            self.DESCRIPTOR,
        )
        assert list(vector([[1, 5, 9], ["a", "b", "c"]])) == [False, True, False]

    def test_string_column_falls_back_at_runtime(self):
        # Vectorization compiles (the literal is numeric) but must bail at
        # runtime on a non-numeric column: numpy would happily coerce
        # digit-strings where the scalar interpreter raises.
        vector = vectorize_conjuncts(
            [self.conjunct("=", column="name")], self.DESCRIPTOR
        )
        assert vector([[1, 2, 3], ["7", "8", "9"]]) is None

    def test_non_numeric_literal_not_vectorized(self):
        conjunct = self.conjunct("=", column="name", value="abc")
        assert vectorize_conjuncts([conjunct], self.DESCRIPTOR) is None

    def test_bool_literal_not_vectorized(self):
        assert vectorize_conjuncts([self.conjunct("=", value=True)],
                                   self.DESCRIPTOR) is None

    def test_unsupported_shape_not_vectorized(self):
        both_columns = BinaryOp("<", ColumnRef("t", "id"), ColumnRef("t", "id"))
        assert vectorize_conjuncts([both_columns], self.DESCRIPTOR) is None
        arithmetic = BinaryOp(
            "<",
            BinaryOp("+", ColumnRef("t", "id"), Literal(1)),
            Literal(5),
        )
        assert vectorize_conjuncts([arithmetic], self.DESCRIPTOR) is None

    def test_empty_conjuncts_not_vectorized(self):
        assert vectorize_conjuncts([], self.DESCRIPTOR) is None
