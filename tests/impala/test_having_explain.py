"""HAVING and EXPLAIN — SQL surface beyond the paper's minimal dialect."""

import random

import pytest

from repro.cluster import ClusterSpec
from repro.errors import PlanError
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala import ColumnType, ImpalaBackend


@pytest.fixture(scope="module")
def backend():
    rng = random.Random(42)
    fs = SimulatedHDFS()
    write_text(
        fs, "/p.txt",
        [f"{i}\tPOINT ({rng.uniform(0, 90)} {rng.uniform(0, 90)})" for i in range(300)],
    )
    polys = []
    for row in range(3):
        for col in range(3):
            x0, y0 = col * 30, row * 30
            polys.append(
                f"{row * 3 + col}\tPOLYGON (({x0} {y0}, {x0+30} {y0}, "
                f"{x0+30} {y0+30}, {x0} {y0+30}, {x0} {y0}))"
            )
    write_text(fs, "/z.txt", polys)
    backend = ImpalaBackend(ClusterSpec(2, 4), hdfs=fs)
    schema = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
    backend.metastore.create_table("p", schema, "/p.txt")
    backend.metastore.create_table("z", schema, "/z.txt")
    return backend


JOIN_AGG = (
    "SELECT z.id, COUNT(*) AS n FROM p SPATIAL JOIN z "
    "WHERE ST_WITHIN(p.geom, z.geom) GROUP BY z.id"
)


class TestHaving:
    def test_filters_groups(self, backend):
        unfiltered = backend.execute(JOIN_AGG)
        threshold = sorted(n for _, n in unfiltered.rows)[len(unfiltered.rows) // 2]
        filtered = backend.execute(f"{JOIN_AGG} HAVING COUNT(*) > {threshold}")
        expected = [(z, n) for z, n in unfiltered.rows if n > threshold]
        assert sorted(filtered.rows) == sorted(expected)

    def test_alias_reference(self, backend):
        by_call = backend.execute(f"{JOIN_AGG} HAVING COUNT(*) >= 30")
        by_alias = backend.execute(f"{JOIN_AGG} HAVING n >= 30")
        assert sorted(by_call.rows) == sorted(by_alias.rows)

    def test_group_key_reference(self, backend):
        result = backend.execute(f"{JOIN_AGG} HAVING z.id < 3")
        assert all(z < 3 for z, _ in result.rows)

    def test_compound_condition(self, backend):
        result = backend.execute(f"{JOIN_AGG} HAVING n > 20 AND z.id < 6")
        assert all(n > 20 and z < 6 for z, n in result.rows)

    def test_arithmetic_in_having(self, backend):
        doubled = backend.execute(f"{JOIN_AGG} HAVING n * 2 > 60")
        plain = backend.execute(f"{JOIN_AGG} HAVING n > 30")
        assert sorted(doubled.rows) == sorted(plain.rows)

    def test_having_with_order_and_limit(self, backend):
        result = backend.execute(
            f"{JOIN_AGG} HAVING n > 10 ORDER BY n DESC LIMIT 3"
        )
        values = [n for _, n in result.rows]
        assert len(values) <= 3
        assert values == sorted(values, reverse=True)

    def test_having_without_aggregate_rejected(self, backend):
        with pytest.raises(PlanError):
            backend.execute("SELECT id FROM p HAVING id > 3")

    def test_having_on_ungrouped_column_rejected(self, backend):
        with pytest.raises(PlanError):
            backend.execute(f"{JOIN_AGG} HAVING p.id > 3")


class TestExplain:
    def test_join_plan_structure(self, backend):
        result = backend.execute(
            "EXPLAIN SELECT p.id, z.id FROM p SPATIAL JOIN z "
            "WHERE ST_WITHIN(p.geom, z.geom) AND p.id < 10"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert result.columns == ["Explain"]
        assert "SPATIAL JOIN [R-tree, BROADCAST]" in text
        assert "SCAN z [BROADCAST]" in text
        assert "SCAN p" in text
        assert "(p.id < 10)" in text

    def test_cross_join_plan(self, backend):
        result = backend.execute(
            "EXPLAIN SELECT p.id FROM p INNER JOIN z ON ST_WITHIN(p.geom, z.geom)"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "CROSS JOIN [single-core, BROADCAST]" in text

    def test_aggregate_plan(self, backend):
        result = backend.execute(f"EXPLAIN {JOIN_AGG} HAVING n > 5")
        text = "\n".join(row[0] for row in result.rows)
        assert "AGGREGATE [FINALIZE]" in text
        assert "AGGREGATE [PARTIAL]" in text
        assert "HAVING" in text

    def test_explain_does_not_execute(self, backend):
        result = backend.execute("EXPLAIN SELECT id FROM p")
        # No fragment instances ran: planning cost only.
        assert result.instances == []
        assert result.simulated_seconds <= backend.cost_model.impala_plan_base

    def test_scan_only_plan(self, backend):
        result = backend.execute("EXPLAIN SELECT id FROM p WHERE id BETWEEN 1 AND 5")
        text = "\n".join(row[0] for row in result.rows)
        assert "SCAN p" in text
        assert "JOIN" not in text
