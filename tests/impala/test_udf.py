"""ST_ UDFs: the GEOS-wrapper functions of Section IV."""

import pytest

from repro.errors import ImpalaError
from repro.impala.udf import (
    SPATIAL_FUNCTIONS,
    evaluate_spatial,
    is_spatial_function,
    st_contains,
    st_distance,
    st_intersects,
    st_nearestd,
    st_within,
)

SQUARE = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"
LINE = "LINESTRING (0 0, 10 0)"


class TestFunctions:
    def test_st_within(self):
        assert st_within("POINT (5 5)", SQUARE)
        assert not st_within("POINT (15 5)", SQUARE)

    def test_st_contains(self):
        assert st_contains(SQUARE, "POINT (5 5)")
        assert not st_contains(SQUARE, "POINT (15 5)")

    def test_st_intersects(self):
        assert st_intersects(SQUARE, "LINESTRING (-5 5, 15 5)")
        assert not st_intersects(SQUARE, "LINESTRING (20 20, 30 30)")

    def test_st_distance(self):
        assert st_distance("POINT (13 4)", SQUARE) == 3.0
        assert st_distance("POINT (5 3)", LINE) == 3.0

    def test_st_nearestd(self):
        assert st_nearestd("POINT (5 3)", LINE, 3.0)
        assert not st_nearestd("POINT (5 3)", LINE, 2.9)

    def test_non_string_argument(self):
        with pytest.raises(ImpalaError):
            st_within(42, SQUARE)


class TestRegistry:
    def test_is_spatial_function(self):
        assert is_spatial_function("st_within")
        assert is_spatial_function("ST_NEARESTD")
        assert not is_spatial_function("COUNT")

    def test_evaluate_by_name(self):
        assert evaluate_spatial("st_within", ["POINT (1 1)", SQUARE]) is True

    def test_evaluate_unknown(self):
        with pytest.raises(ImpalaError):
            evaluate_spatial("ST_TELEPORT", [])

    def test_all_registered_functions_callable(self):
        args = {
            "ST_WITHIN": ("POINT (1 1)", SQUARE),
            "ST_CONTAINS": (SQUARE, "POINT (1 1)"),
            "ST_INTERSECTS": (SQUARE, SQUARE),
            "ST_DISTANCE": ("POINT (0 0)", "POINT (3 4)"),
            "ST_NEARESTD": ("POINT (0 0)", LINE, 1.0),
        }
        for name, func_args in args.items():
            assert name in SPATIAL_FUNCTIONS
            evaluate_spatial(name, list(func_args))
