"""Planner: conjunct classification, predicate extraction, SELECT analysis."""

import pytest

from repro.errors import PlanError
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala.catalog import ColumnType, Metastore
from repro.impala.parser import parse
from repro.impala.planner import Planner


@pytest.fixture
def planner():
    fs = SimulatedHDFS()
    write_text(fs, "/pnt.txt", ["0\tPOINT (1 1)"])
    write_text(fs, "/poly.txt", ["0\tPOLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))\t9"])
    metastore = Metastore(fs)
    metastore.create_table(
        "pnt", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)], "/pnt.txt"
    )
    metastore.create_table(
        "poly",
        [
            ("id", ColumnType.BIGINT),
            ("geom", ColumnType.STRING),
            ("zone", ColumnType.BIGINT),
        ],
        "/poly.txt",
    )
    return Planner(metastore)


def plan(planner, sql):
    return planner.plan(parse(sql))


class TestJoinPlanning:
    def test_fig1_within(self, planner):
        p = plan(planner, "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        assert p.join is not None
        assert p.join.indexed
        assert p.join.predicate.function == "ST_WITHIN"
        assert p.join.predicate.probe_column.table == "pnt"
        assert p.join.predicate.build_column.table == "poly"
        assert p.residual == []

    def test_nearestd_radius_extracted(self, planner):
        p = plan(planner, "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_NEARESTD(pnt.geom, poly.geom, 5000)")
        assert p.join.predicate.radius == 5000.0

    def test_on_clause_predicate(self, planner):
        p = plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "ON ST_WITHIN(pnt.geom, poly.geom)")
        assert p.join is not None

    def test_inner_join_is_not_indexed(self, planner):
        p = plan(planner, "SELECT pnt.id FROM pnt INNER JOIN poly "
                          "ON ST_WITHIN(pnt.geom, poly.geom)")
        assert not p.join.indexed

    def test_st_contains_normalises_to_within(self, planner):
        p = plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_CONTAINS(poly.geom, pnt.geom)")
        assert p.join.predicate.function == "ST_WITHIN"
        assert p.join.predicate.probe_column.table == "pnt"

    def test_join_without_spatial_predicate_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "WHERE pnt.id = poly.id")

    def test_predicate_wrong_argument_order_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(poly.geom, pnt.geom)")

    def test_nearestd_non_literal_radius_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_NEARESTD(pnt.geom, poly.geom, poly.id)")

    def test_two_joins_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "SPATIAL JOIN poly p2 WHERE ST_WITHIN(pnt.geom, poly.geom)")

    def test_duplicate_exposed_name_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT 1 FROM pnt SPATIAL JOIN pnt "
                          "WHERE ST_WITHIN(pnt.geom, pnt.geom)")


class TestConjunctClassification:
    def test_single_table_filters_pushed_down(self, planner):
        p = plan(planner, "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom) "
                          "AND pnt.id < 100 AND poly.zone = 3")
        assert len(p.probe.conjuncts) == 1
        assert len(p.join.build.conjuncts) == 1
        assert p.residual == []

    def test_cross_table_residual(self, planner):
        p = plan(planner, "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom) AND pnt.id < poly.id")
        assert len(p.residual) == 1

    def test_second_spatial_predicate_is_residual(self, planner):
        p = plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom) "
                          "AND ST_INTERSECTS(pnt.geom, poly.geom)")
        assert p.join.predicate.function == "ST_WITHIN"
        assert len(p.residual) == 1

    def test_no_join_scan_filter(self, planner):
        p = plan(planner, "SELECT id FROM pnt WHERE id > 5")
        assert p.join is None
        assert len(p.probe.conjuncts) == 1

    def test_unknown_column_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT ghost FROM pnt")

    def test_unknown_table_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT x.id FROM pnt WHERE x.id = 1")

    def test_ambiguous_bare_column_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom)")


class TestSelectAnalysis:
    def test_star_expansion(self, planner):
        p = plan(planner, "SELECT * FROM pnt")
        assert p.output_names == ["id", "geom"]

    def test_star_expansion_join(self, planner):
        p = plan(planner, "SELECT * FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        assert p.output_names == ["id", "geom", "id", "geom", "zone"]

    def test_qualified_star(self, planner):
        p = plan(planner, "SELECT poly.* FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        assert p.output_names == ["id", "geom", "zone"]

    def test_aggregate_spec(self, planner):
        p = plan(planner, "SELECT poly.id, COUNT(*) AS trips FROM pnt "
                          "SPATIAL JOIN poly WHERE ST_WITHIN(pnt.geom, poly.geom) "
                          "GROUP BY poly.id")
        assert p.aggregate is not None
        assert len(p.aggregate.key_exprs) == 1
        assert p.aggregate.functions == [("COUNT", None, False)]
        assert p.output_names == ["id", "trips"]

    def test_global_aggregate_no_group_by(self, planner):
        p = plan(planner, "SELECT COUNT(*) FROM pnt")
        assert p.aggregate is not None
        assert p.aggregate.key_exprs == []

    def test_non_grouped_column_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT id, COUNT(*) FROM pnt")

    def test_group_by_without_aggregate_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT id FROM pnt GROUP BY id")

    def test_group_key_missing_from_select_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT COUNT(*) FROM pnt GROUP BY id")

    def test_sum_star_rejected(self, planner):
        with pytest.raises(PlanError):
            plan(planner, "SELECT SUM(*) FROM pnt")

    def test_default_output_names(self, planner):
        p = plan(planner, "SELECT id, COUNT(*) FROM pnt GROUP BY id")
        assert p.output_names == ["id", "count"]

    def test_row_descriptor_concat(self, planner):
        p = plan(planner, "SELECT pnt.id FROM pnt SPATIAL JOIN poly "
                          "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        assert len(p.row_descriptor) == 5  # 2 pnt + 3 poly columns
