"""SQL frontend: lexer and parser, including the SPATIAL JOIN extension."""

import pytest

from repro.errors import SQLParseError
from repro.impala.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.impala.lexer import TokenType, tokenize
from repro.impala.parser import parse


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("myTable")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "myTable"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 1.5e-2 .5")[:-1]]
        assert values == ["1", "2.5", "1e3", "1.5e-2", ".5"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SQLParseError):
            tokenize("'oops")

    def test_multichar_symbols(self):
        values = [t.value for t in tokenize("<= >= <> != =")[:-1]]
        assert values == ["<=", ">=", "<>", "!=", "="]

    def test_bad_character(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT @")

    def test_end_token(self):
        assert tokenize("x")[-1].type is TokenType.END


class TestParserFig1:
    """The paper's Fig 1 queries must parse exactly."""

    def test_within_query(self):
        stmt = parse(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN (pnt.geom, poly.geom)"
        )
        assert len(stmt.select_items) == 2
        assert stmt.from_table.name == "pnt"
        assert stmt.joins[0].spatial
        assert stmt.joins[0].table.name == "poly"
        assert isinstance(stmt.where, FunctionCall)
        assert stmt.where.name == "ST_WITHIN"

    def test_nearestd_query(self):
        stmt = parse(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_NearestD (pnt.geom, poly.geom, 5000)"
        )
        call = stmt.where
        assert call.name == "ST_NEARESTD"
        assert call.args[2] == Literal(5000)


class TestParserClauses:
    def test_aliases(self):
        stmt = parse("SELECT a.x AS foo, b.y bar FROM t1 a INNER JOIN t2 b ON a.x = b.y")
        assert stmt.select_items[0].alias == "foo"
        assert stmt.select_items[1].alias == "bar"
        assert stmt.from_table.alias == "a"
        assert not stmt.joins[0].spatial
        assert stmt.joins[0].on is not None

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expr, Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.select_items[0].expr == Star("t")

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT k, COUNT(*) c FROM t GROUP BY k ORDER BY c DESC, k ASC LIMIT 7"
        )
        assert stmt.group_by == [ColumnRef(None, "k")]
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 7

    def test_where_precedence(self):
        stmt = parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_not(self):
        stmt = parse("SELECT x FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "NOT"

    def test_between_desugars(self):
        stmt = parse("SELECT x FROM t WHERE x BETWEEN 1 AND 5")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == ">="
        assert stmt.where.right.op == "<="

    def test_is_null(self):
        stmt = parse("SELECT x FROM t WHERE x IS NULL")
        assert stmt.where.op == "IS NULL"
        negated = parse("SELECT x FROM t WHERE x IS NOT NULL")
        assert isinstance(negated.where, UnaryOp)

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT x FROM t WHERE x = 1 + 2 * 3")
        rhs = stmt.where.right
        assert rhs.op == "+"
        assert rhs.right.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT x FROM t WHERE x < -5")
        assert isinstance(stmt.where.right, UnaryOp)

    def test_parenthesised(self):
        stmt = parse("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT x) FROM t")
        call = stmt.select_items[0].expr
        assert call.distinct

    def test_boolean_and_null_literals(self):
        stmt = parse("SELECT x FROM t WHERE a = TRUE AND b = NULL")
        assert stmt.where.left.right == Literal(True)
        assert stmt.where.right.right == Literal(None)


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT x",
            "SELECT x FROM",
            "SELECT x FROM t WHERE",
            "SELECT x FROM t LIMIT x",
            "SELECT x FROM t trailing garbage (",
            "SELECT x FROM t GROUP x",
            "SELECT x FROM t SPATIAL poly",
            "SELECT x FROM t INNER t2",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(SQLParseError):
            parse(bad)

    def test_error_has_position(self):
        with pytest.raises(SQLParseError) as info:
            parse("SELECT x FROM t LIMIT abc")
        assert info.value.position is not None
