"""Metastore, row parsing, tuple descriptors, expression compilation."""

import pytest

from repro.errors import PlanError
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.impala.catalog import Column, ColumnType, Metastore, Table
from repro.impala.exprs import Slot, TupleDescriptor, compile_expr
from repro.impala.rowbatch import RowBatch, batches_of


@pytest.fixture
def fs():
    fs = SimulatedHDFS()
    write_text(fs, "/t.txt", ["1\tfoo", "2\tbar"])
    return fs


@pytest.fixture
def metastore(fs):
    return Metastore(fs)


class TestMetastore:
    def test_create_and_get(self, metastore):
        table = metastore.create_table(
            "t", [("id", ColumnType.BIGINT), ("name", ColumnType.STRING)], "/t.txt"
        )
        assert metastore.get("t") is table
        assert metastore.tables() == ["t"]

    def test_duplicate_rejected(self, metastore):
        metastore.create_table("t", [("id", ColumnType.BIGINT)], "/t.txt")
        with pytest.raises(PlanError):
            metastore.create_table("t", [("id", ColumnType.BIGINT)], "/t.txt")

    def test_missing_file_rejected(self, metastore):
        with pytest.raises(PlanError):
            metastore.create_table("t", [("id", ColumnType.BIGINT)], "/missing.txt")

    def test_unknown_table(self, metastore):
        with pytest.raises(PlanError):
            metastore.get("ghost")

    def test_drop(self, metastore):
        metastore.create_table("t", [("id", ColumnType.BIGINT)], "/t.txt")
        metastore.drop_table("t")
        assert metastore.tables() == []
        with pytest.raises(PlanError):
            metastore.drop_table("t")


class TestRowParsing:
    @pytest.fixture
    def table(self):
        return Table(
            "t",
            (
                Column("id", ColumnType.BIGINT),
                Column("score", ColumnType.DOUBLE),
                Column("name", ColumnType.STRING),
                Column("flag", ColumnType.BOOLEAN),
            ),
            "/t.txt",
        )

    def test_parse_typed_row(self, table):
        assert table.parse_row("7\t2.5\thello\ttrue") == (7, 2.5, "hello", True)

    def test_bad_arity_skipped(self, table):
        assert table.parse_row("7\t2.5") is None

    def test_bad_int_skipped(self, table):
        assert table.parse_row("x\t2.5\thello\ttrue") is None

    def test_bad_double_skipped(self, table):
        assert table.parse_row("7\tzzz\thello\ttrue") is None

    def test_boolean_variants(self, table):
        assert table.parse_row("1\t1.0\tn\t1")[3] is True
        assert table.parse_row("1\t1.0\tn\tFalse")[3] is False

    def test_column_index(self, table):
        assert table.column_index("score") == 1
        with pytest.raises(PlanError):
            table.column_index("ghost")


class TestRowBatch:
    def test_fill_and_iterate(self):
        batch = RowBatch()
        for i in range(3):
            batch.add((i,))
        assert len(batch) == 3
        assert [r[0] for r in batch] == [0, 1, 2]

    def test_batches_of_chunks(self):
        rows = [(i,) for i in range(10)]
        batches = list(batches_of(rows, batch_size=4))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_batches_of_empty(self):
        assert list(batches_of([], batch_size=4)) == []


class TestTupleDescriptor:
    @pytest.fixture
    def descriptor(self):
        return TupleDescriptor(
            [Slot("l", "id"), Slot("l", "geom"), Slot("r", "id")]
        )

    def test_resolve_qualified(self, descriptor):
        assert descriptor.resolve(ColumnRef("l", "geom")) == 1
        assert descriptor.resolve(ColumnRef("r", "id")) == 2

    def test_resolve_bare_unique(self, descriptor):
        assert descriptor.resolve(ColumnRef(None, "geom")) == 1

    def test_resolve_bare_ambiguous(self, descriptor):
        with pytest.raises(PlanError):
            descriptor.resolve(ColumnRef(None, "id"))

    def test_resolve_unknown(self, descriptor):
        with pytest.raises(PlanError):
            descriptor.resolve(ColumnRef("l", "ghost"))
        with pytest.raises(PlanError):
            descriptor.resolve(ColumnRef(None, "ghost"))

    def test_concat(self, descriptor):
        combined = descriptor.concat(TupleDescriptor([Slot("x", "a")]))
        assert len(combined) == 4
        assert combined.resolve(ColumnRef("x", "a")) == 3


class TestCompileExpr:
    @pytest.fixture
    def descriptor(self):
        return TupleDescriptor([Slot("t", "a"), Slot("t", "b"), Slot("t", "geom")])

    def test_literal_and_column(self, descriptor):
        assert compile_expr(Literal(42), descriptor)(("x", "y", "z")) == 42
        assert compile_expr(ColumnRef("t", "b"), descriptor)((1, 2, 3)) == 2

    def test_comparisons(self, descriptor):
        expr = BinaryOp("<", ColumnRef("t", "a"), ColumnRef("t", "b"))
        func = compile_expr(expr, descriptor)
        assert func((1, 2, None)) is True
        assert func((3, 2, None)) is False

    def test_null_propagation(self, descriptor):
        expr = BinaryOp("=", ColumnRef("t", "a"), Literal(1))
        func = compile_expr(expr, descriptor)
        assert func((None, 0, 0)) is None

    def test_three_valued_and_or(self, descriptor):
        a = ColumnRef("t", "a")
        and_func = compile_expr(BinaryOp("AND", a, Literal(True)), descriptor)
        or_func = compile_expr(BinaryOp("OR", a, Literal(True)), descriptor)
        assert and_func((None, 0, 0)) is None
        assert or_func((None, 0, 0)) is True  # NULL OR TRUE = TRUE

    def test_false_short_circuits_null(self, descriptor):
        a = ColumnRef("t", "a")
        func = compile_expr(BinaryOp("AND", a, Literal(False)), descriptor)
        assert func((None, 0, 0)) is False  # NULL AND FALSE = FALSE

    def test_arithmetic(self, descriptor):
        expr = BinaryOp("*", BinaryOp("+", ColumnRef("t", "a"), Literal(1)), Literal(3))
        assert compile_expr(expr, descriptor)((2, 0, 0)) == 9

    def test_not_and_negate(self, descriptor):
        not_func = compile_expr(UnaryOp("NOT", ColumnRef("t", "a")), descriptor)
        assert not_func((True, 0, 0)) is False
        assert not_func((None, 0, 0)) is None
        neg = compile_expr(UnaryOp("-", ColumnRef("t", "a")), descriptor)
        assert neg((5, 0, 0)) == -5

    def test_is_null(self, descriptor):
        func = compile_expr(
            BinaryOp("IS NULL", ColumnRef("t", "a"), Literal(None)), descriptor
        )
        assert func((None, 0, 0)) is True
        assert func((1, 0, 0)) is False

    def test_spatial_function(self, descriptor):
        call = FunctionCall(
            "ST_WITHIN",
            (ColumnRef("t", "geom"), Literal("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")),
        )
        func = compile_expr(call, descriptor)
        assert func((0, 0, "POINT (1 1)")) is True
        assert func((0, 0, "POINT (9 9)")) is False

    def test_spatial_function_null_arg(self, descriptor):
        call = FunctionCall(
            "ST_WITHIN", (ColumnRef("t", "geom"), ColumnRef("t", "a"))
        )
        func = compile_expr(call, descriptor)
        assert func((None, 0, "POINT (1 1)")) is None

    def test_aggregate_rejected_as_scalar(self, descriptor):
        with pytest.raises(PlanError):
            compile_expr(FunctionCall("COUNT", (Star(),)), descriptor)

    def test_unknown_function(self, descriptor):
        with pytest.raises(PlanError):
            compile_expr(FunctionCall("FROBNICATE", ()), descriptor)

    def test_star_rejected(self, descriptor):
        with pytest.raises(PlanError):
            compile_expr(Star(), descriptor)
