"""Backend execution: scans, aggregation, full queries, scheduling effects."""

import random

import pytest

from repro.cluster import ClusterSpec, CostModel, Resource
from repro.errors import ImpalaError
from repro.hdfs import SimulatedHDFS, write_text
from repro.impala import Aggregator, ColumnType, ImpalaBackend
from repro.impala.exec_nodes import InstanceContext, ScanNode
from repro.impala.catalog import Metastore


@pytest.fixture
def city():
    """A small HDFS with point and polygon tables."""
    rng = random.Random(99)
    fs = SimulatedHDFS(block_size=2048)
    points = [f"{i}\tPOINT ({rng.uniform(0, 100)} {rng.uniform(0, 100)})"
              for i in range(400)]
    write_text(fs, "/pnt.txt", points)
    polys = []
    pid = 0
    for row in range(4):
        for col in range(4):
            x0, y0 = col * 25, row * 25
            polys.append(
                f"{pid}\tPOLYGON (({x0} {y0}, {x0+25} {y0}, {x0+25} {y0+25}, "
                f"{x0} {y0+25}, {x0} {y0}))\t{pid % 3}"
            )
            pid += 1
    write_text(fs, "/poly.txt", polys)
    return fs


def make_backend(city, nodes=2, **kwargs) -> ImpalaBackend:
    backend = ImpalaBackend(ClusterSpec(nodes, 4), hdfs=city, **kwargs)
    backend.metastore.create_table(
        "pnt", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)], "/pnt.txt"
    )
    backend.metastore.create_table(
        "poly",
        [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING),
         ("zone", ColumnType.BIGINT)],
        "/poly.txt",
    )
    return backend


class TestScans:
    def test_select_all(self, city):
        result = make_backend(city).execute("SELECT id FROM pnt")
        assert len(result) == 400
        assert result.columns == ["id"]

    def test_filter_pushdown(self, city):
        result = make_backend(city).execute("SELECT id FROM pnt WHERE id < 10")
        assert sorted(r[0] for r in result.rows) == list(range(10))

    def test_projection_expressions(self, city):
        result = make_backend(city).execute(
            "SELECT id, id * 2 AS double FROM pnt WHERE id BETWEEN 1 AND 3 ORDER BY id"
        )
        assert result.rows == [(1, 2), (2, 4), (3, 6)]
        assert result.columns == ["id", "double"]

    def test_order_by_desc_and_limit(self, city):
        result = make_backend(city).execute(
            "SELECT id FROM pnt ORDER BY id DESC LIMIT 3"
        )
        assert [r[0] for r in result.rows] == [399, 398, 397]

    def test_dirty_rows_skipped(self, city):
        write_text(city.hdfs if hasattr(city, "hdfs") else city, "/dirty.txt",
                   ["1\tPOINT (0 0)", "oops", "2\tPOINT (1 1)", "x\tPOINT (2 2)"])
        backend = make_backend(city)
        backend.metastore.create_table(
            "dirty", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)],
            "/dirty.txt",
        )
        result = backend.execute("SELECT id FROM dirty")
        assert sorted(r[0] for r in result.rows) == [1, 2]


class TestSpatialJoin:
    def test_within_join_counts(self, city):
        backend = make_backend(city)
        result = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom)"
        )
        # Grid covers the whole extent: every point lands in >= 1 cell.
        assert len(result) >= 400

    def test_join_with_build_filter(self, city):
        backend = make_backend(city)
        full = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom)"
        )
        filtered = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom) AND poly.zone = 0"
        )
        expected = [r for r in full.rows if r[1] % 3 == 0]
        assert sorted(filtered.rows) == sorted(expected)

    def test_join_with_probe_filter(self, city):
        backend = make_backend(city)
        result = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom) AND pnt.id < 50"
        )
        assert all(r[0] < 50 for r in result.rows)

    def test_join_with_residual(self, city):
        backend = make_backend(city)
        result = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom) AND pnt.id < poly.id"
        )
        assert all(r[0] < r[1] for r in result.rows)

    def test_aggregation_per_zone(self, city):
        backend = make_backend(city)
        result = backend.execute(
            "SELECT poly.zone, COUNT(*) AS hits FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom) GROUP BY poly.zone "
            "ORDER BY hits DESC"
        )
        assert len(result.rows) == 3
        hits = [r[1] for r in result.rows]
        assert hits == sorted(hits, reverse=True)
        assert sum(hits) >= 400

    def test_cross_join_fallback_agrees(self, city):
        backend = make_backend(city)
        indexed = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom) AND pnt.id < 40"
        )
        naive = backend.execute(
            "SELECT pnt.id, poly.id FROM pnt INNER JOIN poly "
            "ON ST_WITHIN(pnt.geom, poly.geom) WHERE pnt.id < 40"
        )
        assert sorted(indexed.rows) == sorted(naive.rows)

    def test_engines_agree(self, city):
        sql = ("SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
               "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        slow = make_backend(city, engine="slow").execute(sql)
        fast = make_backend(city, engine="fast").execute(sql)
        assert sorted(slow.rows) == sorted(fast.rows)

    def test_results_invariant_across_cluster_sizes(self, city):
        sql = ("SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
               "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        small = make_backend(city, nodes=1).execute(sql)
        large = make_backend(city, nodes=6).execute(sql)
        assert sorted(small.rows) == sorted(large.rows)

    def test_assignments_agree(self, city):
        sql = ("SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
               "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        rr = make_backend(city, assignment="round_robin").execute(sql)
        contiguous = make_backend(city, assignment="contiguous").execute(sql)
        assert sorted(rr.rows) == sorted(contiguous.rows)

    def test_bad_assignment_rejected(self, city):
        with pytest.raises(ImpalaError):
            make_backend(city, assignment="psychic")


class TestSimulatedTime:
    def test_positive_and_deterministic(self, city):
        sql = ("SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
               "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        a = make_backend(city).execute(sql)
        b = make_backend(city).execute(sql)
        assert a.simulated_seconds > 0
        assert a.simulated_seconds == pytest.approx(b.simulated_seconds)

    def test_instances_match_cluster_size(self, city):
        result = make_backend(city, nodes=3).execute("SELECT id FROM pnt")
        assert len(result.instances) == 3

    def test_slow_engine_costs_more(self, city):
        sql = ("SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
               "WHERE ST_WITHIN(pnt.geom, poly.geom)")
        slow = make_backend(city, engine="slow").execute(sql)
        fast = make_backend(city, engine="fast").execute(sql)
        assert slow.simulated_seconds > fast.simulated_seconds

    def test_straggler_at_least_mean(self, city):
        result = make_backend(city, nodes=4).execute(
            "SELECT pnt.id, poly.id FROM pnt SPATIAL JOIN poly "
            "WHERE ST_WITHIN(pnt.geom, poly.geom)"
        )
        assert result.straggler_seconds >= result.mean_instance_seconds


class TestAggregator:
    def test_count_sum_min_max_avg(self):
        agg = Aggregator(
            key_getters=[lambda r: r[0]],
            specs=[
                ("COUNT", None, False),
                ("SUM", lambda r: r[1], False),
                ("MIN", lambda r: r[1], False),
                ("MAX", lambda r: r[1], False),
                ("AVG", lambda r: r[1], False),
            ],
        )
        for row in [("a", 1), ("a", 3), ("b", 10)]:
            agg.accumulate(row)
        rows = {r[0]: r[1:] for r in agg.finalize()}
        assert rows["a"] == (2, 4, 1, 3, 2.0)
        assert rows["b"] == (1, 10, 10, 10, 10.0)

    def test_nulls_ignored_by_value_aggregates(self):
        agg = Aggregator(
            key_getters=[],
            specs=[("SUM", lambda r: r[0], False), ("COUNT", lambda r: r[0], False)],
        )
        for row in [(1,), (None,), (2,)]:
            agg.accumulate(row)
        assert list(agg.finalize()) == [(3, 2)]

    def test_count_distinct(self):
        agg = Aggregator(
            key_getters=[], specs=[("COUNT", lambda r: r[0], True)]
        )
        for row in [(1,), (1,), (2,), (None,)]:
            agg.accumulate(row)
        assert list(agg.finalize()) == [(2,)]

    def test_merge_partials(self):
        def new():
            return Aggregator(
                key_getters=[lambda r: r[0]],
                specs=[("SUM", lambda r: r[1], False), ("AVG", lambda r: r[1], False)],
            )

        a = new()
        b = new()
        a.accumulate(("k", 1))
        b.accumulate(("k", 3))
        b.accumulate(("j", 8))
        final = new()
        for partial in (a, b):
            for key, states in partial.partials():
                final.merge(key, states)
        rows = {r[0]: r[1:] for r in final.finalize()}
        assert rows["k"] == (4, 2.0)
        assert rows["j"] == (8, 8.0)


class TestScanNode:
    def test_charges_hdfs_bytes(self, city):
        metastore = Metastore(city)
        table = metastore.create_table(
            "pnt2", [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)],
            "/pnt.txt",
        )
        ctx = InstanceContext(node_id=0, cores=4, cost_model=CostModel())
        size = city.status("/pnt.txt").size
        scan = ScanNode(ctx, city, table, [(0, size)])
        rows = list(scan.rows())
        assert len(rows) == 400
        assert ctx.metrics.get(Resource.HDFS_BYTES) == size
