"""The warm-path helpers around the manager: WKT memo, repeat workloads,
monitor/profile cache reporting."""

from __future__ import annotations

from repro.bench.workloads import WORKLOADS, materialize, materialize_repeat_query
from repro.cache import CacheManager
from repro.geometry.wkt import WKTReader, clear_wkt_cache, dumps
from repro.geometry.polygon import Polygon
from repro.obs.monitor import render_cache_activity
from repro.obs.profile import ProfileNode, QueryProfile, annotate_profile_with_cache


class TestWktParseMemo:
    def setup_method(self):
        clear_wkt_cache()

    def teardown_method(self):
        clear_wkt_cache()

    def test_repeated_long_wkt_returns_the_cached_object(self):
        text = dumps(Polygon([(i, i % 7) for i in range(40)]))
        assert len(text) >= 64
        first = WKTReader().read(text)
        second = WKTReader().read(text)
        assert second is first
        clear_wkt_cache()
        assert WKTReader().read(text) is not first

    def test_short_strings_are_not_memoised(self):
        text = "POINT (1 2)"
        assert WKTReader().read(text) is not WKTReader().read(text)

    def test_parse_charge_fires_on_hits_too(self):
        # The memo saves wall-clock only: the cost-model callback must see
        # every logical parse, or simulated seconds would depend on cache
        # state and break byte-identity.
        text = dumps(Polygon([(i, -i % 5) for i in range(40)]))
        charges: list[int] = []
        reader = WKTReader(on_parse=charges.append)
        reader.read(text)
        reader.read(text)
        assert charges == [len(text), len(text)]


class TestRepeatQueryWorkload:
    def test_batches_partition_the_left_side(self):
        base = materialize("taxi-nycb", scale=0.03, num_datanodes=2)
        batches = materialize_repeat_query(
            "taxi-nycb", batches=3, scale=0.03, num_datanodes=2
        )
        assert len(batches) == 3
        assert sum(len(b.left.records) for b in batches) == len(
            base.left.records
        )
        seen = [rec for b in batches for rec in b.left.records]
        assert seen == list(base.left.records)
        for i, batch in enumerate(batches):
            # Underscore names: they double as SQL table names in ISP-MC.
            assert batch.left.name == f"{base.left.name}_batch{i}"
            assert "-" not in batch.left.name
            assert batch.right.name == base.right.name

    def test_every_named_workload_supports_batching(self):
        for name in WORKLOADS:
            batches = materialize_repeat_query(
                name, batches=2, scale=0.02, num_datanodes=2
            )
            assert len(batches) == 2
            assert all(b.left.records for b in batches)


class TestCacheReporting:
    def test_monitor_section_only_renders_when_cache_events_exist(self):
        assert render_cache_activity([{"event": "TaskEnd"}]) is None
        events = [
            {"event": "CacheMiss", "kind": "broadcast-index", "key": "aa"},
            {
                "event": "CacheHit",
                "kind": "broadcast-index",
                "key": "aa",
                "size_bytes": 512,
            },
            {
                "event": "CacheEvict",
                "kind": "parsed-column",
                "key": "bb",
                "size_bytes": 64,
                "reason": "budget",
            },
        ]
        text = render_cache_activity(events)
        assert "broadcast-index" in text
        assert "512" in text
        assert "parsed-column" in text

    def test_profile_annotation_is_out_of_band_and_idempotent(self):
        m = CacheManager(budget_bytes=1024)
        from repro.cache import fingerprint_value

        k = fingerprint_value("x")
        m.get(k, "t")
        m.put(k, "t", 1, size_bytes=8)
        m.get(k, "t")
        profile = QueryProfile(ProfileNode(name="q", sim_seconds=2.0))
        baseline = profile.phase_seconds()
        annotate_profile_with_cache(profile, m.stats)
        annotate_profile_with_cache(profile, m.stats)
        node = profile.find("cache")
        assert node is not None and node.sim_seconds == 0.0
        assert node.info["hits"] == 1 and node.info["misses"] == 1
        assert len(profile.root.children) == len(baseline) + 1
        # Accepts the dict form too (archived stats).
        annotate_profile_with_cache(profile, m.stats.as_dict())
        assert profile.find("cache").info["puts"] == 1
