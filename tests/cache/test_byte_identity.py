"""The section-12 hard invariant: a cache hit changes wall-clock only.

Cache-on runs must match cache-off runs byte for byte — same pairs in
the same order, same registry counters, same simulated seconds, same
rendered profile — across explicit methods, executor counts, and both
cluster substrates.  ``method="auto"`` is deliberately excluded: the
planner *may* flip plans when a cached build makes one side free, which
is a documented exception, not a violation.
"""

from __future__ import annotations

import pytest

from repro import JoinConfig, spatial_join
from repro.cache import CacheManager, get_cache, set_cache
from repro.geometry.prepared import clear_prepared_cache
from repro.geometry.wkt import clear_wkt_cache
from repro.obs.registry import collecting
from repro.runtime.config import RuntimeConfig

from tests.core.test_api_redesign import skewed_workload

BUDGET = 64 * 1024 * 1024


@pytest.fixture(autouse=True)
def fresh_process_caches():
    """Each test starts cold and restores the shared manager afterwards."""
    old = set_cache(CacheManager(budget_bytes=None, emit_events=True))
    clear_prepared_cache()
    clear_wkt_cache()
    yield
    set_cache(old)
    clear_prepared_cache()
    clear_wkt_cache()


def observed_run(left, right, method, executors, budget):
    """One join under full observation: pairs, counters, profile text."""
    runtime = RuntimeConfig(executors=executors, cache_budget_bytes=budget)
    config = JoinConfig(method=method, profile=True, radius=0.0)
    with collecting() as reg:
        result = spatial_join(left, right, runtime=runtime, config=config)
        counters = reg.snapshot()["counters"]
    return list(result), counters, result.profile.render()


class TestCoreByteIdentity:
    @pytest.mark.parametrize("executors", ["serial", 2, 4])
    @pytest.mark.parametrize("method", ["broadcast", "partitioned"])
    def test_cache_on_matches_cache_off(self, method, executors):
        left, right = skewed_workload(7, n_points=300)
        cold = observed_run(left, right, method, executors, budget=None)
        warm1 = observed_run(left, right, method, executors, budget=BUDGET)
        warm2 = observed_run(left, right, method, executors, budget=BUDGET)
        assert warm1 == cold
        assert warm2 == cold
        # The second warm run actually exercised the hit path.
        assert get_cache().stats.hits > 0

    def test_profile_never_mentions_the_cache(self):
        left, right = skewed_workload(5, n_points=200)
        for budget in (None, BUDGET, BUDGET):
            _, _, rendered = observed_run(
                left, right, "broadcast", "serial", budget
            )
            assert "cache" not in rendered.lower()


class TestSubstrateByteIdentity:
    @pytest.mark.parametrize("engine", ["spatialspark", "isp-mc"])
    @pytest.mark.parametrize("executors", ["serial", 2, 4])
    def test_cluster_runs_identical_cold_and_warm(self, engine, executors):
        from repro.bench.runner import run_ispmc, run_spatialspark
        from repro.bench.workloads import materialize

        mat = materialize("taxi-nycb", scale=0.04, num_datanodes=2)
        runner = run_spatialspark if engine == "spatialspark" else run_ispmc

        def run(budget):
            runtime = RuntimeConfig(
                executors=executors, cache_budget_bytes=budget
            )
            with collecting() as reg:
                result = runner(mat, 2, runtime=runtime)
                counters = reg.snapshot()["counters"]
            return result.result_rows, result.simulated_seconds, counters

        cold = run(None)
        warm1 = run(BUDGET)
        warm2 = run(BUDGET)
        assert warm1 == cold
        assert warm2 == cold
        assert get_cache().stats.hits > 0


class TestWarmRunsReuse:
    def test_second_run_hits_every_artifact_kind(self):
        from repro.geometry.wkt import dumps

        left, right = skewed_workload(3, n_points=250)
        # WKT-string inputs: the parsed-column cache only engages when
        # there is a parse to skip.
        right = [(pid, dumps(geom)) for pid, geom in right]
        runtime = RuntimeConfig(cache_budget_bytes=BUDGET)
        spatial_join(left, right, method="partitioned", runtime=runtime)
        stats_after_first = get_cache().stats.as_dict()
        assert stats_after_first["hits"] == 0
        spatial_join(left, right, method="partitioned", runtime=runtime)
        stats = get_cache().stats
        # The repeated query reuses the parsed columns and the layout.
        assert stats.hits_by_kind.get("parsed-column", 0) > 0
        assert stats.hits_by_kind.get("partition-layout", 0) > 0

    def test_mutated_input_misses_instead_of_serving_stale(self):
        left, right = skewed_workload(4, n_points=200)
        runtime = RuntimeConfig(cache_budget_bytes=BUDGET)
        truth_mutated = None
        spatial_join(left, right, method="broadcast", runtime=runtime)
        # Re-point one polygon elsewhere: content changed, so the warm run
        # must rebuild, and its pairs must match a cold run on the new data.
        from repro.geometry.polygon import Polygon

        right = list(right)
        right[0] = (right[0][0], Polygon([(50, 50), (51, 50), (51, 51), (50, 51)]))
        truth_mutated = spatial_join(left, right, method="naive")
        warm = spatial_join(left, right, method="broadcast", runtime=runtime)
        assert sorted(warm) == sorted(truth_mutated)
