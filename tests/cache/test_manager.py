"""CacheManager semantics: budgets, cost-aware LRU, deterministic eviction."""

from __future__ import annotations

from repro.cache import CacheManager, estimate_index_bytes, fingerprint_value
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.geometry.polygon import Polygon
from repro.spark.shuffle import estimate_bytes


def key(label: str):
    return fingerprint_value(label)


def fill(manager: CacheManager, spec):
    """Insert ``(label, size, cost)`` rows in order."""
    for label, size, cost in spec:
        manager.put(key(label), "t", label, size_bytes=size, build_cost=cost)


class TestBasics:
    def test_empty_enabled_manager_is_truthy(self):
        # Call sites write ``if cache is not None`` — but ``if cache:``
        # must not silently disable an *empty* enabled cache either.
        assert bool(CacheManager(budget_bytes=1024))

    def test_hit_and_miss_accounting(self):
        m = CacheManager(budget_bytes=1024)
        assert m.get(key("a"), "t") is None
        m.put(key("a"), "t", "value", size_bytes=10, build_cost=1.0)
        assert m.get(key("a"), "t") == "value"
        assert m.stats.as_dict()["hits"] == 1
        assert m.stats.as_dict()["misses"] == 1
        assert m.stats.hits_by_kind == {"t": 1}

    def test_kind_mismatch_is_a_miss(self):
        m = CacheManager(budget_bytes=1024)
        m.put(key("a"), "index", "value", size_bytes=10)
        assert m.get(key("a"), "layout") is None

    def test_oversized_entry_rejected(self):
        m = CacheManager(budget_bytes=100)
        assert not m.put(key("big"), "t", "x", size_bytes=101)
        assert len(m) == 0
        assert m.stats.rejected == 1

    def test_unbounded_manager_never_evicts(self):
        m = CacheManager(budget_bytes=None)
        fill(m, [(f"e{i}", 10_000, 1.0) for i in range(50)])
        assert len(m) == 50
        assert m.stats.evictions == 0


class TestEviction:
    def test_lowest_density_evicted_first(self):
        m = CacheManager(budget_bytes=250)
        # cheap-and-bulky loses to expensive-and-compact.
        fill(m, [("bulky", 200, 1.0), ("compact", 100, 50.0)])
        assert m.get(key("bulky"), "t") is None
        assert m.get(key("compact"), "t") == "compact"

    def test_equal_density_evicts_least_recently_used(self):
        m = CacheManager(budget_bytes=250)
        fill(m, [("a", 100, 10.0), ("b", 100, 10.0)])
        assert m.get(key("a"), "t") == "a"  # refresh a; b is now LRU
        m.put(key("c"), "t", "c", size_bytes=100, build_cost=10.0)
        assert m.get(key("b"), "t") is None
        assert m.get(key("a"), "t") == "a"

    def test_fresh_insert_is_protected_from_its_own_eviction(self):
        m = CacheManager(budget_bytes=100)
        fill(m, [("old", 80, 100.0)])
        # The new entry is worse by density but must survive its own put;
        # the resident entry is the victim.
        m.put(key("new"), "t", "new", size_bytes=90, build_cost=1.0)
        assert m.get(key("new"), "t") == "new"
        assert m.get(key("old"), "t") is None

    def test_eviction_order_is_deterministic(self):
        def run():
            m = CacheManager(budget_bytes=300)
            order = []
            original = m._evict

            def spy(entry, reason):
                order.append(entry.value)
                original(entry, reason)

            m._evict = spy
            fill(
                m,
                [
                    ("a", 100, 5.0),
                    ("b", 100, 1.0),
                    ("c", 100, 9.0),
                    ("d", 100, 2.0),
                    ("e", 100, 7.0),
                ],
            )
            return order, sorted(e.value for e in m.entries())

        first = run()
        assert first == run()
        assert first[0] == ["b", "d"]  # cheapest-per-byte first
        assert first[1] == ["a", "c", "e"]


class TestInvalidation:
    def test_invalidate_single_entry(self):
        m = CacheManager(budget_bytes=1024)
        fill(m, [("a", 10, 1.0)])
        assert m.invalidate(key("a"))
        assert not m.invalidate(key("a"))
        assert m.get(key("a"), "t") is None

    def test_invalidate_kind_drops_only_that_kind(self):
        m = CacheManager(budget_bytes=1024)
        m.put(key("i1"), "index", 1, size_bytes=10)
        m.put(key("i2"), "index", 2, size_bytes=10)
        m.put(key("l1"), "layout", 3, size_bytes=10)
        assert m.invalidate_kind("index") == 2
        assert m.get(key("l1"), "layout") == 3

    def test_clear_resets_entries_and_stats(self):
        m = CacheManager(budget_bytes=1024)
        fill(m, [("a", 10, 1.0)])
        m.get(key("a"), "t")
        m.clear()
        assert len(m) == 0
        assert m.stats.as_dict()["hits"] == 0
        assert m.total_bytes == 0


class TestIndexSizing:
    def test_estimate_index_bytes_walks_the_tree(self):
        entries = [
            (i, Polygon([(i, 0), (i + 1, 0), (i + 1, 1), (i, 1)]))
            for i in range(32)
        ]
        index = BroadcastIndex(
            ((pair, pair[1]) for pair in entries),
            SpatialOperator.INTERSECTS,
        )
        walked = estimate_index_bytes(index)
        # The generic estimator sees the index as an opaque object — far
        # too small to make a byte budget meaningful.
        assert walked > estimate_bytes(index)
        assert walked > 32 * 32  # at least per-entry envelope overhead

    def test_estimate_index_bytes_falls_back_without_a_tree(self):
        assert estimate_index_bytes("not an index") == estimate_bytes(
            "not an index"
        )


class TestResidency:
    """residency() is the EXPLAIN peek: pure metadata, no counter noise."""

    def test_summarises_by_kind(self):
        manager = CacheManager(budget_bytes=1000)
        manager.put(key("a"), "broadcast-index", "A", size_bytes=100)
        manager.put(key("b"), "broadcast-index", "B", size_bytes=50)
        manager.put(key("c"), "parsed-geometries", "C", size_bytes=25)
        view = manager.residency()
        assert view["entries"] == 3
        assert view["total_bytes"] == 175
        assert view["budget_bytes"] == 1000
        assert view["by_kind"] == {
            "broadcast-index": {"entries": 2, "bytes": 150},
            "parsed-geometries": {"entries": 1, "bytes": 25},
        }

    def test_peek_counts_nothing_and_keeps_lru_order(self):
        manager = CacheManager(budget_bytes=100)
        manager.put(key("old"), "t", "old", size_bytes=40)
        manager.put(key("new"), "t", "new", size_bytes=40)
        before = manager.stats.as_dict()
        assert key("old") in manager
        manager.residency()
        assert manager.stats.as_dict() == before
        # The containment peek must not refresh "old" in the LRU clock:
        # the next over-budget insert still evicts it first.
        manager.put(key("third"), "t", "third", size_bytes=40)
        assert manager.get(key("old"), "t") is None
        assert manager.get(key("new"), "t") == "new"
