"""Content fingerprints: datasets key the cache, object identity never does."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    fingerprint_entries,
    fingerprint_geometry,
    fingerprint_rows,
    fingerprint_value,
)
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def square(x: float = 0.0) -> Polygon:
    return Polygon([(x, 0), (x + 2, 0), (x + 2, 2), (x, 2)])


def dataset(offset: float = 0.0):
    return [(i, square(i * 3 + offset)) for i in range(4)]


class TestContentKeys:
    def test_equal_content_equal_key(self):
        # Two independently constructed datasets with the same coordinates
        # must collide — that is the whole point of content keys.
        a = fingerprint_entries(dataset(), "op", 0.0, "fast")
        b = fingerprint_entries(dataset(), "op", 0.0, "fast")
        assert a == b

    def test_different_content_different_key(self):
        a = fingerprint_entries(dataset(), "op", 0.0, "fast")
        b = fingerprint_entries(dataset(offset=0.5), "op", 0.0, "fast")
        assert a != b

    def test_context_distinguishes_keys(self):
        base = fingerprint_entries(dataset(), "within", 0.0, "fast")
        assert base != fingerprint_entries(dataset(), "nearestd", 0.0, "fast")
        assert base != fingerprint_entries(dataset(), "within", 0.1, "fast")
        assert base != fingerprint_entries(dataset(), "within", 0.0, "slow")

    def test_payload_type_tags_keep_lookalikes_apart(self):
        assert fingerprint_value(1) != fingerprint_value(1.0)
        assert fingerprint_value(1) != fingerprint_value("1")
        assert fingerprint_value(True) != fingerprint_value(1)
        assert fingerprint_value((1, 2)) != fingerprint_value([1, 2])

    def test_geometry_types_distinguished(self):
        point = Point(1.0, 2.0)
        line = LineString([(1.0, 2.0), (1.0, 2.0)])
        assert fingerprint_geometry(point) != fingerprint_geometry(line)

    def test_entry_count_is_part_of_the_key(self):
        a = fingerprint_entries(dataset()[:2])
        b = fingerprint_entries(dataset()[:3])
        assert a != b

    def test_rows_fingerprint_is_order_sensitive(self):
        rows = [(1, "a"), (2, "b")]
        assert fingerprint_rows(rows) != fingerprint_rows(list(reversed(rows)))

    def test_unfingerprintable_value_raises_typeerror(self):
        # Call sites catch TypeError and bypass the cache; anything else
        # would silently cache under a wrong key.
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint_value(object())


class TestMutationInvalidation:
    def test_mutating_coordinates_changes_the_key(self):
        # No id()-based shortcut exists: an in-place edit of the backing
        # coordinate array must produce a different fingerprint, so a
        # mutated dataset can never hit a stale cache entry.
        poly = square()
        before = fingerprint_geometry(poly)
        coords = poly.shell.coords
        coords.setflags(write=True)
        try:
            coords[0, 0] += 0.25
            after = fingerprint_geometry(poly)
        finally:
            coords[0, 0] -= 0.25
            coords.setflags(write=False)
        assert before != after
        assert fingerprint_geometry(poly) == before

    def test_mutating_numpy_payload_changes_entry_key(self):
        payload = np.arange(4, dtype=np.float64)
        entries = [(payload, square())]
        before = fingerprint_entries(entries, "ctx")
        payload[1] = 99.0
        assert fingerprint_entries(entries, "ctx") != before
