"""The estimate-vs-actual calibration log: recorded, never applied."""

import pytest

from repro.bench.workloads import materialize
from repro.core import JoinConfig, spatial_join
from repro.errors import ReproError
from repro.obs.explain import ExplainNode, ExplainReport
from repro.optimizer import CalibrationLog, CalibrationRecord, choose_plan


def _record(method="broadcast", operator="probe", metric="seconds",
            estimate=2.0, actual=4.0):
    return CalibrationRecord(
        method=method, operator=operator, metric=metric,
        estimate=estimate, actual=actual,
    )


def _analyze_report():
    """A tiny hand-built ANALYZE report with two harvestable operators."""
    root = ExplainNode(name="spatial-join", estimate={"seconds": 3.0},
                       actual={"seconds": 6.0})
    root.add_child(
        ExplainNode(name="build", estimate={"seconds": 1.0, "rows": 10.0},
                    actual={"seconds": 4.0, "rows": 10.0})
    )
    root.add_child(
        ExplainNode(name="probe", estimate={"seconds": 2.0},
                    actual={"seconds": 2.0})
    )
    root.add_child(ExplainNode(name="parse", estimate={"seconds": 0.5}))
    return ExplainReport(root=root, method="broadcast", mode="analyze")


class TestRecord:
    def test_ratio(self):
        assert _record(estimate=2.0, actual=4.0).ratio == 2.0
        assert _record(estimate=0.0, actual=0.0).ratio == 0.0
        assert _record(estimate=0.0, actual=1.0).ratio == float("inf")

    def test_json_round_trip(self):
        record = _record()
        assert CalibrationRecord.from_json(record.to_json()) == record


class TestLog:
    def test_record_report_harvests_executed_operators(self):
        log = CalibrationLog()
        added = log.record_report(_analyze_report())
        # build contributes seconds+rows, probe contributes seconds; the
        # never-executed parse node contributes nothing.
        assert added == 3
        assert {r.operator for r in log.records} == {"build", "probe"}

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "calibration.jsonl")
        log = CalibrationLog(path)
        log.record(_record(actual=4.0))
        log.record(_record(operator="build", estimate=1.0, actual=3.0))
        loaded = CalibrationLog.load(path)
        assert loaded.records == log.records
        # Append-only: a second log writing to the same file concatenates.
        CalibrationLog(path).record(_record(actual=6.0))
        assert len(CalibrationLog.load(path)) == 3

    def test_load_missing_file_is_empty(self, tmp_path):
        assert len(CalibrationLog.load(str(tmp_path / "absent.jsonl"))) == 0

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError, match="not valid JSON"):
            CalibrationLog.load(str(path))

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        doc = _record().to_json()
        doc["schema_version"] = 99
        import json

        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(ReproError, match="schema_version"):
            CalibrationLog.load(str(path))

    def test_factors_median_per_method_operator(self):
        log = CalibrationLog()
        for actual in (1.0, 4.0, 6.0):  # ratios 0.5, 2.0, 3.0 -> median 2.0
            log.record(_record(estimate=2.0, actual=actual))
        log.record(_record(operator="build", estimate=1.0, actual=2.0))
        log.record(_record(operator="build", estimate=1.0, actual=4.0))
        log.record(_record(estimate=0.0, actual=1.0))  # inf ratio: skipped
        log.record(_record(metric="rows", estimate=1.0, actual=100.0))
        factors = log.factors()
        assert factors == {
            "broadcast/probe": 2.0,
            "broadcast/build": 3.0,  # even count: mean of the middle two
        }
        assert log.factors(metric="rows") == {"broadcast/probe": 100.0}


class TestChoosePlanConsultsButNeverApplies:
    def test_factors_recorded_not_applied(self):
        wl = materialize("hotspot-nycb", scale=0.02)
        log = CalibrationLog()
        for _ in range(3):  # wildly wrong history: 100x underestimates
            log.record(_record(operator="probe", estimate=1.0, actual=100.0))
        plain = choose_plan(
            wl.left.records, wl.right.records, operator=wl.workload.operator
        )
        consulted = choose_plan(
            wl.left.records,
            wl.right.records,
            operator=wl.workload.operator,
            calibration=log,
        )
        # Same choice, identical prices: the factors only ride along.
        assert consulted.method == plain.method
        assert consulted.costs == plain.costs
        assert consulted.calibration == log.factors()
        assert not plain.calibration


class TestCalibrationOut:
    def test_analyze_run_appends_jsonl(self, tmp_path):
        path = str(tmp_path / "calibration.jsonl")
        wl = materialize("hotspot-nycb", scale=0.02)
        result = spatial_join(
            wl.left.records,
            wl.right.records,
            config=JoinConfig(
                operator=wl.workload.operator,
                explain="analyze",
                calibration_out=path,
            ),
        )
        log = CalibrationLog.load(path)
        assert len(log) > 0
        method = result.explain_report.method
        assert all(r.method == method for r in log.records)
        assert any(key.startswith(f"{method}/") for key in log.factors())
