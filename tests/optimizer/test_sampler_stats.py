"""Sampling and statistics: the optimizer's measurement layer."""

from __future__ import annotations

import random

import pytest

from repro.errors import OptimizerError
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.index.partitioner import FixedGridPartitioner
from repro.optimizer import reservoir_sample, stratified_sample
from repro.optimizer.stats import (
    collect_join_stats,
    collect_table_stats,
    tile_histogram,
)


def points(n, seed=5, lo=0.0, hi=10.0):
    rng = random.Random(seed)
    return [(i, Point(rng.uniform(lo, hi), rng.uniform(lo, hi))) for i in range(n)]


class TestReservoirSample:
    def test_exact_size_and_membership(self):
        items = list(range(1000))
        sample = reservoir_sample(items, 50)
        assert len(sample) == 50
        assert set(sample) <= set(items)

    def test_deterministic_for_a_seed(self):
        items = list(range(1000))
        assert reservoir_sample(items, 50, seed=3) == reservoir_sample(
            items, 50, seed=3
        )
        assert reservoir_sample(items, 50, seed=3) != reservoir_sample(
            items, 50, seed=4
        )

    def test_short_input_returned_whole(self):
        assert sorted(reservoir_sample([1, 2, 3], 50)) == [1, 2, 3]

    def test_rejects_nonpositive_k(self):
        with pytest.raises(OptimizerError):
            reservoir_sample([1, 2, 3], 0)

    def test_roughly_uniform(self):
        """Each half of a 2000-item stream should get ~half the sample."""
        items = list(range(2000))
        sample = reservoir_sample(items, 400, seed=9)
        low = sum(1 for x in sample if x < 1000)
        assert 140 <= low <= 260


class TestStratifiedSample:
    def test_sparse_regions_keep_representation(self):
        """99% of points in one corner; the lone far point must survive
        stratification even at a small sample size."""
        entries = points(990, lo=0.0, hi=1.0) + [(999, Point(9.5, 9.5))]
        sample = stratified_sample(entries, 64)
        assert any(p.x > 9.0 for _, p in sample)

    def test_deterministic(self):
        entries = points(500)
        assert stratified_sample(entries, 64) == stratified_sample(entries, 64)


class TestStats:
    def test_table_stats_shape(self):
        entries = points(300)
        stats = collect_table_stats(entries)
        assert stats.count == 300
        assert stats.point_fraction == 1.0
        assert stats.estimated_bytes > 0
        assert not stats.extent.is_empty

    def test_join_stats_selectivity_positive(self):
        left = points(1000)
        right = [("cell", Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]))]
        stats = collect_join_stats(left, right)
        assert stats.left.count == 1000
        assert stats.right.count == 1
        assert stats.candidates_per_probe > 0

    def test_tile_histogram_tracks_density(self):
        """All the data in one quadrant: its tile must dominate the
        histogram and empty tiles must cost nothing."""
        left = points(2000, lo=0.0, hi=4.9)
        right = [("cell", Polygon([(0, 0), (5, 0), (5, 5), (0, 5)]))]
        stats = collect_join_stats(left, right)
        grid = FixedGridPartitioner(2, 2).partition(Envelope(0, 0, 10, 10))
        hist = tile_histogram(grid, stats)
        assert len(hist.seconds) == 4
        hot = max(range(4), key=lambda i: hist.seconds[i])
        assert hist.left_counts[hot] > 0
        # The far quadrant holds no data at all.
        cold = min(range(4), key=lambda i: hist.left_counts[i])
        assert hist.left_counts[cold] == 0
