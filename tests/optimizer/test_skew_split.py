"""Hot-tile splitting: the LocationSpark-style skew repair.

The regression of record: on clustered data over a fixed grid — the
static decomposition the paper blames for ISP-MC's stragglers — the
refined partitioning must reduce the predicted static-chunked makespan.
"""

from __future__ import annotations

import random

import pytest

from repro.data.synthetic import cluster_mixture_points
from repro.errors import OptimizerError
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.index.partitioner import FixedGridPartitioner
from repro.optimizer import predicted_makespans, split_hot_tiles
from repro.optimizer.stats import collect_join_stats, tile_histogram

EXTENT = Envelope(0.0, 0.0, 10.0, 10.0)
CENTERS = [(2.0, 2.0, 0.25), (8.0, 7.5, 0.18), (5.0, 5.0, 0.4)]


@pytest.fixture(scope="module")
def clustered_stats():
    rng = random.Random(42)
    coords = cluster_mixture_points(rng, 20000, EXTENT, CENTERS, 0.05)
    left = [(i, Point(x, y)) for i, (x, y) in enumerate(coords)]
    right = []
    for i in range(20):
        for j in range(20):
            x, y = i * 0.5, j * 0.5
            right.append(
                (
                    f"g{i}_{j}",
                    Polygon(
                        [(x, y), (x + 0.5, y), (x + 0.5, y + 0.5), (x, y + 0.5)]
                    ),
                )
            )
    return collect_join_stats(left, right)


class TestSplitHotTiles:
    def test_splitting_reduces_static_chunked_makespan(self, clustered_stats):
        base = FixedGridPartitioner(4, 4).partition(EXTENT)
        before = predicted_makespans(tile_histogram(base, clustered_stats), 8)
        refined, hist, added = split_hot_tiles(base, clustered_stats)
        after = predicted_makespans(hist, 8)
        assert added > 0
        assert len(refined) == len(base) + added
        # The headline regression: static scheduling over the refined
        # tiles must beat static scheduling over the fixed grid, clearly.
        assert after["static_chunked"] < 0.8 * before["static_chunked"]
        assert after["dynamic"] < before["dynamic"]

    def test_refined_tiles_still_route_everything(self, clustered_stats):
        base = FixedGridPartitioner(4, 4).partition(EXTENT)
        refined, _, _ = split_hot_tiles(base, clustered_stats)
        rng = random.Random(3)
        for _ in range(200):
            x, y = rng.uniform(0, 10), rng.uniform(0, 10)
            hits = refined.route(Envelope(x, y, x, y))
            assert hits, f"point ({x}, {y}) routed nowhere"

    def test_histogram_matches_partitioning(self, clustered_stats):
        base = FixedGridPartitioner(4, 4).partition(EXTENT)
        refined, hist, _ = split_hot_tiles(base, clustered_stats)
        assert len(hist.seconds) == len(refined)
        assert len(hist.left_counts) == len(refined)

    def test_balanced_data_needs_no_splits(self):
        rng = random.Random(11)
        left = [
            (i, Point(rng.uniform(0, 10), rng.uniform(0, 10))) for i in range(2000)
        ]
        right = [("cell", Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]))]
        stats = collect_join_stats(left, right)
        base = FixedGridPartitioner(4, 4).partition(EXTENT)
        _, _, added = split_hot_tiles(base, stats)
        assert added == 0

    def test_rejects_degenerate_skew_factor(self, clustered_stats):
        base = FixedGridPartitioner(4, 4).partition(EXTENT)
        with pytest.raises(OptimizerError):
            split_hot_tiles(base, clustered_stats, skew_factor=1.0)

    def test_respects_max_tiles(self, clustered_stats):
        base = FixedGridPartitioner(4, 4).partition(EXTENT)
        refined, _, _ = split_hot_tiles(base, clustered_stats, max_tiles=20)
        assert len(refined) <= 20
