"""Canned plan-chooser cases: one workload shape per join strategy.

Each case is a workload whose cheapest strategy is unambiguous under the
calibrated cost model; the chooser must pick it.  These four shapes are
the acceptance scenarios for the stats-driven optimizer.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.model import ClusterSpec
from repro.core.operators import SpatialOperator
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.optimizer import PlanChoice, choose_plan


def grid_polys(n_side, cell=1.0, size=None, x0=0.0, y0=0.0):
    size = cell if size is None else size
    polys = []
    for i in range(n_side):
        for j in range(n_side):
            x, y = x0 + i * cell, y0 + j * cell
            polys.append(
                (
                    f"c{i}_{j}",
                    Polygon(
                        [(x, y), (x + size, y), (x + size, y + size), (x, y + size)]
                    ),
                )
            )
    return polys


def rand_points(n, lo=0.0, hi=5.0, seed=7):
    rng = random.Random(seed)
    return [(k, Point(rng.uniform(lo, hi), rng.uniform(lo, hi))) for k in range(n)]


class TestCannedCases:
    def test_broadcast_wins_small_build_side(self):
        """Many points against a tiny polygon table, several workers:
        shipping the small side everywhere beats shuffling the big one."""
        plan = choose_plan(rand_points(5000), grid_polys(5), workers=8)
        assert plan.method == "broadcast"

    def test_partitioned_wins_both_sides_large(self):
        """Both sides large with many workers: per-tile parallel joins
        amortise the shuffle."""
        plan = choose_plan(rand_points(20000), grid_polys(40, cell=0.125), workers=8)
        assert plan.method == "partitioned"

    def test_dual_tree_wins_dense_overlap_single_worker(self):
        """Dense overlapping polygons on one worker: candidate sets are so
        large that a tree-vs-tree traversal beats per-probe descents."""
        dense = grid_polys(40, cell=0.125, size=1.0)
        plan = choose_plan(
            rand_points(20000),
            dense,
            operator=SpatialOperator.INTERSECTS,
            workers=1,
        )
        assert plan.method == "dual-tree"

    def test_naive_wins_tiny_inputs(self):
        """A handful of rows: any index or shuffle setup dwarfs the scan."""
        plan = choose_plan(rand_points(8), grid_polys(2), workers=1)
        assert plan.method == "naive"


class TestPlanChoice:
    @pytest.fixture()
    def plan(self) -> PlanChoice:
        return choose_plan(rand_points(500), grid_polys(5), workers=4)

    def test_costs_cover_every_method(self, plan):
        assert set(plan.costs) == {"broadcast", "partitioned", "dual-tree", "naive"}
        assert all(cost > 0.0 for cost in plan.costs.values())

    def test_chosen_method_is_cheapest(self, plan):
        assert plan.estimated_seconds == min(plan.costs.values())

    def test_explain_names_the_winner(self, plan):
        text = "\n".join(plan.explain())
        assert f"PLAN CHOICE: {plan.method}" in text
        for method in plan.costs:
            assert method in text

    def test_to_info_is_json_safe(self, plan):
        import json

        info = plan.to_info()
        assert json.loads(json.dumps(info)) == info
        assert info["method"] == plan.method

    def test_cluster_sets_workers(self):
        cluster = ClusterSpec(num_nodes=2, cores_per_node=4)
        plan = choose_plan(rand_points(500), grid_polys(5), cluster=cluster)
        assert plan.workers == cluster.total_cores == 8

    def test_empty_side_falls_back_to_naive(self):
        plan = choose_plan([], grid_polys(2), workers=4)
        assert plan.method == "naive"
