"""Trajectories: the future-work data type, joined with the existing plans."""

import pytest

from repro.core import SpatialOperator, naive_spatial_join, spatial_join
from repro.data import generate_nycb, generate_trajectories
from repro.data.trajectory import Trajectory
from repro.errors import ReproError
from repro.geometry import LineString


@pytest.fixture(scope="module")
def trips():
    return generate_trajectories(60)


class TestTrajectory:
    def test_counts_and_monotone_time(self, trips):
        trajectories, dataset = trips
        assert len(trajectories) == len(dataset) == 60
        for t in trajectories:
            assert t.duration >= 0
            assert list(t.timestamps) == sorted(t.timestamps)

    def test_mean_speed_positive(self, trips):
        trajectories, _ = trips
        assert all(t.mean_speed() > 0 for t in trajectories)

    def test_position_at_clamps(self, trips):
        trajectories, _ = trips
        t = trajectories[0]
        assert t.position_at(t.start_time - 100) == tuple(
            map(float, t.path.coords[0])
        )
        assert t.position_at(t.end_time + 100) == tuple(
            map(float, t.path.coords[-1])
        )

    def test_position_at_interpolates(self):
        path = LineString([(0, 0), (10, 0)])
        t = Trajectory(0, path, (0.0, 10.0))
        assert t.position_at(5.0) == (5.0, 0.0)

    def test_active_during(self):
        t = Trajectory(0, LineString([(0, 0), (1, 1)]), (100.0, 200.0))
        assert t.active_during(150, 160)
        assert t.active_during(0, 100)
        assert not t.active_during(201, 300)

    def test_mismatched_timestamps_rejected(self):
        with pytest.raises(ReproError):
            Trajectory(0, LineString([(0, 0), (1, 1)]), (1.0,))

    def test_non_monotone_rejected(self):
        with pytest.raises(ReproError):
            Trajectory(0, LineString([(0, 0), (1, 1)]), (5.0, 1.0))

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_trajectories(0)


class TestTrajectoryJoins:
    def test_intersects_join_matches_naive(self, trips):
        """Trajectory-zone joins run through the existing machinery."""
        _, dataset = trips
        zones = generate_nycb(30)
        got = sorted(
            spatial_join(dataset.records, zones.records, SpatialOperator.INTERSECTS)
        )
        expected = sorted(
            naive_spatial_join(
                dataset.records, zones.records, SpatialOperator.INTERSECTS
            )
        )
        assert got == expected
        assert got  # trips cross zones

    def test_every_trip_touches_a_zone(self, trips):
        _, dataset = trips
        zones = generate_nycb(30)
        pairs = spatial_join(
            dataset.records, zones.records, SpatialOperator.INTERSECTS
        )
        assert {tid for tid, _ in pairs} == set(range(60))
