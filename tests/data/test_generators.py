"""Synthetic dataset generators: statistical signatures of the paper's data."""

import pytest

from repro.data import (
    DATASETS,
    NYC_EXTENT,
    WORLD_EXTENT,
    generate_gbif,
    generate_lion,
    generate_nycb,
    generate_taxi,
    generate_wwf,
    load_dataset,
)
from repro.core import SpatialOperator, spatial_join
from repro.errors import ReproError
from repro.geometry import LineString, MultiPolygon, Point, Polygon


class TestTaxi:
    def test_count_and_types(self):
        ds = generate_taxi(500)
        assert len(ds) == 500
        assert all(isinstance(g, Point) for _, g in ds)

    def test_within_extent(self):
        ds = generate_taxi(500)
        for _, p in ds:
            assert NYC_EXTENT.contains_point(p.x, p.y)

    def test_deterministic(self):
        a = generate_taxi(100, seed=7)
        b = generate_taxi(100, seed=7)
        assert [g.coords() for _, g in a] == [g.coords() for _, g in b]

    def test_seed_changes_output(self):
        a = generate_taxi(100, seed=7)
        b = generate_taxi(100, seed=8)
        assert [g.coords() for _, g in a] != [g.coords() for _, g in b]

    def test_clustered_density(self):
        """Manhattan-like core must be denser than the city average."""
        ds = generate_taxi(5000)
        core_count = sum(
            1 for _, p in ds if 60_000 <= p.x <= 80_000 and 75_000 <= p.y <= 115_000
        )
        core_fraction = core_count / len(ds)
        core_area_fraction = (20_000 * 40_000) / NYC_EXTENT.area
        assert core_fraction > 5 * core_area_fraction


class TestNycb:
    def test_tessellation_no_gaps_no_overlaps(self):
        blocks = generate_nycb(60)
        points = generate_taxi(400)
        pairs = spatial_join(points.records, blocks.records, SpatialOperator.WITHIN)
        matched = {pid for pid, _ in pairs}
        # Every pickup lands in at least one block...
        assert len(matched) == len(points)
        # ...and interior points land in exactly one (boundary points may
        # legitimately match two adjacent blocks).
        from collections import Counter

        multi = sum(1 for c in Counter(p for p, _ in pairs).values() if c > 1)
        assert multi <= len(points) * 0.02

    def test_mean_vertices_near_target(self):
        blocks = generate_nycb(100, target_mean_vertices=9.0)
        assert 7.0 <= blocks.mean_vertices() <= 11.0

    def test_all_polygons(self):
        assert all(isinstance(g, Polygon) for _, g in generate_nycb(30))

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_nycb(0)
        with pytest.raises(ReproError):
            generate_nycb(10, jitter=0.7)


class TestLion:
    def test_count_and_types(self):
        ds = generate_lion(150)
        assert len(ds) == 150
        assert all(isinstance(g, LineString) for _, g in ds)

    def test_vertices_in_range(self):
        ds = generate_lion(100, mean_vertices=5)
        assert 3.0 <= ds.mean_vertices() <= 8.0

    def test_hub_density_skew(self):
        """Streets concentrate near the taxi hubs (the straggler driver)."""
        ds = generate_lion(2000)
        core = sum(
            1
            for _, line in ds
            if 55_000 <= line.envelope.center[0] <= 90_000
            and 65_000 <= line.envelope.center[1] <= 120_000
        )
        core_fraction = core / len(ds)
        area_fraction = (35_000 * 55_000) / NYC_EXTENT.area
        assert core_fraction > 2 * area_fraction

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_lion(0)
        with pytest.raises(ReproError):
            generate_lion(10, mean_vertices=1)


class TestGbifWwf:
    def test_gbif_world_extent(self):
        ds = generate_gbif(300)
        for _, p in ds:
            assert WORLD_EXTENT.contains_point(p.x, p.y)

    def test_gbif_custom_centers(self):
        centers = [(0.0, 0.0, 1.0)]
        ds = generate_gbif(500, centers=centers, background_fraction=0.0)
        near = sum(1 for _, p in ds if abs(p.x) < 5 and abs(p.y) < 5)
        assert near > 450

    def test_wwf_multipolygons_with_high_vertex_count(self):
        ds = generate_wwf(20, mean_vertices=279)
        assert all(isinstance(g, MultiPolygon) for _, g in ds)
        assert 200 <= ds.mean_vertices() <= 360

    def test_wwf_validation(self):
        with pytest.raises(ReproError):
            generate_wwf(0)
        with pytest.raises(ReproError):
            generate_wwf(10, mean_vertices=10)


class TestCatalog:
    def test_all_registered_datasets_load(self):
        for name in DATASETS:
            ds = load_dataset(name, scale=0.02, cache=False)
            assert len(ds) >= 1

    def test_scale_changes_count(self):
        small = load_dataset("taxi", 0.01, cache=False)
        large = load_dataset("taxi", 0.02, cache=False)
        assert len(large) == 2 * len(small)

    def test_sqrt_scaling_for_world_datasets(self):
        spec = DATASETS["wwf"]
        assert spec.count_at(0.25) == pytest.approx(spec.base_count * 0.5, abs=1)

    def test_representativity(self):
        spec = DATASETS["taxi"]
        assert spec.representativity(1.0) == pytest.approx(1000.0)

    def test_cache_returns_same_object(self):
        a = load_dataset("nycb", 0.03)
        b = load_dataset("nycb", 0.03)
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(ReproError):
            load_dataset("atlantis")

    def test_bad_scale(self):
        with pytest.raises(ReproError):
            load_dataset("taxi", scale=0.0)


class TestSerialisation:
    def test_to_lines_roundtrip(self):
        from repro.geometry import wkt_loads

        ds = generate_nycb(10)
        for line, (record_id, geometry) in zip(ds.to_lines(precision=9), ds):
            rid, wkt = line.split("\t")
            assert int(rid) == record_id
            parsed = wkt_loads(wkt)
            assert parsed.envelope.distance(geometry.envelope) < 1e-3

    def test_write_to_hdfs(self):
        from repro.hdfs import SimulatedHDFS, read_lines

        fs = SimulatedHDFS()
        ds = generate_taxi(25)
        size = ds.write_to_hdfs(fs, "/taxi.txt")
        assert size == fs.status("/taxi.txt").size
        assert len(read_lines(fs, "/taxi.txt")) == 25
