"""kNN spatial join (extension): verified against brute force."""

import math

import pytest

from repro.bench.runner import cluster_spec
from repro.core import broadcast_knn_join, knn_join
from repro.errors import ReproError
from repro.geometry import LineString, Point
from repro.spark import SparkContext


@pytest.fixture
def points(rng):
    return [(i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(120)]


@pytest.fixture
def streets(rng):
    return [
        (i, LineString([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(3)]))
        for i in range(35)
    ]


def brute_knn(points, targets, k, max_distance=math.inf):
    expected = []
    for pid, p in points:
        ranked = sorted(
            ((p.distance(g), tid) for tid, g in targets),
            key=lambda t: t[0],
        )
        for dist, tid in ranked[:k]:
            if dist <= max_distance:
                expected.append((pid, tid, dist))
    return expected


class TestKnnJoin:
    def test_k1_matches_brute_force(self, points, streets):
        got = knn_join(points, streets, k=1)
        expected = brute_knn(points, streets, 1)
        assert [(l, r) for l, r, _ in got] == [(l, r) for l, r, _ in expected]
        for (_, _, d_got), (_, _, d_exp) in zip(got, expected):
            assert d_got == pytest.approx(d_exp, abs=1e-9)

    def test_k3_ordered_by_distance(self, points, streets):
        got = knn_join(points, streets, k=3)
        per_left = {}
        for left_id, _, dist in got:
            per_left.setdefault(left_id, []).append(dist)
        for distances in per_left.values():
            assert distances == sorted(distances)
            assert len(distances) == 3

    def test_max_distance_caps(self, points, streets):
        capped = knn_join(points, streets, k=5, max_distance=10.0)
        assert all(d <= 10.0 for _, _, d in capped)
        expected = brute_knn(points, streets, 5, max_distance=10.0)
        assert len(capped) == len(expected)

    def test_point_targets(self, points, rng):
        sites = [(c, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for c in "abcde"]
        got = knn_join(points, sites, k=2)
        expected = brute_knn(points, sites, 2)
        assert [(l, r) for l, r, _ in got] == [(l, r) for l, r, _ in expected]

    def test_wkt_inputs(self):
        got = knn_join([(0, "POINT (0 0)")], [("a", "POINT (1 0)"), ("b", "POINT (5 0)")], k=1)
        assert got == [(0, "a", 1.0)]

    def test_k_validation(self, points, streets):
        with pytest.raises(ReproError):
            knn_join(points, streets, k=0)

    def test_non_point_probe_rejected(self, streets):
        with pytest.raises(ReproError):
            knn_join([(0, LineString([(0, 0), (1, 1)]))], streets, k=1)


class TestBroadcastKnnJoin:
    def test_matches_local(self, points, streets):
        sc = SparkContext(cluster_spec(4))
        left = sc.parallelize(points, 4)
        right = sc.parallelize(streets, 2)
        got = sorted(broadcast_knn_join(sc, left, right, k=2).collect())
        expected = sorted(knn_join(points, streets, k=2))
        assert [(l, r) for l, r, _ in got] == [(l, r) for l, r, _ in expected]

    def test_charges_simulated_time(self, points, streets):
        sc = SparkContext(cluster_spec(4))
        left = sc.parallelize(points, 4)
        right = sc.parallelize(streets, 2)
        broadcast_knn_join(sc, left, right, k=1).count()
        assert sc.simulated_seconds() > 0
