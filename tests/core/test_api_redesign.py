"""The unified join API: JoinResult, JoinConfig, and method equivalence.

Every execution method must produce exactly the pairs of the naive
nested loop — on skewed, randomized inputs — and the new result/config
types must keep every legacy call shape working.
"""

from __future__ import annotations

import random

import pytest

from repro import JoinConfig, JoinResult, spatial_join, spatial_join_pairs
from repro.core.operators import SpatialOperator
from repro.data.synthetic import cluster_mixture_points
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

EXTENT = Envelope(0.0, 0.0, 10.0, 10.0)


def skewed_workload(seed: int, n_points: int = 600):
    """Clustered points against a polygon grid — the skew stress shape."""
    rng = random.Random(seed)
    centers = [
        (rng.uniform(1, 9), rng.uniform(1, 9), rng.uniform(0.1, 0.6))
        for _ in range(3)
    ]
    coords = cluster_mixture_points(rng, n_points, EXTENT, centers, 0.1)
    left = [(i, Point(x, y)) for i, (x, y) in enumerate(coords)]
    right = []
    for i in range(8):
        for j in range(8):
            x, y = i * 1.25, j * 1.25
            right.append(
                (
                    f"t{i}_{j}",
                    Polygon(
                        [(x, y), (x + 1.25, y), (x + 1.25, y + 1.25), (x, y + 1.25)]
                    ),
                )
            )
    return left, right


class TestMethodEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize(
        "method", ["auto", "broadcast", "partitioned", "dual-tree"]
    )
    def test_every_method_matches_naive_on_skewed_data(self, method, seed):
        left, right = skewed_workload(seed)
        truth = spatial_join(left, right, method="naive")
        result = spatial_join(left, right, method=method, workers=4)
        assert sorted(result) == sorted(truth)

    def test_intersects_with_radius_zero_polygons(self):
        left, right = skewed_workload(9, n_points=200)
        truth = spatial_join(
            left, right, operator=SpatialOperator.INTERSECTS, method="naive"
        )
        for method in ("broadcast", "partitioned", "dual-tree"):
            result = spatial_join(
                left, right, operator=SpatialOperator.INTERSECTS, method=method
            )
            assert sorted(result) == sorted(truth), method

    def test_index_is_a_broadcast_alias(self):
        left, right = skewed_workload(4, n_points=100)
        via_alias = spatial_join(left, right, method="index")
        via_broadcast = spatial_join(left, right, method="broadcast")
        assert sorted(via_alias) == sorted(via_broadcast)


class TestJoinResult:
    @pytest.fixture()
    def result(self) -> JoinResult:
        return spatial_join(
            [(0, Point(1, 1)), (1, Point(9, 9))],
            [("cell", Polygon([(0, 0), (4, 0), (4, 4), (0, 4)]))],
        )

    def test_list_compatibility(self, result):
        assert result == [(0, "cell")]
        assert list(result) == [(0, "cell")]
        assert len(result) == 1
        assert result[0] == (0, "cell")
        assert (0, "cell") in result
        assert sorted(result) == [(0, "cell")]

    def test_unhashable_like_a_list(self, result):
        with pytest.raises(TypeError):
            hash(result)

    def test_repr_shows_pairs(self, result):
        assert "(0, 'cell')" in repr(result)

    def test_auto_carries_plan_and_stats(self):
        left, right = skewed_workload(5, n_points=300)
        result = spatial_join(left, right, method="auto")
        assert result.plan is not None
        assert result.stats is not None
        assert result.method == result.plan.method
        assert result.method in ("broadcast", "partitioned", "dual-tree", "naive")
        assert "PLAN CHOICE" in result.explain()

    def test_explicit_method_has_no_plan(self):
        left, right = skewed_workload(5, n_points=100)
        result = spatial_join(left, right, method="broadcast")
        assert result.plan is None
        assert result.explain() == ""
        assert result.method == "broadcast"


class TestJoinConfig:
    def test_config_form_returns_join_result_with_profile(self):
        left, right = skewed_workload(6, n_points=100)
        cfg = JoinConfig(method="broadcast", profile=True)
        result = spatial_join(left, right, config=cfg)
        assert isinstance(result, JoinResult)
        assert result.profile is not None

    def test_config_takes_precedence_over_loose_keywords(self):
        left, right = skewed_workload(6, n_points=100)
        cfg = JoinConfig(method="naive")
        result = spatial_join(left, right, method="broadcast", config=cfg)
        assert result.method == "naive"

    def test_with_replaces_fields(self):
        cfg = JoinConfig(method="broadcast")
        tuned = cfg.with_(workers=8, skew_factor=3.0)
        assert tuned.method == "broadcast"
        assert tuned.workers == 8
        assert tuned.skew_factor == 3.0
        assert cfg.workers == 1  # original untouched (frozen dataclass)


class TestLegacyShapes:
    def test_loose_profile_keyword_raises_pointing_at_join_result(self):
        from repro.errors import ReproError

        left, right = skewed_workload(7, n_points=50)
        with pytest.raises(ReproError, match=r"JoinConfig\(profile=True\)"):
            spatial_join(left, right, method="broadcast", profile=True)
        # The config form is the supported way to profile.
        result = spatial_join(
            left, right, config=JoinConfig(method="broadcast", profile=True)
        )
        assert result.profile is not None

    def test_spatial_join_pairs_forwards_options(self):
        lefts = [Point(1, 1), Point(9, 9)]
        rights = [Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])]
        for method in ("auto", "broadcast", "partitioned", "dual-tree", "naive"):
            result = spatial_join_pairs(lefts, rights, method=method)
            assert result == [(0, 0)], method
        profiled = spatial_join_pairs(
            lefts, rights, config=JoinConfig(method="broadcast", profile=True)
        )
        assert profiled.profile is not None


class TestErrorRename:
    def test_spatial_index_error_is_canonical(self):
        from repro.errors import ReproError, SpatialIndexError

        assert issubclass(SpatialIndexError, ReproError)

    def test_removed_alias_raises_pointing_at_spatial_index_error(self):
        import repro.errors as errors_module

        with pytest.raises(AttributeError, match="SpatialIndexError"):
            errors_module.IndexError_
