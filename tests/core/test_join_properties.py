"""Property-based join invariants (hypothesis).

The central correctness claim of the repository — every join plan equals
the naive nested loop — asserted over *randomised* inputs rather than the
fixed scenarios of the other test modules.
"""

from hypothesis import given, settings, strategies as st

from repro.core import SpatialOperator, naive_spatial_join, spatial_join
from repro.geometry import LineString, Point, Polygon

coordinate = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    return [
        (i, Point(draw(coordinate), draw(coordinate))) for i in range(n)
    ]


@st.composite
def box_sets(draw):
    n = draw(st.integers(min_value=0, max_value=15))
    boxes = []
    for i in range(n):
        x = draw(coordinate)
        y = draw(coordinate)
        w = draw(st.floats(min_value=0.5, max_value=40.0))
        h = draw(st.floats(min_value=0.5, max_value=40.0))
        boxes.append(
            (i, Polygon([(x, y), (x + w, y), (x + w, y + h), (x, y + h)]))
        )
    return boxes


@st.composite
def line_sets(draw):
    n = draw(st.integers(min_value=0, max_value=15))
    lines = []
    for i in range(n):
        coords = [
            (draw(coordinate), draw(coordinate))
            for _ in range(draw(st.integers(min_value=2, max_value=5)))
        ]
        lines.append((i, LineString(coords)))
    return lines


class TestJoinEqualsNaive:
    @given(point_sets(), box_sets())
    @settings(max_examples=80, deadline=None)
    def test_within_indexed(self, points, boxes):
        indexed = sorted(spatial_join(points, boxes, SpatialOperator.WITHIN))
        naive = sorted(naive_spatial_join(points, boxes, SpatialOperator.WITHIN))
        assert indexed == naive

    @given(point_sets(), box_sets())
    @settings(max_examples=60, deadline=None)
    def test_within_dual_tree(self, points, boxes):
        dual = sorted(
            spatial_join(points, boxes, SpatialOperator.WITHIN, method="dual-tree")
        )
        naive = sorted(naive_spatial_join(points, boxes, SpatialOperator.WITHIN))
        assert dual == naive

    @given(point_sets(), line_sets(), st.floats(min_value=0.5, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_nearestd(self, points, lines, radius):
        indexed = sorted(
            spatial_join(points, lines, SpatialOperator.NEAREST_D, radius=radius)
        )
        naive = sorted(
            naive_spatial_join(points, lines, SpatialOperator.NEAREST_D, radius=radius)
        )
        assert indexed == naive

    @given(point_sets(), box_sets())
    @settings(max_examples=60, deadline=None)
    def test_engines_agree(self, points, boxes):
        fast = sorted(spatial_join(points, boxes, engine="fast"))
        slow = sorted(spatial_join(points, boxes, engine="slow"))
        assert fast == slow

    @given(point_sets(), box_sets())
    @settings(max_examples=40, deadline=None)
    def test_intersects_superset_of_within(self, points, boxes):
        """For points, Within == Intersects on closed polygons."""
        within = set(spatial_join(points, boxes, SpatialOperator.WITHIN))
        intersects = set(spatial_join(points, boxes, SpatialOperator.INTERSECTS))
        assert within <= intersects

    @given(point_sets(), line_sets(),
           st.floats(min_value=0.5, max_value=10.0),
           st.floats(min_value=10.0, max_value=30.0))
    @settings(max_examples=40, deadline=None)
    def test_nearestd_monotone_in_radius(self, points, lines, small, large):
        """Growing D can only add pairs, never remove them."""
        small_pairs = set(
            spatial_join(points, lines, SpatialOperator.NEAREST_D, radius=small)
        )
        large_pairs = set(
            spatial_join(points, lines, SpatialOperator.NEAREST_D, radius=large)
        )
        assert small_pairs <= large_pairs
