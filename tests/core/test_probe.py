"""BroadcastIndex and refine_pair: the shared filter+refine machinery."""

import pytest

from repro.cluster import Resource
from repro.core import BroadcastIndex, SpatialOperator, naive_spatial_join, refine_pair
from repro.errors import ReproError
from repro.geometry import LineString, Point, Polygon, create_engine


@pytest.fixture
def grid_polygons():
    polys = []
    for row in range(4):
        for col in range(4):
            x0, y0 = col * 25.0, row * 25.0
            polys.append(
                (row * 4 + col, Polygon([(x0, y0), (x0 + 25, y0), (x0 + 25, y0 + 25), (x0, y0 + 25)]))
            )
    return polys


@pytest.fixture
def streets(rng):
    return [
        (i, LineString([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(4)]))
        for i in range(40)
    ]


@pytest.fixture
def probes(rng):
    return [(i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(300)]


class TestBroadcastIndex:
    @pytest.mark.parametrize("engine", ["fast", "slow"])
    def test_within_matches_naive(self, engine, grid_polygons, probes):
        index = BroadcastIndex(grid_polygons, SpatialOperator.WITHIN, engine=engine)
        got = sorted(
            (pid, match) for pid, p in probes for match in index.probe(p)
        )
        expected = sorted(naive_spatial_join(probes, grid_polygons, SpatialOperator.WITHIN))
        assert got == expected

    @pytest.mark.parametrize("engine", ["fast", "slow"])
    def test_nearestd_matches_naive(self, engine, streets, probes):
        index = BroadcastIndex(
            streets, SpatialOperator.NEAREST_D, radius=8.0, engine=engine
        )
        got = sorted((pid, m) for pid, p in probes for m in index.probe(p))
        expected = sorted(
            naive_spatial_join(probes, streets, SpatialOperator.NEAREST_D, radius=8.0)
        )
        assert got == expected

    def test_intersects_operator(self, grid_polygons, probes):
        index = BroadcastIndex(grid_polygons, SpatialOperator.INTERSECTS)
        expected = sorted(
            naive_spatial_join(probes, grid_polygons, SpatialOperator.INTERSECTS)
        )
        got = sorted((pid, m) for pid, p in probes for m in index.probe(p))
        assert got == expected

    def test_radius_required_for_nearestd(self, streets):
        with pytest.raises(ReproError):
            BroadcastIndex(streets, SpatialOperator.NEAREST_D)

    def test_radius_ignored_for_within(self, grid_polygons):
        index = BroadcastIndex(grid_polygons, SpatialOperator.WITHIN, radius=50.0)
        assert index.radius == 0.0

    def test_empty_geometries_skipped(self):
        index = BroadcastIndex(
            [(0, Point.empty()), (1, Polygon([(0, 0), (1, 0), (1, 1)]))],
            SpatialOperator.WITHIN,
        )
        assert len(index) == 1

    def test_empty_probe_returns_nothing(self, grid_polygons):
        index = BroadcastIndex(grid_polygons, SpatialOperator.WITHIN)
        assert index.probe(Point.empty()) == []

    def test_build_cost_units(self, grid_polygons):
        index = BroadcastIndex(grid_polygons, SpatialOperator.WITHIN)
        assert index.build_cost_units() == {Resource.INDEX_BUILD: 16.0}
        assert index.build_vertex_total == 16 * 5

    def test_probe_with_cost_units(self, grid_polygons):
        index = BroadcastIndex(grid_polygons, SpatialOperator.WITHIN, engine="slow")
        matches, units = index.probe_with_cost(Point(10, 10))
        assert len(matches) == 1
        assert units[Resource.INDEX_VISIT] > 0
        assert units[Resource.REFINE_VERTEX_SLOW] > 0
        assert units[Resource.REFINE_ALLOC] > 0
        assert units[Resource.ROWS_OUT] == 1.0

    def test_fast_engine_units_have_no_alloc(self, grid_polygons):
        index = BroadcastIndex(grid_polygons, SpatialOperator.WITHIN, engine="fast")
        _, units = index.probe_with_cost(Point(10, 10))
        assert Resource.REFINE_VERTEX_FAST in units
        assert Resource.REFINE_ALLOC not in units

    def test_nearest(self, streets):
        index = BroadcastIndex(streets, SpatialOperator.NEAREST_D, radius=5.0)
        probe = Point(50, 50)
        found = index.nearest(probe, k=3, max_distance=1e9)
        assert len(found) == 3
        distances = [d for _, d in found]
        assert distances == sorted(distances)
        brute = sorted(probe.distance(line) for _, line in streets)[:3]
        assert distances == pytest.approx(brute)


class TestRefinePair:
    def test_point_within_polygon(self, unit_square):
        engine = create_engine("fast")
        handle = engine.prepare(unit_square)
        assert refine_pair(
            engine, SpatialOperator.WITHIN, Point(5, 5), unit_square, handle, 0.0
        )

    def test_contains_flips(self, unit_square):
        engine = create_engine("fast")
        # probe point "contains" polygon is false; polygon contains point is
        # expressed with the CONTAINS operator from the probe's perspective.
        handle = engine.prepare(unit_square)
        assert not refine_pair(
            engine, SpatialOperator.CONTAINS, Point(5, 5), unit_square, handle, 0.0
        )

    def test_non_point_probe_falls_back(self, unit_square):
        engine = create_engine("fast")
        handle = engine.prepare(unit_square)
        inner = Polygon([(2, 2), (4, 2), (4, 4), (2, 4)])
        assert refine_pair(
            engine, SpatialOperator.WITHIN, inner, unit_square, handle, 0.0
        )

    def test_non_point_nearestd(self, unit_square):
        engine = create_engine("fast")
        handle = engine.prepare(unit_square)
        nearby = LineString([(13, 0), (14, 0)])
        assert refine_pair(
            engine, SpatialOperator.NEAREST_D, nearby, unit_square, handle, 3.5
        )
        assert not refine_pair(
            engine, SpatialOperator.NEAREST_D, nearby, unit_square, handle, 2.5
        )


class TestSpatialOperator:
    def test_from_sql(self):
        assert SpatialOperator.from_sql("ST_WITHIN") is SpatialOperator.WITHIN
        assert SpatialOperator.from_sql("st_nearestd") is SpatialOperator.NEAREST_D

    def test_from_sql_unknown(self):
        with pytest.raises(ValueError):
            SpatialOperator.from_sql("ST_FLY")

    def test_needs_radius(self):
        assert SpatialOperator.NEAREST_D.needs_radius
        assert not SpatialOperator.WITHIN.needs_radius

    def test_scala_style_aliases(self):
        assert SpatialOperator.Within() is SpatialOperator.WITHIN
        assert SpatialOperator.NearestD() is SpatialOperator.NEAREST_D
