"""Batch-at-a-time joins return exactly what the scalar path returns.

``batch_refine`` may only change wall-clock: pairs, pair order, and the
simulated seconds billed by the cost model must be identical with it on
or off, for the broadcast and partitioned Spark joins and through the
public ``spatial_join`` API.
"""

from __future__ import annotations

import pytest

from repro.cluster.model import ClusterSpec
from repro.core.api import JoinConfig, spatial_join
from repro.core.broadcast_join import broadcast_spatial_join
from repro.core.operators import SpatialOperator
from repro.core.partitioned_join import derive_partitioning, partitioned_spatial_join
from repro.core.probe import BroadcastIndex
from repro.errors import ReproError
from repro.geometry import LineString, Point, Polygon
from repro.spark.context import SparkContext


@pytest.fixture
def point_records(rng):
    return [
        (i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(300)
    ]


@pytest.fixture
def cell_records():
    cells = []
    for gx in range(5):
        for gy in range(5):
            x, y = gx * 20.0, gy * 20.0
            cells.append(
                (
                    f"cell-{gx}-{gy}",
                    Polygon([(x, y), (x + 20, y), (x + 20, y + 20), (x, y + 20)]),
                )
            )
    return cells


@pytest.fixture
def line_records(rng):
    lines = []
    for i in range(40):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        lines.append(
            (
                f"line-{i}",
                LineString(
                    [(x, y), (x + rng.uniform(-10, 10), y + rng.uniform(-10, 10))]
                ),
            )
        )
    return lines


def run_broadcast(records, build, operator, radius, batch_refine):
    sc = SparkContext(ClusterSpec(2, 2))
    left = sc.parallelize(records, 4)
    right = sc.parallelize(build, 2)
    pairs = broadcast_spatial_join(
        sc, left, right, operator, radius=radius, batch_refine=batch_refine
    ).collect()
    return pairs, sc.simulated_seconds()


def run_partitioned(records, build, operator, radius, batch_refine):
    sc = SparkContext(ClusterSpec(2, 2))
    left = sc.parallelize(records, 4)
    right = sc.parallelize(build, 2)
    partitioning = derive_partitioning(left, num_tiles=4)
    pairs = partitioned_spatial_join(
        sc,
        left,
        right,
        operator,
        radius=radius,
        partitioning=partitioning,
        batch_refine=batch_refine,
    ).collect()
    return pairs, sc.simulated_seconds()


class TestSparkJoinEquivalence:
    def test_broadcast_within(self, point_records, cell_records):
        batch, batch_t = run_broadcast(
            point_records, cell_records, SpatialOperator.WITHIN, 0.0, True
        )
        scalar, scalar_t = run_broadcast(
            point_records, cell_records, SpatialOperator.WITHIN, 0.0, False
        )
        assert batch == scalar
        assert batch_t == scalar_t
        assert len(batch) == len(point_records)  # grid covers the square

    def test_broadcast_nearestd(self, point_records, line_records):
        batch, batch_t = run_broadcast(
            point_records, line_records, SpatialOperator.NEAREST_D, 5.0, True
        )
        scalar, scalar_t = run_broadcast(
            point_records, line_records, SpatialOperator.NEAREST_D, 5.0, False
        )
        assert batch == scalar
        assert batch_t == scalar_t
        assert batch  # the radius is wide enough to produce matches

    def test_partitioned_within(self, point_records, cell_records):
        batch, batch_t = run_partitioned(
            point_records, cell_records, SpatialOperator.WITHIN, 0.0, True
        )
        scalar, scalar_t = run_partitioned(
            point_records, cell_records, SpatialOperator.WITHIN, 0.0, False
        )
        assert batch == scalar
        assert batch_t == scalar_t

    def test_partitioned_nearestd(self, point_records, line_records):
        batch, batch_t = run_partitioned(
            point_records, line_records, SpatialOperator.NEAREST_D, 5.0, True
        )
        scalar, scalar_t = run_partitioned(
            point_records, line_records, SpatialOperator.NEAREST_D, 5.0, False
        )
        assert batch == scalar
        assert batch_t == scalar_t


class TestSpatialJoinApi:
    @pytest.mark.parametrize("method", ["broadcast", "partitioned", "auto"])
    def test_batch_matches_scalar_and_naive(
        self, method, point_records, cell_records
    ):
        naive = spatial_join(
            point_records, cell_records, config=JoinConfig(method="naive")
        )
        batch = spatial_join(
            point_records,
            cell_records,
            config=JoinConfig(method=method, batch_refine=True),
        )
        scalar = spatial_join(
            point_records,
            cell_records,
            config=JoinConfig(method=method, batch_refine=False),
        )
        assert batch.pairs == scalar.pairs
        assert sorted(batch.pairs) == sorted(naive.pairs)

    def test_custom_batch_size_same_result(self, point_records, cell_records):
        default = spatial_join(
            point_records, cell_records, config=JoinConfig(method="broadcast")
        )
        small = spatial_join(
            point_records,
            cell_records,
            config=JoinConfig(method="broadcast", batch_size=7),
        )
        assert small.pairs == default.pairs


class TestJoinConfigValidation:
    @pytest.mark.parametrize("bad", [0, -1, -1024])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ReproError):
            JoinConfig(batch_size=bad)

    @pytest.mark.parametrize("bad", [1.5, "1024", None])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ReproError):
            JoinConfig(batch_size=bad)

    def test_with_revalidates(self):
        config = JoinConfig()
        assert config.batch_size == 1024
        with pytest.raises(ReproError):
            config.with_(batch_size=0)


class TestProbeBatchModes:
    def test_totals_equal_summed_per_row(self, point_records, cell_records):
        index = BroadcastIndex(cell_records, SpatialOperator.WITHIN)
        geometries = [g for _, g in point_records]
        matches_total, totals = index.probe_batch(geometries)
        matches_row, per_row = index.probe_batch(geometries, per_row=True)
        assert matches_total == matches_row
        summed: dict[str, float] = {}
        for units in per_row:
            for key, value in units.items():
                summed[key] = summed.get(key, 0.0) + value
        assert totals == {k: v for k, v in summed.items() if v or k in totals}

    def test_matches_scalar_probe_with_cost(self, point_records, line_records):
        index = BroadcastIndex(
            line_records, SpatialOperator.NEAREST_D, radius=5.0
        )
        geometries = [g for _, g in point_records]
        scalar = [index.probe_with_cost(g) for g in geometries]
        matches, per_row = index.probe_batch(geometries, per_row=True)
        assert matches == [m for m, _ in scalar]
        assert per_row == [u for _, u in scalar]

    def test_none_and_empty_probes(self, cell_records):
        index = BroadcastIndex(cell_records, SpatialOperator.WITHIN)
        geometries = [Point(10, 10), None, Point.empty()]
        matches, per_row = index.probe_batch(geometries, per_row=True)
        assert matches[0] == ["cell-0-0"]
        assert matches[1] == [] and per_row[1] is None
        assert matches[2] == []
        assert per_row[2] is not None and per_row[2]["rows_out"] == 0.0

    def test_empty_batch(self, cell_records):
        index = BroadcastIndex(cell_records, SpatialOperator.WITHIN)
        matches, totals = index.probe_batch([])
        assert matches == []
        assert totals == {}
