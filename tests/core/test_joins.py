"""Cross-engine join integration: every plan produces the same pairs."""

import random

import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    SpatialOperator,
    broadcast_spatial_join,
    naive_spatial_join,
    partitioned_spatial_join,
    read_geometry_pairs,
    spatial_join,
    spatial_join_pairs,
    standalone_spatial_join,
)
from repro.core.partitioned_join import derive_partitioning
from repro.errors import ReproError
from repro.geometry import LineString, Point, Polygon
from repro.hdfs import SimulatedHDFS, write_text
from repro.spark import SparkContext


@pytest.fixture(scope="module")
def scenario():
    """Points, polygons and streets plus their serialised HDFS files."""
    rng = random.Random(1234)
    points = [(i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(350)]
    polys = []
    for row in range(5):
        for col in range(5):
            x0, y0 = col * 20.0, row * 20.0
            polys.append(
                (row * 5 + col,
                 Polygon([(x0, y0), (x0 + 20, y0), (x0 + 20, y0 + 20), (x0, y0 + 20)]))
            )
    streets = [
        (i, LineString([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(3)]))
        for i in range(30)
    ]
    fs = SimulatedHDFS(block_size=2048)
    write_text(fs, "/points.txt", [f"{i}\t{g.wkt()}" for i, g in points])
    write_text(fs, "/polys.txt", [f"{i}\t{g.wkt()}" for i, g in polys])
    write_text(fs, "/streets.txt", [f"{i}\t{g.wkt()}" for i, g in streets])
    within_truth = sorted(naive_spatial_join(points, polys, SpatialOperator.WITHIN))
    neard_truth = sorted(
        naive_spatial_join(points, streets, SpatialOperator.NEAREST_D, radius=7.0)
    )
    return {
        "fs": fs,
        "points": points,
        "polys": polys,
        "streets": streets,
        "within_truth": within_truth,
        "neard_truth": neard_truth,
    }


def fresh_sc(scenario, nodes=3):
    return SparkContext(ClusterSpec(nodes, 4), hdfs=scenario["fs"])


class TestInMemoryAPI:
    def test_within(self, scenario):
        got = spatial_join(scenario["points"], scenario["polys"])
        assert sorted(got) == scenario["within_truth"]

    def test_nearestd(self, scenario):
        got = spatial_join(
            scenario["points"], scenario["streets"], "nearestd", radius=7.0
        )
        assert sorted(got) == scenario["neard_truth"]

    def test_naive_method(self, scenario):
        got = spatial_join(
            scenario["points"][:50], scenario["polys"], method="naive"
        )
        expected = naive_spatial_join(
            scenario["points"][:50], scenario["polys"], SpatialOperator.WITHIN
        )
        assert sorted(got) == sorted(expected)

    def test_wkt_string_inputs(self):
        got = spatial_join(
            [(0, "POINT (1 1)")],
            [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")],
        )
        assert got == [(0, "cell")]

    def test_positional_variant(self):
        got = spatial_join_pairs(
            ["POINT (1 1)", "POINT (9 9)"],
            ["POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"],
        )
        assert got == [(0, 0)]

    def test_bad_operator(self):
        with pytest.raises(ReproError):
            spatial_join([], [], "teleport")

    def test_bad_method(self):
        with pytest.raises(ReproError):
            spatial_join([], [], method="quantum")

    def test_bad_geometry_type(self):
        with pytest.raises(ReproError):
            spatial_join([(0, 42)], [])


class TestBroadcastJoin:
    def test_within_from_hdfs(self, scenario):
        sc = fresh_sc(scenario)
        left = read_geometry_pairs(sc, "/points.txt", 1)
        right = read_geometry_pairs(sc, "/polys.txt", 1)
        pairs = broadcast_spatial_join(sc, left, right, SpatialOperator.WITHIN)
        assert sorted(pairs.collect()) == scenario["within_truth"]

    def test_nearestd_from_hdfs(self, scenario):
        sc = fresh_sc(scenario)
        left = read_geometry_pairs(sc, "/points.txt", 1)
        right = read_geometry_pairs(sc, "/streets.txt", 1)
        pairs = broadcast_spatial_join(
            sc, left, right, SpatialOperator.NEAREST_D, radius=7.0
        )
        assert sorted(pairs.collect()) == scenario["neard_truth"]

    def test_slow_engine_same_result(self, scenario):
        sc = fresh_sc(scenario)
        left = read_geometry_pairs(sc, "/points.txt", 1)
        right = read_geometry_pairs(sc, "/polys.txt", 1)
        pairs = broadcast_spatial_join(
            sc, left, right, SpatialOperator.WITHIN, engine="slow"
        )
        assert sorted(pairs.collect()) == scenario["within_truth"]

    def test_missing_radius_rejected(self, scenario):
        sc = fresh_sc(scenario)
        left = sc.parallelize(scenario["points"], 2)
        right = sc.parallelize(scenario["streets"], 2)
        with pytest.raises(ReproError):
            broadcast_spatial_join(sc, left, right, SpatialOperator.NEAREST_D)

    def test_dirty_rows_dropped(self, scenario):
        sc = fresh_sc(scenario)
        write_text(sc.hdfs, "/dirty.txt",
                   ["0\tPOINT (1 1)", "1\tBROKEN WKT", "2\tPOINT (2 2)", "3"])
        pairs = read_geometry_pairs(sc, "/dirty.txt", 1).collect()
        assert [i for i, _ in pairs] == [0, 2]


class TestPartitionedJoin:
    @pytest.mark.parametrize("tiles", [1, 4, 9, 16])
    def test_within_any_tiling(self, scenario, tiles):
        sc = fresh_sc(scenario)
        left = sc.parallelize(scenario["points"], 4)
        right = sc.parallelize(scenario["polys"], 2)
        pairs = partitioned_spatial_join(
            sc, left, right, SpatialOperator.WITHIN, num_tiles=tiles
        )
        assert sorted(pairs.collect()) == scenario["within_truth"]

    def test_nearestd(self, scenario):
        sc = fresh_sc(scenario)
        left = sc.parallelize(scenario["points"], 4)
        right = sc.parallelize(scenario["streets"], 2)
        pairs = partitioned_spatial_join(
            sc, left, right, SpatialOperator.NEAREST_D, radius=7.0, num_tiles=9
        )
        assert sorted(pairs.collect()) == scenario["neard_truth"]

    def test_no_duplicates_even_with_replication(self, scenario):
        sc = fresh_sc(scenario)
        left = sc.parallelize(scenario["points"], 4)
        right = sc.parallelize(scenario["polys"], 2)
        pairs = partitioned_spatial_join(
            sc, left, right, SpatialOperator.WITHIN, num_tiles=16
        ).collect()
        assert len(pairs) == len(set(pairs))

    def test_explicit_partitioning(self, scenario):
        sc = fresh_sc(scenario)
        left = sc.parallelize(scenario["points"], 4)
        right = sc.parallelize(scenario["polys"], 2)
        partitioning = derive_partitioning(left, num_tiles=8)
        pairs = partitioned_spatial_join(
            sc, left, right, SpatialOperator.WITHIN, partitioning=partitioning
        )
        assert sorted(pairs.collect()) == scenario["within_truth"]

    def test_empty_left_rejected_by_derive(self, scenario):
        sc = fresh_sc(scenario)
        empty = sc.parallelize([], 2)
        with pytest.raises(ReproError):
            derive_partitioning(empty, 4)


class TestStandalone:
    def test_within(self, scenario):
        result = standalone_spatial_join(
            scenario["fs"], "/points.txt", "/polys.txt", SpatialOperator.WITHIN
        )
        assert sorted(result.pairs) == scenario["within_truth"]

    def test_nearestd(self, scenario):
        result = standalone_spatial_join(
            scenario["fs"], "/points.txt", "/streets.txt",
            SpatialOperator.NEAREST_D, radius=7.0,
        )
        assert sorted(result.pairs) == scenario["neard_truth"]

    def test_dynamic_scheduling_same_pairs(self, scenario):
        static = standalone_spatial_join(
            scenario["fs"], "/points.txt", "/polys.txt", SpatialOperator.WITHIN,
            scheduling="static",
        )
        dynamic = standalone_spatial_join(
            scenario["fs"], "/points.txt", "/polys.txt", SpatialOperator.WITHIN,
            scheduling="dynamic",
        )
        assert sorted(static.pairs) == sorted(dynamic.pairs)

    def test_bad_scheduling(self, scenario):
        with pytest.raises(ReproError):
            standalone_spatial_join(
                scenario["fs"], "/points.txt", "/polys.txt",
                SpatialOperator.WITHIN, scheduling="wishful",
            )

    def test_simulated_time_positive(self, scenario):
        result = standalone_spatial_join(
            scenario["fs"], "/points.txt", "/polys.txt", SpatialOperator.WITHIN
        )
        assert result.simulated_seconds > 0


class TestAllPlansAgree:
    """The repository's central invariant, asserted in one place."""

    def test_four_plans_one_answer(self, scenario):
        truth = scenario["within_truth"]
        api = sorted(spatial_join(scenario["points"], scenario["polys"]))
        sc = fresh_sc(scenario)
        left = read_geometry_pairs(sc, "/points.txt", 1)
        right = read_geometry_pairs(sc, "/polys.txt", 1)
        broadcast = sorted(
            broadcast_spatial_join(sc, left, right, SpatialOperator.WITHIN).collect()
        )
        partitioned = sorted(
            partitioned_spatial_join(
                sc, left, right, SpatialOperator.WITHIN, num_tiles=9
            ).collect()
        )
        standalone = sorted(
            standalone_spatial_join(
                scenario["fs"], "/points.txt", "/polys.txt", SpatialOperator.WITHIN
            ).pairs
        )
        assert api == truth
        assert broadcast == truth
        assert partitioned == truth
        assert standalone == truth


class TestDualTreeMethod:
    def test_within_matches_index_method(self, scenario):
        got = sorted(
            spatial_join(
                scenario["points"], scenario["polys"], method="dual-tree"
            )
        )
        assert got == scenario["within_truth"]

    def test_nearestd_matches_index_method(self, scenario):
        got = sorted(
            spatial_join(
                scenario["points"], scenario["streets"], "nearestd",
                radius=7.0, method="dual-tree",
            )
        )
        assert got == scenario["neard_truth"]

    def test_slow_engine_agrees(self, scenario):
        got = sorted(
            spatial_join(
                scenario["points"][:100], scenario["polys"],
                method="dual-tree", engine="slow",
            )
        )
        expected = sorted(
            spatial_join(scenario["points"][:100], scenario["polys"])
        )
        assert got == expected
