"""Tracer and metrics-registry behaviour."""

from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    collecting,
    get_tracer,
    set_tracer,
    tracing,
)


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("query") as q:
            with tracer.span("stage") as s:
                with tracer.span("task"):
                    pass
            with tracer.span("stage-2"):
                pass
        assert [r.name for r in tracer.roots] == ["query"]
        assert [c.name for c in q.children] == ["stage", "stage-2"]
        assert [c.name for c in s.children] == ["task"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_span_records_wall_and_sim(self):
        tracer = Tracer()
        with tracer.span("work", category="phase", foo=1) as span:
            span.add_sim(2.5)
            span.add_sim(0.5)
            span.set_attr("bar", "baz")
        assert span.sim_seconds == 3.0
        assert span.wall_seconds >= 0.0
        assert span.end_wall >= span.start_wall
        assert span.attrs == {"foo": 1, "bar": "baz"}

    def test_add_counts_merges(self):
        tracer = Tracer()
        with tracer.span("t") as span:
            span.add_counts({"hdfs_bytes": 10.0})
            span.add_counts({"hdfs_bytes": 5.0, "rows_out": 2.0})
        assert span.attrs == {"hdfs_bytes": 15.0, "rows_out": 2.0}

    def test_event_attaches_as_leaf(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.event("tick", sim_seconds=1.25, n=3)
        (parent,) = tracer.roots
        (event,) = parent.children
        assert event.name == "tick"
        assert event.sim_seconds == 1.25
        assert event.attrs == {"n": 3}
        assert event.wall_seconds == 0.0

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is NULL_SPAN
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
        assert tracer.current_span() is NULL_SPAN

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestDisabledTracer:
    def test_disabled_span_is_null_singleton(self):
        tracer = Tracer(enabled=False)
        span_cm = tracer.span("anything", category="x", attr=1)
        assert span_cm is NULL_SPAN
        with span_cm as span:
            # Every mutator is a no-op on the shared singleton.
            span.add_sim(100.0)
            span.set_attr("k", "v")
            span.add_counts({"c": 1.0})
        assert span.sim_seconds == 0.0
        assert tracer.roots == []

    def test_disabled_event_is_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.event("tick", sim_seconds=5.0) is NULL_SPAN
        assert tracer.roots == []

    def test_global_tracer_disabled_by_default(self):
        assert get_tracer().enabled is False

    def test_tracing_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            with tracer.span("q"):
                pass
        assert get_tracer() is before
        assert [r.name for r in tracer.roots] == ["q"]

    def test_tracing_restores_on_error(self):
        before = get_tracer()
        try:
            with tracing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_tracer() is before

    def test_set_tracer_roundtrip(self):
        before = get_tracer()
        mine = Tracer()
        try:
            assert set_tracer(mine) is mine
            assert get_tracer() is mine
        finally:
            set_tracer(before)


class TestMetricsRegistry:
    def test_disabled_writes_are_dropped(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("hdfs.reads")
        reg.set_gauge("depth", 3.0)
        assert reg.counter("hdfs.reads") == 0.0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_counters_and_gauges(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("hdfs.reads")
        reg.inc("hdfs.reads", 2.0)
        reg.set_gauge("depth", 3.0)
        reg.set_gauge("depth", 4.0)
        assert reg.counter("hdfs.reads") == 3.0
        assert reg.gauge("depth") == 4.0
        snap = reg.snapshot()
        assert snap["counters"] == {"hdfs.reads": 3.0}
        assert snap["gauges"] == {"depth": 4.0}

    def test_reset(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("x", 5.0)
        reg.reset()
        assert reg.counter("x") == 0.0

    def test_collecting_scopes_enablement(self):
        reg = MetricsRegistry(enabled=False)
        with collecting(reg) as scoped:
            assert scoped is reg
            reg.inc("y")
            assert reg.counter("y") == 1.0
        assert reg.enabled is False
        # The next collection starts clean.
        with collecting(reg):
            assert reg.counter("y") == 0.0
