"""EXPLAIN / EXPLAIN ANALYZE: estimate trees, overlays, misestimate flags."""

import json

import pytest

from repro.bench.workloads import materialize
from repro.core import JoinConfig, spatial_join
from repro.errors import ReproError
from repro.obs.events import logging_events, normalize_events
from repro.obs.explain import (
    EXPLAIN_SCHEMA_VERSION,
    ExplainNode,
    ExplainReport,
    explain,
    report_from_profile,
)

# Stage names the estimate tree must use per method — they mirror the
# executed profile's stage names so the ANALYZE overlay lines up.
_STAGES = {
    "broadcast": ["parse", "build", "probe"],
    "partitioned": ["parse", "shuffle", "join"],
    "dual-tree": ["parse", "build", "join"],
    "naive": ["parse", "join"],
}


@pytest.fixture(scope="module")
def hotspot():
    wl = materialize("hotspot-nycb", scale=0.02)
    return wl.left.records, wl.right.records, wl.workload.operator


@pytest.fixture(scope="module")
def analyzed(hotspot):
    left, right, op = hotspot
    return spatial_join(
        left, right, config=JoinConfig(operator=op, explain="analyze")
    )


class TestExplainPlanOnly:
    def test_plan_mode_never_executes(self, hotspot):
        left, right, op = hotspot
        report = explain(left, right, config=JoinConfig(operator=op))
        assert report.mode == "plan"
        assert report.root.actual is None
        assert all(node.actual is None for node in report.operators())
        assert report.misestimates() == []

    def test_operator_names_match_profile_stages(self, hotspot):
        left, right, op = hotspot
        report = explain(left, right, config=JoinConfig(operator=op))
        names = [node.name for node in report.root.children]
        assert names == _STAGES[report.method]

    def test_root_estimate_matches_priced_plan(self, hotspot):
        left, right, op = hotspot
        report = explain(left, right, config=JoinConfig(operator=op))
        priced = report.plan["costs"][report.method]
        # plan costs are rounded to 6 dp for display; the root sums the
        # unrounded terms, so compare with tolerance, not equality.
        assert report.total_estimated_seconds == pytest.approx(priced, abs=1e-5)

    def test_all_four_plans_priced(self, hotspot):
        left, right, op = hotspot
        report = explain(left, right, config=JoinConfig(operator=op))
        assert set(report.plan["costs"]) == {
            "naive", "broadcast", "partitioned", "dual-tree"
        }

    def test_forced_method_keeps_chosen_on_record(self, hotspot):
        left, right, op = hotspot
        auto = explain(left, right, config=JoinConfig(operator=op))
        forced = explain(
            left, right, config=JoinConfig(operator=op, method="partitioned")
        )
        assert forced.method == "partitioned"
        assert forced.plan["chosen"] == auto.method
        assert [n.name for n in forced.root.children] == _STAGES["partitioned"]

    def test_plan_annotations_present(self, hotspot):
        left, right, op = hotspot
        report = explain(left, right, config=JoinConfig(operator=op))
        assert report.plan["partitioner"] == "sort-tile+hot-split"
        assert report.plan["tiles"] >= 1
        assert "enabled" in report.plan["cache"]
        text = report.render()
        assert text.startswith("EXPLAIN ")
        assert "plan costs:" in text

    def test_parse_estimated_only_for_wkt_inputs(self, hotspot):
        left, right, op = hotspot
        objects = explain(left, right, config=JoinConfig(operator=op))
        wkt_left = [(i, g.wkt()) for i, g in left]
        texts = explain(wkt_left, right, config=JoinConfig(operator=op))
        assert objects.find("parse").estimate["seconds"] == 0.0
        assert texts.find("parse").estimate["seconds"] > 0.0


class TestExplainAnalyze:
    def test_actuals_sum_match_engine_total(self, analyzed):
        report = analyzed.explain_report
        assert report.mode == "analyze"
        total = report.total_actual_seconds
        assert total == analyzed.profile.total_simulated_seconds
        children = sum(
            (node.actual or {}).get("seconds", 0.0)
            for node in report.root.children
        )
        assert children == pytest.approx(total, rel=1e-9)

    def test_seeded_build_misestimate_flagged(self, analyzed):
        flagged = analyzed.explain_report.misestimates()
        assert any(
            item["operator"] == "build" and "seconds misestimate" in item["flag"]
            for item in flagged
        )

    def test_render_analyze_form(self, analyzed):
        text = analyzed.explain_report.render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "actual" in text
        assert "misestimates" in text
        assert "operator" in text and "est s" in text and "act s" in text

    def test_explain_analyze_returns_attached_report(self, analyzed):
        assert analyzed.explain_analyze() is analyzed.explain_report

    def test_actual_rows_recorded(self, analyzed):
        probe = analyzed.explain_report.find("probe")
        assert probe is not None
        assert probe.actual["rows"] == float(len(analyzed.pairs))

    def test_generous_ratio_clears_flags(self, hotspot):
        left, right, op = hotspot
        result = spatial_join(
            left,
            right,
            config=JoinConfig(operator=op, explain="analyze", explain_ratio=1e6),
        )
        assert result.explain_report.misestimates() == []


class TestByteIdentity:
    """explain on vs off: identical pairs, profiles and normalized events."""

    def test_pairs_identical(self, hotspot, analyzed):
        left, right, op = hotspot
        plain = spatial_join(left, right, config=JoinConfig(operator=op))
        assert list(plain) == list(analyzed)

    def test_profile_identical(self, hotspot, analyzed):
        left, right, op = hotspot
        plain = spatial_join(
            left, right, config=JoinConfig(operator=op, profile=True)
        )
        assert plain.profile.to_json() == analyzed.profile.to_json()

    def test_normalized_events_identical(self, hotspot):
        # Compare at matched profile settings: analyze forces profile
        # collection (which legitimately fills QueryEnd.sim_seconds), so
        # explain's own contribution must be nil against a profiled run —
        # and plan mode's against an unprofiled one.
        left, right, op = hotspot
        with logging_events() as off_log:
            spatial_join(
                left, right, config=JoinConfig(operator=op, profile=True)
            )
        with logging_events() as analyze_log:
            spatial_join(
                left, right, config=JoinConfig(operator=op, explain="analyze")
            )
        assert normalize_events(off_log.events) == normalize_events(
            analyze_log.events
        )
        with logging_events() as bare_log:
            spatial_join(left, right, config=JoinConfig(operator=op))
        with logging_events() as plan_log:
            spatial_join(
                left, right, config=JoinConfig(operator=op, explain="plan")
            )
        assert normalize_events(bare_log.events) == normalize_events(
            plan_log.events
        )


class TestLazyAnalyze:
    def test_profiled_run_overlays_lazily(self, hotspot):
        left, right, op = hotspot
        result = spatial_join(
            left, right, config=JoinConfig(operator=op, profile=True)
        )
        report = result.explain_analyze()
        assert report.mode == "analyze"
        assert report.total_actual_seconds == result.profile.total_simulated_seconds

    def test_unprofiled_run_refuses(self, hotspot):
        left, right, op = hotspot
        result = spatial_join(left, right, config=JoinConfig(operator=op))
        with pytest.raises(ReproError, match="explain_analyze"):
            result.explain_analyze()


class TestReportFromProfile:
    def test_wraps_engine_profile(self, hotspot):
        left, right, op = hotspot
        result = spatial_join(
            left, right, config=JoinConfig(operator=op, profile=True)
        )
        report = report_from_profile(result.profile)
        assert report.mode == "analyze"
        assert report.total_actual_seconds == result.profile.total_simulated_seconds
        names = {node.name for node in report.root.children}
        assert names == {child.name for child in result.profile.root.children}
        # No optimizer estimates: the table renders '-' in est columns.
        assert all(not n.estimate for n in report.root.children)
        assert "EXPLAIN ANALYZE" in report.render()


class TestSerialisation:
    def test_json_round_trip_renders_equal(self, analyzed):
        doc = json.loads(json.dumps(analyzed.explain_report.to_json()))
        assert doc["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert doc["generated_by"].startswith("repro.obs.explain/")
        rebuilt = ExplainReport.from_json(doc)
        assert rebuilt.render() == analyzed.explain_report.render()
        assert rebuilt.misestimates() == analyzed.explain_report.misestimates()

    def test_unknown_schema_version_rejected(self, analyzed):
        doc = analyzed.explain_report.to_json()
        doc["schema_version"] = 99
        with pytest.raises(ReproError, match="schema_version"):
            ExplainReport.from_json(doc)

    def test_node_round_trip(self):
        node = ExplainNode(
            name="probe",
            info={"skew": 2.5},
            estimate={"seconds": 1.0, "rows": 10.0},
            actual={"seconds": 8.0},
            flags=["seconds misestimate: est 1 vs actual 8 (8.0x)"],
        )
        node.add_child(ExplainNode(name="leaf"))
        assert ExplainNode.from_dict(node.to_dict()) == node
