"""Profile trees and Chrome trace_event export."""

import json

from repro.obs import (
    ProfileNode,
    QueryProfile,
    Tracer,
    profile_to_chrome_trace,
    spans_to_chrome_trace,
    spans_to_json,
    write_chrome_trace,
)


def make_profile() -> QueryProfile:
    root = ProfileNode("query", sim_seconds=10.0, info={"engine": "test"})
    root.add_child(ProfileNode("setup", sim_seconds=2.0))
    stage = root.add_child(
        ProfileNode(
            "stage",
            sim_seconds=8.0,
            counters={"rows_out": 42.0},
            concurrent=True,
        )
    )
    stage.add_child(ProfileNode("task-0", sim_seconds=8.0, concurrent=True))
    stage.add_child(ProfileNode("task-1", sim_seconds=5.0, concurrent=True))
    return QueryProfile(root)


class TestQueryProfile:
    def test_phase_seconds_sums_top_level(self):
        profile = make_profile()
        assert profile.phase_seconds() == {"setup": 2.0, "stage": 8.0}
        assert profile.total_simulated_seconds == 10.0

    def test_find(self):
        profile = make_profile()
        assert profile.find("task-1").sim_seconds == 5.0
        assert profile.find("nope") is None

    def test_render_mentions_every_node_and_counters(self):
        text = make_profile().render()
        for needle in ("query", "setup", "stage", "task-0", "task-1"):
            assert needle in text
        assert "rows_out=42" in text
        assert "simulated total 10.000s" in text

    def test_render_without_counters(self):
        assert "rows_out" not in make_profile().render(counters=False)

    def test_to_json_round_trips(self):
        doc = make_profile().to_json()
        restored = json.loads(json.dumps(doc))
        assert restored["total_simulated_seconds"] == 10.0
        assert restored["tree"]["children"][1]["counters"] == {"rows_out": 42.0}


class TestChromeTrace:
    def test_schema(self):
        trace = profile_to_chrome_trace(make_profile())
        restored = json.loads(json.dumps(trace))
        assert restored["displayTimeUnit"] == "ms"
        events = restored["traceEvents"]
        assert len(events) == 5
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
            assert event["dur"] >= 0

    def test_sequential_children_lay_back_to_back(self):
        trace = profile_to_chrome_trace(make_profile())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["setup"]["ts"] == by_name["query"]["ts"]
        assert by_name["stage"]["ts"] == by_name["setup"]["ts"] + by_name["setup"]["dur"]

    def test_concurrent_children_share_start_on_distinct_rows(self):
        trace = profile_to_chrome_trace(make_profile())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        t0, t1 = by_name["task-0"], by_name["task-1"]
        assert t0["ts"] == t1["ts"] == by_name["stage"]["ts"]
        assert t0["tid"] != t1["tid"]

    def test_spans_export(self):
        tracer = Tracer()
        with tracer.span("query") as q:
            q.add_sim(1.0)
            with tracer.span("phase", category="phase"):
                pass
        trace = spans_to_chrome_trace(tracer.roots)
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["query", "phase"]
        assert events[0]["args"]["sim_seconds"] == 1.0
        # Child starts at or after the parent on the wall clock.
        assert events[1]["ts"] >= events[0]["ts"]
        json.dumps(trace)

    def test_spans_to_json(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        docs = spans_to_json(tracer.roots)
        assert docs[0]["name"] == "a"
        assert docs[0]["children"][0]["name"] == "b"

    def test_write_chrome_trace_merges(self, tmp_path):
        path = tmp_path / "trace.json"
        profile_trace = profile_to_chrome_trace(make_profile())
        tracer = Tracer()
        with tracer.span("wall"):
            pass
        write_chrome_trace(str(path), profile_trace, spans_to_chrome_trace(tracer.roots))
        merged = json.loads(path.read_text())
        names = [e["name"] for e in merged["traceEvents"]]
        assert "query" in names and "wall" in names
        # Distinct pids keep the two clocks on separate tracks.
        assert len({e["pid"] for e in merged["traceEvents"]}) == 2


class TestProfileRoundTrip:
    def test_to_dict_from_dict_preserves_tree(self):
        profile = make_profile()
        doc = profile.to_dict()
        json.dumps(doc)  # archive form must be plain JSON
        rebuilt = QueryProfile.from_dict(doc)
        assert rebuilt.to_dict() == doc
        assert rebuilt.render() == profile.render()

    def test_from_dict_defaults_missing_fields(self):
        node = ProfileNode.from_dict({"name": "bare"})
        assert node.name == "bare"
        assert node.sim_seconds == 0.0
        assert node.children == []


class TestWorkerLanes:
    """Pooled spans carry their physical placement into the trace."""

    def test_worker_attrs_pick_the_lane(self):
        tracer = Tracer()
        with tracer.span("task-a") as span:
            span.set_attr("worker", 3)
            span.set_attr("worker_pid", 4242)
        with tracer.span("task-b"):
            pass
        events = spans_to_chrome_trace(tracer.roots)["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["task-a"]["pid"] == 4242
        assert by_name["task-a"]["tid"] == 3
        # Untagged spans keep the legacy wall-clock lane.
        assert by_name["task-b"]["pid"] == 2

    def test_children_inherit_worker_lane(self):
        tracer = Tracer()
        with tracer.span("task") as span:
            span.set_attr("worker", 1)
            span.set_attr("worker_pid", 777)
            with tracer.span("inner"):
                pass
        events = spans_to_chrome_trace(tracer.roots)["traceEvents"]
        assert all(e["pid"] == 777 and e["tid"] == 1 for e in events)

    def test_engines_get_distinct_tids(self):
        spark = QueryProfile(
            ProfileNode("q", sim_seconds=1.0, info={"engine": "SpatialSpark"})
        )
        impala = QueryProfile(
            ProfileNode("q", sim_seconds=1.0, info={"engine": "ISP-MC"})
        )
        spark_tid = profile_to_chrome_trace(spark)["traceEvents"][0]["tid"]
        impala_tid = profile_to_chrome_trace(impala)["traceEvents"][0]["tid"]
        assert spark_tid != impala_tid
