"""The replay-driven monitor: timelines, stage tables, stragglers."""

import pytest

from repro.core import JoinConfig, spatial_join
from repro.data.hotspot import generate_hotspot
from repro.obs.events import logging_events, read_events
from repro.obs.monitor import (
    TaskRecord,
    detect_stragglers,
    monitor_report,
    parse_tasks,
    render_stage_summary,
    render_stragglers,
    render_timelines,
    render_utilization,
    stage_names,
)
from repro.runtime import ProcessBackend

HAS_FORK = ProcessBackend(2).supports_closures
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fork start method unavailable"
)


def _task(query=1, stage=1, task=0, partition=0, worker=None, pid=100,
          t0=0.0, t1=1.0, sim=1.0):
    return TaskRecord(
        query=query, stage=stage, task=task, partition=partition,
        label=f"task-{task}", worker=worker, pid=pid,
        wall_start=t0, wall_end=t1, sim_seconds=sim,
    )


def _hotspot_events(executors="serial", tmp_path=None, name="events"):
    """A seeded skewed join whose hot tiles survive into the task plan.

    Probe side uniform (so the sort-tile grid stays uniform), build side
    the three-Gaussian hotspot dataset, and hot-tile splitting disabled —
    the tiles under the spots cost ~30x the median tile.
    """
    import random

    from repro.data.taxi import NYC_EXTENT
    from repro.geometry.point import Point

    rng = random.Random(20150403)
    extent = NYC_EXTENT
    left = [
        (
            i,
            Point(
                rng.uniform(extent.min_x, extent.max_x),
                rng.uniform(extent.min_y, extent.max_y),
            ),
        )
        for i in range(600)
    ]
    right = generate_hotspot(600, seed=7).records
    cfg = JoinConfig(
        operator="nearestd",
        radius=800.0,
        method="partitioned",
        executors=executors,
        num_tiles=16,
        skew_factor=1e9,  # never split: the straggler must stay visible
        events_out=str(tmp_path / f"{name}.jsonl") if tmp_path else None,
    )
    if tmp_path is not None:
        spatial_join(left, right, config=cfg)
        return read_events(str(tmp_path / f"{name}.jsonl"))
    with logging_events() as log:
        spatial_join(left, right, config=cfg.with_(events_out=None))
    return log.events


class TestParseTasks:
    def test_joins_start_end_pairs(self):
        events = [
            {"event": "TaskStart", "query": 1, "stage": 1, "task": 0,
             "partition": 3, "label": "tile-3", "worker": 0, "pid": 42,
             "wall_start": 1.0},
            {"event": "TaskEnd", "query": 1, "stage": 1, "task": 0,
             "partition": 3, "label": "tile-3", "worker": 0, "pid": 42,
             "wall_end": 2.5, "sim_seconds": 7.0, "counters": {"rows_out": 3.0},
             "failures": 0},
        ]
        (record,) = parse_tasks(events)
        assert record.partition == 3
        assert record.wall_start == 1.0 and record.wall_end == 2.5
        assert record.sim_seconds == 7.0
        assert record.lane == "worker-0 (pid 42)"

    def test_fragments_fold_into_synthetic_stage(self):
        events = [
            {"event": "FragmentStart", "query": 1, "fragment": 2,
             "worker": None, "pid": 9, "wall_start": 0.0},
            {"event": "FragmentEnd", "query": 1, "fragment": 2,
             "worker": None, "pid": 9, "wall_end": 1.0, "sim_seconds": 0.5},
        ]
        (record,) = parse_tasks(events)
        assert record.stage == "fragments"
        assert record.label == "fragment-2"
        assert record.lane == "driver"

    def test_unpaired_start_dropped(self):
        events = [
            {"event": "TaskStart", "query": 1, "stage": 1, "task": 0},
        ]
        assert parse_tasks(events) == []


class TestStragglerDetection:
    def test_flags_tasks_over_k_times_median(self):
        tasks = [_task(task=i, partition=i, sim=1.0) for i in range(4)]
        tasks.append(_task(task=4, partition=9, sim=5.0))
        (found,) = detect_stragglers(tasks, k=2.0)
        assert found["task"] == 4 and found["partition"] == 9
        assert found["ratio"] == pytest.approx(5.0)

    def test_no_stragglers_in_uniform_stage(self):
        tasks = [_task(task=i, sim=1.0) for i in range(4)]
        assert detect_stragglers(tasks, k=2.0) == []

    def test_single_task_stage_never_flagged(self):
        assert detect_stragglers([_task(sim=100.0)], k=2.0) == []

    def test_hotspot_join_flags_hot_tiles(self):
        events = _hotspot_events()
        tasks = parse_tasks(events)
        found = detect_stragglers(tasks, k=2.0)
        assert found, "hotspot workload must produce stragglers"
        # The worst straggler is a hot tile: way above the stage median.
        assert found[0]["ratio"] > 2.0
        assert found[0]["partition"] is not None

    def test_hotspot_straggler_report_is_deterministic(self):
        first = _hotspot_events()
        second = _hotspot_events()
        names = stage_names(first)
        text_a = render_stragglers(
            detect_stragglers(parse_tasks(first), k=2.0), 2.0, names
        )
        text_b = render_stragglers(
            detect_stragglers(parse_tasks(second), k=2.0), 2.0,
            stage_names(second),
        )
        assert text_a == text_b
        assert "partition=" in text_a

    @needs_fork
    def test_pooled_run_flags_same_stragglers(self, tmp_path):
        serial = _hotspot_events("serial", tmp_path, "serial")
        pooled = _hotspot_events(2, tmp_path, "pooled")
        keyed = lambda events: [  # noqa: E731
            (s["stage"], s["task"], s["partition"], round(s["ratio"], 9))
            for s in detect_stragglers(parse_tasks(events), k=2.0)
        ]
        assert keyed(serial) == keyed(pooled)
        assert keyed(serial)


class TestRenderers:
    def test_stage_summary_has_percentiles(self):
        tasks = [_task(task=i, sim=float(i + 1)) for i in range(10)]
        text = render_stage_summary(tasks)
        assert "p50" in text and "p95" in text and "skew" in text
        assert "q1/1" in text

    def test_timeline_one_lane_per_worker(self):
        tasks = [
            _task(task=0, worker=0, pid=10, t0=0.0, t1=1.0),
            _task(task=1, worker=1, pid=11, t0=0.5, t1=2.0),
            _task(task=2, worker=None, pid=1, t0=0.0, t1=0.5),
        ]
        text = render_timelines(tasks)
        assert "worker-0 (pid 10)" in text
        assert "worker-1 (pid 11)" in text
        assert "driver" in text
        assert "█" in text

    def test_empty_log_renders_placeholders(self):
        assert "no wall-clock" in render_timelines([])
        assert "no completed tasks" in render_stage_summary([])
        assert "none" in render_stragglers([], 2.0)
        assert "no wall-clock" in render_utilization([])

    def test_utilization_reports_idle_gap(self):
        tasks = [
            _task(task=0, t0=0.0, t1=1.0),
            _task(task=1, t0=3.0, t1=4.0),
        ]
        text = render_utilization(tasks)
        assert "busy 50%" in text
        assert "idle gap 2000.0 ms" in text


class TestMonitorReport:
    def test_full_report_sections(self):
        events = _hotspot_events()
        report = monitor_report(events)
        assert "stage summary (simulated seconds)" in report
        assert "wall-clock timeline" in report
        assert "stragglers (> 2x stage median):" in report
        assert "utilization (wall clock)" in report
        assert "query 1:" in report and "spatial-join" in report

    @needs_fork
    def test_pooled_report_shows_worker_lanes_and_heartbeats(self, tmp_path):
        events = _hotspot_events(2, tmp_path, "lanes")
        report = monitor_report(events)
        assert "worker-0 (pid " in report
        assert "worker heartbeat(s) from" in report


class TestGracefulDegrade:
    """Empty or zero-task logs must degrade, not crash (or print four
    empty placeholder tables)."""

    def test_empty_log(self):
        report = monitor_report([])
        assert report == "no tasks recorded"

    def test_header_only_log(self):
        events = [
            {"event": "LogStart", "schema": 3},
            {"event": "QueryStart", "query": 1, "name": "spatial-join",
             "engine": "spark"},
            {"event": "QueryEnd", "query": 1, "name": "spatial-join",
             "sim_seconds": 1.25, "rows": 0},
        ]
        report = monitor_report(events)
        assert "no tasks recorded" in report
        assert "query 1: spatial-join [spark]" in report
        assert "stage summary" not in report

    def test_null_numeric_fields_treated_as_missing(self):
        events = [
            {"event": "TaskStart", "query": 1, "stage": 1, "task": 0,
             "partition": 0, "wall_start": None},
            {"event": "TaskEnd", "query": 1, "stage": 1, "task": 0,
             "partition": 0, "wall_end": None, "sim_seconds": None,
             "counters": None, "failures": None},
        ]
        (record,) = parse_tasks(events)
        assert record.sim_seconds == 0.0
        assert record.wall_start == 0.0 and record.wall_end == 0.0
        assert monitor_report(events)  # renders without raising

    def test_null_fragment_fields(self):
        events = [
            {"event": "FragmentStart", "query": 1, "fragment": 0,
             "wall_start": None},
            {"event": "FragmentEnd", "query": 1, "fragment": 0,
             "wall_end": None, "sim_seconds": None},
        ]
        (record,) = parse_tasks(events)
        assert record.sim_seconds == 0.0
        assert monitor_report(events)
