"""Acceptance tests: profiles built by the engines are exact and render.

The core guarantee of the observability layer is that profiles are
derived from the same metrics the simulated runtimes are computed from,
so the per-phase simulated seconds *sum* to the reported total — for
every workload, on every engine.
"""

import json

import pytest

from repro import spatial_join
from repro.bench.report import WORKLOAD_ORDER
from repro.bench.runner import run_engine
from repro.cluster.model import CostModel
from repro.obs import QueryProfile, tracing

SCALE = 0.02
ENGINES = ("spatialspark", "isp-mc", "isp-standalone")


@pytest.fixture(scope="module")
def runs():
    """One profiled run per (workload, engine) at tiny scale, memoised."""
    out = {}
    for workload in WORKLOAD_ORDER:
        for engine in ENGINES:
            out[workload, engine] = run_engine(
                workload, engine, 1, scale=SCALE, profile=True
            )
    return out


class TestEngineProfiles:
    @pytest.mark.parametrize("workload", WORKLOAD_ORDER)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_profile_present_and_renders(self, runs, workload, engine):
        result = runs[workload, engine]
        profile = result.profile
        assert isinstance(profile, QueryProfile)
        text = profile.render()
        assert workload in text
        assert "simulated total" in text

    @pytest.mark.parametrize("workload", WORKLOAD_ORDER)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_phases_sum_to_simulated_seconds(self, runs, workload, engine):
        result = runs[workload, engine]
        profile = result.profile
        assert profile.total_simulated_seconds == pytest.approx(
            result.simulated_seconds, rel=1e-9
        )
        assert sum(profile.phase_seconds().values()) == pytest.approx(
            result.simulated_seconds, rel=1e-9
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_profile_exports_json_and_chrome_trace(self, runs, engine):
        profile = runs["taxi-nycb", engine].profile
        json.dumps(profile.to_json())
        trace = profile.to_chrome_trace()
        assert trace["traceEvents"], "chrome trace should carry events"
        json.dumps(trace)

    def test_unprofiled_run_has_no_profile(self):
        result = run_engine("taxi-nycb", "spatialspark", 1, scale=SCALE)
        assert result.profile is None

    def test_spark_profile_has_stage_skew_stats(self, runs):
        profile = runs["taxi-nycb", "spatialspark"].profile
        node = profile.find("result")
        assert node is not None
        assert {"tasks", "makespan_seconds", "max_task_seconds", "skew"} <= set(
            node.info
        )

    def test_impala_profile_has_fragment_instances(self, runs):
        profile = runs["taxi-nycb", "isp-mc"].profile
        execution = profile.find("execution")
        assert execution is not None and execution.concurrent
        assert execution.children, "expected per-instance children"
        assert profile.find("instance-0").counters


class TestBatchInvariance:
    """Columnar batch execution must not move a single simulated second.

    Table 1/2 runtimes come from the engine counters; a batch call over N
    rows accrues exactly what N scalar calls accrue, so profiles, phase
    sums and simulated totals are identical with batching on or off.
    """

    @pytest.mark.parametrize("workload", ("taxi-nycb", "taxi-lion-100"))
    @pytest.mark.parametrize("engine", ENGINES[:2])
    def test_simulated_runtime_unchanged_by_batching(self, runs, workload, engine):
        batch = runs[workload, engine]  # default batch_refine=True
        scalar = run_engine(
            workload, engine, 1, scale=SCALE, profile=True, batch_refine=False
        )
        assert batch.result_rows == scalar.result_rows
        assert batch.simulated_seconds == scalar.simulated_seconds
        assert batch.profile.phase_seconds() == scalar.profile.phase_seconds()

    @pytest.mark.parametrize("name", ("fast", "slow"))
    def test_batch_counters_equal_n_scalar_calls(self, name):
        import numpy as np

        from repro.geometry import Point, Polygon
        from repro.geometry.engine import create_engine

        polygon = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        points = [Point(0.07 * i, 0.11 * i) for i in range(150)]

        scalar_engine = create_engine(name)
        handle = scalar_engine.prepare(polygon)
        for p in points:
            scalar_engine.point_within(p, handle)

        batch_engine = create_engine(name)
        handle = batch_engine.prepare(polygon)
        batch_engine.contains_batch(
            handle,
            np.array([p.x for p in points]),
            np.array([p.y for p in points]),
        )

        assert (
            batch_engine.counters.predicate_calls
            == scalar_engine.counters.predicate_calls
        )
        assert batch_engine.counters.vertex_ops == scalar_engine.counters.vertex_ops
        assert (
            batch_engine.counters.allocations == scalar_engine.counters.allocations
        )


class TestSpatialJoinProfile:
    LEFT = [(0, "POINT (1 1)"), (1, "POINT (9 9)"), (2, "POINT (3 2)")]
    RIGHT = [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")]

    def test_legacy_profile_keyword_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match=r"JoinConfig\(profile=True\)"):
            spatial_join(self.LEFT, self.RIGHT, profile=True)

    def test_config_profile_returns_join_result(self):
        from repro import JoinConfig

        result = spatial_join(
            self.LEFT, self.RIGHT, config=JoinConfig(profile=True)
        )
        assert sorted(result) == [(0, "cell"), (2, "cell")]
        assert isinstance(result.profile, QueryProfile)

    def test_profile_matches_unprofiled_result(self):
        from repro import JoinConfig

        plain = spatial_join(self.LEFT, self.RIGHT)
        result = spatial_join(
            self.LEFT, self.RIGHT, config=JoinConfig(profile=True)
        )
        assert sorted(result) == sorted(plain)

    def test_phase_seconds_sum_to_query_metrics(self):
        from repro import JoinConfig

        model = CostModel()
        result = spatial_join(
            self.LEFT,
            self.RIGHT,
            config=JoinConfig(method="broadcast", profile=True, cost_model=model),
        )
        profile = result.profile
        assert profile.metrics is not None
        assert sum(profile.phase_seconds().values()) == pytest.approx(
            profile.metrics.simulated_seconds, rel=1e-9
        )
        assert set(profile.phase_seconds()) == {"parse", "build", "probe"}

    def test_naive_profile_has_join_phase(self):
        from repro import JoinConfig

        result = spatial_join(
            self.LEFT, self.RIGHT, config=JoinConfig(method="naive", profile=True)
        )
        assert set(result.profile.phase_seconds()) == {"parse", "join"}

    def test_profiled_run_emits_spans_when_tracing(self):
        from repro import JoinConfig

        with tracing() as tracer:
            spatial_join(
                self.LEFT,
                self.RIGHT,
                config=JoinConfig(method="broadcast", profile=True),
            )
        names = [root.name for root in tracer.roots]
        assert names == ["parse", "build", "probe"]
