"""The structured event log: schema, pairing, pool-equivalence, no-op off."""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.core import JoinConfig, spatial_join
from repro.errors import ReproError
from repro.geometry import Point, Polygon
from repro.impala import ColumnType, ImpalaBackend
from repro.obs.events import (
    SCHEMA_VERSION,
    EVENT_TYPES,
    EventLog,
    check_task_pairing,
    get_event_log,
    install_event_log,
    logging_events,
    normalize_events,
    read_events,
)
from repro.runtime import ProcessBackend
from repro.spark import SparkContext

HAS_FORK = ProcessBackend(2).supports_closures
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fork start method unavailable"
)

SPEC = ClusterSpec(num_nodes=2, cores_per_node=2, mem_per_node_gb=4.0)


def _box(x0, y0, size=25.0):
    return Polygon(
        [(x0, y0), (x0 + size, y0), (x0 + size, y0 + size), (x0, y0 + size)]
    )


def _points(n=200, seed=99):
    import random

    rng = random.Random(seed)
    return [
        (i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(n)
    ]


def _polygons():
    return [
        (row * 4 + col, _box(col * 25.0, row * 25.0))
        for row in range(4)
        for col in range(4)
    ]


def _run_spark_job(executors, events_out=None):
    sc = SparkContext(SPEC, executors=executors, events_out=events_out)
    rows = sc.parallelize(list(range(40)), num_partitions=4)
    result = (
        rows.map(lambda x: (x % 4, x))
        .group_by_key(num_partitions=2)
        .map_values(sum)
        .collect()
    )
    sc.close_events()
    return sorted(result), sc


class TestEventLogBasics:
    def test_disabled_sink_records_nothing(self):
        log = EventLog(enabled=False)
        log.emit("QueryStart", query=1)
        log.emit_raw({"event": "TaskEnd"})
        assert log.events == []

    def test_next_id_counts_per_kind(self):
        log = EventLog()
        assert [log.next_id("query"), log.next_id("query")] == [1, 2]
        assert log.next_id("stage") == 1

    def test_global_sink_starts_disabled(self):
        assert get_event_log().enabled is False

    def test_install_none_keeps_current_sink(self):
        with logging_events() as outer:
            with install_event_log(None) as inner:
                assert inner is outer
                get_event_log().emit("QueryStart", query=1)
        assert [e["event"] for e in outer.events] == ["QueryStart"]

    def test_event_types_cover_schema(self):
        assert {"QueryStart", "TaskEnd", "WorkerHeartbeat"} <= EVENT_TYPES


class TestJsonlFile:
    def test_header_carries_schema_version(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _run_spark_job("serial", events_out=str(path))
        first = json.loads(path.read_text().splitlines()[0])
        assert first["event"] == "LogStart"
        assert first["schema_version"] == SCHEMA_VERSION
        assert first["source"] == "repro.obs.events"

    def test_read_events_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _, sc = _run_spark_job("serial", events_out=str(path))
        events = read_events(str(path))
        # The file holds exactly the in-memory stream plus the header.
        assert events[1:] == sc.event_log.events
        kinds = {e["event"] for e in events}
        assert {"QueryStart", "StageSubmitted", "TaskStart", "TaskEnd",
                "ShuffleWrite", "QueryEnd"} <= kinds

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _run_spark_job("serial", events_out=str(path))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = SCHEMA_VERSION + 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ReproError, match="schema version"):
            read_events(str(path))

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "QueryStart", "query": 1}\n')
        with pytest.raises(ReproError, match="LogStart"):
            read_events(str(path))


class TestSchemaEvolution:
    """Version-2 schema (recovery events) reads version-1 logs and fails
    usefully on anything it cannot understand."""

    def test_recovery_event_types_are_in_the_schema(self):
        from repro.obs.events import RECOVERY_EVENT_TYPES

        assert RECOVERY_EVENT_TYPES == {
            "TaskRetried",
            "TaskSpeculated",
            "WorkerBlacklisted",
            "StageRecomputed",
            "QueryRestarted",
        }
        assert RECOVERY_EVENT_TYPES <= EVENT_TYPES

    def test_previous_schema_versions_still_readable(self, tmp_path):
        """Older logs (v1: pre-recovery, v2: pre-cache) carry a subset of
        today's event types, so current readers accept them as-is."""
        from repro.obs.events import MIN_SCHEMA_VERSION

        assert MIN_SCHEMA_VERSION < SCHEMA_VERSION
        for version in range(MIN_SCHEMA_VERSION, SCHEMA_VERSION):
            path = tmp_path / f"v{version}.jsonl"
            _run_spark_job("serial", events_out=str(path))
            lines = path.read_text().splitlines()
            header = json.loads(lines[0])
            header["schema_version"] = version
            path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
            events = read_events(str(path))
            assert events[0]["schema_version"] == version
            assert any(e["event"] == "QueryEnd" for e in events)

    def test_too_old_schema_version_rejected(self, tmp_path):
        from repro.obs.events import MIN_SCHEMA_VERSION

        path = tmp_path / "v0.jsonl"
        _run_spark_job("serial", events_out=str(path))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = MIN_SCHEMA_VERSION - 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ReproError, match="schema version"):
            read_events(str(path))

    def test_unknown_event_type_rejected_with_name_and_line(self, tmp_path):
        path = tmp_path / "future.jsonl"
        _run_spark_job("serial", events_out=str(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "QuantumRebalance", "query": 1}\n')
        with pytest.raises(ReproError) as excinfo:
            read_events(str(path))
        message = str(excinfo.value)
        assert "QuantumRebalance" in message
        assert "newer schema version" in message
        assert "TaskRetried" in message  # the known-types list helps debugging


class TestPairing:
    def test_spark_job_pairs_every_task(self):
        with logging_events() as log:
            _run_spark_job("serial")
        assert check_task_pairing(log.events) == []
        starts = [e for e in log.events if e["event"] == "TaskStart"]
        assert starts and all("partition" in e for e in starts)

    def test_unmatched_start_reported(self):
        events = [
            {"event": "TaskStart", "query": 1, "stage": 1, "task": 0},
            {"event": "TaskEnd", "query": 1, "stage": 1, "task": 0},
            {"event": "TaskStart", "query": 1, "stage": 1, "task": 1},
        ]
        problems = check_task_pairing(events)
        assert len(problems) == 1 and "(1, 1, 1)" in problems[0]


class TestPoolEquivalence:
    """Normalized event streams are identical across executor counts."""

    @needs_fork
    def test_spark_serial_vs_pooled_events(self):
        streams = {}
        for executors in ("serial", 2, 4):
            with logging_events() as log:
                result, _ = _run_spark_job(executors)
            streams[executors] = (result, normalize_events(log.events))
            assert check_task_pairing(log.events) == []
        base_result, base_events = streams["serial"]
        assert base_events
        for executors in (2, 4):
            assert streams[executors][0] == base_result
            assert streams[executors][1] == base_events

    @needs_fork
    def test_core_join_serial_vs_pooled_events(self, tmp_path):
        left, right = _points(), _polygons()
        streams = {}
        for executors in ("serial", 2, 4):
            path = tmp_path / f"join-{executors}.jsonl"
            cfg = JoinConfig(
                method="partitioned",
                executors=executors,
                events_out=str(path),
                num_tiles=8,
            )
            pairs = spatial_join(left, right, config=cfg)
            events = read_events(str(path))
            assert check_task_pairing(events) == []
            streams[executors] = (list(pairs), normalize_events(events))
        base_pairs, base_events = streams["serial"]
        assert any(e["event"] == "TaskEnd" for e in base_events)
        for executors in (2, 4):
            assert streams[executors] == (base_pairs, base_events)

    @needs_fork
    def test_impala_serial_vs_pooled_events(self, tmp_path):
        from repro.hdfs import SimulatedHDFS, write_text

        def run(executors):
            fs = SimulatedHDFS(block_size=2048)
            write_text(
                fs, "/pts.tsv",
                [f"{i}\tPOINT ({i % 10} {i // 10})" for i in range(40)],
            )
            write_text(
                fs, "/poly.tsv",
                ["0\tPOLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"],
            )
            backend = ImpalaBackend(
                SPEC,
                hdfs=fs,
                events_out=str(tmp_path / f"impala-{executors}.jsonl"),
                executors=executors,
            )
            schema = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
            backend.metastore.create_table("pts", schema, "/pts.tsv")
            backend.metastore.create_table("poly", schema, "/poly.tsv")
            result = backend.execute(
                "SELECT l.id, r.id FROM pts l SPATIAL JOIN poly r "
                "WHERE ST_WITHIN(l.geom, r.geom)"
            )
            backend.close_events()
            events = read_events(str(tmp_path / f"impala-{executors}.jsonl"))
            assert check_task_pairing(events) == []
            return sorted(result.rows), normalize_events(events)

        base_rows, base_events = run("serial")
        assert any(e["event"] == "FragmentEnd" for e in base_events)
        for executors in (2,):
            rows, events = run(executors)
            assert rows == base_rows
            assert events == base_events


class TestDisabledIsNoOp:
    def test_join_without_events_out_emits_nothing(self):
        left, right = _points(80), _polygons()
        sink = get_event_log()
        before = len(sink.events)
        with_events = spatial_join(
            left, right, config=JoinConfig(method="partitioned", num_tiles=8)
        )
        assert len(sink.events) == before
        # and the result matches an events-on run of the same join
        with logging_events() as log:
            with_log = spatial_join(
                left, right,
                config=JoinConfig(method="partitioned", num_tiles=8),
            )
        assert list(with_events) == list(with_log)
        assert any(e["event"] == "QueryEnd" for e in log.events)
