"""Profile archive round-trips with cache annotations and retry info.

``annotate_profile_with_cache`` grafts reuse bookkeeping onto a profile
*after* the engine built it (the byte-identity invariant forbids the
engine doing it); archived profiles (``--profile-out``) must round-trip
through ``to_dict``/``from_dict`` with that annotation — and with the
retry/fault info a recovered run records — fully intact.
"""

from repro.bench.workloads import materialize
from repro.cache import cache_for
from repro.core import JoinConfig, spatial_join
from repro.obs.profile import (
    ProfileNode,
    QueryProfile,
    annotate_profile_with_cache,
)
from repro.runtime import FaultPlan, RuntimeConfig


def _retrying_profile() -> QueryProfile:
    """A hand-built tree shaped like a recovered run's profile: stages
    carrying attempt/failure info interleaved with ordinary phases."""
    root = ProfileNode(name="spatial-join", sim_seconds=10.0,
                       info={"engine": "core", "nodes": 1})
    root.add_child(ProfileNode(name="parse", sim_seconds=2.0,
                               counters={"wkt_bytes": 4096.0}))
    build = root.add_child(
        ProfileNode(name="build", sim_seconds=3.0,
                    info={"attempts": 3, "failures": 2},
                    counters={"index_build": 9.0})
    )
    build.add_child(ProfileNode(name="retry-backoff", sim_seconds=0.5,
                                info={"round": 2}))
    root.add_child(
        ProfileNode(name="probe", sim_seconds=5.0, concurrent=True,
                    info={"tasks": 4, "skew": 1.5, "failures": 1},
                    counters={"rows_out": 100.0})
    )
    return QueryProfile(root)


class TestSyntheticRoundTrip:
    def test_cache_annotation_survives_round_trip(self):
        profile = _retrying_profile()
        stats = {
            "hits": 3, "misses": 1, "evictions": 0, "puts": 2, "rejected": 0,
            "hits_by_kind": {"broadcast-index": 2, "parsed-geometries": 1},
        }
        annotate_profile_with_cache(profile, stats)
        rebuilt = QueryProfile.from_dict(profile.to_dict())
        assert rebuilt.render() == profile.render()
        assert rebuilt.to_dict() == profile.to_dict()
        cache_node = rebuilt.find("cache")
        assert cache_node.info["hits"] == 3
        assert cache_node.info["hits[broadcast-index]"] == 2
        assert cache_node.sim_seconds == 0.0

    def test_retry_info_survives_round_trip(self):
        profile = _retrying_profile()
        rebuilt = QueryProfile.from_dict(profile.to_dict())
        build = rebuilt.find("build")
        assert build.info == {"attempts": 3, "failures": 2}
        assert build.children[0].name == "retry-backoff"
        assert rebuilt.find("probe").concurrent is True
        assert rebuilt.phase_seconds() == profile.phase_seconds()

    def test_annotation_does_not_change_totals(self):
        profile = _retrying_profile()
        before = (profile.total_simulated_seconds, profile.phase_seconds())
        annotate_profile_with_cache(
            profile, {"hits": 1, "misses": 0, "hits_by_kind": {}}
        )
        assert profile.total_simulated_seconds == before[0]
        # The cache node bills zero simulated seconds.
        phases = profile.phase_seconds()
        assert phases.pop("cache") == 0.0
        assert phases == before[1]


class TestRecoveredCachedRun:
    def test_faulted_warm_run_profile_round_trips(self):
        wl = materialize("hotspot-nycb", scale=0.02)
        runtime = RuntimeConfig(
            fault_plan=FaultPlan(seed=7, fault_rate=0.2),
            cache_budget_bytes=64 << 20,
        )
        cfg = JoinConfig(
            operator=wl.workload.operator, profile=True, runtime=runtime
        )
        cold = spatial_join(wl.left.records, wl.right.records, config=cfg)
        warm = spatial_join(wl.left.records, wl.right.records, config=cfg)
        # Execution stays identical cold vs warm (byte identity) — only
        # the root's plan-estimate info may differ, because the planner
        # legitimately discounts a build it sees resident in the cache.
        assert list(warm) == list(cold)
        assert (
            warm.profile.total_simulated_seconds
            == cold.profile.total_simulated_seconds
        )
        assert warm.profile.phase_seconds() == cold.profile.phase_seconds()
        # ...and the reuse shows up only via the out-of-band annotation.
        cache = cache_for(cfg.resolved_runtime())
        annotate_profile_with_cache(warm.profile, cache.stats)
        assert warm.profile.find("cache").info["hits"] >= 1
        rebuilt = QueryProfile.from_dict(warm.profile.to_dict())
        assert rebuilt.render() == warm.profile.render()
