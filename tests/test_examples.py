"""Smoke tests: every example script runs to completion.

Examples are the repository's living documentation; each one carries its
own internal assertions, so "runs without raising" is a meaningful check.
The heavier scripts run at their default (small) scales.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    saved_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Within" in out
    assert "pairs from both engines" in out


def test_taxi_zones(capsys):
    run_example("taxi_zones.py")
    out = capsys.readouterr().out
    assert "top 10 blocks" in out
    assert "simulated cluster time" in out


def test_nearest_street(capsys):
    run_example("nearest_street.py")
    out = capsys.readouterr().out
    assert "matched pairs" in out
    assert "busiest streets" in out


def test_species_ecoregions(capsys):
    run_example("species_ecoregions.py")
    out = capsys.readouterr().out
    assert "partitioned plan verified against broadcast plan" in out


def test_trajectory_analysis(capsys):
    run_example("trajectory_analysis.py")
    out = capsys.readouterr().out
    assert "busiest zones during the rush" in out
    assert "nearest streets" in out


@pytest.mark.slow
def test_cluster_scaling(capsys):
    run_example("cluster_scaling.py", ["taxi-nycb", "0.03"])
    out = capsys.readouterr().out
    assert "efficiency" in out
