"""Fig 5 — ISP-MC scalability, 4 to 10 EC2 nodes.

The paper reports near-linear scaling (parallel efficiency close to 100%)
except for G10M-wwf between 8 and 10 nodes, where the runtime barely
moves (6357s -> 6257s).
"""

import pytest

from conftest import record
from repro.bench import run_ispmc
from repro.cluster import parallel_efficiency

WORKLOAD_NAMES = ("taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf")
NODES = (4, 6, 8, 10)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("nodes", NODES)
def test_fig5_point(benchmark, workloads, name, nodes):
    record(
        benchmark,
        lambda: run_ispmc(workloads[name], nodes),
        f"Fig5 {name} @{nodes}n",
    )


def test_fig5_shapes(workloads):
    for name in WORKLOAD_NAMES:
        series = [
            run_ispmc(workloads[name], nodes).simulated_seconds for nodes in NODES
        ]
        # Runtime never increases with more nodes.
        assert all(a >= b * 0.98 for a, b in zip(series, series[1:])), (name, series)
        efficiency = parallel_efficiency(series[0], NODES[0], series[-1], NODES[-1])
        assert 0.55 <= efficiency <= 1.1, (name, efficiency)


def test_fig5_results_invariant(workloads):
    """Cluster size must never change the answer, only the runtime."""
    for name in WORKLOAD_NAMES:
        rows = {run_ispmc(workloads[name], nodes).result_rows for nodes in (4, 10)}
        assert len(rows) == 1
