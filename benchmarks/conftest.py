"""Shared benchmark configuration.

Benchmarks execute the real joins once per measurement (``pedantic`` with
a single round — the simulated-cluster runtimes they report are
deterministic, so repetition adds nothing) and attach the simulated
seconds to ``benchmark.extra_info``, which is what reproduces the paper's
tables.  Default scale 0.12 keeps a full ``pytest benchmarks/
--benchmark-only`` run in the minutes range.
"""

import pytest

from repro.bench import materialize
from repro.bench.report import DEFAULT_SCALE

SCALE = DEFAULT_SCALE


@pytest.fixture(scope="session")
def workloads():
    """All four experiments, materialised once for every benchmark."""
    return {
        name: materialize(name, scale=SCALE)
        for name in ("taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf")
    }


def record(benchmark, run_func, label: str):
    """Run once under pytest-benchmark and attach simulated time."""
    result = benchmark.pedantic(run_func, rounds=1, iterations=1)
    benchmark.extra_info["simulated_seconds"] = round(result.simulated_seconds, 2)
    benchmark.extra_info["result_rows"] = result.result_rows
    benchmark.extra_info["label"] = label
    return result
