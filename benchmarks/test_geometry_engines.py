"""Section V.B in-text microbenchmark — JTS vs GEOS on the Within predicate.

The paper runs 10-thousand-point samples (taxi10k, gbif10k) against the
nycb and wwf polygon layers in a standalone harness and measures JTS
3.3x faster than GEOS on taxi10k-nycb and 3.9x on gbif10k-wwf, blaming
GEOS's small-object churn.

This is the one benchmark family measured in *wall-clock* (the engines
are real code, so the churn is real); rounds > 1 give pytest-benchmark
honest statistics.  Note: our fast engine's prepared strip index makes
the measured wall-clock gap larger than the paper's 3.3-3.9x — the
simulated tables charge JTS-equivalent costs instead (see DESIGN.md §5).
"""

import pytest

from repro.bench import materialize
from repro.core import BroadcastIndex, SpatialOperator
from conftest import SCALE

SAMPLE = 2_000  # probes per measurement round


@pytest.fixture(scope="module")
def taxi_nycb():
    mat = materialize("taxi-nycb", scale=SCALE)
    return mat.left.records[:SAMPLE], mat.right.records


@pytest.fixture(scope="module")
def gbif_wwf():
    mat = materialize("G10M-wwf", scale=SCALE)
    return mat.left.records[:SAMPLE], mat.right.records


def probe_all(points, index):
    total = 0
    for _, point in points:
        total += len(index.probe(point))
    return total


@pytest.mark.parametrize("engine", ["fast", "slow"])
def test_within_taxi10k_nycb(benchmark, taxi_nycb, engine):
    points, polygons = taxi_nycb
    index = BroadcastIndex(polygons, SpatialOperator.WITHIN, engine=engine)
    matches = benchmark(probe_all, points, index)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["label"] = f"within taxi10k-nycb [{engine}]"


@pytest.mark.parametrize("engine", ["fast", "slow"])
def test_within_gbif10k_wwf(benchmark, gbif_wwf, engine):
    points, regions = gbif_wwf
    index = BroadcastIndex(regions, SpatialOperator.WITHIN, engine=engine)
    matches = benchmark(probe_all, points, index)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["label"] = f"within gbif10k-wwf [{engine}]"


def test_fast_engine_wins_both_samples(taxi_nycb, gbif_wwf):
    """Directional check without pytest-benchmark plumbing."""
    import timeit

    for points, polygons in (taxi_nycb, gbif_wwf):
        fast = BroadcastIndex(polygons, SpatialOperator.WITHIN, engine="fast")
        slow = BroadcastIndex(polygons, SpatialOperator.WITHIN, engine="slow")
        assert probe_all(points, fast) == probe_all(points, slow)
        t_fast = timeit.timeit(lambda: probe_all(points[:500], fast), number=3)
        t_slow = timeit.timeit(lambda: probe_all(points[:500], slow), number=3)
        assert t_slow > t_fast  # the paper's 3.3x/3.9x direction
