"""Fig 4 — SpatialSpark scalability, 4 to 10 EC2 nodes.

The paper reports speedups of 1.97x-2.06x for the 2.5x node increase —
about 80% parallel efficiency — with runtimes decreasing monotonically
for every workload.
"""

import pytest

from conftest import record
from repro.bench import run_spatialspark
from repro.cluster import parallel_efficiency

WORKLOAD_NAMES = ("taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf")
NODES = (4, 6, 8, 10)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("nodes", NODES)
def test_fig4_point(benchmark, workloads, name, nodes):
    record(
        benchmark,
        lambda: run_spatialspark(workloads[name], nodes),
        f"Fig4 {name} @{nodes}n",
    )


def test_fig4_shapes(workloads):
    for name in WORKLOAD_NAMES:
        series = [
            run_spatialspark(workloads[name], nodes).simulated_seconds
            for nodes in NODES
        ]
        # Monotonic improvement with cluster size.
        assert all(a > b for a, b in zip(series, series[1:])), (name, series)
        # Parallel efficiency in the paper's neighbourhood (~80%).
        efficiency = parallel_efficiency(series[0], NODES[0], series[-1], NODES[-1])
        assert 0.55 <= efficiency <= 1.05, (name, efficiency)
