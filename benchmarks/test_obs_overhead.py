"""Observability overhead: tracing disabled must be free.

The instrumented hot paths (per-task spans, registry counters) pay one
boolean check when nobody is observing.  These benchmarks measure the
same join with the tracer/registry disabled (the default) and enabled,
so a regression in the disabled path — the acceptance criterion is a
wall-clock delta within noise — shows up in the recorded timings.
"""

from conftest import record
from repro.bench import run_spatialspark
from repro.obs import collecting, tracing


def test_taxi_nycb_tracing_disabled(benchmark, workloads):
    record(
        benchmark,
        lambda: run_spatialspark(workloads["taxi-nycb"], 1),
        "obs off (default)",
    )


def test_taxi_nycb_tracing_enabled(benchmark, workloads):
    def run():
        with tracing(), collecting():
            return run_spatialspark(workloads["taxi-nycb"], 1, profile=True)

    record(benchmark, run, "obs on (tracer + registry + profile)")
