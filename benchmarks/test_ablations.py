"""Ablation benchmarks for the design choices the paper discusses.

a1 — partition count vs per-stage overhead (Section III's closing
     question: more partitions improve balance but inflate the actor-
     system/metadata overhead charged per shuffle stage).
a2 — static vs dynamic scheduling, intra-node (OpenMP static vs the
     conjectured work-stealing) and inter-node (contiguous vs round-robin
     scan-range assignment).
a3 — WKT strings vs binary (WKB) geometry representation (Section III's
     future-work item).
a4 — broadcast vs partitioned spatial join plans.
"""

import pytest

from conftest import record
from repro.bench import run_ispmc, run_spatialspark
from repro.bench.runner import cluster_spec
from repro.cluster import CostModel, Resource
from repro.core import (
    SpatialOperator,
    broadcast_spatial_join,
    partitioned_spatial_join,
    read_geometry_pairs,
    standalone_spatial_join,
)
from repro.spark import SparkContext


# -- a1: number of partitions -------------------------------------------------

@pytest.mark.parametrize("partitions", [10, 40, 160, 640])
def test_a1_partition_count(benchmark, workloads, partitions):
    mat = workloads["taxi-nycb"]

    def run():
        return run_spatialspark(mat, 10, num_partitions=partitions)

    result = record(benchmark, run, f"a1 partitions={partitions}")
    assert result.result_rows > 0


def test_a1_tradeoff_shape(workloads):
    """Too few partitions starves cores; too many pays metadata overhead."""
    mat = workloads["taxi-nycb"]
    times = {
        p: run_spatialspark(mat, 10, num_partitions=p).simulated_seconds
        for p in (4, 160, 4000)
    }
    # The middle setting beats both extremes.
    assert times[160] < times[4]
    assert times[160] < times[4000]


# -- a2: scheduling policies --------------------------------------------------

def test_a2_intra_node_dynamic_beats_static(workloads):
    """The paper's conjecture: TBB-style work stealing would beat the
    OpenMP static chunks it was forced into."""
    mat = workloads["taxi-lion-500"]
    static = standalone_spatial_join(
        mat.hdfs, mat.left_path, mat.right_path, mat.workload.operator,
        radius=mat.radius, scheduling="static",
        build_cost_weight=mat.build_cost_weight,
    )
    dynamic = standalone_spatial_join(
        mat.hdfs, mat.left_path, mat.right_path, mat.workload.operator,
        radius=mat.radius, scheduling="dynamic",
        build_cost_weight=mat.build_cost_weight,
    )
    assert sorted(static.pairs) == sorted(dynamic.pairs)
    assert dynamic.simulated_seconds <= static.simulated_seconds * 1.001


@pytest.mark.parametrize("assignment", ["round_robin", "contiguous"])
def test_a2_inter_node_assignment(benchmark, workloads, assignment):
    mat = workloads["taxi-lion-500"]
    record(
        benchmark,
        lambda: run_ispmc(mat, 10, assignment=assignment),
        f"a2 {assignment}",
    )


def test_a2_contiguous_straggles_on_clustered_data(workloads):
    """Morton-ordered files + contiguous ranges concentrate the dense
    Manhattan streets on one instance; round-robin interleaves them away."""
    mat = workloads["taxi-lion-500"]
    contiguous = run_ispmc(mat, 10, assignment="contiguous")
    round_robin = run_ispmc(mat, 10, assignment="round_robin")
    assert contiguous.result_rows == round_robin.result_rows
    assert contiguous.simulated_seconds > round_robin.simulated_seconds * 1.03


# -- a3: WKT vs WKB representation ---------------------------------------------

def test_a3_wkb_cheaper_than_wkt(workloads):
    """Simulated scan+parse cost of the taxi table, text vs binary."""
    from repro.geometry import wkb_dumps, wkt_loads

    mat = workloads["taxi-nycb"]
    model = CostModel()
    wkt_bytes = sum(len(g.wkt()) for _, g in mat.left.records[:5000])
    wkb_bytes = sum(len(wkb_dumps(g)) for _, g in mat.left.records[:5000])
    wkt_cost = model.task_seconds({Resource.WKT_BYTES: wkt_bytes})
    wkb_cost = model.task_seconds({Resource.WKB_BYTES: wkb_bytes})
    assert wkb_cost < wkt_cost / 3  # binary parse is several times cheaper


def test_a3_wkb_roundtrip_on_real_data(workloads):
    from repro.geometry import wkb_dumps, wkb_loads

    mat = workloads["G10M-wwf"]
    for _, geometry in mat.right.records[:10]:
        assert wkb_loads(wkb_dumps(geometry)) == geometry


@pytest.mark.parametrize("codec", ["wkt", "wkb"])
def test_a3_parse_wall_clock(benchmark, workloads, codec):
    """Real wall-clock decode comparison on the wwf polygons."""
    from repro.geometry import wkb_dumps, wkb_loads, wkt_loads

    mat = workloads["G10M-wwf"]
    if codec == "wkt":
        payloads = [g.wkt() for _, g in mat.right.records]
        benchmark(lambda: [wkt_loads(p) for p in payloads])
    else:
        payloads = [wkb_dumps(g) for _, g in mat.right.records]
        benchmark(lambda: [wkb_loads(p) for p in payloads])
    benchmark.extra_info["label"] = f"a3 decode {codec}"


@pytest.mark.parametrize("codec", ["wkt", "wkb"])
def test_a3_full_pipeline(benchmark, workloads, codec):
    """End-to-end SpatialSpark taxi-nycb with text vs binary geometry.

    This is the paper's future-work representation implemented whole:
    paged WKB record files on HDFS, binary decode in the scan tasks.
    """
    from repro.core import read_geometry_pairs_wkb

    mat = workloads["taxi-nycb"]
    if not mat.hdfs.exists("/data/taxi.bin"):
        mat.left.write_wkb_to_hdfs(mat.hdfs, "/data/taxi.bin")
        mat.right.write_wkb_to_hdfs(mat.hdfs, "/data/nycb.bin")

    def run():
        sc = SparkContext(cluster_spec(10), hdfs=mat.hdfs)
        if codec == "wkt":
            left = read_geometry_pairs(sc, mat.left_path, 1)
            right = read_geometry_pairs(
                sc, mat.right_path, 1, cost_weight=mat.build_cost_weight
            )
        else:
            left = read_geometry_pairs_wkb(sc, "/data/taxi.bin")
            right = read_geometry_pairs_wkb(
                sc, "/data/nycb.bin", cost_weight=mat.build_cost_weight
            )
        pairs = broadcast_spatial_join(
            sc, left, right, SpatialOperator.WITHIN,
            build_cost_weight=mat.build_cost_weight,
        )
        count = pairs.count()

        class Result:
            simulated_seconds = sc.simulated_seconds()
            result_rows = count

        return Result()

    result = record(benchmark, run, f"a3 pipeline {codec}")
    assert result.result_rows > 0


def test_a3_binary_pipeline_faster_and_identical(workloads):
    from repro.core import read_geometry_pairs_wkb

    mat = workloads["taxi-nycb"]
    if not mat.hdfs.exists("/data/taxi.bin"):
        mat.left.write_wkb_to_hdfs(mat.hdfs, "/data/taxi.bin")
        mat.right.write_wkb_to_hdfs(mat.hdfs, "/data/nycb.bin")

    def run(codec):
        sc = SparkContext(cluster_spec(10), hdfs=mat.hdfs)
        if codec == "wkt":
            left = read_geometry_pairs(sc, mat.left_path, 1)
            right = read_geometry_pairs(sc, mat.right_path, 1)
        else:
            left = read_geometry_pairs_wkb(sc, "/data/taxi.bin")
            right = read_geometry_pairs_wkb(sc, "/data/nycb.bin")
        pairs = sorted(
            broadcast_spatial_join(sc, left, right, SpatialOperator.WITHIN).collect()
        )
        return pairs, sc.simulated_seconds()

    wkt_pairs, wkt_time = run("wkt")
    wkb_pairs, wkb_time = run("wkb")
    assert wkt_pairs == wkb_pairs
    assert wkb_time < wkt_time  # string parsing eliminated


# -- a4: broadcast vs partitioned join ------------------------------------------

@pytest.mark.parametrize("plan", ["broadcast", "partitioned"])
def test_a4_join_plans(benchmark, workloads, plan):
    mat = workloads["taxi-nycb"]

    def run():
        sc = SparkContext(cluster_spec(10), hdfs=mat.hdfs)
        left = read_geometry_pairs(sc, mat.left_path, 1)
        right = read_geometry_pairs(
            sc, mat.right_path, 1, cost_weight=mat.build_cost_weight
        )
        if plan == "broadcast":
            pairs = broadcast_spatial_join(
                sc, left, right, SpatialOperator.WITHIN,
                build_cost_weight=mat.build_cost_weight,
            )
        else:
            pairs = partitioned_spatial_join(
                sc, left, right, SpatialOperator.WITHIN, num_tiles=32
            )
        count = pairs.count()

        class Result:
            simulated_seconds = sc.simulated_seconds()
            result_rows = count

        return Result()

    result = record(benchmark, run, f"a4 {plan}")
    assert result.result_rows > 0


def test_a4_plans_agree(workloads):
    mat = workloads["taxi-nycb"]
    sc = SparkContext(cluster_spec(4), hdfs=mat.hdfs)
    left = read_geometry_pairs(sc, mat.left_path, 1)
    right = read_geometry_pairs(sc, mat.right_path, 1)
    broadcast = sorted(
        broadcast_spatial_join(sc, left, right, SpatialOperator.WITHIN).collect()
    )
    partitioned = sorted(
        partitioned_spatial_join(
            sc, left, right, SpatialOperator.WITHIN, num_tiles=16
        ).collect()
    )
    assert broadcast == partitioned


# -- a5: probe-per-row vs dual-tree filter ---------------------------------------

@pytest.mark.parametrize("method", ["index", "dual-tree"])
def test_a5_filter_strategies(benchmark, workloads, method):
    """Section II notes either side or both can be indexed; compare the
    probe-per-row plan against the synchronized dual-tree join."""
    from repro.core import spatial_join

    mat = workloads["taxi-nycb"]
    left = mat.left.records[:4000]

    def run():
        return spatial_join(left, mat.right.records, method=method)

    pairs = benchmark(run)
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["label"] = f"a5 {method}"
    assert pairs


def test_a5_strategies_agree(workloads):
    from repro.core import spatial_join

    mat = workloads["taxi-nycb"]
    left = mat.left.records[:2000]
    probe = sorted(spatial_join(left, mat.right.records, method="index"))
    dual = sorted(spatial_join(left, mat.right.records, method="dual-tree"))
    assert probe == dual
