"""Table 1 — single-node runtimes (the 16-core in-house machine).

Paper values (seconds)::

                    SpatialSpark   ISP-MC   Standalone ISP-MC
    taxi-nycb                682      588                 507
    taxi-lion-100            696     1061                 983
    taxi-lion-500            825     5720                4922
    G10M-wwf                2445    12736               11634

Shapes under reproduction: ISP-MC wins only the scan-dominated taxi-nycb;
SpatialSpark wins all three refinement-heavy joins with the largest gap
on taxi-lion-500; standalone ISP-MC undercuts ISP-MC by the 7.3-13.9%
infrastructure overhead.
"""

import pytest

from conftest import record
from repro.bench import run_isp_standalone, run_ispmc, run_spatialspark

WORKLOAD_NAMES = ("taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_table1_spatialspark(benchmark, workloads, name):
    record(benchmark, lambda: run_spatialspark(workloads[name], 1), f"T1 SS {name}")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_table1_ispmc(benchmark, workloads, name):
    record(benchmark, lambda: run_ispmc(workloads[name], 1), f"T1 ISP {name}")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_table1_isp_standalone(benchmark, workloads, name):
    record(benchmark, lambda: run_isp_standalone(workloads[name]), f"T1 STA {name}")


def test_table1_shapes(workloads):
    """The relative magnitudes the paper reports must hold."""
    times = {}
    for name in WORKLOAD_NAMES:
        times[name] = (
            run_spatialspark(workloads[name], 1).simulated_seconds,
            run_ispmc(workloads[name], 1).simulated_seconds,
            run_isp_standalone(workloads[name]).simulated_seconds,
        )
    # ISP-MC wins (or ties) the scan-dominated taxi-nycb run...
    ss, isp, sta = times["taxi-nycb"]
    assert isp <= ss * 1.1
    # ...and loses the three refinement-heavy ones.
    for name in ("taxi-lion-100", "taxi-lion-500", "G10M-wwf"):
        ss, isp, _ = times[name]
        assert isp > ss
    # taxi-lion-500 carries the largest ISP/SS gap of the NearestD pair.
    gap_100 = times["taxi-lion-100"][1] / times["taxi-lion-100"][0]
    gap_500 = times["taxi-lion-500"][1] / times["taxi-lion-500"][0]
    assert gap_500 > 1.5 * gap_100
    # Infrastructure overhead (ISP-MC over standalone) in a 2-35% band —
    # the paper measured 7.3-13.9%.
    for name in WORKLOAD_NAMES:
        _, isp, sta = times[name]
        overhead = isp / sta - 1.0
        assert 0.02 < overhead < 0.35, (name, overhead)
