"""Table 2 — runtimes on the 10-node EC2 cluster.

Paper values (seconds)::

                    SpatialSpark   ISP-MC   ISP/SS
    taxi-nycb                110      758      6.9
    taxi-lion-100             65      307      4.7
    taxi-lion-500            249     1785      7.2
    G10M-wwf                 735     7728     10.5

Shape under reproduction: SpatialSpark wins every workload at 10 nodes by
a multiple (the paper's 4.7x-10.5x band), driven by the JTS/GEOS
refinement gap plus ISP-MC's degradation on the memory-constrained fleet.
"""

import pytest

from conftest import record
from repro.bench import run_ispmc, run_spatialspark

WORKLOAD_NAMES = ("taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_table2_spatialspark(benchmark, workloads, name):
    record(benchmark, lambda: run_spatialspark(workloads[name], 10), f"T2 SS {name}")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_table2_ispmc(benchmark, workloads, name):
    record(benchmark, lambda: run_ispmc(workloads[name], 10), f"T2 ISP {name}")


def test_table2_shapes(workloads):
    gaps = {}
    for name in WORKLOAD_NAMES:
        ss = run_spatialspark(workloads[name], 10)
        isp = run_ispmc(workloads[name], 10)
        assert ss.result_rows == isp.result_rows
        gaps[name] = isp.simulated_seconds / ss.simulated_seconds
    # SpatialSpark wins everywhere, by a multiple on the heavy joins.
    assert all(gap > 1.5 for gap in gaps.values()), gaps
    assert gaps["taxi-lion-500"] > 3.0
    assert gaps["G10M-wwf"] > 3.0
