"""Cluster specification and the deterministic cost model.

The paper's evaluation ran on 10 Amazon EC2 ``g2.2xlarge`` instances
(8 vCPUs, 15 GB RAM, 60 GB SSD).  We cannot rent that cluster, so the
benchmark harness *executes the joins for real* (real geometry, real
indexes, real join pairs) while accounting each task's work in resource
units; a task's simulated duration is the dot product of its unit counts
with the per-unit costs below, and a query's simulated runtime is the
makespan of its tasks under the engine's scheduling policy
(:mod:`repro.cluster.simulation`).

The per-unit costs are calibrated once, by construction, to reproduce the
*relative* magnitudes the paper reports (its Tables 1-2, Figs 4-5), not
EC2-absolute seconds:

* ``refine_vertex_slow``/``refine_alloc`` vs ``refine_vertex_fast`` encode
  the measured JTS-vs-GEOS refinement gap (3.3x-3.9x in Section V.B);
* ``spark_stage_base``/``spark_stage_per_partition`` encode Spark's
  per-stage actor-system reconstruction overhead (Section III);
* ``spark_jar_ship`` encodes the per-run JAR shipping cost (Section VI);
* ``impala_fragment_startup`` (LLVM JIT + plan distribution) and
  ``impala_batch_overhead`` encode Impala's 7.3-13.9% infrastructure
  overhead over standalone ISP-MC (Section V.B, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchError

__all__ = ["ClusterSpec", "CostModel", "EC2_G2_2XLARGE", "Resource"]


class Resource:
    """Names of the resource-unit counters tasks may accrue.

    Kept as plain strings (dict keys) rather than an enum so engines can
    add counters without touching this module; the canonical set is below.
    """

    HDFS_BYTES = "hdfs_bytes"          # bytes read from HDFS
    WKT_BYTES = "wkt_bytes"            # bytes of WKT parsed
    WKB_BYTES = "wkb_bytes"            # bytes of WKB decoded (ablation a3)
    INDEX_BUILD = "index_build"        # entries bulk-loaded into an R-tree
    INDEX_VISIT = "index_visit"        # R-tree nodes visited while probing
    REFINE_VERTEX_FAST = "refine_vertex_fast"  # vertices tested, fast engine
    REFINE_VERTEX_SLOW = "refine_vertex_slow"  # vertices tested, slow engine
    REFINE_ALLOC = "refine_alloc"      # churned objects, slow engine
    SHUFFLE_BYTES = "shuffle_bytes"    # bytes exchanged via shuffle
    BROADCAST_BYTES = "broadcast_bytes"  # bytes broadcast per receiving node
    ROWS_OUT = "rows_out"              # result rows materialised
    RDD_RECORDS = "rdd_records"        # records through JVM RDD pipelines
    ROW_BATCHES = "row_batches"        # Impala row batches processed


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of worker nodes."""

    num_nodes: int
    cores_per_node: int = 8
    mem_per_node_gb: float = 15.0
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise BenchError(f"cluster needs >= 1 node, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise BenchError(f"nodes need >= 1 core, got {self.cores_per_node}")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Return the same node type at a different cluster size."""
        return ClusterSpec(
            num_nodes, self.cores_per_node, self.mem_per_node_gb, self.name
        )


def EC2_G2_2XLARGE(num_nodes: int) -> ClusterSpec:
    """The paper's testbed node type at a chosen cluster size."""
    return ClusterSpec(
        num_nodes=num_nodes, cores_per_node=8, mem_per_node_gb=15.0, name="g2.2xlarge"
    )


@dataclass(frozen=True)
class CostModel:
    """Per-unit simulated costs, in simulated seconds per unit.

    The defaults are the calibrated values used by every benchmark; tests
    that probe scheduling behaviour construct custom models.
    """

    # Global calibration: benchmark datasets are scaled-down stand-ins
    # (e.g. 34K synthetic pickups for 170M real ones), so one unit of
    # counted work represents work_scale units on the paper's testbed.
    # All data-proportional costs are multiplied by it; per-event control
    # overheads (planning, JIT, stage setup, JAR shipping) are real-world
    # constants and are not.  The default was derived once by anchoring
    # the standalone ISP-MC taxi-nycb run to the paper's 507 s (Table 1)
    # and then frozen; repro.bench.calibrate.derive_work_scale re-derives
    # it on demand.
    work_scale: float = 36_000.0
    # JVM execution tax: Spark task work runs on the JVM ("virtual
    # machines (JVM) for portability at the expense of efficiency",
    # Section VI); Impala's backend is native C++.
    spark_jvm_factor: float = 1.35
    # Per-record RDD pipeline overhead: each record crosses several JVM
    # closures with boxing/tuple allocation (map -> zipWithIndex ->
    # flatMap in Fig 2); Impala's codegen'd row batches avoid this, which
    # is why ISP-MC wins the scan-dominated taxi-nycb run in Table 1.
    rdd_record: float = 2.0e-7
    # I/O and parsing.
    hdfs_byte: float = 4.0e-9
    wkt_byte: float = 4.0e-8
    wkb_byte: float = 4.0e-9          # binary decode ~10x cheaper than WKT
    # Spatial filtering.
    index_build_entry: float = 1.2e-6
    index_visit: float = 1.5e-7
    # Spatial refinement: the JTS-vs-GEOS axis.  slow/fast vertex ratio plus
    # the per-allocation churn term yields ~3.3x on nycb-like polygons
    # (9 vertices) and ~3.9x on wwf-like polygons (279 vertices), matching
    # Section V.B.
    refine_vertex_fast: float = 3.0e-8
    refine_vertex_slow: float = 8.0e-8
    refine_alloc: float = 3.8e-8
    # Data movement.
    shuffle_byte: float = 5.0e-10
    broadcast_byte: float = 8.0e-9
    # Extra broadcast cost per additional receiving node (torrent fan-out
    # is pipelined, so the growth is sub-linear but not free).
    broadcast_node_factor: float = 0.35
    row_out: float = 2.0e-9
    # Spark control plane (Section III: leader election + actor-system
    # reconstruction per shuffle stage, scaling with partition count).
    spark_stage_base: float = 0.45
    spark_stage_per_partition: float = 0.004
    spark_jar_ship: float = 10.0       # per run (Section VI)
    spark_task_launch: float = 0.004   # per task dispatch
    # Impala control plane (plan distribution + LLVM JIT per fragment
    # instance, plus per-row-batch exchange bookkeeping).
    impala_fragment_startup: float = 1.1
    impala_batch_overhead: float = 1.0e-3
    impala_plan_base: float = 0.4      # frontend parse/plan, once per query
    # Impala pipeline tax: row-batch virtual dispatch, exchange buffering
    # and coordinator bookkeeping, measured by the paper at 7.3-13.9% of
    # runtime over the standalone program (Table 1).  Applied to instance
    # execution time by the coordinator; the standalone runner skips it.
    impala_infra_factor: float = 1.105
    # Differential degradation of ISP-MC on the memory-constrained EC2
    # fleet.  Cross-referencing the paper's own tables: per-core, ISP-MC
    # slows ~2.45x moving from the 128 GB in-house machine (Table 1) to
    # the 15 GB g2.2xlarge nodes (Fig 5), while SpatialSpark slows only
    # ~1.24x (Table 1 vs Fig 4) — GEOS's small-object churn is much more
    # expensive under memory pressure, and Impala keeps all intermediates
    # in RAM.  The coordinator applies this factor (their ratio) to
    # instance time when nodes have <= 16 GB; the in-house single-node
    # runs are unaffected.
    impala_memory_pressure_factor: float = 2.0
    impala_memory_pressure_threshold_gb: float = 16.0

    def task_seconds(self, counts: dict[str, float]) -> float:
        """Dot product of a task's resource counts with the unit costs,
        scaled by :attr:`work_scale` (see its comment above)."""
        total = 0.0
        for resource, units in counts.items():
            rate = _RATES.get(resource)
            if rate is None:
                raise BenchError(f"unknown resource counter {resource!r}")
            total += units * getattr(self, rate)
        return total * self.work_scale


# Mapping from counter names to CostModel field names.
_RATES = {
    Resource.HDFS_BYTES: "hdfs_byte",
    Resource.WKT_BYTES: "wkt_byte",
    Resource.WKB_BYTES: "wkb_byte",
    Resource.INDEX_BUILD: "index_build_entry",
    Resource.INDEX_VISIT: "index_visit",
    Resource.REFINE_VERTEX_FAST: "refine_vertex_fast",
    Resource.REFINE_VERTEX_SLOW: "refine_vertex_slow",
    Resource.REFINE_ALLOC: "refine_alloc",
    Resource.SHUFFLE_BYTES: "shuffle_byte",
    Resource.BROADCAST_BYTES: "broadcast_byte",
    Resource.ROWS_OUT: "row_out",
    Resource.RDD_RECORDS: "rdd_record",
    Resource.ROW_BATCHES: "impala_batch_overhead",
}
