"""Task/stage/query metrics accounting.

Engines accrue resource-unit counts into :class:`TaskMetrics` while they
do real work; the simulation layer converts counts to simulated seconds
via the cost model and composes them into stage and query makespans.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.cluster.model import CostModel
from repro.obs.profile import ProfileNode, QueryProfile

__all__ = ["TaskMetrics", "StageMetrics", "QueryMetrics"]


@dataclass
class TaskMetrics:
    """Resource counters for one task (one partition / one fragment instance)."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, resource: str, units: float) -> None:
        """Accrue ``units`` of ``resource``."""
        self.counts[resource] = self.counts.get(resource, 0.0) + units

    def merge(self, other: "TaskMetrics") -> None:
        """Accumulate another task's counters into this one."""
        for resource, units in other.counts.items():
            self.add(resource, units)

    def seconds(self, model: CostModel) -> float:
        """Simulated duration of this task under ``model``."""
        return model.task_seconds(self.counts)

    def get(self, resource: str) -> float:
        """Current count for ``resource`` (0.0 when never accrued)."""
        return self.counts.get(resource, 0.0)


@dataclass
class StageMetrics:
    """One scheduling stage: a set of tasks plus stage-level overhead."""

    name: str
    tasks: list[TaskMetrics] = field(default_factory=list)
    overhead_seconds: float = 0.0
    makespan_seconds: float = 0.0

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def total_task_seconds(self, model: CostModel) -> float:
        """Sum of all task durations (the serial-equivalent work)."""
        return sum(task.seconds(model) for task in self.tasks)

    def task_seconds(self, model: CostModel) -> list[float]:
        """Per-task simulated durations, in task order."""
        return [task.seconds(model) for task in self.tasks]

    def max_task_seconds(self, model: CostModel) -> float:
        """The straggler task's duration (0.0 with no tasks)."""
        return max(self.task_seconds(model), default=0.0)

    def median_task_seconds(self, model: CostModel) -> float:
        """The median task duration (0.0 with no tasks)."""
        seconds = self.task_seconds(model)
        return statistics.median(seconds) if seconds else 0.0

    def skew(self, model: CostModel) -> float:
        """Max/median task time — the paper's straggler diagnostic.

        1.0 means perfectly balanced; the static-scheduling runs of
        Section V show this climbing well past 1 on spatially-ordered
        inputs.  Returns 1.0 when there are no tasks or the median is 0.
        """
        median = self.median_task_seconds(model)
        if median <= 0.0:
            return 1.0
        return self.max_task_seconds(model) / median

    def counter_totals(self) -> dict[str, float]:
        """Aggregate resource counters over this stage's tasks."""
        merged = TaskMetrics()
        for task in self.tasks:
            merged.merge(task)
        return dict(merged.counts)


@dataclass
class QueryMetrics:
    """A whole query: ordered stages plus query-level overhead."""

    name: str
    stages: list[StageMetrics] = field(default_factory=list)
    overhead_seconds: float = 0.0

    def add_stage(self, stage: StageMetrics) -> None:
        self.stages.append(stage)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated runtime: stage makespans + overheads."""
        return self.overhead_seconds + sum(
            stage.makespan_seconds + stage.overhead_seconds for stage in self.stages
        )

    def total_task_seconds(self, model: CostModel) -> float:
        """Serial-equivalent work across all stages."""
        return sum(stage.total_task_seconds(model) for stage in self.stages)

    def totals(self) -> dict[str, float]:
        """Aggregate resource counters over every task (for reports)."""
        merged = TaskMetrics()
        for stage in self.stages:
            for task in stage.tasks:
                merged.merge(task)
        return dict(merged.counts)

    def to_profile(
        self, model: CostModel | None = None, name: str | None = None
    ) -> QueryProfile:
        """Build the Impala-style profile tree for this query.

        The tree preserves the accounting identity exactly: the root's
        duration is :attr:`simulated_seconds`, and its children (one per
        stage, plus a query-overhead node when present) sum to it —
        ``makespan + overhead`` per stage.  Each stage node carries the
        stage's aggregated resource counters and task-skew statistics
        (task count, serial-equivalent work, max/median task time).
        """
        model = model or CostModel()
        root = ProfileNode(name or self.name, sim_seconds=self.simulated_seconds)
        if self.overhead_seconds:
            root.add_child(
                ProfileNode(
                    "query-overhead",
                    sim_seconds=self.overhead_seconds,
                    info={"kind": "driver/setup overhead"},
                )
            )
        for stage in self.stages:
            node = ProfileNode(
                stage.name,
                sim_seconds=stage.makespan_seconds + stage.overhead_seconds,
                counters=stage.counter_totals(),
                info={
                    "tasks": stage.num_tasks,
                    "makespan_seconds": stage.makespan_seconds,
                    "overhead_seconds": stage.overhead_seconds,
                    "total_task_seconds": stage.total_task_seconds(model),
                    "max_task_seconds": stage.max_task_seconds(model),
                    "median_task_seconds": stage.median_task_seconds(model),
                    "skew": stage.skew(model),
                },
                concurrent=True,  # a stage's tasks overlap in time
            )
            root.add_child(node)
        return QueryProfile(root, metrics=self)
