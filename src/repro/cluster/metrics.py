"""Task/stage/query metrics accounting.

Engines accrue resource-unit counts into :class:`TaskMetrics` while they
do real work; the simulation layer converts counts to simulated seconds
via the cost model and composes them into stage and query makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.model import CostModel

__all__ = ["TaskMetrics", "StageMetrics", "QueryMetrics"]


@dataclass
class TaskMetrics:
    """Resource counters for one task (one partition / one fragment instance)."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, resource: str, units: float) -> None:
        """Accrue ``units`` of ``resource``."""
        self.counts[resource] = self.counts.get(resource, 0.0) + units

    def merge(self, other: "TaskMetrics") -> None:
        """Accumulate another task's counters into this one."""
        for resource, units in other.counts.items():
            self.add(resource, units)

    def seconds(self, model: CostModel) -> float:
        """Simulated duration of this task under ``model``."""
        return model.task_seconds(self.counts)

    def get(self, resource: str) -> float:
        """Current count for ``resource`` (0.0 when never accrued)."""
        return self.counts.get(resource, 0.0)


@dataclass
class StageMetrics:
    """One scheduling stage: a set of tasks plus stage-level overhead."""

    name: str
    tasks: list[TaskMetrics] = field(default_factory=list)
    overhead_seconds: float = 0.0
    makespan_seconds: float = 0.0

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def total_task_seconds(self, model: CostModel) -> float:
        """Sum of all task durations (the serial-equivalent work)."""
        return sum(task.seconds(model) for task in self.tasks)


@dataclass
class QueryMetrics:
    """A whole query: ordered stages plus query-level overhead."""

    name: str
    stages: list[StageMetrics] = field(default_factory=list)
    overhead_seconds: float = 0.0

    def add_stage(self, stage: StageMetrics) -> None:
        self.stages.append(stage)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated runtime: stage makespans + overheads."""
        return self.overhead_seconds + sum(
            stage.makespan_seconds + stage.overhead_seconds for stage in self.stages
        )

    def total_task_seconds(self, model: CostModel) -> float:
        """Serial-equivalent work across all stages."""
        return sum(stage.total_task_seconds(model) for stage in self.stages)

    def totals(self) -> dict[str, float]:
        """Aggregate resource counters over every task (for reports)."""
        merged = TaskMetrics()
        for stage in self.stages:
            for task in stage.tasks:
                merged.merge(task)
        return dict(merged.counts)
