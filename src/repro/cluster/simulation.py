"""Makespan simulation under dynamic and static scheduling.

The paper attributes SpatialSpark's superior cluster scaling to Spark's
*dynamic* task placement ("Spark is able to distribute the workload
dynamically to computing nodes which results in better load balancing")
and ISP-MC's stragglers to Impala's *static* plan: fragments are assigned
to instances before execution and never move ("No changes on the plan are
made after the plan starts to execute").  These two policies are exactly
what this module simulates, given per-task durations produced by the cost
model from real executed work.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.errors import BenchError
from repro.obs.tracer import get_tracer

__all__ = [
    "simulate_dynamic",
    "simulate_static_round_robin",
    "simulate_static_chunked",
    "simulate_all",
    "parallel_efficiency",
]


def _record_makespan(
    policy: str, makespan: float, num_tasks: int, workers: int
) -> float:
    """Report a computed makespan to the active tracer (no-op if disabled).

    The makespan becomes the duration of a leaf span under whatever span
    is currently open (a stage, a fragment instance, a probe batch), so
    scheduling decisions show up in captured profiles and Chrome traces.
    """
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            f"simulate-{policy}",
            category="simulation",
            sim_seconds=makespan,
            tasks=num_tasks,
            workers=workers,
        )
    return makespan


def simulate_dynamic(
    task_seconds: Sequence[float],
    workers: int,
    per_task_overhead: float = 0.0,
) -> float:
    """Makespan under dynamic (pull-based) scheduling.

    Tasks are dispatched in submission order to the earliest-available
    worker — the behaviour of Spark's scheduler once locality preferences
    are exhausted.  ``per_task_overhead`` models task-launch latency.
    """
    if workers < 1:
        raise BenchError(f"need >= 1 worker, got {workers}")
    if not task_seconds:
        return 0.0
    heap = [0.0] * min(workers, len(task_seconds))
    heapq.heapify(heap)
    for duration in task_seconds:
        available_at = heapq.heappop(heap)
        heapq.heappush(heap, available_at + duration + per_task_overhead)
    return _record_makespan("dynamic", max(heap), len(task_seconds), workers)


def simulate_static_round_robin(
    task_seconds: Sequence[float],
    workers: int,
    per_task_overhead: float = 0.0,
) -> float:
    """Makespan under static round-robin pre-assignment.

    Task ``i`` is bound to worker ``i % workers`` before execution starts
    and never migrates — Impala's scan-range assignment.  With skewed task
    durations the most-loaded worker becomes the straggler the paper
    observed ("some Impala instances take much longer to complete the
    spatial joins than others").
    """
    if workers < 1:
        raise BenchError(f"need >= 1 worker, got {workers}")
    loads = [0.0] * workers
    for i, duration in enumerate(task_seconds):
        loads[i % workers] += duration + per_task_overhead
    if not task_seconds:
        return 0.0
    return _record_makespan(
        "static-round-robin", max(loads), len(task_seconds), workers
    )


def simulate_static_chunked(
    task_seconds: Sequence[float],
    workers: int,
    per_task_overhead: float = 0.0,
) -> float:
    """Makespan under static contiguous chunking.

    Worker ``w`` receives the contiguous slice of tasks
    ``[w*n/workers, (w+1)*n/workers)`` — OpenMP's ``schedule(static)``
    within an ISP-MC row batch.  Contiguous slices concentrate spatially
    correlated expensive tasks on one worker, the intra-node imbalance of
    Section V.B.
    """
    if workers < 1:
        raise BenchError(f"need >= 1 worker, got {workers}")
    n = len(task_seconds)
    if n == 0:
        return 0.0
    loads = []
    base = n // workers
    remainder = n % workers
    start = 0
    for w in range(workers):
        size = base + (1 if w < remainder else 0)
        chunk = task_seconds[start : start + size]
        loads.append(sum(chunk) + per_task_overhead * len(chunk))
        start += size
    return _record_makespan("static-chunked", max(loads), n, workers)


def simulate_all(
    task_seconds: Sequence[float],
    workers: int,
    per_task_overhead: float = 0.0,
) -> dict[str, float]:
    """Every policy's makespan for one task list, keyed by policy name.

    The optimizer uses this to report how much a (re)partitioning helps
    each scheduling discipline — the skew-aware splitter's win shows up as
    a drop in ``static_chunked`` and ``static_round_robin`` makespans on
    clustered data while ``dynamic`` bounds what scheduling alone fixes.
    """
    return {
        "dynamic": simulate_dynamic(task_seconds, workers, per_task_overhead),
        "static_round_robin": simulate_static_round_robin(
            task_seconds, workers, per_task_overhead
        ),
        "static_chunked": simulate_static_chunked(
            task_seconds, workers, per_task_overhead
        ),
    }


def parallel_efficiency(
    runtime_small: float, nodes_small: int, runtime_large: float, nodes_large: int
) -> float:
    """Speedup over node increase: (t_small/t_large) / (n_large/n_small).

    The paper reports ~80% for SpatialSpark and ~100% for ISP-MC when
    scaling 4 -> 10 nodes.
    """
    if min(runtime_small, runtime_large) <= 0.0:
        raise BenchError("runtimes must be positive")
    speedup = runtime_small / runtime_large
    scale = nodes_large / nodes_small
    return speedup / scale
