"""Cluster model: specs, cost accounting and makespan simulation."""

from repro.cluster.model import ClusterSpec, CostModel, EC2_G2_2XLARGE, Resource
from repro.cluster.metrics import QueryMetrics, StageMetrics, TaskMetrics
from repro.cluster.simulation import (
    parallel_efficiency,
    simulate_dynamic,
    simulate_static_chunked,
    simulate_static_round_robin,
)

__all__ = [
    "ClusterSpec",
    "CostModel",
    "EC2_G2_2XLARGE",
    "Resource",
    "QueryMetrics",
    "StageMetrics",
    "TaskMetrics",
    "parallel_efficiency",
    "simulate_dynamic",
    "simulate_static_chunked",
    "simulate_static_round_robin",
]
