"""Cost-based plan selection and skew-aware repartitioning.

:func:`choose_plan` prices the four join strategies the repository
implements with the same :class:`~repro.cluster.model.CostModel` the
engines are billed with, so "cheapest estimated plan" and "fastest
simulated plan" share one currency:

* ``naive`` — nested loop; no build/setup cost, quadratic envelope work.
  Wins only on tiny inputs.
* ``broadcast`` — index the right side once (serial), ship it to every
  node, probe in parallel.  Wins when the build side is small (the
  paper's point-heavy workloads).
* ``partitioned`` — shuffle both sides into tiles, join tile-by-tile in
  parallel.  Wins when both sides are large: it replaces the
  whole-build-side broadcast with a shuffle and splits the index build
  across tiles.  Its makespan is predicted by simulating the estimated
  per-tile costs under dynamic scheduling — after skew-aware splitting.
* ``dual-tree`` — index both sides, synchronized traversal.  Wins on a
  single worker when candidate density is high: the per-probe
  root-to-leaf descent and repeated candidate enumeration of the
  broadcast plan exceed the one-off cost of packing the probe side.

Hot tiles are handled as in LocationSpark's query optimizer: any tile
whose estimated cost exceeds ``skew_factor x median`` is recursively
quartered at the sample medians until the histogram flattens, which is
what turns the static-scheduling stragglers of Section V.B into balanced
task lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.cluster.model import ClusterSpec, CostModel, Resource
from repro.cluster.simulation import simulate_dynamic
from repro.core.operators import SpatialOperator
from repro.errors import OptimizerError
from repro.geometry.envelope import Envelope
from repro.index.partitioner import SortTilePartitioner, SpatialPartitioning
from repro.optimizer.stats import (
    JoinStats,
    TileHistogram,
    collect_join_stats,
    probe_units,
    tile_histogram,
)

__all__ = [
    "PlanChoice",
    "choose_plan",
    "estimate_plan_costs",
    "estimate_plan_terms",
    "split_hot_tiles",
    "derive_skew_aware_partitioning",
    "predicted_makespans",
    "DEFAULT_SKEW_FACTOR",
]

PLAN_METHODS = ("broadcast", "partitioned", "dual-tree", "naive")
DEFAULT_SKEW_FACTOR = 2.0
# Fixed per-plan setup charged in resource units so it scales with the
# cost model like everything else: standing up trees / shuffle machinery
# is never free, which is what lets ``naive`` win tiny joins.
_PLAN_SETUP_ENTRIES = 64.0


@dataclass
class PlanChoice:
    """The optimizer's verdict: chosen method, priced alternatives,
    derived tiles, and an explain()-style summary."""

    method: str
    costs: dict[str, float]
    stats: JoinStats
    workers: int = 1
    nodes: int = 1
    partitioning: SpatialPartitioning | None = field(default=None, repr=False)
    histogram: TileHistogram | None = field(default=None, repr=False)
    split_tiles: int = 0
    skew_factor: float = DEFAULT_SKEW_FACTOR
    # True when the broadcast build side was cache-resident at planning
    # time, so its cost was discounted (a warm cache can flip the plan).
    cached_build: bool = False
    # Estimate-vs-actual correction factors consulted at planning time
    # (``choose_plan(..., calibration=...)``).  Recorded for observability
    # only — the chooser never applies them, so plans stay deterministic.
    calibration: dict[str, float] | None = field(default=None, repr=False)

    @property
    def estimated_seconds(self) -> float:
        return self.costs[self.method]

    def explain(self) -> list[str]:
        """Render the choice the way ``EXPLAIN`` renders a plan."""
        lines = [
            f"PLAN CHOICE: {self.method}  "
            f"(est {self.estimated_seconds:.3f}s, workers={self.workers}"
            + (", cached build side" if self.cached_build else "")
            + ")"
        ]
        for method in PLAN_METHODS:
            marker = "->" if method == self.method else "  "
            lines.append(f"  {marker} {method:<12} est {self.costs[method]:.3f}s")
        info = self.stats.to_info()
        lines.append(
            f"  stats: left={info['left']['rows']} right={info['right']['rows']} "
            f"candidates/probe={info['candidates_per_probe']}"
        )
        if self.partitioning is not None:
            lines.append(
                f"  tiles: {len(self.partitioning)} "
                f"({self.split_tiles} from hot-tile splits, "
                f"skew_factor={self.skew_factor})"
            )
        return lines

    def to_info(self) -> dict:
        """Flat JSON-safe summary for query profiles and BENCH output."""
        info = {
            "method": self.method,
            "workers": self.workers,
            "est_seconds": {m: round(s, 6) for m, s in self.costs.items()},
            "stats": self.stats.to_info(),
        }
        if self.cached_build:
            info["cached_build"] = True
        if self.calibration:
            info["calibration"] = {
                key: round(value, 6) for key, value in self.calibration.items()
            }
        if self.partitioning is not None:
            info["tiles"] = len(self.partitioning)
            info["split_tiles"] = self.split_tiles
        return info


# -- skew-aware repartitioning --------------------------------------------------


def split_hot_tiles(
    partitioning: SpatialPartitioning,
    stats: JoinStats,
    cost_model: CostModel | None = None,
    skew_factor: float = DEFAULT_SKEW_FACTOR,
    max_tiles: int = 512,
    max_rounds: int = 4,
    engine: str = "fast",
) -> tuple[SpatialPartitioning, TileHistogram, int]:
    """Recursively quarter tiles whose estimated cost is skewed.

    Each round re-estimates the histogram, finds tiles above
    ``skew_factor x median`` and splits them at the *sample medians* (not
    the geometric center — clustered data concentrates in a corner of the
    hot tile, and a median split halves population, not area).  Returns
    the refined partitioning, its final histogram and the number of extra
    tiles created.
    """
    if skew_factor <= 1.0:
        raise OptimizerError(f"skew_factor must be > 1, got {skew_factor}")
    model = cost_model or CostModel()
    current = partitioning
    histogram = tile_histogram(current, stats, model, engine=engine)
    added = 0
    for _ in range(max_rounds):
        if len(current) >= max_tiles:
            break
        hot = histogram.hot_tiles(skew_factor)
        if not hot:
            break
        hot_set = set(hot)
        tiles: list[Envelope] = []
        for i, tile in enumerate(current.tiles):
            if i in hot_set and len(current) + added + 3 <= max_tiles:
                quarters = _median_quarter(tile, stats)
                tiles.extend(quarters)
                added += len(quarters) - 1
            else:
                tiles.append(tile)
        refined = SpatialPartitioning(current.extent, tuple(tiles))
        new_histogram = tile_histogram(refined, stats, model, engine=engine)
        if new_histogram.max_seconds >= histogram.max_seconds:
            break  # splitting stopped helping (degenerate point mass)
        current, histogram = refined, new_histogram
    return current, histogram, len(current) - len(partitioning)


def _median_quarter(tile: Envelope, stats: JoinStats) -> list[Envelope]:
    """Split a tile into four at the sample-median point inside it."""
    xs = []
    ys = []
    for _, geometry in stats.left.sample:
        cx, cy = geometry.envelope.center
        if tile.contains_point(cx, cy):
            xs.append(cx)
            ys.append(cy)
    if len(xs) < 4:
        mid_x = (tile.min_x + tile.max_x) / 2.0
        mid_y = (tile.min_y + tile.max_y) / 2.0
    else:
        xs.sort()
        ys.sort()
        mid_x = xs[len(xs) // 2]
        mid_y = ys[len(ys) // 2]
        # Degenerate medians (all mass on one line) fall back to center.
        if not (tile.min_x < mid_x < tile.max_x):
            mid_x = (tile.min_x + tile.max_x) / 2.0
        if not (tile.min_y < mid_y < tile.max_y):
            mid_y = (tile.min_y + tile.max_y) / 2.0
    return [
        Envelope(tile.min_x, tile.min_y, mid_x, mid_y),
        Envelope(mid_x, tile.min_y, tile.max_x, mid_y),
        Envelope(tile.min_x, mid_y, mid_x, tile.max_y),
        Envelope(mid_x, mid_y, tile.max_x, tile.max_y),
    ]


def derive_skew_aware_partitioning(
    stats: JoinStats,
    num_tiles: int,
    cost_model: CostModel | None = None,
    skew_factor: float = DEFAULT_SKEW_FACTOR,
    engine: str = "fast",
) -> tuple[SpatialPartitioning, TileHistogram, int]:
    """Sort-tile base layout from the probe-side sample, then hot-tile
    splitting — the full LocationSpark-style pipeline."""
    centers = stats.left.sample_centers()
    extent = stats.left.extent.union(stats.right.extent)
    if extent.is_empty:
        raise OptimizerError("cannot partition empty inputs")
    pad_x = max(extent.width * 0.05, 1e-9)
    pad_y = max(extent.height * 0.05, 1e-9)
    extent = Envelope(
        extent.min_x - pad_x,
        extent.min_y - pad_y,
        extent.max_x + pad_x,
        extent.max_y + pad_y,
    )
    base = SortTilePartitioner(max(1, num_tiles)).partition(extent, centers)
    return split_hot_tiles(
        base, stats, cost_model, skew_factor=skew_factor, engine=engine
    )


# -- plan costing ---------------------------------------------------------------


def estimate_plan_terms(
    stats: JoinStats,
    cost_model: CostModel | None = None,
    workers: int = 1,
    nodes: int = 1,
    engine: str = "fast",
    histogram: TileHistogram | None = None,
    cached_build: bool = False,
) -> dict[str, dict[str, float]]:
    """Per-operator cost terms of every plan, in simulated seconds.

    The inner dicts decompose each plan's estimate into the operators the
    executed query will actually report (``build``/``probe`` for
    broadcast, ``shuffle``/``join`` for partitioned, ...), which is what
    lets ``EXPLAIN`` annotate an operator tree and ``EXPLAIN ANALYZE``
    overlay measured actuals term by term.  :func:`estimate_plan_costs`
    sums the terms in insertion order, so the totals are bit-identical to
    the pre-decomposition formula.
    """
    model = cost_model or CostModel()
    workers = max(1, workers)
    nodes = max(1, nodes)
    n_left = float(stats.left.count)
    n_right = float(stats.right.count)
    cand = stats.candidates_per_probe
    v_right = max(stats.right.mean_vertices, 2.0)
    setup = model.task_seconds({Resource.INDEX_BUILD: _PLAN_SETUP_ENTRIES})

    # naive: every pair gets an envelope test; candidates get refined.
    naive = model.task_seconds(
        {
            Resource.INDEX_VISIT: n_left * n_right,
            Resource.REFINE_VERTEX_FAST: n_left * cand * v_right,
            Resource.ROWS_OUT: n_left * cand * 0.5,
        }
    )

    # broadcast: serial build + fan-out shipping + parallel probes.
    # A cache-resident index makes the build (but not the shipping) free.
    build = 0.0 if cached_build else model.task_seconds(
        {Resource.INDEX_BUILD: n_right}
    )
    ship = model.task_seconds(
        {Resource.BROADCAST_BYTES: stats.right.estimated_bytes}
    ) * (1.0 + model.broadcast_node_factor * (nodes - 1))
    probe = model.task_seconds(
        probe_units(n_left, n_right, cand, v_right, engine)
    )

    # partitioned: shuffle both sides, then per-tile build+probe either
    # simulated from the histogram or approximated as evenly split work.
    shuffle = model.task_seconds(
        {
            Resource.SHUFFLE_BYTES: (
                stats.left.estimated_bytes + stats.right.estimated_bytes
            )
            * 1.3  # multi-assignment replication of boundary objects
        }
    )
    occupied = (
        [s for s in histogram.seconds if s > 0.0] if histogram is not None else []
    )
    if occupied:
        # Per-tile scheduling overhead: the real join spawns one task per
        # non-empty tile, each paying its own index/setup floor.
        parallel = simulate_dynamic(occupied, workers, per_task_overhead=setup)
    else:
        parallel = (build + probe) / workers + setup

    # dual-tree: pack both sides, synchronized traversal (serial); no
    # per-probe descent, cheaper candidate enumeration.
    dual_build = model.task_seconds(
        {Resource.INDEX_BUILD: n_left + n_right}
    )
    dual_traverse = model.task_seconds(
        {
            Resource.INDEX_VISIT: 0.5 * (n_left + n_right) + n_left * cand,
            Resource.REFINE_VERTEX_FAST: n_left * cand * v_right,
            Resource.ROWS_OUT: n_left * cand * 0.5,
        }
    )

    return {
        "naive": {"join": naive},
        "broadcast": {
            "setup": setup,
            "build": build,
            "ship": ship,
            "probe": probe / workers,
        },
        "partitioned": {
            "setup": 2.0 * setup,
            "shuffle": shuffle,
            "join": parallel,
        },
        "dual-tree": {
            "setup": setup,
            "build": dual_build,
            "join": dual_traverse,
        },
    }


def estimate_plan_costs(
    stats: JoinStats,
    cost_model: CostModel | None = None,
    workers: int = 1,
    nodes: int = 1,
    engine: str = "fast",
    histogram: TileHistogram | None = None,
    cached_build: bool = False,
) -> dict[str, float]:
    """Price every plan in simulated seconds.

    ``workers`` is the parallelism the probe/tile work divides over;
    ``nodes`` scales the broadcast fan-out cost.  When a ``histogram`` is
    given the partitioned plan's parallel phase is the *simulated dynamic
    makespan* of its per-tile estimates — the calibration hook that makes
    the chooser agree with :mod:`repro.cluster.simulation`.

    ``cached_build`` zeroes the broadcast plan's index-build term: when
    the cross-query cache already holds the built index, the broadcast
    plan's real setup cost is just the lookup, so the chooser should not
    charge a rebuild it will never perform.  (The *executed* plan still
    bills the full build units — plan pricing is about wall-clock the
    driver will actually spend; execution billing simulates the cluster.)
    """
    terms = estimate_plan_terms(
        stats,
        cost_model,
        workers=workers,
        nodes=nodes,
        engine=engine,
        histogram=histogram,
        cached_build=cached_build,
    )
    # Left-associative sum in insertion order keeps every total
    # bit-identical to the historical single-expression formula.
    costs: dict[str, float] = {}
    for method, parts in terms.items():
        total = 0.0
        for seconds in parts.values():
            total = total + seconds
        costs[method] = total
    return costs


def choose_plan(
    left: Sequence[tuple[Any, Any]] | JoinStats,
    right: Sequence[tuple[Any, Any]] | None = None,
    operator: SpatialOperator = SpatialOperator.WITHIN,
    radius: float = 0.0,
    cost_model: CostModel | None = None,
    workers: int = 1,
    cluster: ClusterSpec | None = None,
    num_tiles: int | None = None,
    skew_factor: float = DEFAULT_SKEW_FACTOR,
    engine: str = "fast",
    sample_size: int | None = None,
    cached_build: bool = False,
    calibration=None,
) -> PlanChoice:
    """Sample, price, and pick the cheapest join plan.

    ``left``/``right`` are (id, geometry) collections, or pre-computed
    :class:`JoinStats` may be passed as ``left`` alone.  ``cluster``
    overrides ``workers`` with its core count and informs broadcast
    fan-out.  The partitioned candidate always gets a skew-aware tiling,
    so the returned :class:`PlanChoice` carries usable tiles whenever
    partitioned is chosen (or close).

    ``cached_build=True`` discounts the broadcast plan's index-build term
    (the cross-query cache already holds the built index); the discount
    and any resulting plan flip are recorded on the returned
    :class:`PlanChoice` as ``cached_build``.

    ``calibration`` is an optional
    :class:`~repro.optimizer.calibration.CalibrationLog`: its per-operator
    estimate-vs-actual factors are *consulted* (snapshotted onto the
    returned choice for EXPLAIN output) but never applied to the costs, so
    the same inputs always pick the same plan regardless of feedback
    history.
    """
    model = cost_model or CostModel()
    if isinstance(left, JoinStats):
        stats = left
    else:
        if right is None:
            raise OptimizerError("choose_plan needs both inputs or JoinStats")
        kwargs = {"sample_size": sample_size} if sample_size else {}
        stats = collect_join_stats(
            left, right, radius=radius if operator.needs_radius else 0.0, **kwargs
        )
    nodes = cluster.num_nodes if cluster is not None else 1
    if cluster is not None:
        workers = cluster.total_cores
    workers = max(1, workers)

    partitioning = None
    histogram = None
    split_count = 0
    if stats.left.count and stats.right.count:
        tiles = num_tiles or max(4, 2 * workers)
        try:
            partitioning, histogram, split_count = derive_skew_aware_partitioning(
                stats, tiles, model, skew_factor=skew_factor, engine=engine
            )
        except OptimizerError:
            partitioning = None

    costs = estimate_plan_costs(
        stats,
        model,
        workers=workers,
        nodes=nodes,
        engine=engine,
        histogram=histogram,
        cached_build=cached_build,
    )
    method = min(PLAN_METHODS, key=lambda m: (costs[m], PLAN_METHODS.index(m)))
    factors = None
    if calibration is not None:
        factors = calibration.factors()
    return PlanChoice(
        method=method,
        costs=costs,
        stats=stats,
        workers=workers,
        nodes=nodes,
        partitioning=partitioning,
        histogram=histogram,
        split_tiles=split_count,
        skew_factor=skew_factor,
        cached_build=cached_build,
        calibration=factors or None,
    )


def predicted_makespans(
    histogram: TileHistogram, workers: int
) -> dict[str, float]:
    """Dynamic vs static makespans of a tile histogram — the quantity the
    skewed-synthetic benchmark records before/after hot-tile splitting."""
    from repro.cluster.simulation import simulate_all

    return simulate_all(histogram.seconds, workers)
