"""Deterministic sampling primitives for the optimizer.

Statistics must be *cheap* relative to the join they inform (Quoc et
al.'s approximate-join argument, PAPERS.md) and *deterministic* so the
simulated benchmarks stay reproducible run to run.  Two samplers cover
the optimizer's needs:

* :func:`reservoir_sample` — Vitter's algorithm R over any iterable, one
  pass, O(k) memory; used when nothing is known about the input.
* :func:`stratified_sample` — proportional allocation over a coarse grid
  of the data extent with a guaranteed minimum per non-empty stratum.
  Uniform reservoirs under-represent sparse regions of heavily clustered
  data (NYC taxi pickups, GBIF survey hotspots), which is exactly where
  tile boundaries go wrong; stratification keeps the tails visible.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from repro.errors import OptimizerError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope

__all__ = ["reservoir_sample", "stratified_sample", "sample_entries"]


def reservoir_sample(items: Iterable[Any], k: int, seed: int = 17) -> list[Any]:
    """Uniform sample of ``k`` items in one pass (algorithm R).

    Returns all items when the input has fewer than ``k``; order of the
    returned sample is the reservoir's, not the stream's.
    """
    if k < 1:
        raise OptimizerError(f"sample size must be >= 1, got {k}")
    rng = random.Random(seed)
    reservoir: list[Any] = []
    for i, item in enumerate(items):
        if i < k:
            reservoir.append(item)
        else:
            j = rng.randint(0, i)
            if j < k:
                reservoir[j] = item
    return reservoir


def stratified_sample(
    entries: Sequence[tuple[Any, Geometry]],
    k: int,
    seed: int = 17,
    grid: int = 8,
) -> list[tuple[Any, Geometry]]:
    """Spatially stratified sample of (payload, geometry) entries.

    The data extent is cut into a ``grid x grid`` lattice of strata by
    envelope center; each non-empty stratum contributes proportionally to
    its population but never fewer than one entry, so sparse regions
    survive into the sample.  Degenerates to :func:`reservoir_sample`
    when the extent is a single point or ``k`` exceeds the population.
    """
    if k < 1:
        raise OptimizerError(f"sample size must be >= 1, got {k}")
    populated = [(p, g) for p, g in entries if not g.is_empty]
    if len(populated) <= k:
        return list(populated)
    extent = Envelope.empty()
    for _, geometry in populated:
        extent = extent.union(geometry.envelope)
    if extent.width <= 0 and extent.height <= 0:
        return reservoir_sample(populated, k, seed=seed)

    def stratum_of(geometry: Geometry) -> tuple[int, int]:
        cx, cy = geometry.envelope.center
        col = int((cx - extent.min_x) / max(extent.width, 1e-300) * grid)
        row = int((cy - extent.min_y) / max(extent.height, 1e-300) * grid)
        return (min(max(col, 0), grid - 1), min(max(row, 0), grid - 1))

    strata: dict[tuple[int, int], list[tuple[Any, Geometry]]] = {}
    for entry in populated:
        strata.setdefault(stratum_of(entry[1]), []).append(entry)
    rng = random.Random(seed)
    total = len(populated)
    sample: list[tuple[Any, Geometry]] = []
    for key in sorted(strata):
        members = strata[key]
        quota = max(1, round(k * len(members) / total))
        if quota >= len(members):
            sample.extend(members)
        else:
            sample.extend(rng.sample(members, quota))
    # Proportional rounding can overshoot; trim uniformly for determinism.
    if len(sample) > k:
        sample = reservoir_sample(sample, k, seed=seed + 1)
    return sample


def sample_entries(
    entries: Sequence[tuple[Any, Geometry]],
    k: int,
    seed: int = 17,
    stratified: bool = True,
) -> list[tuple[Any, Geometry]]:
    """The optimizer's default sampling policy (stratified, reservoir
    fallback for degenerate extents)."""
    if stratified:
        return stratified_sample(entries, k, seed=seed)
    return reservoir_sample(
        [(p, g) for p, g in entries if not g.is_empty], k, seed=seed
    )
