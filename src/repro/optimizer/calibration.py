"""Persistent estimate-vs-actual feedback for the plan chooser.

LocationSpark's argument (see PAPERS.md) is that a cost-model-driven
planner is only trustworthy with a feedback loop from runtime statistics.
This module is that loop's storage layer: every ``EXPLAIN ANALYZE`` run
can append its per-operator estimate/actual deltas here, and
:func:`~repro.optimizer.planner.choose_plan` can *consult* the
accumulated correction factors via its ``calibration=`` keyword.

Deliberately, consulting is recording-only: the factors are snapshotted
onto the returned :class:`~repro.optimizer.planner.PlanChoice` (so
EXPLAIN output shows how wrong past estimates were for each operator)
but never multiplied into the costs.  Plans therefore stay a pure
function of the inputs — the auto-apply step is future work gated on
enough recorded history to trust.

The on-disk form is append-only JSONL, one record per (method, operator,
metric) delta, so logs from many runs concatenate trivially.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["CalibrationRecord", "CalibrationLog", "CALIBRATION_SCHEMA_VERSION"]

CALIBRATION_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CalibrationRecord:
    """One observed estimate-vs-actual delta for one plan operator."""

    method: str  # executed join strategy ("broadcast", ...)
    operator: str  # plan-tree operator the delta belongs to ("probe", ...)
    metric: str  # "seconds" | "rows" | "bytes"
    estimate: float
    actual: float

    @property
    def ratio(self) -> float:
        """actual / estimate (capped-safe: 0 estimate -> 0-or-inf guard)."""
        if self.estimate > 0.0:
            return self.actual / self.estimate
        return 0.0 if self.actual == 0.0 else float("inf")

    def to_json(self) -> dict:
        return {
            "schema_version": CALIBRATION_SCHEMA_VERSION,
            "method": self.method,
            "operator": self.operator,
            "metric": self.metric,
            "estimate": self.estimate,
            "actual": self.actual,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "CalibrationRecord":
        return cls(
            method=doc["method"],
            operator=doc["operator"],
            metric=doc["metric"],
            estimate=float(doc["estimate"]),
            actual=float(doc["actual"]),
        )


class CalibrationLog:
    """Accumulated estimate-vs-actual deltas, optionally JSONL-backed.

    With a ``path`` every :meth:`record` / :meth:`record_report` call
    appends the new records to the file immediately (append mode, one
    JSON object per line), so several processes' histories concatenate
    into one log.  Without a path the log is purely in-memory.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        self.records: list[CalibrationRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    # -- recording --------------------------------------------------------

    def record(self, record: CalibrationRecord) -> None:
        """Append one delta (and persist it when the log has a path)."""
        self.records.append(record)
        if self.path:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_json(), sort_keys=True))
                handle.write("\n")

    def record_report(self, report) -> int:
        """Harvest every operator with both an estimate and an actual from
        an :class:`~repro.obs.explain.ExplainReport`; returns how many
        records were appended."""
        added = 0
        for node in report.operators():
            if node.actual is None:
                continue
            for metric, estimate in node.estimate.items():
                actual = node.actual.get(metric)
                if actual is None:
                    continue
                self.record(
                    CalibrationRecord(
                        method=report.method,
                        operator=node.name,
                        metric=metric,
                        estimate=float(estimate),
                        actual=float(actual),
                    )
                )
                added += 1
        return added

    # -- loading ----------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "CalibrationLog":
        """Read a JSONL calibration log back; unknown versions are rejected."""
        log = cls()
        log.path = path
        if not os.path.exists(path):
            return log
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ReproError(
                        f"{path}:{line_no}: not valid JSON ({error})"
                    ) from None
                version = doc.get("schema_version")
                if version != CALIBRATION_SCHEMA_VERSION:
                    raise ReproError(
                        f"{path}:{line_no}: calibration schema_version "
                        f"{version!r} != {CALIBRATION_SCHEMA_VERSION}"
                    )
                log.records.append(CalibrationRecord.from_json(doc))
        return log

    # -- consulting -------------------------------------------------------

    def factors(self, metric: str = "seconds") -> dict[str, float]:
        """Median actual/estimate ratio per ``method/operator`` key.

        The median (not mean) keeps one wild outlier run from dominating
        the factor; keys with no finite ratios are omitted.
        """
        ratios: dict[str, list[float]] = {}
        for record in self.records:
            if record.metric != metric:
                continue
            ratio = record.ratio
            if ratio == float("inf"):
                continue
            ratios.setdefault(f"{record.method}/{record.operator}", []).append(ratio)
        factors: dict[str, float] = {}
        for key, values in sorted(ratios.items()):
            values.sort()
            mid = len(values) // 2
            if len(values) % 2:
                factors[key] = values[mid]
            else:
                factors[key] = (values[mid - 1] + values[mid]) / 2.0
        return factors
