"""Sampling-based table and tile statistics for plan selection.

Everything the planner needs is derived from a small stratified sample of
each input plus the existing :class:`~repro.cluster.model.CostModel`:

* :class:`TableStats` — cardinality, extent, vertex and byte estimates;
* :class:`JoinStats` — both sides plus an envelope-level candidate
  estimate (how many build envelopes an average probe envelope hits),
  measured by cross-testing the two samples — the quantity that separates
  sparse point-in-polygon joins from dense radius joins;
* :class:`TileHistogram` — per-tile row counts and estimated task
  seconds under a partitioning, the substrate for LocationSpark-style
  hot-tile detection and for makespan prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.cluster.model import CostModel, Resource
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.index.partitioner import SpatialPartitioning
from repro.optimizer.sampler import sample_entries

__all__ = [
    "TableStats",
    "JoinStats",
    "TileHistogram",
    "collect_table_stats",
    "collect_join_stats",
    "tile_histogram",
    "estimate_tile_seconds",
    "probe_units",
    "DEFAULT_SAMPLE_SIZE",
]

DEFAULT_SAMPLE_SIZE = 256
# Estimated in-memory bytes per record: envelope + payload + per-vertex
# coordinates (two float64s). Used for broadcast/shuffle byte estimates.
_RECORD_BASE_BYTES = 48.0
_VERTEX_BYTES = 16.0


@dataclass(frozen=True)
class TableStats:
    """Summary of one join input, estimated from a sample."""

    count: int
    extent: Envelope
    mean_vertices: float
    mean_envelope_area: float
    point_fraction: float
    sample: tuple[tuple[Any, Geometry], ...] = field(repr=False, default=())

    @property
    def estimated_bytes(self) -> float:
        """Approximate serialized size of the full table."""
        return self.count * (_RECORD_BASE_BYTES + _VERTEX_BYTES * self.mean_vertices)

    def sample_centers(self) -> list[tuple[float, float]]:
        """Envelope centers of the sample (partitioner input)."""
        return [g.envelope.center for _, g in self.sample]

    def to_info(self) -> dict:
        """Flat summary for profiles / EXPLAIN output."""
        return {
            "rows": self.count,
            "mean_vertices": round(self.mean_vertices, 2),
            "point_fraction": round(self.point_fraction, 3),
            "est_bytes": int(self.estimated_bytes),
            "sampled": len(self.sample),
        }


def collect_table_stats(
    entries: Sequence[tuple[Any, Geometry]],
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 17,
) -> TableStats:
    """One-pass stats plus a stratified sample of ``entries``."""
    count = 0
    extent = Envelope.empty()
    for _, geometry in entries:
        if geometry.is_empty:
            continue
        count += 1
        extent = extent.union(geometry.envelope)
    sample = sample_entries(entries, max(1, sample_size), seed=seed)
    if sample:
        mean_vertices = sum(g.num_points for _, g in sample) / len(sample)
        mean_area = sum(g.envelope.area for _, g in sample) / len(sample)
        point_fraction = sum(
            1 for _, g in sample if isinstance(g, Point)
        ) / len(sample)
    else:
        mean_vertices = mean_area = point_fraction = 0.0
    return TableStats(
        count=count,
        extent=extent,
        mean_vertices=mean_vertices,
        mean_envelope_area=mean_area,
        point_fraction=point_fraction,
        sample=tuple(sample),
    )


@dataclass(frozen=True)
class JoinStats:
    """Both sides of a join plus cross-sample selectivity estimates."""

    left: TableStats
    right: TableStats
    # Expected number of build (right) envelopes intersecting an average
    # probe (left) envelope, after radius expansion — the filter phase's
    # per-probe candidate count.
    candidates_per_probe: float
    radius: float = 0.0

    @property
    def estimated_pairs(self) -> float:
        """Expected candidate pairs surviving the filter phase."""
        return self.left.count * self.candidates_per_probe

    def to_info(self) -> dict:
        return {
            "left": self.left.to_info(),
            "right": self.right.to_info(),
            "candidates_per_probe": round(self.candidates_per_probe, 4),
            "estimated_pairs": int(self.estimated_pairs),
        }


def collect_join_stats(
    left: Sequence[tuple[Any, Geometry]],
    right: Sequence[tuple[Any, Geometry]],
    radius: float = 0.0,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 17,
) -> JoinStats:
    """Sample both inputs and estimate filter-phase selectivity.

    The candidate estimate cross-tests the two samples' envelopes
    (``O(sample^2)`` with a small cap), then rescales by the build side's
    sampling fraction — cheap, and unbiased enough for plan choice.
    """
    left_stats = collect_table_stats(left, sample_size, seed=seed)
    right_stats = collect_table_stats(right, sample_size, seed=seed + 1)
    probe_sample = left_stats.sample[:64]
    build_sample = right_stats.sample[:256]
    candidates = 0.0
    if probe_sample and build_sample and right_stats.count:
        build_envelopes = [
            g.envelope.expand_by(radius) for _, g in build_sample
        ]
        hits = 0
        for _, probe_geometry in probe_sample:
            probe_envelope = probe_geometry.envelope
            hits += sum(
                1 for env in build_envelopes if env.intersects(probe_envelope)
            )
        per_probe_in_sample = hits / len(probe_sample)
        candidates = per_probe_in_sample * right_stats.count / len(build_sample)
    return JoinStats(
        left=left_stats,
        right=right_stats,
        candidates_per_probe=candidates,
        radius=radius,
    )


@dataclass
class TileHistogram:
    """Per-tile row counts and estimated cost under a partitioning."""

    partitioning: SpatialPartitioning
    left_counts: list[float]
    right_counts: list[float]
    seconds: list[float]

    def __len__(self) -> int:
        return len(self.partitioning)

    @property
    def median_seconds(self) -> float:
        if not self.seconds:
            return 0.0
        ordered = sorted(self.seconds)
        return ordered[len(ordered) // 2]

    @property
    def max_seconds(self) -> float:
        return max(self.seconds, default=0.0)

    def hot_tiles(self, skew_factor: float) -> list[int]:
        """Indices of tiles whose estimated cost exceeds
        ``skew_factor x median`` (LocationSpark's hot-partition test)."""
        threshold = self.skew_threshold(skew_factor)
        return [i for i, s in enumerate(self.seconds) if s > threshold]

    def skew_threshold(self, skew_factor: float) -> float:
        # The median alone collapses to ~0 when most tiles are empty;
        # anchoring on the mean as well keeps the test meaningful there.
        baseline = max(
            self.median_seconds,
            sum(self.seconds) / len(self.seconds) if self.seconds else 0.0,
        )
        return skew_factor * baseline


def tile_histogram(
    partitioning: SpatialPartitioning,
    stats: JoinStats,
    cost_model: CostModel | None = None,
    engine: str = "fast",
) -> TileHistogram:
    """Estimate per-tile task seconds from the join's samples.

    Each sampled row is routed exactly like the real join routes full
    rows (multi-assignment to every overlapping tile), counts are scaled
    to full-table cardinalities, and per-tile cost is the CostModel dot
    product of estimated build + probe + refine units — the same formula
    the engines charge for real work, applied to estimates.
    """
    model = cost_model or CostModel()
    tiles = len(partitioning)
    left_counts = [0.0] * tiles
    right_counts = [0.0] * tiles
    left_sample = stats.left.sample
    right_sample = stats.right.sample
    left_scale = stats.left.count / len(left_sample) if left_sample else 0.0
    right_scale = stats.right.count / len(right_sample) if right_sample else 0.0
    for _, geometry in left_sample:
        for tile in partitioning.route(geometry.envelope):
            left_counts[tile] += left_scale
    for _, geometry in right_sample:
        for tile in partitioning.route(geometry.envelope.expand_by(stats.radius)):
            right_counts[tile] += right_scale
    seconds = [
        estimate_tile_seconds(
            left_counts[i], right_counts[i], stats, model, engine=engine
        )
        for i in range(tiles)
    ]
    return TileHistogram(partitioning, left_counts, right_counts, seconds)


def estimate_tile_seconds(
    left_rows: float,
    right_rows: float,
    stats: JoinStats,
    model: CostModel,
    engine: str = "fast",
) -> float:
    """Estimated seconds to index ``right_rows`` and probe ``left_rows``.

    Candidates per probe stay at the *global* estimate: spatial
    partitioning co-locates a probe with its candidates, so a tile holding
    only a fraction of the build rows still holds (nearly) all of the
    candidates of the probes routed to it.
    """
    if left_rows <= 0.0 or right_rows <= 0.0:
        return 0.0
    candidates = stats.candidates_per_probe
    units = probe_units(
        left_rows, right_rows, candidates, stats.right.mean_vertices, engine
    )
    units[Resource.INDEX_BUILD] = right_rows
    return model.task_seconds(units)


def probe_units(
    probes: float,
    indexed_rows: float,
    candidates_per_probe: float,
    build_vertices: float,
    engine: str = "fast",
) -> dict[str, float]:
    """Estimated filter+refine resource units for ``probes`` lookups
    against an R-tree of ``indexed_rows`` entries."""
    descent = math.log(max(indexed_rows, 2.0), 10) + 1.0
    visits = probes * (descent + 1.5 * candidates_per_probe)
    refine_vertices = probes * candidates_per_probe * max(build_vertices, 2.0)
    units: dict[str, float] = {
        Resource.INDEX_VISIT: visits,
        Resource.ROWS_OUT: probes * candidates_per_probe * 0.5,
    }
    if engine == "slow":
        units[Resource.REFINE_VERTEX_SLOW] = refine_vertices
        units[Resource.REFINE_ALLOC] = refine_vertices
    else:
        units[Resource.REFINE_VERTEX_FAST] = refine_vertices
    return units
