"""Statistics-driven spatial-join optimization.

The paper attributes ISP-MC's stragglers to *static* scheduling over
skewed spatial data and SpatialSpark's edge to dynamic placement — but
choosing the join strategy (broadcast vs partitioned vs dual-tree) and
the tile layout was still manual.  This package closes that gap the way
LocationSpark does (see PAPERS.md): cheap reservoir/stratified samples of
both inputs feed per-table statistics and per-tile histograms, a cost
formula calibrated against the simulated cluster picks the cheapest plan,
and hot tiles whose estimated cost exceeds ``skew_factor x median`` are
recursively split before task generation.

* :mod:`repro.optimizer.sampler` — deterministic reservoir and stratified
  sampling over (id, geometry) collections;
* :mod:`repro.optimizer.stats` — :class:`TableStats`, :class:`JoinStats`
  and per-tile histograms, all derived from samples plus the existing
  :class:`~repro.cluster.model.CostModel`;
* :mod:`repro.optimizer.planner` — :func:`choose_plan` over ``broadcast``
  / ``partitioned`` / ``dual-tree`` / ``naive``, plus the
  LocationSpark-style :func:`split_hot_tiles` repartitioner;
* :mod:`repro.optimizer.calibration` — the persistent
  estimate-vs-actual feedback log that ``EXPLAIN ANALYZE`` appends to
  and :func:`choose_plan` consults (recorded, never auto-applied).
"""

from repro.optimizer.calibration import CalibrationLog, CalibrationRecord
from repro.optimizer.planner import (
    PlanChoice,
    choose_plan,
    derive_skew_aware_partitioning,
    estimate_plan_costs,
    estimate_plan_terms,
    predicted_makespans,
    split_hot_tiles,
)
from repro.optimizer.sampler import reservoir_sample, stratified_sample
from repro.optimizer.stats import (
    JoinStats,
    TableStats,
    TileHistogram,
    collect_join_stats,
)

__all__ = [
    "CalibrationLog",
    "CalibrationRecord",
    "PlanChoice",
    "choose_plan",
    "derive_skew_aware_partitioning",
    "estimate_plan_costs",
    "estimate_plan_terms",
    "predicted_makespans",
    "split_hot_tiles",
    "reservoir_sample",
    "stratified_sample",
    "TableStats",
    "JoinStats",
    "TileHistogram",
    "collect_join_stats",
]
