"""Synthetic WWF terrestrial ecoregions (the paper's ``wwf`` dataset).

The real layer has 14,458 polygons with 4,028,622 vertices — about 279
vertices per polygon, and it is those high vertex counts that make
G10M-wwf the most refinement-heavy experiment in the paper.  The
generator produces star-shaped "ecoregion" blobs with a configurable mean
vertex count: blob centres sit on a jittered world grid with spacing
chosen so blobs never overlap; the boundary radius is a low-order Fourier
wiggle, giving realistic crinkly coastline-like outlines.

The blobs do not tessellate the world (real ecoregions only cover land),
so some occurrences match no region — exactly as in the paper's join.
"""

from __future__ import annotations

import math
import random

from repro.data.gbif import WORLD_EXTENT
from repro.data.synthetic import SyntheticDataset
from repro.errors import ReproError
from repro.geometry.envelope import Envelope
from repro.geometry.multi import MultiPolygon
from repro.geometry.polygon import Polygon

__all__ = ["generate_wwf"]


def generate_wwf(
    count: int,
    seed: int = 20150405,
    extent: Envelope = WORLD_EXTENT,
    mean_vertices: int = 279,
    parts_per_region: int = 3,
    spread: float = 1.6,
) -> SyntheticDataset:
    """Generate ``count`` multipart ecoregion records.

    Real ecoregions are MultiPolygons — a region's islands and exclaves
    scatter widely, so a record's MBB is much larger than its area and
    neighbouring MBBs overlap heavily.  That MBB slack is what makes the
    G10M-wwf join *filter-loose and refinement-heavy*: many candidate
    regions per occurrence, each refined against ~279 crinkly vertices.

    Each record gets ``parts_per_region`` Fourier-wiggle blobs scattered
    within ``spread`` grid cells of its home cell, totalling about
    ``mean_vertices`` vertices.
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    if mean_vertices < 8 * parts_per_region:
        raise ReproError(
            f"mean_vertices must be >= {8 * parts_per_region}, got {mean_vertices}"
        )
    if parts_per_region < 1:
        raise ReproError(f"parts_per_region must be >= 1, got {parts_per_region}")
    rng = random.Random(seed)
    aspect = extent.width / extent.height
    ny = max(1, round(math.sqrt(count / aspect)))
    nx = max(1, math.ceil(count / ny))
    cell_w = extent.width / nx
    cell_h = extent.height / ny
    blob_radius = 0.5 * min(cell_w, cell_h) / 1.6
    records = []
    region_id = 0
    for row in range(ny):
        for col in range(nx):
            if region_id >= count:
                break
            home_x = extent.min_x + (col + 0.5) * cell_w
            home_y = extent.min_y + (row + 0.5) * cell_h
            parts = []
            for _ in range(parts_per_region):
                cx = home_x + rng.uniform(-spread, spread) * cell_w
                cy = home_y + rng.uniform(-spread, spread) * cell_h
                cx = min(max(cx, extent.min_x + blob_radius), extent.max_x - blob_radius)
                cy = min(max(cy, extent.min_y + blob_radius), extent.max_y - blob_radius)
                per_part = mean_vertices // parts_per_region
                n = max(8, per_part + rng.randint(-per_part // 5, per_part // 5))
                radius = blob_radius * rng.uniform(0.6, 1.0)
                harmonics = [
                    (k, rng.uniform(0.05, 0.30 / k), rng.uniform(0.0, 2 * math.pi))
                    for k in range(2, 6)
                ]
                ring = []
                for i in range(n):
                    theta = 2.0 * math.pi * i / n
                    wiggle = sum(a * math.sin(k * theta + p) for k, a, p in harmonics)
                    r = radius * max(0.3, 1.0 + wiggle)
                    ring.append((cx + r * math.cos(theta), cy + r * math.sin(theta)))
                ring.append(ring[0])
                parts.append(Polygon(ring))
            records.append((region_id, MultiPolygon(parts)))
            region_id += 1
    return SyntheticDataset(
        name="wwf",
        records=records,
        extent=extent,
        description=(
            "Synthetic ecoregions: scattered Fourier-wiggle MultiPolygons, "
            f"~{mean_vertices} vertices/record "
            "(stands in for 14,458 real WWF ecoregions)"
        ),
        metadata={"seed": seed, "nx": nx, "ny": ny, "parts": parts_per_region},
    )
