"""Synthetic NYC taxi pickup points (the paper's ``taxi`` dataset).

The real dataset holds ~170 million pickup locations concentrated in
Manhattan with a diffuse outer-borough background.  The generator
reproduces that signature: a shared city extent with a dense elongated
core cluster plus several secondary hubs (airports, downtown Brooklyn),
at any scale.
"""

from __future__ import annotations

import random

from repro.data.synthetic import SyntheticDataset, cluster_mixture_points
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point

__all__ = ["NYC_EXTENT", "generate_taxi"]

# A synthetic "NYC" in projected feet-like units, ~30 x 30 miles.
NYC_EXTENT = Envelope(0.0, 0.0, 160_000.0, 160_000.0)

# (x, y, sigma, weight-proxy): a dense Manhattan-like spine plus hubs.
_HUBS = [
    (70_000.0, 95_000.0, 6_000.0),   # midtown
    (68_000.0, 80_000.0, 5_000.0),   # downtown
    (72_000.0, 110_000.0, 7_000.0),  # uptown
    (105_000.0, 60_000.0, 9_000.0),  # airport A
    (130_000.0, 95_000.0, 10_000.0), # airport B
    (85_000.0, 70_000.0, 8_000.0),   # brooklyn core
]


def generate_taxi(
    count: int,
    seed: int = 20150401,
    extent: Envelope = NYC_EXTENT,
    background_fraction: float = 0.12,
) -> SyntheticDataset:
    """Generate ``count`` pickup points with NYC-like spatial skew."""
    rng = random.Random(seed)
    coordinates = cluster_mixture_points(
        rng, count, extent, _HUBS, background_fraction
    )
    records = [(i, Point(x, y)) for i, (x, y) in enumerate(coordinates)]
    return SyntheticDataset(
        name="taxi",
        records=records,
        extent=extent,
        description=(
            "Synthetic NYC taxi pickups: Manhattan-spine Gaussian mixture "
            "plus uniform background (stands in for ~170M real pickups)"
        ),
        metadata={"seed": seed, "background_fraction": background_fraction},
    )
