"""Synthetic taxi trajectories — the paper's last future-work data type.

The conclusion names "apply[ing] similar designs to other non-relational
data types, such as trajectory data" as future work.  A trajectory here
is a timestamped polyline: the trip's path through the street grid plus
per-vertex epoch seconds.  Spatially it behaves as a LineString, so every
join plan in :mod:`repro.core` works on trajectories unchanged (their
envelope filters, their refinement runs through the non-point fallbacks);
the timestamps enable the time-window filtering the example shows.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.data.synthetic import SyntheticDataset
from repro.data.taxi import NYC_EXTENT, _HUBS
from repro.errors import ReproError
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString

__all__ = ["Trajectory", "generate_trajectories"]


@dataclass(frozen=True)
class Trajectory:
    """A trip: a path with one epoch timestamp per vertex."""

    trip_id: int
    path: LineString
    timestamps: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.timestamps) != self.path.num_points:
            raise ReproError(
                f"trajectory {self.trip_id}: {len(self.timestamps)} timestamps "
                f"for {self.path.num_points} vertices"
            )
        if any(b < a for a, b in zip(self.timestamps, self.timestamps[1:])):
            raise ReproError(f"trajectory {self.trip_id}: timestamps not monotone")

    @property
    def start_time(self) -> float:
        return self.timestamps[0]

    @property
    def end_time(self) -> float:
        return self.timestamps[-1]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def mean_speed(self) -> float:
        """Path length over duration (0 for instantaneous trips)."""
        if self.duration <= 0.0:
            return 0.0
        return self.path.length() / self.duration

    def active_during(self, t_start: float, t_end: float) -> bool:
        """True when the trip overlaps the time window [t_start, t_end]."""
        return self.start_time <= t_end and t_start <= self.end_time

    def position_at(self, t: float) -> tuple[float, float]:
        """Linearly interpolated position at time ``t`` (clamped)."""
        ts = self.timestamps
        coords = self.path.coords
        if t <= ts[0]:
            return (float(coords[0, 0]), float(coords[0, 1]))
        if t >= ts[-1]:
            return (float(coords[-1, 0]), float(coords[-1, 1]))
        for i in range(len(ts) - 1):
            if ts[i] <= t <= ts[i + 1]:
                span = ts[i + 1] - ts[i]
                frac = 0.0 if span == 0 else (t - ts[i]) / span
                x = coords[i, 0] + frac * (coords[i + 1, 0] - coords[i, 0])
                y = coords[i, 1] + frac * (coords[i + 1, 1] - coords[i, 1])
                return (float(x), float(y))
        raise ReproError("unreachable: t inside range but no segment found")


def generate_trajectories(
    count: int,
    seed: int = 20150406,
    extent: Envelope = NYC_EXTENT,
    mean_vertices: int = 8,
    day_seconds: float = 86_400.0,
    mean_speed: float = 20.0,
) -> tuple[list[Trajectory], SyntheticDataset]:
    """Generate taxi-like trajectories plus their LineString dataset view.

    Trips start near a hub and random-walk with hub-biased drift; start
    times spread over one day with rush-hour peaks.  Returns the
    trajectory objects and a :class:`SyntheticDataset` of their paths so
    the existing join machinery and HDFS writers apply directly.
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    if mean_vertices < 2:
        raise ReproError(f"mean_vertices must be >= 2, got {mean_vertices}")
    rng = random.Random(seed)
    trajectories: list[Trajectory] = []
    records = []
    step = extent.width / 150.0
    for trip_id in range(count):
        hub_x, hub_y, sigma = _HUBS[rng.randrange(len(_HUBS))]
        x = min(max(rng.gauss(hub_x, sigma), extent.min_x), extent.max_x)
        y = min(max(rng.gauss(hub_y, sigma), extent.min_y), extent.max_y)
        dest_x, dest_y, _ = _HUBS[rng.randrange(len(_HUBS))]
        n = max(2, mean_vertices + rng.randint(-2, 3))
        coords = [(x, y)]
        for _ in range(n - 1):
            # Drift toward the destination hub with noise.
            dx = dest_x - x
            dy = dest_y - y
            norm = math.hypot(dx, dy) or 1.0
            x += step * (dx / norm) + rng.gauss(0, step * 0.4)
            y += step * (dy / norm) + rng.gauss(0, step * 0.4)
            x = min(max(x, extent.min_x), extent.max_x)
            y = min(max(y, extent.min_y), extent.max_y)
            coords.append((x, y))
        path = LineString(coords)
        # Rush-hour mixture: morning and evening peaks plus background.
        roll = rng.random()
        if roll < 0.35:
            start = rng.gauss(8.5 * 3600, 3600)
        elif roll < 0.70:
            start = rng.gauss(18.0 * 3600, 4500)
        else:
            start = rng.uniform(0, day_seconds)
        start = min(max(start, 0.0), day_seconds)
        timestamps = [start]
        for (x1, y1), (x2, y2) in zip(coords[:-1], coords[1:]):
            hop = math.hypot(x2 - x1, y2 - y1) / max(
                rng.gauss(mean_speed, mean_speed * 0.2), mean_speed * 0.3
            )
            timestamps.append(timestamps[-1] + hop)
        trajectory = Trajectory(trip_id, path, tuple(timestamps))
        trajectories.append(trajectory)
        records.append((trip_id, path))
    dataset = SyntheticDataset(
        name="trips",
        records=records,
        extent=extent,
        description="Synthetic taxi trajectories (timestamped polylines)",
        metadata={"seed": seed, "mean_vertices": mean_vertices},
    )
    return trajectories, dataset
