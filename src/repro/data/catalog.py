"""Named dataset registry with benchmark scale presets.

The paper's datasets are far too large to regenerate verbatim (170M taxi
points, 6.9 GB of WKT); the registry exposes each dataset at a chosen
*scale factor* while preserving the paper's relative proportions:

===========  ================  ===================  =====================
dataset      paper size        generator            size at scale s
===========  ================  ===================  =====================
taxi         ~170 M points     ``generate_taxi``    170_000 * s points
nycb         ~40 K polygons    ``generate_nycb``    ~400 * s polygons
lion         ~200 K polylines  ``generate_lion``    2_000 * s polylines
g10m         ~10 M points      ``generate_gbif``    10_000 * s points
wwf          14,458 polygons   ``generate_wwf``     ~145 * s polygons
===========  ================  ===================  =====================

``s = 1000`` would reproduce the paper's absolute sizes; benches default
to ``s = 0.1``–``1`` so a laptop regenerates every table in minutes.  The
left:right row-count ratios and per-polygon vertex counts — the knobs
that drive the paper's relative results — are preserved at every scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.gbif import generate_gbif
from repro.data.hotspot import generate_hotspot
from repro.data.lion import generate_lion
from repro.data.nycb import generate_nycb
from repro.data.synthetic import SyntheticDataset
from repro.data.taxi import generate_taxi
from repro.data.wwf import generate_wwf
from repro.errors import ReproError

__all__ = ["DatasetSpec", "load_dataset", "DATASETS"]


@dataclass(frozen=True)
class DatasetSpec:
    """How to materialise one named dataset at a given scale.

    ``scale_exponent`` controls how record counts shrink with scale:
    linear (1.0) for datasets whose join behaviour depends only on the
    left:right row ratio, sub-linear (0.5) for the world-extent datasets
    where the behaviour to preserve is *candidate density* — how many
    region MBBs overlap an occurrence — which a linear shrink of the
    region count would destroy.
    """

    name: str
    base_count: int  # records at scale factor 1.0
    paper_count: str
    kind: str  # point | polygon | polyline
    paper_size: float = 0.0  # record count in the paper's dataset
    scale_exponent: float = 1.0

    def count_at(self, scale: float) -> int:
        if scale <= 0:
            raise ReproError(f"scale must be positive, got {scale}")
        return max(1, math.ceil(self.base_count * scale**self.scale_exponent))

    def representativity(self, scale: float) -> float:
        """Real records each synthetic record stands for at this scale."""
        return self.paper_size / self.count_at(scale)


DATASETS = {
    "taxi": DatasetSpec("taxi", 170_000, "~170M points", "point", 170e6),
    "nycb": DatasetSpec("nycb", 400, "~40K polygons", "polygon", 40e3),
    "lion": DatasetSpec("lion", 2_000, "~200K polylines", "polyline", 200e3),
    "g10m": DatasetSpec(
        "g10m", 10_000, "~10M points", "point", 10e6, scale_exponent=0.5
    ),
    "wwf": DatasetSpec(
        "wwf", 145, "14,458 polygons", "polygon", 14_458, scale_exponent=0.5
    ),
    # Not from the paper: the skewed-synthetic stress workload for the
    # optimizer's hot-tile splitting (sized like taxi so the same scale
    # knob applies).
    "hotspot": DatasetSpec("hotspot", 170_000, "(synthetic)", "point", 170e6),
}

_GENERATORS = {
    "hotspot": generate_hotspot,
    "taxi": generate_taxi,
    "nycb": generate_nycb,
    "lion": generate_lion,
    "g10m": generate_gbif,
    "wwf": generate_wwf,
}

_CACHE: dict[tuple[str, float], SyntheticDataset] = {}


def load_dataset(name: str, scale: float = 1.0, cache: bool = True) -> SyntheticDataset:
    """Materialise a named dataset at ``scale`` (deterministic).

    Results are memoised per (name, scale) because benchmarks reuse the
    same datasets across engines and cluster sizes.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    key = (name, scale)
    if cache and key in _CACHE:
        return _CACHE[key]
    dataset = _GENERATORS[name](spec.count_at(scale))
    if cache:
        _CACHE[key] = dataset
    return dataset
