"""Synthetic GBIF species occurrences (the paper's ``G10M`` dataset).

The real extract holds ~10 million (latitude, longitude) occurrence
records, heavily clustered on biodiversity survey hotspots.  The
generator samples a hotspot mixture over a world-like extent in degrees.
"""

from __future__ import annotations

import random

from repro.data.synthetic import SyntheticDataset, cluster_mixture_points
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point

__all__ = ["WORLD_EXTENT", "generate_gbif"]

WORLD_EXTENT = Envelope(-180.0, -90.0, 180.0, 90.0)

# Hotspots loosely modelled on where occurrence data actually concentrates
# (Western Europe, North America, Costa Rica, Australia, southern Africa,
# southeast Asia): (lon, lat, sigma).
_HOTSPOTS = [
    (5.0, 50.0, 8.0),
    (-95.0, 40.0, 12.0),
    (-84.0, 10.0, 4.0),
    (147.0, -30.0, 9.0),
    (25.0, -28.0, 6.0),
    (105.0, 12.0, 8.0),
    (-60.0, -10.0, 10.0),
]


def generate_gbif(
    count: int,
    seed: int = 20150404,
    extent: Envelope = WORLD_EXTENT,
    background_fraction: float = 0.15,
    centers: list[tuple[float, float, float]] | None = None,
) -> SyntheticDataset:
    """Generate ``count`` occurrence points with hotspot clustering.

    ``centers`` overrides the default hotspot list with explicit
    (x, y, sigma) triples; the G10M-wwf benchmark workload passes
    ecoregion centroids here so occurrences actually fall on "land"
    (inside regions), as the real GBIF data does.
    """
    rng = random.Random(seed)
    coordinates = cluster_mixture_points(
        rng, count, extent, centers or _HOTSPOTS, background_fraction
    )
    records = [(i, Point(x, y)) for i, (x, y) in enumerate(coordinates)]
    return SyntheticDataset(
        name="g10m",
        records=records,
        extent=extent,
        description=(
            "Synthetic GBIF occurrences: biodiversity-hotspot mixture "
            "(stands in for ~10M real occurrence records)"
        ),
        metadata={"seed": seed, "background_fraction": background_fraction},
    )
