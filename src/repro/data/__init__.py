"""Synthetic stand-ins for the paper's evaluation datasets."""

from repro.data.catalog import DATASETS, DatasetSpec, load_dataset
from repro.data.gbif import WORLD_EXTENT, generate_gbif
from repro.data.lion import generate_lion
from repro.data.nycb import generate_nycb
from repro.data.synthetic import SyntheticDataset, cluster_mixture_points
from repro.data.taxi import NYC_EXTENT, generate_taxi
from repro.data.trajectory import Trajectory, generate_trajectories
from repro.data.wwf import generate_wwf

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "SyntheticDataset",
    "cluster_mixture_points",
    "generate_taxi",
    "generate_nycb",
    "generate_lion",
    "generate_gbif",
    "generate_wwf",
    "Trajectory",
    "generate_trajectories",
    "NYC_EXTENT",
    "WORLD_EXTENT",
]
