"""Synthetic NYC street-network polylines (the paper's ``lion`` dataset).

The real LION layer has ~200 thousand street segments.  The generator
lays a jittered Manhattan-style street grid over the city extent — denser
near the taxi hubs, sparser outside — each street a short polyline of a
few slightly-wobbly vertices, matching the per-feature vertex counts that
drive NearestD refinement cost.
"""

from __future__ import annotations

import random

from repro.data.synthetic import SyntheticDataset
from repro.data.taxi import NYC_EXTENT
from repro.errors import ReproError
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString

__all__ = ["generate_lion"]


def generate_lion(
    count: int,
    seed: int = 20150403,
    extent: Envelope = NYC_EXTENT,
    mean_vertices: int = 5,
) -> SyntheticDataset:
    """Generate ``count`` street polylines on a jittered grid.

    Streets alternate horizontal/vertical; each is subdivided into
    ``mean_vertices``-ish points with a small perpendicular wobble.
    Street lengths are one "block row/column" so features are short,
    like real LION segments.
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    if mean_vertices < 2:
        raise ReproError(f"mean_vertices must be >= 2, got {mean_vertices}")
    rng = random.Random(seed)
    records = []
    # Grid granularity chosen so the expected number of segments covers
    # `count`: a g x g grid has ~2*g*g one-block segments.
    grid = max(2, int((count / 2.0) ** 0.5) + 1)
    step_x = extent.width / grid
    step_y = extent.height / grid
    street_id = 0
    # Street density follows the city's activity centres (the real LION
    # network is far denser in Manhattan than Staten Island): half the
    # streets are drawn from the same hub mixture that drives taxi
    # pickups, the rest uniformly.  The resulting spatial cost skew is
    # what the NearestD joins' static schedules trip over.
    from repro.data.taxi import _HUBS

    positions = []
    while len(positions) < count:
        if rng.random() < 0.5:
            hub_x, hub_y, sigma = _HUBS[rng.randrange(len(_HUBS))]
            x = rng.gauss(hub_x, 2.0 * sigma)
            y = rng.gauss(hub_y, 2.0 * sigma)
            c = min(max(int((x - extent.min_x) / step_x), 0), grid - 1)
            r = min(max(int((y - extent.min_y) / step_y), 0), grid - 1)
        else:
            r = rng.randrange(grid)
            c = rng.randrange(grid)
        # A cell may hold several parallel streets at different offsets —
        # that multiplicity is the density skew.
        positions.append((r, c, rng.random() < 0.5))
    for r, c, horizontal in positions:
        if horizontal:
            x0 = extent.min_x + c * step_x
            y0 = extent.min_y + r * step_y + rng.uniform(0.0, step_y)
            x1 = x0 + step_x
            y1 = y0
        else:
            x0 = extent.min_x + c * step_x + rng.uniform(0.0, step_x)
            y0 = extent.min_y + r * step_y
            x1 = x0
            y1 = y0 + step_y
        n = max(2, mean_vertices + rng.randint(-1, 2))
        wobble = 0.02 * (step_x if horizontal else step_y)
        coords = []
        for k in range(n):
            t = k / (n - 1)
            x = x0 + t * (x1 - x0)
            y = y0 + t * (y1 - y0)
            if 0 < k < n - 1:
                if horizontal:
                    y += rng.uniform(-wobble, wobble)
                else:
                    x += rng.uniform(-wobble, wobble)
            coords.append((x, y))
        records.append((street_id, LineString(coords)))
        street_id += 1
    return SyntheticDataset(
        name="lion",
        records=records,
        extent=extent,
        description=(
            "Synthetic street network: jittered grid polylines "
            "(stands in for ~200K real LION segments)"
        ),
        metadata={"seed": seed, "grid": grid},
    )
