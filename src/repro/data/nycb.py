"""Synthetic NYC census blocks (the paper's ``nycb`` dataset).

The real layer has ~40 thousand small polygons averaging ~9 vertices that
tessellate the city.  The generator builds a jittered-grid tessellation:
grid corner points are displaced deterministically, and each cell's edges
gain optional midpoints so the average vertex count lands near the
target.  Cells share corners, so the tessellation is gap- and
overlap-free — a taxi pickup falls in exactly one block (or on a shared
boundary).
"""

from __future__ import annotations

import math
import random

from repro.data.synthetic import SyntheticDataset
from repro.data.taxi import NYC_EXTENT
from repro.errors import ReproError
from repro.geometry.envelope import Envelope
from repro.geometry.polygon import Polygon

__all__ = ["generate_nycb"]


def generate_nycb(
    count: int,
    seed: int = 20150402,
    extent: Envelope = NYC_EXTENT,
    target_mean_vertices: float = 9.0,
    jitter: float = 0.28,
) -> SyntheticDataset:
    """Generate ~``count`` tessellating block polygons.

    ``count`` is rounded to the nearest full grid (nx*ny); ``jitter`` is
    the corner displacement as a fraction of cell size (kept < 0.5 so
    cells stay simple polygons).
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    if not 0.0 <= jitter < 0.5:
        raise ReproError(f"jitter must be in [0, 0.5), got {jitter}")
    rng = random.Random(seed)
    aspect = extent.width / extent.height
    ny = max(1, round(math.sqrt(count / aspect)))
    nx = max(1, round(count / ny))
    cell_w = extent.width / nx
    cell_h = extent.height / ny
    # Shared jittered grid corners: interior corners move, border corners
    # stay put so the tessellation exactly covers the extent.
    corners: list[list[tuple[float, float]]] = []
    for row in range(ny + 1):
        corner_row = []
        for col in range(nx + 1):
            x = extent.min_x + col * cell_w
            y = extent.min_y + row * cell_h
            if 0 < col < nx:
                x += rng.uniform(-jitter, jitter) * cell_w
            if 0 < row < ny:
                y += rng.uniform(-jitter, jitter) * cell_h
            corner_row.append((x, y))
        corners.append(corner_row)
    # Shared edge midpoints: generated once per edge so neighbours agree.
    # Each edge gets extra vertices with a probability tuned to hit the
    # target mean (a closed quad ring stores 5 vertices; each midpoint on
    # each of 4 edges adds 1).
    extra_needed = max(0.0, target_mean_vertices - 5.0)
    midpoint_prob = min(1.0, extra_needed / 4.0)
    h_mids: dict[tuple[int, int], list[tuple[float, float]]] = {}
    v_mids: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for row in range(ny + 1):
        for col in range(nx):
            # Border edges stay straight so the tessellation covers the
            # extent exactly (an inward dent would orphan border points).
            on_border = row in (0, ny)
            h_mids[(row, col)] = _edge_midpoints(
                rng, corners[row][col], corners[row][col + 1], midpoint_prob,
                displace=not on_border,
            )
    for row in range(ny):
        for col in range(nx + 1):
            on_border = col in (0, nx)
            v_mids[(row, col)] = _edge_midpoints(
                rng, corners[row][col], corners[row + 1][col], midpoint_prob,
                displace=not on_border,
            )
    records = []
    block_id = 0
    for row in range(ny):
        for col in range(nx):
            ring: list[tuple[float, float]] = []
            ring.append(corners[row][col])
            ring.extend(h_mids[(row, col)])
            ring.append(corners[row][col + 1])
            ring.extend(v_mids[(row, col + 1)])
            ring.append(corners[row + 1][col + 1])
            ring.extend(reversed(h_mids[(row + 1, col)]))
            ring.append(corners[row + 1][col])
            ring.extend(reversed(v_mids[(row, col)]))
            ring.append(corners[row][col])
            records.append((block_id, Polygon(ring)))
            block_id += 1
    return SyntheticDataset(
        name="nycb",
        records=records,
        extent=extent,
        description=(
            "Synthetic census blocks: jittered-grid tessellation, "
            f"~{target_mean_vertices:.0f} vertices/polygon "
            "(stands in for ~40K real census blocks)"
        ),
        metadata={"seed": seed, "nx": nx, "ny": ny},
    )


def _edge_midpoints(
    rng: random.Random,
    a: tuple[float, float],
    b: tuple[float, float],
    probability: float,
    displace: bool = True,
) -> list[tuple[float, float]]:
    """0 or 1 slightly-displaced midpoints along the edge a->b.

    Displacement is perpendicular and small (3% of edge length) so the
    tessellation stays simple; both adjacent cells receive the same list
    (one traverses it reversed), keeping edges shared exactly.  Border
    edges pass ``displace=False``: they gain the vertex (for the vertex-
    count target) but stay collinear with the extent boundary.
    """
    if rng.random() >= probability:
        return []
    mx = (a[0] + b[0]) / 2.0
    my = (a[1] + b[1]) / 2.0
    if not displace:
        return [(mx, my)]
    dx = b[0] - a[0]
    dy = b[1] - a[1]
    length = math.hypot(dx, dy)
    if length == 0.0:
        return []
    offset = rng.uniform(-0.03, 0.03) * length
    return [(mx - dy / length * offset, my + dx / length * offset)]
