"""Synthetic hotspot points: an adversarially skewed workload.

The paper's taxi generator is Manhattan-clustered but still spreads mass
over half a dozen hubs; this dataset is the stress case for static
scheduling — almost all points packed into three *tight* Gaussian spots
in one quadrant of the city, with only a whisper of uniform background.
Under a fixed tile grid, the spot tiles cost orders of magnitude more
than the rest, which is exactly the situation the optimizer's hot-tile
splitting (LocationSpark-style) and the paper's Section V.B straggler
analysis are about.
"""

from __future__ import annotations

import random

from repro.data.synthetic import SyntheticDataset, cluster_mixture_points
from repro.data.taxi import NYC_EXTENT
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point

__all__ = ["generate_hotspot"]

# Three tight spots in the lower-left quadrant; sigma ~1.5% of the extent.
_SPOTS = [
    (30_000.0, 30_000.0, 2_500.0),
    (52_000.0, 44_000.0, 2_000.0),
    (38_000.0, 62_000.0, 3_000.0),
]


def generate_hotspot(
    count: int,
    seed: int = 20150403,
    extent: Envelope = NYC_EXTENT,
    background_fraction: float = 0.03,
) -> SyntheticDataset:
    """Generate ``count`` extremely clustered points on the NYC extent."""
    rng = random.Random(seed)
    coordinates = cluster_mixture_points(
        rng, count, extent, _SPOTS, background_fraction
    )
    records = [(i, Point(x, y)) for i, (x, y) in enumerate(coordinates)]
    return SyntheticDataset(
        name="hotspot",
        records=records,
        extent=extent,
        description=(
            "Adversarially skewed pickups: three tight Gaussian hotspots "
            "plus 3% background — the straggler stress case"
        ),
        metadata={"seed": seed, "background_fraction": background_fraction},
    )
