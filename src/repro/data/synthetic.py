"""Shared helpers for the synthetic dataset generators.

Every generator is deterministic given its seed and scale, emits
(id, geometry) pairs, and can serialise itself to an HDFS WKT text file in
exactly the layout the paper uses (tab-separated ``id<TAB>WKT``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.hdfs import SimulatedHDFS, write_text

__all__ = ["SyntheticDataset", "cluster_mixture_points"]


@dataclass
class SyntheticDataset:
    """A named collection of (id, geometry) records."""

    name: str
    records: list[tuple[int, Geometry]]
    extent: Envelope
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[tuple[int, Geometry]]:
        return iter(self.records)

    @property
    def geometries(self) -> list[Geometry]:
        return [geometry for _, geometry in self.records]

    def total_vertices(self) -> int:
        """Sum of vertex counts (the paper reports these per dataset)."""
        return sum(geometry.num_points for _, geometry in self.records)

    def mean_vertices(self) -> float:
        """Average vertices per record (~9 for nycb, ~279 for wwf)."""
        if not self.records:
            return 0.0
        return self.total_vertices() / len(self.records)

    def to_lines(self, precision: int = 6, separator: str = "\t") -> Iterator[str]:
        """Serialise records as ``id<sep>WKT`` lines."""
        from repro.geometry.wkt import dumps

        for record_id, geometry in self.records:
            yield f"{record_id}{separator}{dumps(geometry, precision=precision)}"

    def write_to_hdfs(
        self,
        hdfs: SimulatedHDFS,
        path: str,
        precision: int = 6,
        separator: str = "\t",
    ) -> int:
        """Write the dataset to an HDFS text file; returns the byte size."""
        return write_text(hdfs, path, list(self.to_lines(precision, separator)))

    def write_wkb_to_hdfs(
        self, hdfs: SimulatedHDFS, path: str, page_size: int = 4096
    ) -> int:
        """Write the dataset as a paged binary WKB record file.

        Record ids become positional (record i = id i), matching how the
        WKB reader pairs records with ``zipWithIndex``.  Pages are the
        split granularity, so they default small (4 KiB, like SequenceFile
        sync intervals) — large pages would starve the cluster of tasks.
        """
        from repro.geometry.wkb import dumps as wkb_dumps
        from repro.hdfs import write_records

        return write_records(
            hdfs,
            path,
            (wkb_dumps(geometry) for _, geometry in self.records),
            page_size=page_size,
        )


def cluster_mixture_points(
    rng: random.Random,
    count: int,
    extent: Envelope,
    centers: list[tuple[float, float, float]],
    background_fraction: float = 0.1,
) -> list[tuple[float, float]]:
    """Sample points from a Gaussian-mixture-plus-uniform model.

    ``centers`` holds (x, y, sigma) triples; ``background_fraction`` of
    points are uniform over the extent (the paper's taxi pickups are
    heavily Manhattan-clustered with a diffuse borough background, GBIF
    occurrences cluster on survey hotspots).  Samples falling outside the
    extent are clamped to it, preserving the cluster skew at the borders.
    """
    if not centers:
        raise ReproError("need at least one cluster center")
    if not 0.0 <= background_fraction <= 1.0:
        raise ReproError(f"background_fraction must be in [0,1], got {background_fraction}")
    points = []
    for _ in range(count):
        if rng.random() < background_fraction:
            x = rng.uniform(extent.min_x, extent.max_x)
            y = rng.uniform(extent.min_y, extent.max_y)
        else:
            cx, cy, sigma = centers[rng.randrange(len(centers))]
            x = rng.gauss(cx, sigma)
            y = rng.gauss(cy, sigma)
            x = min(max(x, extent.min_x), extent.max_x)
            y = min(max(y, extent.min_y), extent.max_y)
        points.append((x, y))
    return points
