"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometry construction or unsupported geometric operation."""


class WKTParseError(GeometryError):
    """Malformed Well-Known Text input.

    Carries the byte offset where parsing failed so callers (e.g. the
    HDFS text scanners, which must tolerate dirty rows like the paper's
    ``Try(new WKTReader().read(...)).isSuccess`` filter) can report
    precise positions.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class WKBParseError(GeometryError):
    """Malformed Well-Known Binary input."""


class SpatialIndexError(ReproError):
    """Spatial index construction or query failure.

    Formerly exported as ``IndexError_`` (an underscore hack to avoid
    shadowing the ``IndexError`` builtin).  The alias went through a
    deprecation cycle and has been removed; importing it now raises
    with a pointer at this class.
    """


class HDFSError(ReproError):
    """Simulated-HDFS failure (missing path, bad block, replica loss)."""


class SparkError(ReproError):
    """Mini-Spark job, stage or task failure."""


class ImpalaError(ReproError):
    """Mini-Impala frontend or backend failure."""


class SQLParseError(ImpalaError):
    """Malformed SQL submitted to the Impala frontend."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at token offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ImpalaError):
    """Logical or physical planning failure (unknown table, bad predicate)."""


class OptimizerError(ReproError):
    """Statistics collection or plan-selection failure."""


class BenchError(ReproError):
    """Benchmark-harness misconfiguration."""


def __getattr__(name: str):
    if name == "IndexError_":
        raise AttributeError(
            "repro.errors.IndexError_ was removed after its deprecation "
            "cycle; catch repro.errors.SpatialIndexError instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
