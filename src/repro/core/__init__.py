"""The paper's contribution: spatial joins on Spark and Impala substrates."""

from repro.core.api import JoinConfig, JoinResult, spatial_join, spatial_join_pairs
from repro.core.broadcast_join import (
    BroadcastSpatialJoin,
    broadcast_spatial_join,
    read_geometry_pairs,
    read_geometry_pairs_wkb,
)
from repro.core.isp import SpatialJoinNode, build_spatial_index
from repro.core.knn_join import broadcast_knn_join, knn_join
from repro.core.operators import SpatialOperator
from repro.core.partitioned_join import derive_partitioning, partitioned_spatial_join
from repro.core.probe import BroadcastIndex, naive_spatial_join, refine_pair
from repro.core.standalone import StandaloneResult, standalone_spatial_join

__all__ = [
    "spatial_join",
    "spatial_join_pairs",
    "JoinConfig",
    "JoinResult",
    "broadcast_spatial_join",
    "BroadcastSpatialJoin",
    "read_geometry_pairs",
    "read_geometry_pairs_wkb",
    "partitioned_spatial_join",
    "derive_partitioning",
    "SpatialOperator",
    "BroadcastIndex",
    "naive_spatial_join",
    "refine_pair",
    "knn_join",
    "broadcast_knn_join",
    "SpatialJoinNode",
    "build_spatial_index",
    "StandaloneResult",
    "standalone_spatial_join",
]
