"""SpatialSpark's partitioned spatial join.

The broadcast join requires the build side to fit on one node; when both
sides are large, SpatialSpark (like SpatialHadoop and HadoopGIS, Section
II) spatially partitions *both* sides, co-locates overlapping partitions
with a shuffle, and runs an indexed join inside each tile.  Duplicate
pairs — possible because right-side objects are replicated to every tile
they overlap — are suppressed with the standard reference-point rule.
"""

from __future__ import annotations

from typing import Any

from repro.cache import estimate_index_bytes, fingerprint_entries
from repro.cluster.model import Resource
from repro.columnar.column import GeometryColumn
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.index.partitioner import SortTilePartitioner, SpatialPartitioning
from repro.obs.registry import REGISTRY
from repro.obs.tracer import get_tracer
from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.spark.taskcontext import current_task

__all__ = ["partitioned_spatial_join", "derive_partitioning"]


def derive_partitioning(
    left: RDD[tuple[Any, Geometry]],
    num_tiles: int,
    sample_fraction: float = 0.05,
    right: RDD[tuple[Any, Geometry]] | None = None,
    radius: float = 0.0,
    cost_model=None,
    skew_factor: float | None = None,
) -> SpatialPartitioning:
    """Sample the left side's centroids and build a sort-tile partitioning.

    Sampling the *probe* side equalises per-tile probe work, which is the
    dominant cost for the paper's point-heavy workloads.

    With ``right`` and ``skew_factor`` given, the layout additionally runs
    the optimizer's LocationSpark-style refinement: per-tile costs are
    estimated from both samples and hot tiles (cost above ``skew_factor x
    median``) are recursively split before any task is formed, which is
    what flattens the straggler tail of clustered workloads.
    """
    left_sample = left.sample(sample_fraction).collect()
    if not left_sample:
        left_sample = left.take(1000)
    if not left_sample:
        raise ReproError("cannot partition an empty left side")
    if right is not None and skew_factor is not None:
        from repro.optimizer import collect_join_stats
        from repro.optimizer.planner import derive_skew_aware_partitioning

        right_sample = right.sample(sample_fraction).collect()
        if not right_sample:
            right_sample = right.take(1000)
        if right_sample:
            # Sample-sized counts keep per-tile estimates *relatively*
            # correct, which is all hot-tile detection needs.
            stats = collect_join_stats(left_sample, right_sample, radius=radius)
            partitioning, _, _ = derive_skew_aware_partitioning(
                stats, num_tiles, cost_model, skew_factor=skew_factor
            )
            return partitioning
    sample_pairs = [g.envelope.center for _, g in left_sample]
    min_x = min(p[0] for p in sample_pairs)
    min_y = min(p[1] for p in sample_pairs)
    max_x = max(p[0] for p in sample_pairs)
    max_y = max(p[1] for p in sample_pairs)
    pad_x = max((max_x - min_x) * 0.05, 1e-9)
    pad_y = max((max_y - min_y) * 0.05, 1e-9)
    extent = Envelope(min_x - pad_x, min_y - pad_y, max_x + pad_x, max_y + pad_y)
    return SortTilePartitioner(num_tiles).partition(extent, sample_pairs)


def partitioned_spatial_join(
    sc: SparkContext,
    left: RDD[tuple[Any, Geometry]],
    right: RDD[tuple[Any, Geometry]],
    operator: SpatialOperator,
    radius: float = 0.0,
    num_tiles: int | None = None,
    engine: str = "fast",
    partitioning: SpatialPartitioning | None = None,
    skew_factor: float | None = 2.0,
    batch_refine: bool = True,
) -> RDD[tuple[Any, Any]]:
    """Join two (id, geometry) RDDs via spatial partitioning + shuffle.

    Returns matching (left_id, right_id) pairs, exactly the broadcast
    join's output (tests assert the two plans agree).  Unless an explicit
    ``partitioning`` is supplied, the tile layout is skew-aware by
    default: hot tiles are split per ``skew_factor`` (pass ``None`` to
    restore the plain sort-tile layout).  ``batch_refine`` (default on)
    switches each tile task to the columnar bulk-probe/batch-kernel path;
    results and accrued counters are identical either way.
    """
    if operator.needs_radius and radius <= 0.0:
        raise ReproError(f"{operator} requires a positive radius")
    if partitioning is None:
        with get_tracer().span("derive-partitioning", category="phase") as span:
            partitioning = derive_partitioning(
                left,
                num_tiles or sc.cluster.total_cores,
                right=right,
                radius=radius if operator.needs_radius else 0.0,
                cost_model=sc.cost_model,
                skew_factor=skew_factor,
            )
            span.set_attr("tiles", len(partitioning))
    tiles = partitioning
    sc.record_plan(
        {
            "join": "partitioned",
            "tiles": len(tiles),
            "skew_factor": skew_factor if skew_factor is not None else "off",
        }
    )
    expand = radius if operator.needs_radius else 0.0

    def route_left(pair: tuple[Any, Geometry]):
        left_id, geometry = pair
        if geometry.is_empty:
            return []
        return [
            (tile, (left_id, geometry)) for tile in tiles.route(geometry.envelope)
        ]

    def route_right(pair: tuple[Any, Geometry]):
        right_id, geometry = pair
        if geometry.is_empty:
            return []
        return [
            (tile, (right_id, geometry))
            for tile in tiles.route(geometry.envelope.expand_by(expand))
        ]

    left_routed = left.flat_map(route_left)
    right_routed = right.flat_map(route_right)
    grouped = left_routed.cogroup(
        right_routed, num_partitions=max(1, len(tiles))
    )

    cache = sc.cache
    use_columnar = getattr(sc.runtime, "columnar", False)

    def join_tile(entry):
        tile_id, (left_entries, right_entries) = entry
        if not left_entries or not right_entries:
            REGISTRY.inc("partitioned.tiles_empty")
            return []
        REGISTRY.inc("partitioned.tiles_joined")
        # Payload = the whole (id, geometry) pair so duplicate suppression
        # can re-route the matched geometry.  The per-tile index is reused
        # through the cross-query cache when a repeated query routes the
        # same content to the same tile; INDEX_BUILD is charged either
        # way, so the simulated cluster cannot tell (pooled workers see a
        # fork-inherited snapshot of the cache — hits there save worker
        # wall-clock, and their puts die with the worker process).
        index = None
        tile_key = None
        if cache is not None:
            tile_key = fingerprint_entries(
                ((pair, pair[1]) for pair in right_entries),
                "spark-tile-index", operator.value, float(radius), engine,
            )
            index = cache.get(tile_key, "spark-tile-index")
        if index is None:
            column = (
                GeometryColumn.from_entries(
                    (pair, pair[1]) for pair in right_entries
                )
                if use_columnar
                else None
            )
            if column is not None:
                index = BroadcastIndex.from_column(
                    column, operator, radius=radius, engine=engine
                )
            else:
                index = BroadcastIndex(
                    ((pair, pair[1]) for pair in right_entries),
                    operator,
                    radius=radius,
                    engine=engine,
                )
            if cache is not None:
                cache.put(
                    tile_key, "spark-tile-index", index,
                    size_bytes=estimate_index_bytes(index),
                    build_cost=sum(index.build_cost_units().values()),
                )
        task = current_task()
        task.add(Resource.INDEX_BUILD, len(index))
        if batch_refine:
            left_column = (
                GeometryColumn.from_entries(left_entries) if use_columnar else None
            )
            matches_per_row, totals = index.probe_batch(
                left_column
                if left_column is not None
                else (geometry for _, geometry in left_entries)
            )
            for resource, amount in totals.items():
                task.add(resource, amount)
        else:
            matches_per_row = None
        results = []
        for row, (left_id, geometry) in enumerate(left_entries):
            if matches_per_row is not None:
                matches = matches_per_row[row]
            else:
                matches, units = index.probe_with_cost(geometry)
                for resource, amount in units.items():
                    task.add(resource, amount)
            left_tiles = None
            for right_id, right_geometry in matches:
                # Owner rule: a replicated pair is produced in every tile
                # both sides reach; only the lowest-indexed common tile
                # emits it, so results carry no duplicates and lose no pair.
                if left_tiles is None:
                    left_tiles = tiles.route(geometry.envelope)
                if len(left_tiles) == 1:
                    owner = left_tiles[0]
                else:
                    right_tiles = tiles.route(
                        right_geometry.envelope.expand_by(expand)
                    )
                    common = set(left_tiles) & set(right_tiles)
                    owner = min(common) if common else tile_id
                if owner == tile_id:
                    results.append((left_id, right_id))
        return results

    return grouped.flat_map(join_tile)
