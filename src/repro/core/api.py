"""High-level spatial-join API.

Most users don't want to stand up a (mini-)cluster; this module joins
in-memory collections directly with the same filter+refine machinery the
engines use.  Geometries may be given as objects or WKT strings.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex, naive_spatial_join
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.wkt import loads as wkt_loads

__all__ = ["spatial_join", "spatial_join_pairs"]


def _normalise(
    entries: Iterable[tuple[Any, Geometry | str]]
) -> list[tuple[Any, Geometry]]:
    normalised = []
    for payload, geometry in entries:
        if isinstance(geometry, str):
            geometry = wkt_loads(geometry)
        if not isinstance(geometry, Geometry):
            raise ReproError(
                f"expected Geometry or WKT string, got {type(geometry).__name__}"
            )
        normalised.append((payload, geometry))
    return normalised


def spatial_join(
    left: Iterable[tuple[Any, Geometry | str]],
    right: Iterable[tuple[Any, Geometry | str]],
    operator: SpatialOperator | str = SpatialOperator.WITHIN,
    radius: float = 0.0,
    engine: str = "fast",
    method: str = "index",
) -> list[tuple[Any, Any]]:
    """Join two (id, geometry) collections; returns matching id pairs.

    ``operator`` accepts a :class:`SpatialOperator` or its name
    (``"within"``, ``"nearestd"``, ``"intersects"``, ``"contains"``).
    ``method="index"`` runs the indexed filter+refine plan (the paper's
    approach); ``method="naive"`` runs the O(n*m) nested loop, useful as
    ground truth in tests.

    Example::

        >>> from repro import spatial_join
        >>> pairs = spatial_join(
        ...     [(0, "POINT (1 1)"), (1, "POINT (9 9)")],
        ...     [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")],
        ... )
        >>> pairs
        [(0, 'cell')]
    """
    if isinstance(operator, str):
        try:
            operator = SpatialOperator(operator.lower())
        except ValueError:
            raise ReproError(f"unknown operator {operator!r}") from None
    left_entries = _normalise(left)
    right_entries = _normalise(right)
    if method == "naive":
        return naive_spatial_join(left_entries, right_entries, operator, radius)
    if method == "dual-tree":
        return _dual_tree_join(left_entries, right_entries, operator, radius, engine)
    if method != "index":
        raise ReproError(
            f"method must be 'index', 'dual-tree' or 'naive', got {method!r}"
        )
    index = BroadcastIndex(right_entries, operator, radius=radius, engine=engine)
    pairs: list[tuple[Any, Any]] = []
    for left_id, geometry in left_entries:
        pairs.extend((left_id, right_id) for right_id in index.probe(geometry))
    return pairs


def _dual_tree_join(
    left_entries: list,
    right_entries: list,
    operator: SpatialOperator,
    radius: float,
    engine: str,
) -> list:
    """Filter with a synchronized R-tree join (both sides indexed), then
    refine.  Section II's 'both can be indexed' option — it beats the
    probe-per-row plan when the left side is also large and indexable.
    """
    from repro.core.probe import refine_pair
    from repro.geometry.engine import create_engine
    from repro.index.rtree import STRtree

    engine_obj = create_engine(engine)
    expand = radius if operator.needs_radius else 0.0
    left_tree = STRtree(
        ((left_id, geometry), geometry.envelope)
        for left_id, geometry in left_entries
        if not geometry.is_empty
    )
    right_tree = STRtree(
        ((right_id, geometry, engine_obj.prepare(geometry)), geometry.envelope)
        for right_id, geometry in right_entries
        if not geometry.is_empty
    )
    pairs = []
    for (left_id, left_geom), (right_id, right_geom, handle) in left_tree.join(
        right_tree, expand=expand
    ):
        if refine_pair(engine_obj, operator, left_geom, right_geom, handle, radius):
            pairs.append((left_id, right_id))
    return pairs


def spatial_join_pairs(
    left_geometries: Sequence[Geometry | str],
    right_geometries: Sequence[Geometry | str],
    operator: SpatialOperator | str = SpatialOperator.WITHIN,
    radius: float = 0.0,
    engine: str = "fast",
) -> list[tuple[int, int]]:
    """Positional variant: ids are the sequences' indexes."""
    left = list(enumerate(left_geometries))
    right = list(enumerate(right_geometries))
    return spatial_join(left, right, operator, radius=radius, engine=engine)
