"""High-level spatial-join API.

Most users don't want to stand up a (mini-)cluster; this module joins
in-memory collections directly with the same filter+refine machinery the
engines use.  Geometries may be given as objects or WKT strings.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.cluster.metrics import QueryMetrics, StageMetrics, TaskMetrics
from repro.cluster.model import CostModel, Resource
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex, naive_spatial_join
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.wkt import loads as wkt_loads
from repro.obs.tracer import get_tracer

__all__ = ["spatial_join", "spatial_join_pairs"]


def _normalise(
    entries: Iterable[tuple[Any, Geometry | str]],
    metrics: TaskMetrics | None = None,
) -> list[tuple[Any, Geometry]]:
    normalised = []
    for payload, geometry in entries:
        if isinstance(geometry, str):
            if metrics is not None:
                metrics.add(Resource.WKT_BYTES, float(len(geometry)))
            geometry = wkt_loads(geometry)
        if not isinstance(geometry, Geometry):
            raise ReproError(
                f"expected Geometry or WKT string, got {type(geometry).__name__}"
            )
        normalised.append((payload, geometry))
    return normalised


def spatial_join(
    left: Iterable[tuple[Any, Geometry | str]],
    right: Iterable[tuple[Any, Geometry | str]],
    operator: SpatialOperator | str = SpatialOperator.WITHIN,
    radius: float = 0.0,
    engine: str = "fast",
    method: str = "index",
    profile: bool = False,
    cost_model: CostModel | None = None,
):
    """Join two (id, geometry) collections; returns matching id pairs.

    ``operator`` accepts a :class:`SpatialOperator` or its name
    (``"within"``, ``"nearestd"``, ``"intersects"``, ``"contains"``).
    ``method="index"`` runs the indexed filter+refine plan (the paper's
    approach); ``method="naive"`` runs the O(n*m) nested loop, useful as
    ground truth in tests.

    With ``profile=True`` (indexed plan only) the call instead returns
    ``(pairs, profile)`` where ``profile`` is a
    :class:`~repro.obs.profile.QueryProfile` whose parse/build/probe
    phases carry the run's resource counters and sum exactly to the
    attached :class:`~repro.cluster.metrics.QueryMetrics`'s
    ``simulated_seconds``.

    Example::

        >>> from repro import spatial_join
        >>> pairs = spatial_join(
        ...     [(0, "POINT (1 1)"), (1, "POINT (9 9)")],
        ...     [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")],
        ... )
        >>> pairs
        [(0, 'cell')]
    """
    if isinstance(operator, str):
        try:
            operator = SpatialOperator(operator.lower())
        except ValueError:
            raise ReproError(f"unknown operator {operator!r}") from None
    if profile:
        if method != "index":
            raise ReproError("profile=True requires method='index'")
        return _profiled_spatial_join(
            left, right, operator, radius, engine, cost_model
        )
    left_entries = _normalise(left)
    right_entries = _normalise(right)
    if method == "naive":
        return naive_spatial_join(left_entries, right_entries, operator, radius)
    if method == "dual-tree":
        return _dual_tree_join(left_entries, right_entries, operator, radius, engine)
    if method != "index":
        raise ReproError(
            f"method must be 'index', 'dual-tree' or 'naive', got {method!r}"
        )
    index = BroadcastIndex(right_entries, operator, radius=radius, engine=engine)
    pairs: list[tuple[Any, Any]] = []
    for left_id, geometry in left_entries:
        pairs.extend((left_id, right_id) for right_id in index.probe(geometry))
    return pairs


def _profiled_spatial_join(
    left: Iterable[tuple[Any, Geometry | str]],
    right: Iterable[tuple[Any, Geometry | str]],
    operator: SpatialOperator,
    radius: float,
    engine: str,
    cost_model: CostModel | None,
):
    """The indexed join with per-phase metrics and a profile tree.

    Each phase (parse, build, probe) accrues its own
    :class:`TaskMetrics` and becomes a single-task stage of a
    :class:`QueryMetrics`, so the profile's phase breakdown is the
    query's simulated runtime, exactly partitioned.
    """
    model = cost_model or CostModel()
    tracer = get_tracer()
    query = QueryMetrics(name="spatial-join")

    def add_stage(name: str, task: TaskMetrics) -> None:
        stage = StageMetrics(name=name, tasks=[task])
        stage.makespan_seconds = task.seconds(model)
        query.add_stage(stage)

    parse_metrics = TaskMetrics()
    with tracer.span("parse", category="phase") as span:
        left_entries = _normalise(left, metrics=parse_metrics)
        right_entries = _normalise(right, metrics=parse_metrics)
        span.add_sim(parse_metrics.seconds(model))
    add_stage("parse", parse_metrics)

    build_metrics = TaskMetrics()
    with tracer.span("build", category="phase") as span:
        index = BroadcastIndex(right_entries, operator, radius=radius, engine=engine)
        for resource, amount in index.build_cost_units().items():
            build_metrics.add(resource, amount)
        span.add_sim(build_metrics.seconds(model))
        span.set_attr("index_entries", len(index))
    add_stage("build", build_metrics)

    probe_metrics = TaskMetrics()
    pairs: list[tuple[Any, Any]] = []
    with tracer.span("probe", category="phase") as span:
        for left_id, geometry in left_entries:
            matches, units = index.probe_with_cost(geometry)
            for resource, amount in units.items():
                probe_metrics.add(resource, amount)
            pairs.extend((left_id, right_id) for right_id in matches)
        span.add_sim(probe_metrics.seconds(model))
        span.set_attr("rows_out", len(pairs))
    add_stage("probe", probe_metrics)

    return pairs, query.to_profile(model)


def _dual_tree_join(
    left_entries: list,
    right_entries: list,
    operator: SpatialOperator,
    radius: float,
    engine: str,
) -> list:
    """Filter with a synchronized R-tree join (both sides indexed), then
    refine.  Section II's 'both can be indexed' option — it beats the
    probe-per-row plan when the left side is also large and indexable.
    """
    from repro.core.probe import refine_pair
    from repro.geometry.engine import create_engine
    from repro.index.rtree import STRtree

    engine_obj = create_engine(engine)
    expand = radius if operator.needs_radius else 0.0
    left_tree = STRtree(
        ((left_id, geometry), geometry.envelope)
        for left_id, geometry in left_entries
        if not geometry.is_empty
    )
    right_tree = STRtree(
        ((right_id, geometry, engine_obj.prepare(geometry)), geometry.envelope)
        for right_id, geometry in right_entries
        if not geometry.is_empty
    )
    pairs = []
    for (left_id, left_geom), (right_id, right_geom, handle) in left_tree.join(
        right_tree, expand=expand
    ):
        if refine_pair(engine_obj, operator, left_geom, right_geom, handle, radius):
            pairs.append((left_id, right_id))
    return pairs


def spatial_join_pairs(
    left_geometries: Sequence[Geometry | str],
    right_geometries: Sequence[Geometry | str],
    operator: SpatialOperator | str = SpatialOperator.WITHIN,
    radius: float = 0.0,
    engine: str = "fast",
) -> list[tuple[int, int]]:
    """Positional variant: ids are the sequences' indexes."""
    left = list(enumerate(left_geometries))
    right = list(enumerate(right_geometries))
    return spatial_join(left, right, operator, radius=radius, engine=engine)
