"""High-level spatial-join API.

Most users don't want to stand up a (mini-)cluster; this module joins
in-memory collections directly with the same filter+refine machinery the
engines use.  Geometries may be given as objects or WKT strings.

The default ``method="auto"`` samples both inputs and lets
:func:`repro.optimizer.choose_plan` pick the cheapest strategy
(``broadcast`` / ``partitioned`` / ``dual-tree`` / ``naive``); any of the
method names may also be forced explicitly.  Every call returns a
:class:`JoinResult`, which behaves exactly like the list of (left_id,
right_id) pairs older code expects while also carrying the query profile,
the optimizer's :class:`~repro.optimizer.PlanChoice` and the sampled
:class:`~repro.optimizer.JoinStats`.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.cache import (
    cache_for,
    estimate_index_bytes,
    fingerprint_entries,
    fingerprint_rows,
)
from repro.cluster.metrics import QueryMetrics, StageMetrics, TaskMetrics
from repro.cluster.model import CostModel, Resource
from repro.cluster.simulation import simulate_dynamic
from repro.columnar.column import GeometryColumn
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex, naive_spatial_join
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.wkt import loads as wkt_loads
from repro.obs.events import EventLog, get_event_log, install_event_log
from repro.obs.tracer import get_tracer
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import (
    SerialBackend,
    current_worker_id,
    make_pool,
    validate_executors,
)
from repro.runtime.recovery import RecoveryContext, run_recovered
from repro.runtime.shipping import ObsCapture, apply_capture, capture_observability

__all__ = ["spatial_join", "spatial_join_pairs", "JoinConfig", "JoinResult"]

_METHODS = ("auto", "broadcast", "partitioned", "dual-tree", "naive", "index")


@dataclass(frozen=True)
class JoinConfig:
    """All knobs of :func:`spatial_join` as one value.

    Prefer ``spatial_join(left, right, config=JoinConfig(...))`` over the
    loose keyword arguments — the config form always returns a
    :class:`JoinResult`.  (The legacy loose ``profile=True`` call shape,
    which used to return a ``(pairs, profile)`` tuple, completed its
    deprecation cycle and now raises.)

    ``workers`` is the parallelism the optimizer prices parallel plans
    against (and the partitioned method's simulated task slots);
    ``num_tiles``/``skew_factor``/``sample_size`` tune the partitioned
    plan's skew-aware tiling.

    ``batch_refine`` toggles the columnar batch execution path (bulk
    index probes + vectorized refinement kernels); results are identical
    either way.  ``batch_size`` is the row-batch granularity shared with
    the Impala substrate (how many probes each batched kernel dispatch
    covers); it must be positive.

    ``executors`` is the *real*-parallelism knob: ``"serial"`` (default)
    runs everything inline; an int >= 1 dispatches probe chunks / tile
    joins to that many worker processes.  Unlike ``workers`` (which only
    scales the *simulated* task slots), ``executors`` changes wall-clock
    time — and nothing else: results, counters and profiles are
    byte-identical either way.

    ``events_out`` names a JSONL file to receive the structured event log
    (QueryStart / StageSubmitted / TaskStart / TaskEnd / QueryEnd — the
    stream ``python -m repro.bench monitor`` replays).  ``None`` (default)
    keeps the event sink a strict no-op.

    ``runtime`` is the unified execution policy
    (:class:`~repro.runtime.config.RuntimeConfig`: executors, retry /
    backoff / timeout budgets, speculation knobs, an optional
    :class:`~repro.runtime.faults.FaultPlan`, ``events_out``).  Precedence
    rule: an explicit ``runtime`` wins over the loose ``executors`` /
    ``events_out`` fields; when ``runtime`` is ``None`` those fields are
    packed into an implicit one and behave exactly as before.

    ``columnar`` (default on) runs the packed-buffer geometry data plane
    (DESIGN.md §13): bulk column construction, array-sorted STR builds,
    coordinate-buffer probe kernels.  ``columnar=False`` selects the
    object path, which is the byte-identical reference oracle — pairs,
    counters, profiles, simulated seconds and events match exactly either
    way.  An explicit ``runtime`` carries its own ``columnar`` flag, which
    wins (same precedence as ``executors``).

    ``explain`` selects the plan-introspection surface (DESIGN.md §15):
    ``"off"`` (default) adds nothing; ``"plan"`` attaches an estimate-only
    :class:`~repro.obs.explain.ExplainReport` to the result;
    ``"analyze"`` additionally runs the query under full metrics and
    overlays the measured per-operator actuals onto the same tree,
    flagging estimates that are off by more than ``explain_ratio``.
    ``calibration_out`` names a JSONL file that every ANALYZE run appends
    its estimate-vs-actual deltas to (the optimizer's
    :class:`~repro.optimizer.calibration.CalibrationLog`).  All three are
    observers only: pairs, counters, profiles, simulated seconds and
    events are byte-identical whatever their values.
    """

    operator: SpatialOperator | str = SpatialOperator.WITHIN
    radius: float = 0.0
    engine: str = "fast"
    method: str = "auto"
    profile: bool = False
    cost_model: CostModel | None = None
    workers: int = 1
    num_tiles: int | None = None
    skew_factor: float = 2.0
    sample_size: int | None = None
    batch_size: int = 1024
    batch_refine: bool = True
    executors: int | str = "serial"
    events_out: str | None = None
    runtime: RuntimeConfig | None = None
    columnar: bool = True
    explain: str = "off"
    explain_ratio: float = 4.0
    calibration_out: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ReproError(
                f"batch_size must be a positive integer, got {self.batch_size!r}"
            )
        if self.explain not in ("off", "plan", "analyze"):
            raise ReproError(
                f"explain must be 'off', 'plan' or 'analyze', got {self.explain!r}"
            )
        if not self.explain_ratio > 1.0:
            raise ReproError(
                f"explain_ratio must be > 1, got {self.explain_ratio!r}"
            )
        validate_executors(self.executors, what="executors")
        if self.runtime is not None and not isinstance(self.runtime, RuntimeConfig):
            raise ReproError(
                f"runtime must be a RuntimeConfig, got {type(self.runtime).__name__}"
            )
        if not isinstance(self.columnar, bool):
            raise ReproError(f"columnar must be a bool, got {self.columnar!r}")

    def resolved_runtime(self) -> RuntimeConfig:
        """The effective runtime policy (explicit ``runtime`` wins)."""
        if self.runtime is not None:
            return self.runtime
        return RuntimeConfig(
            executors=self.executors,
            events_out=self.events_out,
            columnar=self.columnar,
        )

    def with_(self, **changes) -> "JoinConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class JoinResult(_SequenceABC):
    """The outcome of a spatial join.

    Behaves like the plain ``list[(left_id, right_id)]`` the API used to
    return (iteration, ``len``, indexing, ``==`` against lists), so
    existing callers keep working, while exposing:

    * ``pairs`` — the matching id pairs;
    * ``profile`` — a :class:`~repro.obs.profile.QueryProfile` when the
      join ran with ``profile=True``, else ``None``;
    * ``plan`` — the optimizer's :class:`~repro.optimizer.PlanChoice`
      when ``method="auto"`` chose the strategy, else ``None``;
    * ``stats`` — the sampled :class:`~repro.optimizer.JoinStats` backing
      that choice, else ``None``;
    * ``method`` — the strategy that actually executed;
    * ``explain_report`` — the :class:`~repro.obs.explain.ExplainReport`
      when the join ran with ``explain="plan"`` / ``"analyze"``, else
      ``None``.
    """

    __hash__ = None  # mutable-list semantics, like the list it replaces

    def __init__(
        self,
        pairs: list[tuple[Any, Any]],
        profile=None,
        plan=None,
        stats=None,
        method: str | None = None,
        explain_report=None,
    ):
        self.pairs = pairs
        self.profile = profile
        self.plan = plan
        self.stats = stats
        self.method = method
        self.explain_report = explain_report

    def __getitem__(self, index):
        return self.pairs[index]

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __eq__(self, other) -> bool:
        if isinstance(other, JoinResult):
            return self.pairs == other.pairs
        if isinstance(other, list):
            return self.pairs == other
        if isinstance(other, tuple):
            return tuple(self.pairs) == other
        return NotImplemented

    def __repr__(self) -> str:
        method = f" method={self.method!r}" if self.method else ""
        return f"JoinResult({self.pairs!r}{method})"

    def explain(self) -> str:
        """The optimizer's plan summary (empty string when none)."""
        if self.plan is None:
            return ""
        return "\n".join(self.plan.explain())

    def explain_analyze(self):
        """The estimate-vs-actual :class:`~repro.obs.explain.ExplainReport`.

        Returns the report attached by ``explain="analyze"`` directly.
        Joins that ran with ``profile=True`` but without the analyze knob
        still get a report, lazily built from the query profile (actuals
        and skew only — no per-operator estimates, since the plan was not
        priced operator-by-operator at run time).  Anything else raises
        with guidance.
        """
        if self.explain_report is not None and self.explain_report.mode == "analyze":
            return self.explain_report
        from repro.obs.explain import overlay_profile, report_from_profile

        if self.explain_report is not None and self.profile is not None:
            return overlay_profile(self.explain_report, self.profile)
        if self.profile is not None:
            return report_from_profile(self.profile, method=self.method)
        raise ReproError(
            "explain_analyze() needs measured actuals — run the join with"
            " config=JoinConfig(explain='analyze') (or at least"
            " profile=True) and call it on that result"
        )


def _normalise(
    entries: Iterable[tuple[Any, Geometry | str]],
    metrics: TaskMetrics | None = None,
) -> list[tuple[Any, Geometry]]:
    normalised = []
    for payload, geometry in entries:
        if isinstance(geometry, str):
            if metrics is not None:
                metrics.add(Resource.WKT_BYTES, float(len(geometry)))
            geometry = wkt_loads(geometry)
        if not isinstance(geometry, Geometry):
            raise ReproError(
                f"expected Geometry or WKT string, got {type(geometry).__name__}"
            )
        normalised.append((payload, geometry))
    return normalised


def _normalise_cached(entries, metrics, cache) -> list[tuple[Any, Geometry]]:
    """`_normalise` through the cross-query parsed-column cache.

    The key is a content fingerprint of the *raw* rows (payloads plus WKT
    strings / geometry coordinates), so re-submitting the same table skips
    the WKT parse while a mutated or different table misses.  Counter
    identity: the entry stores the exact ``WKT_BYTES`` total the parse
    accrued, and a hit charges that same total — profiles and simulated
    seconds cannot tell the difference.  Inputs whose payloads the
    fingerprinter does not understand simply bypass the cache.
    """
    if cache is None:
        return _normalise(entries, metrics)
    entries = entries if isinstance(entries, list) else list(entries)
    if not any(isinstance(geometry, str) for _, geometry in entries):
        # Nothing to parse: caching would only add hashing overhead.
        return _normalise(entries, metrics)
    try:
        key = fingerprint_rows(entries, "parsed-column")
    except TypeError:
        return _normalise(entries, metrics)
    cached = cache.get(key, "parsed-column")
    if cached is not None:
        normalised, wkt_chars = cached
        if metrics is not None and wkt_chars:
            metrics.add(Resource.WKT_BYTES, wkt_chars)
        return list(normalised)
    parse_metrics = TaskMetrics()
    normalised = _normalise(entries, parse_metrics)
    wkt_chars = parse_metrics.counts.get(Resource.WKT_BYTES, 0.0)
    if metrics is not None and wkt_chars:
        metrics.add(Resource.WKT_BYTES, wkt_chars)
    cache.put(key, "parsed-column", (normalised, wkt_chars),
              build_cost=float(wkt_chars))
    return list(normalised)


def _broadcast_index_key(right_entries, op, cfg):
    """Cache key for the broadcast build side: dataset + predicate context."""
    return fingerprint_entries(
        right_entries, "broadcast-index", op.value, float(cfg.radius), cfg.engine
    )


def _use_columnar(cfg: JoinConfig) -> bool:
    """The effective ``columnar`` knob (explicit runtime wins)."""
    return cfg.resolved_runtime().columnar


def _make_index(right_entries, op, cfg):
    """One broadcast index, via the columnar bulk path when enabled.

    Both constructors produce byte-identical indexes (tree structure,
    entry order, counters); the column path only changes how the build
    runs (array STR sort, no per-entry envelope walking).
    """
    if _use_columnar(cfg):
        column = GeometryColumn.from_entries(right_entries)
        if column is not None:
            return BroadcastIndex.from_column(
                column, op, radius=cfg.radius, engine=cfg.engine
            )
    return BroadcastIndex(right_entries, op, radius=cfg.radius, engine=cfg.engine)


def _build_broadcast_index(right_entries, op, cfg, cache, key=None):
    """Build the broadcast index, or reuse a cache-resident one.

    A hit returns the very same index object a cold build would have
    produced from equal content — probes charge delta-based units, so
    counters, profiles and pairs are byte-identical either way; only the
    STR-tree construction wall-clock is saved.
    """
    if cache is None:
        return _make_index(right_entries, op, cfg)
    if key is None:
        key = _broadcast_index_key(right_entries, op, cfg)
    index = cache.get(key, "broadcast-index")
    if index is None:
        index = _make_index(right_entries, op, cfg)
        cache.put(key, "broadcast-index", index,
                  size_bytes=estimate_index_bytes(index),
                  build_cost=sum(index.build_cost_units().values()))
    return index


def _coerce_operator(operator: SpatialOperator | str) -> SpatialOperator:
    if isinstance(operator, str):
        try:
            return SpatialOperator(operator.lower())
        except ValueError:
            raise ReproError(f"unknown operator {operator!r}") from None
    return operator


def spatial_join(
    left: Iterable[tuple[Any, Geometry | str]],
    right: Iterable[tuple[Any, Geometry | str]],
    operator: SpatialOperator | str = SpatialOperator.WITHIN,
    radius: float = 0.0,
    engine: str = "fast",
    method: str = "auto",
    profile: bool = False,
    cost_model: CostModel | None = None,
    workers: int = 1,
    executors: int | str = "serial",
    events_out: str | None = None,
    runtime: RuntimeConfig | None = None,
    explain: str = "off",
    config: JoinConfig | None = None,
) -> JoinResult:
    """Join two (id, geometry) collections; returns matching id pairs.

    ``operator`` accepts a :class:`SpatialOperator` or its name
    (``"within"``, ``"nearestd"``, ``"intersects"``, ``"contains"``).
    ``method`` is one of:

    * ``"auto"`` (default) — sample both inputs and run the cheapest plan
      per :func:`repro.optimizer.choose_plan`;
    * ``"broadcast"`` — index the right side, probe with the left (the
      paper's broadcast join; ``"index"`` is the historical alias);
    * ``"partitioned"`` — skew-aware tiled join with reference-point
      duplicate suppression;
    * ``"dual-tree"`` — synchronized traversal of two R-trees;
    * ``"naive"`` — the O(n*m) nested loop, ground truth in tests.

    The returned :class:`JoinResult` compares equal to the plain list of
    pairs older code expects.  With ``config=JoinConfig(profile=True)``
    it carries a :class:`~repro.obs.profile.QueryProfile` whose phases
    hold the run's resource counters.  The historical *loose-keyword*
    ``profile=True`` call (which returned a ``(pairs, profile)`` tuple)
    completed its deprecation cycle and now raises.

    ``runtime`` installs a :class:`~repro.runtime.config.RuntimeConfig`
    (retry / speculation policy, fault plan); it takes precedence over
    the loose ``executors`` / ``events_out`` keywords, and over the same
    fields of ``config`` when both are given.

    Example::

        >>> from repro import spatial_join
        >>> pairs = spatial_join(
        ...     [(0, "POINT (1 1)"), (1, "POINT (9 9)")],
        ...     [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")],
        ... )
        >>> pairs == [(0, 'cell')]
        True
    """
    if config is not None:
        cfg = config
    else:
        if profile:
            raise ReproError(
                "spatial_join(..., profile=True) as a loose keyword used to"
                " return the legacy (pairs, profile) tuple; that shape"
                " completed its deprecation cycle and was removed — pass"
                " config=JoinConfig(profile=True) and read .pairs / .profile"
                " off the returned JoinResult"
            )
        cfg = JoinConfig(
            operator=operator,
            radius=radius,
            engine=engine,
            method=method,
            profile=profile,
            cost_model=cost_model,
            workers=workers,
            executors=executors,
            events_out=events_out,
            explain=explain,
        )
    if runtime is not None:
        cfg = cfg.with_(runtime=runtime)
    return _execute_join(left, right, cfg)


def _execute_join(left, right, cfg: JoinConfig) -> JoinResult:
    """Event-log envelope around :func:`_run_join`.

    With ``events_out`` set, the join owns a JSONL-backed
    :class:`EventLog` for its duration; otherwise the ambient sink (an
    enclosing :func:`~repro.obs.events.logging_events` block, or the
    disabled no-op default) is left in place.
    """
    events_out = cfg.resolved_runtime().events_out
    owned = EventLog(path=events_out) if events_out else None
    try:
        with install_event_log(owned):
            return _run_join(left, right, cfg)
    finally:
        if owned is not None:
            owned.close()


def _run_join(left, right, cfg: JoinConfig) -> JoinResult:
    op = _coerce_operator(cfg.operator)
    if cfg.method not in _METHODS:
        raise ReproError(
            f"method must be one of {', '.join(sorted(set(_METHODS)))},"
            f" got {cfg.method!r}"
        )
    model = cfg.cost_model or CostModel()
    # One recovery context per join call: blacklist state and fault
    # consumption are scoped to the query, like the engines' drivers.
    recovery = RecoveryContext(cfg.resolved_runtime())
    # None unless the runtime opts in via cache_budget_bytes.
    cache = cache_for(cfg.resolved_runtime())
    tracer = get_tracer()
    # Pure observers: nothing below this block changes when explain is on.
    explain_on = cfg.explain != "off"
    raw_wkt = False
    cache_before = None
    if explain_on:
        left = left if isinstance(left, list) else list(left)
        right = right if isinstance(right, list) else list(right)
        raw_wkt = any(isinstance(g, str) for _, g in left) or any(
            isinstance(g, str) for _, g in right
        )
        if cache is not None:
            cache_before = cache.stats.as_dict()
    query = (
        QueryMetrics(name="spatial-join")
        if cfg.profile or cfg.explain == "analyze"
        else None
    )
    log = get_event_log()
    events_query = log.next_id("query") if log.enabled else None
    if events_query is not None:
        log.emit(
            "QueryStart",
            query=events_query,
            name="spatial-join",
            engine="core",
            wall_start=time.perf_counter(),
        )

    if query is not None:
        parse_metrics = TaskMetrics()
        with tracer.span("parse", category="phase") as span:
            left_entries = _normalise_cached(left, parse_metrics, cache)
            right_entries = _normalise_cached(right, parse_metrics, cache)
            span.add_sim(parse_metrics.seconds(model))
        _add_stage(query, "parse", [parse_metrics], model)
    else:
        left_entries = _normalise_cached(left, None, cache)
        right_entries = _normalise_cached(right, None, cache)

    method = "broadcast" if cfg.method == "index" else cfg.method
    plan = None
    stats = None
    bindex_key = None
    if cache is not None:
        bindex_key = _broadcast_index_key(right_entries, op, cfg)
    # Residency of the broadcast build side *at planning time* — a plain
    # containment peek (counts neither hit nor miss), recorded for the
    # explain report before execution can warm the cache.
    explain_resident = (
        explain_on and bindex_key is not None and bindex_key in cache
    )
    if method == "auto":
        from repro.optimizer import choose_plan

        # A cache-resident build side makes broadcast (nearly) free to set
        # up; tell the planner so a warm cache can flip the plan.  The
        # residency peek is a plain containment test — it must not count a
        # hit/miss the subsequent build lookup will count again.
        cached_build = bindex_key is not None and bindex_key in cache
        with tracer.span("plan", category="phase") as span:
            plan = choose_plan(
                left_entries,
                right_entries,
                operator=op,
                radius=cfg.radius,
                cost_model=model,
                workers=cfg.workers,
                num_tiles=cfg.num_tiles,
                skew_factor=cfg.skew_factor,
                engine=cfg.engine,
                sample_size=cfg.sample_size,
                cached_build=cached_build,
            )
            span.set_attr("method", plan.method)
        stats = plan.stats
        method = plan.method

    if method == "naive":
        pairs = _naive_join(left_entries, right_entries, op, cfg, model, query)
    elif method == "broadcast":
        pairs = _broadcast_join(
            left_entries, right_entries, op, cfg, model, query, events_query,
            recovery, cache=cache, cache_key=bindex_key,
        )
    elif method == "dual-tree":
        pairs = _dual_tree_join(left_entries, right_entries, op, cfg, model, query)
    elif method == "partitioned":
        pairs = _partitioned_join_local(
            left_entries, right_entries, op, cfg, model, query, plan, events_query,
            recovery, cache=cache,
        )
    else:  # pragma: no cover - guarded by the _METHODS check above
        raise ReproError(f"unhandled method {method!r}")

    if events_query is not None:
        log.emit(
            "QueryEnd",
            query=events_query,
            name="spatial-join",
            sim_seconds=query.simulated_seconds if query is not None else None,
            rows=len(pairs),
            wall_end=time.perf_counter(),
        )

    profile_obj = None
    if query is not None:
        profile_obj = query.to_profile(model)
        profile_obj.root.info["method"] = method
        if plan is not None:
            profile_obj.root.info["plan_est_seconds"] = plan.estimated_seconds
            if plan.partitioning is not None:
                profile_obj.root.info["plan_tiles"] = len(plan.partitioning)
    report = None
    if explain_on:
        report = _build_explain_report(
            cfg, op, model, plan, method, left_entries, right_entries,
            raw_wkt, cache, bindex_key, explain_resident, cache_before,
            profile_obj,
        )
    return JoinResult(
        pairs=pairs, profile=profile_obj, plan=plan, stats=stats,
        method=method, explain_report=report,
    )


def _build_explain_report(
    cfg, op, model, plan, method, left_entries, right_entries, raw_wkt,
    cache, bindex_key, explain_resident, cache_before, profile_obj,
):
    """Price the executed plan and (for ANALYZE) overlay measured actuals.

    Runs strictly after the join: it reads the already-built profile and
    plan, re-prices via the same deterministic chooser when the caller
    forced a method, and never touches metrics, events or the cache's
    hit/miss counters (residency checks are containment peeks).
    """
    from repro.obs.explain import build_plan_report, overlay_profile

    pricing = plan
    if pricing is None:
        from repro.optimizer import choose_plan

        pricing = choose_plan(
            left_entries,
            right_entries,
            operator=op,
            radius=cfg.radius,
            cost_model=model,
            workers=cfg.workers,
            num_tiles=cfg.num_tiles,
            skew_factor=cfg.skew_factor,
            engine=cfg.engine,
            sample_size=cfg.sample_size,
            cached_build=explain_resident,
        )
    cache_info = {
        "enabled": cache is not None,
        "build_resident": explain_resident,
    }
    if cache is not None and cache_before is not None:
        after = cache.stats.as_dict()
        cache_info["hits_delta"] = after["hits"] - cache_before["hits"]
        cache_info["misses_delta"] = after["misses"] - cache_before["misses"]
        cache_info["residency"] = cache.residency()
    report = build_plan_report(
        pricing,
        method=method if plan is None else None,
        model=model,
        engine=cfg.engine,
        parse_wkt=raw_wkt,
        ratio=cfg.explain_ratio,
        cache_info=cache_info,
    )
    if cfg.explain == "analyze" and profile_obj is not None:
        overlay_profile(report, profile_obj, cache_info=cache_info)
        if cfg.calibration_out:
            from repro.optimizer.calibration import CalibrationLog

            CalibrationLog(cfg.calibration_out).record_report(report)
    return report


def _add_stage(
    query: QueryMetrics,
    name: str,
    tasks: list[TaskMetrics],
    model: CostModel,
    makespan: float | None = None,
) -> None:
    stage = StageMetrics(name=name, tasks=tasks)
    if makespan is None:
        makespan = max((task.seconds(model) for task in tasks), default=0.0)
    stage.makespan_seconds = makespan
    query.add_stage(stage)


def _naive_join(left_entries, right_entries, op, cfg, model, query):
    tracer = get_tracer()
    with tracer.span("join", category="phase") as span:
        pairs = naive_spatial_join(left_entries, right_entries, op, cfg.radius)
        if query is not None:
            join_metrics = TaskMetrics()
            join_metrics.add(
                Resource.INDEX_VISIT,
                float(len(left_entries)) * float(len(right_entries)),
            )
            join_metrics.add(Resource.ROWS_OUT, float(len(pairs)))
            span.add_sim(join_metrics.seconds(model))
            _add_stage(query, "join", [join_metrics], model)
        span.set_attr("rows_out", len(pairs))
    return pairs


def _emit_task_start(log, events_ctx, index, label, partition) -> None:
    query_id, stage_id = events_ctx
    log.emit(
        "TaskStart",
        query=query_id,
        stage=stage_id,
        task=index,
        partition=partition,
        label=label,
        worker=current_worker_id(),
        pid=os.getpid(),
        wall_start=time.perf_counter(),
    )


def _emit_task_end(log, events_ctx, index, label, partition, sim_seconds, counters) -> None:
    query_id, stage_id = events_ctx
    log.emit(
        "TaskEnd",
        query=query_id,
        stage=stage_id,
        task=index,
        partition=partition,
        label=label,
        worker=current_worker_id(),
        pid=os.getpid(),
        wall_end=time.perf_counter(),
        sim_seconds=sim_seconds,
        counters=counters,
        failures=0,
    )


def _totals_seconds(totals, model) -> float:
    """Simulated seconds of one probe chunk's cost-unit totals."""
    task = TaskMetrics()
    for resource, amount in totals.items():
        task.add(resource, amount)
    return task.seconds(model)


def _probe_pool(cfg: JoinConfig, recovery: RecoveryContext | None = None):
    """The probe-chunk pool, or None when the serial path should run.

    Pooled probing needs the batch path (chunks are the task granularity)
    and fork-style closure dispatch (the index rides into workers free).
    With a fault plan active, chunked dispatch *always* runs — a
    :class:`SerialBackend` stands in when no real pool is available — so
    the injection/recovery logic exercises the same code path at every
    executor count.  (Chaos only applies to the chunked paths; the
    row-at-a-time ``batch_refine=False`` loop has no task granularity to
    fault and runs normally.)
    """
    if not cfg.batch_refine:
        return None
    pool = make_pool(cfg.resolved_runtime().executors)
    if pool.is_serial or not pool.supports_closures:
        if recovery is not None and recovery.active:
            return SerialBackend()
        return None
    return pool


def _probe_chunks_pooled(
    pool, index, left_entries, cfg, model=None, events_ctx=None, recovery=None,
    left_column=None,
):
    """Probe ``batch_size`` chunks on the pool; (pairs, totals, capture)
    per chunk.

    Pure fan-out: each task reads the fork-inherited index and its chunk,
    returning the chunk's matching pairs plus its cost-unit totals.  The
    caller consumes the ordered results exactly as the serial chunk loop
    would have produced them.  With the event log on (``events_ctx`` is a
    ``(query, stage)`` pair) the worker frames its chunk in TaskStart /
    TaskEnd and ships the buffered events back in an :class:`ObsCapture`;
    otherwise the capture slot is ``None`` and nothing changes.  With a
    ``left_column`` the probe reads a zero-copy column slice instead of
    the chunk's geometry objects (identical matches and totals).
    """
    starts = list(range(0, len(left_entries), cfg.batch_size))
    chunks = [left_entries[start : start + cfg.batch_size] for start in starts]

    def make_task(task_index, chunk):
        if left_column is not None:
            start = starts[task_index]
            probe_input = left_column.slice(start, start + cfg.batch_size)
        else:
            probe_input = None

        def probe_chunk():
            if probe_input is not None:
                matches_per_row, totals = index.probe_batch(probe_input)
            else:
                matches_per_row, totals = index.probe_batch(g for _, g in chunk)
            chunk_pairs = []
            for (left_id, _), matches in zip(chunk, matches_per_row):
                chunk_pairs.extend((left_id, right_id) for right_id in matches)
            return chunk_pairs, totals

        if events_ctx is None:

            def run_plain():
                chunk_pairs, totals = probe_chunk()
                return chunk_pairs, totals, None

            return run_plain

        def run_with_events():
            capture = ObsCapture()
            with capture_observability(capture):
                log = get_event_log()
                label = f"chunk-{task_index}"
                _emit_task_start(log, events_ctx, task_index, label, task_index)
                chunk_pairs, totals = probe_chunk()
                _emit_task_end(
                    log, events_ctx, task_index, label, task_index,
                    _totals_seconds(totals, model), dict(totals),
                )
            return chunk_pairs, totals, capture

        return run_with_events

    thunks = [make_task(task_index, chunk) for task_index, chunk in enumerate(chunks)]
    if recovery is not None and recovery.active:
        outcomes = run_recovered(
            pool,
            thunks,
            recovery,
            scope="spatial-join:probe",
            events=events_ctx,
            sim_seconds=lambda index_, value: _totals_seconds(value[1], model),
        )
        return [outcome.value for outcome in outcomes]
    return pool.run(thunks)


def _broadcast_join(
    left_entries, right_entries, op, cfg, model, query, events_query=None,
    recovery=None, cache=None, cache_key=None,
):
    """The paper's broadcast join: index the right side, probe with the
    left.  With profiling on, build/probe become exactly-billed stages."""
    tracer = get_tracer()
    pairs: list[tuple[Any, Any]] = []
    pool = _probe_pool(cfg, recovery)
    left_column = None
    if cfg.batch_refine and _use_columnar(cfg):
        # One packed column over the probe side; every chunk below is a
        # zero-copy slice of it.
        left_column = GeometryColumn.from_entries(left_entries)
    log = get_event_log()
    events_ctx = None
    if events_query is not None and log.enabled and cfg.batch_refine:
        num_chunks = (len(left_entries) + cfg.batch_size - 1) // cfg.batch_size
        events_stage = log.next_id("stage")
        log.emit(
            "StageSubmitted",
            query=events_query,
            stage=events_stage,
            name="probe",
            num_tasks=num_chunks,
        )
        events_ctx = (events_query, events_stage)
    if query is None:
        index = _build_broadcast_index(right_entries, op, cfg, cache, cache_key)
        if pool is not None:
            for chunk_pairs, _, capture in _probe_chunks_pooled(
                pool, index, left_entries, cfg, model, events_ctx, recovery,
                left_column=left_column,
            ):
                if capture is not None:
                    apply_capture(capture)
                pairs.extend(chunk_pairs)
        elif cfg.batch_refine:
            for task_index, start in enumerate(
                range(0, len(left_entries), cfg.batch_size)
            ):
                chunk = left_entries[start : start + cfg.batch_size]
                if events_ctx is not None:
                    _emit_task_start(
                        log, events_ctx, task_index, f"chunk-{task_index}", task_index
                    )
                if left_column is not None:
                    matches_per_row, totals = index.probe_batch(
                        left_column.slice(start, start + cfg.batch_size)
                    )
                else:
                    matches_per_row, totals = index.probe_batch(g for _, g in chunk)
                if events_ctx is not None:
                    _emit_task_end(
                        log, events_ctx, task_index, f"chunk-{task_index}", task_index,
                        _totals_seconds(totals, model), dict(totals),
                    )
                for (left_id, _), matches in zip(chunk, matches_per_row):
                    pairs.extend((left_id, right_id) for right_id in matches)
        else:
            for left_id, geometry in left_entries:
                pairs.extend(
                    (left_id, right_id) for right_id in index.probe(geometry)
                )
        return pairs

    build_metrics = TaskMetrics()
    with tracer.span("build", category="phase") as span:
        # The build stage charges index.build_cost_units() whether the
        # index was rebuilt or reused — a warm query simulates the same
        # cluster, it just skips the real STR-tree construction.
        index = _build_broadcast_index(right_entries, op, cfg, cache, cache_key)
        for resource, amount in index.build_cost_units().items():
            build_metrics.add(resource, amount)
        span.add_sim(build_metrics.seconds(model))
        span.set_attr("index_entries", len(index))
    _add_stage(query, "build", [build_metrics], model)

    probe_metrics = TaskMetrics()
    with tracer.span("probe", category="phase") as span:
        if pool is not None:
            for chunk_pairs, totals, capture in _probe_chunks_pooled(
                pool, index, left_entries, cfg, model, events_ctx, recovery,
                left_column=left_column,
            ):
                if capture is not None:
                    apply_capture(capture)
                for resource, amount in totals.items():
                    probe_metrics.add(resource, amount)
                pairs.extend(chunk_pairs)
        elif cfg.batch_refine:
            for task_index, start in enumerate(
                range(0, len(left_entries), cfg.batch_size)
            ):
                chunk = left_entries[start : start + cfg.batch_size]
                if events_ctx is not None:
                    _emit_task_start(
                        log, events_ctx, task_index, f"chunk-{task_index}", task_index
                    )
                if left_column is not None:
                    matches_per_row, totals = index.probe_batch(
                        left_column.slice(start, start + cfg.batch_size)
                    )
                else:
                    matches_per_row, totals = index.probe_batch(g for _, g in chunk)
                if events_ctx is not None:
                    _emit_task_end(
                        log, events_ctx, task_index, f"chunk-{task_index}", task_index,
                        _totals_seconds(totals, model), dict(totals),
                    )
                for resource, amount in totals.items():
                    probe_metrics.add(resource, amount)
                for (left_id, _), matches in zip(chunk, matches_per_row):
                    pairs.extend((left_id, right_id) for right_id in matches)
        else:
            for left_id, geometry in left_entries:
                matches, units = index.probe_with_cost(geometry)
                for resource, amount in units.items():
                    probe_metrics.add(resource, amount)
                pairs.extend((left_id, right_id) for right_id in matches)
        span.add_sim(probe_metrics.seconds(model))
        span.set_attr("rows_out", len(pairs))
    _add_stage(query, "probe", [probe_metrics], model)
    return pairs


def _dual_tree_join(left_entries, right_entries, op, cfg, model, query):
    """Filter with a synchronized R-tree join (both sides indexed), then
    refine.  Section II's 'both can be indexed' option — it beats the
    probe-per-row plan when the left side is also large and indexable.
    """
    from repro.core.probe import refine_pair
    from repro.geometry.engine import create_engine
    from repro.index.rtree import STRtree

    tracer = get_tracer()
    engine_obj = create_engine(cfg.engine)
    expand = cfg.radius if op.needs_radius else 0.0
    build_metrics = TaskMetrics() if query is not None else None
    with tracer.span("build", category="phase"):
        left_tree = STRtree(
            ((left_id, geometry), geometry.envelope)
            for left_id, geometry in left_entries
            if not geometry.is_empty
        )
        right_tree = STRtree(
            ((right_id, geometry, engine_obj.prepare(geometry)), geometry.envelope)
            for right_id, geometry in right_entries
            if not geometry.is_empty
        )
        if build_metrics is not None:
            build_metrics.add(
                Resource.INDEX_BUILD, float(len(left_tree) + len(right_tree))
            )
    if query is not None:
        _add_stage(query, "build", [build_metrics], model)
    pairs = []
    join_metrics = TaskMetrics() if query is not None else None
    with tracer.span("join", category="phase") as span:
        for (left_id, left_geom), (right_id, right_geom, handle) in left_tree.join(
            right_tree, expand=expand
        ):
            if join_metrics is not None:
                join_metrics.add(
                    Resource.REFINE_VERTEX_FAST
                    if cfg.engine != "slow"
                    else Resource.REFINE_VERTEX_SLOW,
                    float(max(right_geom.num_points, 2)),
                )
            if refine_pair(
                engine_obj, op, left_geom, right_geom, handle, cfg.radius
            ):
                pairs.append((left_id, right_id))
        if join_metrics is not None:
            join_metrics.add(Resource.ROWS_OUT, float(len(pairs)))
        span.set_attr("rows_out", len(pairs))
    if query is not None:
        _add_stage(query, "join", [join_metrics], model)
    return pairs


def _record_bytes(geometry: Geometry) -> float:
    return 48.0 + 16.0 * geometry.num_points


def _join_one_tile(
    tile_id, tile_left, tile_right, tiles, op, cfg, task, expand,
    tile_left_column=None, tile_right_column=None,
):
    """Index-join one tile, owner-rule deduped; accrues costs into ``task``.

    This is the partitioned join's task granularity — the unit the
    executors pool fans out — so it must stay free of driver-global side
    effects (it only touches its own ``TaskMetrics``).  The optional tile
    columns are zero-copy slices of the whole-side columns; with them the
    build and probe read packed buffers instead of the per-tile object
    lists (identical pairs and charges).
    """
    if tile_right_column is not None:
        index = BroadcastIndex.from_column(
            tile_right_column, op, radius=cfg.radius, engine=cfg.engine
        )
    else:
        index = BroadcastIndex(
            ((pair, pair[1]) for pair in tile_right),
            op,
            radius=cfg.radius,
            engine=cfg.engine,
        )
    task.add(Resource.INDEX_BUILD, float(len(index)))
    if cfg.batch_refine:
        if tile_left_column is not None:
            matches_per_row, totals = index.probe_batch(tile_left_column)
        else:
            matches_per_row, totals = index.probe_batch(g for _, g in tile_left)
        for resource, amount in totals.items():
            task.add(resource, amount)
    else:
        matches_per_row = None
    tile_pairs: list[tuple[Any, Any]] = []
    for row, (left_id, geometry) in enumerate(tile_left):
        if matches_per_row is not None:
            matches = matches_per_row[row]
        else:
            matches, units = index.probe_with_cost(geometry)
            for resource, amount in units.items():
                task.add(resource, amount)
        left_tiles = None
        for right_id, right_geometry in matches:
            if left_tiles is None:
                left_tiles = tiles.route(geometry.envelope)
            if len(left_tiles) == 1:
                owner = left_tiles[0]
            else:
                right_tiles = tiles.route(
                    right_geometry.envelope.expand_by(expand)
                )
                common = set(left_tiles) & set(right_tiles)
                owner = min(common) if common else tile_id
            if owner == tile_id:
                tile_pairs.append((left_id, right_id))
    return tile_pairs


def _partitioned_join_local(
    left_entries, right_entries, op, cfg, model, query, plan, events_query=None,
    recovery=None, cache=None,
):
    """Skew-aware tiled join over in-memory collections.

    Mirrors :func:`repro.core.partitioned_join.partitioned_spatial_join`:
    both sides are routed to every tile they overlap, each tile runs an
    indexed join, and the reference-point owner rule (lowest common tile
    emits) suppresses the duplicates replication would create.  Tiles come
    from the optimizer's skew-aware partitioner, so hot spots are split
    before tasks are formed.
    """
    from repro.optimizer import collect_join_stats
    from repro.optimizer.planner import derive_skew_aware_partitioning

    tracer = get_tracer()
    expand = cfg.radius if op.needs_radius else 0.0
    partitioning = plan.partitioning if plan is not None else None
    if partitioning is None:
        num_tiles = cfg.num_tiles or max(4, 2 * cfg.workers)
        layout_key = None
        if cache is not None:
            # Both sides shape the sampled stats and the tile layout, so
            # both belong in the key, along with every deriving knob.
            layout_key = fingerprint_entries(
                left_entries, "partition-layout", float(expand),
                num_tiles, float(cfg.skew_factor), cfg.engine,
                cfg.sample_size, fingerprint_entries(right_entries),
            )
            layout = cache.get(layout_key, "partition-layout")
            if layout is not None:
                stats, partitioning = layout
                if not (stats.left.count and stats.right.count):
                    return []
        if partitioning is None:
            sample_kwargs = (
                {"sample_size": cfg.sample_size} if cfg.sample_size else {}
            )
            stats = collect_join_stats(
                left_entries, right_entries, radius=expand, **sample_kwargs
            )
            if not (stats.left.count and stats.right.count):
                if layout_key is not None:
                    cache.put(layout_key, "partition-layout", (stats, None))
                return []
            with tracer.span("derive-partitioning", category="phase") as span:
                partitioning, _, _ = derive_skew_aware_partitioning(
                    stats,
                    num_tiles,
                    model,
                    skew_factor=cfg.skew_factor,
                    engine=cfg.engine,
                )
                span.set_attr("tiles", len(partitioning))
            if layout_key is not None:
                cache.put(
                    layout_key, "partition-layout", (stats, partitioning),
                    build_cost=float(stats.left.count + stats.right.count),
                )
    tiles = partitioning

    shuffle_metrics = TaskMetrics() if query is not None else None
    left_by_tile: dict[int, list] = {}
    right_by_tile: dict[int, list] = {}
    left_column = right_column = None
    left_rows_by_tile: dict[int, list[int]] = {}
    right_rows_by_tile: dict[int, list[int]] = {}
    if cfg.batch_refine and _use_columnar(cfg):
        # Whole-side columns built once; each tile gets zero-copy slices
        # (row-index arrays into the shared buffers) instead of fresh
        # object lists for build and probe.
        left_column = GeometryColumn.from_entries(left_entries)
        right_column = GeometryColumn.from_entries(
            (pair, pair[1]) for pair in right_entries
        )
    with tracer.span("route", category="phase"):
        for row, (left_id, geometry) in enumerate(left_entries):
            if geometry.is_empty:
                continue
            for tile in tiles.route(geometry.envelope):
                left_by_tile.setdefault(tile, []).append((left_id, geometry))
                if left_column is not None:
                    left_rows_by_tile.setdefault(tile, []).append(row)
                if shuffle_metrics is not None:
                    shuffle_metrics.add(
                        Resource.SHUFFLE_BYTES, _record_bytes(geometry)
                    )
        for row, (right_id, geometry) in enumerate(right_entries):
            if geometry.is_empty:
                continue
            for tile in tiles.route(geometry.envelope.expand_by(expand)):
                right_by_tile.setdefault(tile, []).append((right_id, geometry))
                if right_column is not None:
                    right_rows_by_tile.setdefault(tile, []).append(row)
                if shuffle_metrics is not None:
                    shuffle_metrics.add(
                        Resource.SHUFFLE_BYTES, _record_bytes(geometry)
                    )
    if shuffle_metrics is not None:
        _add_stage(query, "shuffle", [shuffle_metrics], model)

    def _tile_columns(tile_id):
        tile_left_column = tile_right_column = None
        if left_column is not None:
            tile_left_column = left_column.take(left_rows_by_tile[tile_id])
        if right_column is not None:
            tile_right_column = right_column.take(right_rows_by_tile[tile_id])
        return tile_left_column, tile_right_column

    pairs: list[tuple[Any, Any]] = []
    tile_tasks: list[TaskMetrics] = []
    joinable = [
        tile_id for tile_id in sorted(left_by_tile) if right_by_tile.get(tile_id)
    ]
    pool = make_pool(cfg.resolved_runtime().executors)
    log = get_event_log()
    events_ctx = None
    if events_query is not None and log.enabled:
        events_stage = log.next_id("stage")
        log.emit(
            "StageSubmitted",
            query=events_query,
            stage=events_stage,
            name="join",
            num_tasks=len(joinable),
        )
        events_ctx = (events_query, events_stage)
    chaos = recovery is not None and recovery.active
    use_pool = not pool.is_serial and pool.supports_closures and len(joinable) > 1
    if chaos and not use_pool:
        # Chaos always routes tile joins through the task-dispatch path,
        # with an inline SerialBackend standing in for a real pool.
        pool = SerialBackend()
        use_pool = True
    with tracer.span("join", category="phase") as span:
        if use_pool:

            def make_tile_task(task_index, tile_id):
                # Slice driver-side so a process pool ships only this
                # tile's buffers, not the whole column, with each task.
                tile_left_column, tile_right_column = _tile_columns(tile_id)

                def join_tile():
                    task = TaskMetrics()
                    tile_pairs = _join_one_tile(
                        tile_id, left_by_tile[tile_id], right_by_tile[tile_id],
                        tiles, op, cfg, task, expand,
                        tile_left_column=tile_left_column,
                        tile_right_column=tile_right_column,
                    )
                    return tile_pairs, task

                if events_ctx is None:

                    def run_plain():
                        tile_pairs, task = join_tile()
                        return tile_pairs, task, None

                    return run_plain

                def run_with_events():
                    capture = ObsCapture()
                    with capture_observability(capture):
                        wlog = get_event_log()
                        label = f"tile-{tile_id}"
                        _emit_task_start(wlog, events_ctx, task_index, label, tile_id)
                        tile_pairs, task = join_tile()
                        _emit_task_end(
                            wlog, events_ctx, task_index, label, tile_id,
                            task.seconds(model), dict(task.counts),
                        )
                    return tile_pairs, task, capture

                return run_with_events

            tile_thunks = [
                make_tile_task(task_index, tile_id)
                for task_index, tile_id in enumerate(joinable)
            ]
            if chaos:
                outcomes = run_recovered(
                    pool,
                    tile_thunks,
                    recovery,
                    scope="spatial-join:join",
                    events=events_ctx,
                    sim_seconds=lambda index_, value: value[1].seconds(model),
                )
                shipments = [outcome.value for outcome in outcomes]
            else:
                shipments = pool.run(tile_thunks)
            for tile_pairs, task, capture in shipments:
                if capture is not None:
                    apply_capture(capture)
                pairs.extend(tile_pairs)
                tile_tasks.append(task)
        else:
            for task_index, tile_id in enumerate(joinable):
                task = TaskMetrics()
                if events_ctx is not None:
                    _emit_task_start(
                        log, events_ctx, task_index, f"tile-{tile_id}", tile_id
                    )
                tile_left_column, tile_right_column = _tile_columns(tile_id)
                pairs.extend(
                    _join_one_tile(
                        tile_id, left_by_tile[tile_id], right_by_tile[tile_id],
                        tiles, op, cfg, task, expand,
                        tile_left_column=tile_left_column,
                        tile_right_column=tile_right_column,
                    )
                )
                if events_ctx is not None:
                    _emit_task_end(
                        log, events_ctx, task_index, f"tile-{tile_id}", tile_id,
                        task.seconds(model), dict(task.counts),
                    )
                tile_tasks.append(task)
        span.set_attr("rows_out", len(pairs))
        span.set_attr("tiles_joined", len(tile_tasks))
    if query is not None and tile_tasks:
        makespan = simulate_dynamic(
            [task.seconds(model) for task in tile_tasks], max(1, cfg.workers)
        )
        _add_stage(query, "join", tile_tasks, model, makespan=makespan)
    return pairs


def spatial_join_pairs(
    left_geometries: Sequence[Geometry | str],
    right_geometries: Sequence[Geometry | str],
    operator: SpatialOperator | str = SpatialOperator.WITHIN,
    radius: float = 0.0,
    engine: str = "fast",
    method: str = "auto",
    profile: bool = False,
    cost_model: CostModel | None = None,
    workers: int = 1,
    executors: int | str = "serial",
    runtime: RuntimeConfig | None = None,
    config: JoinConfig | None = None,
) -> JoinResult:
    """Positional variant: ids are the sequences' indexes.

    Forwards every option (``method``, ``profile``, ``cost_model``,
    ``runtime``, ``config``...) to :func:`spatial_join` — historically it
    silently dropped everything past ``engine``.
    """
    left = list(enumerate(left_geometries))
    right = list(enumerate(right_geometries))
    return spatial_join(
        left,
        right,
        operator,
        radius=radius,
        engine=engine,
        method=method,
        profile=profile,
        cost_model=cost_model,
        workers=workers,
        executors=executors,
        runtime=runtime,
        config=config,
    )
