"""Shared filter+refine machinery for indexed spatial joins.

Both prototypes follow the same two-phase plan (Section II):

* **filter** — an STR-packed R-tree over the build (right) side's MBBs,
  expanded by the search radius for NearestD exactly as Fig 2's
  ``expandBy(radius)`` does, is probed with each left envelope;
* **refine** — surviving candidate pairs are checked with the exact
  predicate by a pluggable refinement engine (fast/JTS-like for
  SpatialSpark, slow/GEOS-like for ISP-MC).

:class:`BroadcastIndex` packages both phases plus per-probe cost
accounting so the engines' schedulers can attribute work to tasks, row
batches and fragment instances.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.cluster.model import Resource
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.engine import GeometryEngine, create_engine
from repro.geometry.point import Point
from repro.geometry.algorithms import distance as distance_mod
from repro.geometry.algorithms import predicates
from repro.index.rtree import STRtree
from repro.core.operators import SpatialOperator

__all__ = ["BroadcastIndex", "refine_pair", "naive_spatial_join"]


def refine_pair(
    engine: GeometryEngine,
    operator: SpatialOperator,
    probe_geometry: Geometry,
    build_geometry: Geometry,
    build_handle: object,
    radius: float,
) -> bool:
    """Exact predicate test for one candidate pair.

    Point probes take the engine's prepared fast paths; non-point probes
    fall back to the generic computational-geometry predicates (identical
    results, no preparation benefit — matching how JTS/GEOS treat them).
    """
    if isinstance(probe_geometry, Point):
        if operator is SpatialOperator.WITHIN:
            return engine.point_within(probe_geometry, build_handle)
        if operator is SpatialOperator.NEAREST_D:
            return engine.point_within_distance(probe_geometry, build_handle, radius)
        if operator is SpatialOperator.INTERSECTS:
            return predicates.intersects(probe_geometry, build_geometry)
        if operator is SpatialOperator.CONTAINS:
            return predicates.within(build_geometry, probe_geometry)
        raise ReproError(f"unsupported operator {operator}")
    if operator is SpatialOperator.WITHIN:
        return predicates.within(probe_geometry, build_geometry)
    if operator is SpatialOperator.NEAREST_D:
        return distance_mod.distance(probe_geometry, build_geometry) <= radius
    if operator is SpatialOperator.INTERSECTS:
        return predicates.intersects(probe_geometry, build_geometry)
    if operator is SpatialOperator.CONTAINS:
        return predicates.within(build_geometry, probe_geometry)
    raise ReproError(f"unsupported operator {operator}")


class BroadcastIndex:
    """The broadcast build side: an STR-tree over prepared geometries.

    ``entries`` are (payload, geometry) pairs; payloads are whatever the
    caller wants back from probes (row tuples, ids).  The index prepares
    each geometry once with the given engine and inserts its envelope —
    expanded by ``radius`` for NearestD — into the R-tree.
    """

    def __init__(
        self,
        entries: Iterable[tuple[Any, Geometry]],
        operator: SpatialOperator,
        radius: float = 0.0,
        engine: GeometryEngine | str = "fast",
        node_capacity: int = 10,
    ):
        if operator.needs_radius and radius <= 0.0:
            raise ReproError(f"{operator} requires a positive radius")
        self.operator = operator
        self.radius = radius if operator.needs_radius else 0.0
        self.engine = create_engine(engine) if isinstance(engine, str) else engine
        self._tree: STRtree = STRtree(node_capacity=node_capacity)
        self.build_entries = 0
        self.build_vertex_total = 0
        for payload, geometry in entries:
            if geometry.is_empty:
                continue
            handle = self.engine.prepare(geometry)
            envelope = geometry.envelope.expand_by(self.radius)
            self._tree.insert((payload, geometry, handle), envelope)
            self.build_entries += 1
            self.build_vertex_total += geometry.num_points
        self._tree.build()

    def __len__(self) -> int:
        return self.build_entries

    @property
    def tree(self) -> STRtree:
        return self._tree

    def build_cost_units(self) -> dict[str, float]:
        """Resource units to charge whoever builds a copy of this index."""
        return {Resource.INDEX_BUILD: float(self.build_entries)}

    def probe(self, geometry: Geometry) -> list[Any]:
        """Return payloads of build entries satisfying the predicate."""
        if geometry.is_empty:
            return []
        candidates = self._tree.query(geometry.envelope)
        matches = []
        for payload, build_geometry, handle in candidates:
            if refine_pair(
                self.engine, self.operator, geometry, build_geometry, handle, self.radius
            ):
                matches.append(payload)
        return matches

    def probe_with_cost(
        self, geometry: Geometry
    ) -> tuple[list[Any], dict[str, float]]:
        """Probe and also return the resource units this probe consumed.

        Used by schedulers that need per-row costs (ISP-MC's static OpenMP
        chunks; Spark task accounting does the same at task granularity).
        """
        counters = self.engine.counters
        visits_before = self._tree.nodes_visited
        vertex_before = counters.vertex_ops
        alloc_before = counters.allocations
        matches = self.probe(geometry)
        units: dict[str, float] = {
            Resource.INDEX_VISIT: float(self._tree.nodes_visited - visits_before),
            Resource.ROWS_OUT: float(len(matches)),
        }
        vertex_delta = counters.vertex_ops - vertex_before
        if vertex_delta:
            if self.engine.name == "slow":
                units[Resource.REFINE_VERTEX_SLOW] = float(vertex_delta)
            else:
                units[Resource.REFINE_VERTEX_FAST] = float(vertex_delta)
        alloc_delta = counters.allocations - alloc_before
        if alloc_delta:
            units[Resource.REFINE_ALLOC] = float(alloc_delta)
        return matches, units

    def nearest(
        self, point: Point, k: int = 1, max_distance: float = math.inf
    ) -> list[tuple[Any, float]]:
        """k-nearest build payloads to a probe point (kNN extension)."""

        def exact(x: float, y: float, item) -> float:
            _, _, handle = item
            return self.engine.point_distance(Point(x, y), handle)

        found = self._tree.nearest(
            point.x, point.y, k=k, max_distance=max_distance, item_distance=exact
        )
        return [(payload, dist) for (payload, _, _), dist in found]


def naive_spatial_join(
    left: Iterable[tuple[Any, Geometry]],
    right: Iterable[tuple[Any, Geometry]],
    operator: SpatialOperator,
    radius: float = 0.0,
) -> list[tuple[Any, Any]]:
    """Reference O(|L|*|R|) nested-loop join (the baseline of Section II).

    Used by tests as ground truth and by the cross-join ablation; performs
    an envelope precheck per pair but no indexing.
    """
    right_list = [(payload, geom) for payload, geom in right if not geom.is_empty]
    expand = radius if operator.needs_radius else 0.0
    results: list[tuple[Any, Any]] = []
    for left_payload, left_geom in left:
        if left_geom.is_empty:
            continue
        probe_env = left_geom.envelope
        for right_payload, right_geom in right_list:
            if not probe_env.intersects(right_geom.envelope.expand_by(expand)):
                continue
            if _naive_refine(operator, left_geom, right_geom, radius):
                results.append((left_payload, right_payload))
    return results


def _naive_refine(
    operator: SpatialOperator, left: Geometry, right: Geometry, radius: float
) -> bool:
    if operator is SpatialOperator.WITHIN:
        return predicates.within(left, right)
    if operator is SpatialOperator.NEAREST_D:
        return distance_mod.distance(left, right) <= radius
    if operator is SpatialOperator.INTERSECTS:
        return predicates.intersects(left, right)
    if operator is SpatialOperator.CONTAINS:
        return predicates.within(right, left)
    raise ReproError(f"unsupported operator {operator}")
