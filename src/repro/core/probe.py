"""Shared filter+refine machinery for indexed spatial joins.

Both prototypes follow the same two-phase plan (Section II):

* **filter** — an STR-packed R-tree over the build (right) side's MBBs,
  expanded by the search radius for NearestD exactly as Fig 2's
  ``expandBy(radius)`` does, is probed with each left envelope;
* **refine** — surviving candidate pairs are checked with the exact
  predicate by a pluggable refinement engine (fast/JTS-like for
  SpatialSpark, slow/GEOS-like for ISP-MC).

:class:`BroadcastIndex` packages both phases plus per-probe cost
accounting so the engines' schedulers can attribute work to tasks, row
batches and fragment instances.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.cluster.model import Resource
from repro.columnar.column import _POINT as _POINT_CODE
from repro.columnar.column import GeometryColumn
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.engine import GeometryEngine, create_engine
from repro.geometry.point import Point
from repro.geometry.algorithms import distance as distance_mod
from repro.geometry.algorithms import predicates
from repro.index.rtree import STRtree
from repro.core.operators import SpatialOperator

__all__ = ["BroadcastIndex", "refine_pair", "naive_spatial_join"]


def refine_pair(
    engine: GeometryEngine,
    operator: SpatialOperator,
    probe_geometry: Geometry,
    build_geometry: Geometry,
    build_handle: object,
    radius: float,
) -> bool:
    """Exact predicate test for one candidate pair.

    Point probes take the engine's prepared fast paths; non-point probes
    fall back to the generic computational-geometry predicates (identical
    results, no preparation benefit — matching how JTS/GEOS treat them).
    """
    if isinstance(probe_geometry, Point):
        if operator is SpatialOperator.WITHIN:
            return engine.point_within(probe_geometry, build_handle)
        if operator is SpatialOperator.NEAREST_D:
            return engine.point_within_distance(probe_geometry, build_handle, radius)
        if operator is SpatialOperator.INTERSECTS:
            return predicates.intersects(probe_geometry, build_geometry)
        if operator is SpatialOperator.CONTAINS:
            return predicates.within(build_geometry, probe_geometry)
        raise ReproError(f"unsupported operator {operator}")
    if operator is SpatialOperator.WITHIN:
        return predicates.within(probe_geometry, build_geometry)
    if operator is SpatialOperator.NEAREST_D:
        return distance_mod.distance(probe_geometry, build_geometry) <= radius
    if operator is SpatialOperator.INTERSECTS:
        return predicates.intersects(probe_geometry, build_geometry)
    if operator is SpatialOperator.CONTAINS:
        return predicates.within(build_geometry, probe_geometry)
    raise ReproError(f"unsupported operator {operator}")


class BroadcastIndex:
    """The broadcast build side: an STR-tree over prepared geometries.

    ``entries`` are (payload, geometry) pairs; payloads are whatever the
    caller wants back from probes (row tuples, ids).  The index prepares
    each geometry once with the given engine and inserts its envelope —
    expanded by ``radius`` for NearestD — into the R-tree.
    """

    def __init__(
        self,
        entries: Iterable[tuple[Any, Geometry]],
        operator: SpatialOperator,
        radius: float = 0.0,
        engine: GeometryEngine | str = "fast",
        node_capacity: int = 10,
    ):
        if operator.needs_radius and radius <= 0.0:
            raise ReproError(f"{operator} requires a positive radius")
        self.operator = operator
        self.radius = radius if operator.needs_radius else 0.0
        self.engine = create_engine(engine) if isinstance(engine, str) else engine
        self._tree: STRtree = STRtree(node_capacity=node_capacity)
        self.build_entries = 0
        self.build_vertex_total = 0
        for payload, geometry in entries:
            if geometry.is_empty:
                continue
            handle = self.engine.prepare(geometry)
            envelope = geometry.envelope.expand_by(self.radius)
            self._tree.insert((payload, geometry, handle), envelope)
            self.build_entries += 1
            self.build_vertex_total += geometry.num_points
        self._tree.build()

    @classmethod
    def from_column(
        cls,
        column: GeometryColumn,
        operator: SpatialOperator,
        radius: float = 0.0,
        engine: GeometryEngine | str = "fast",
        node_capacity: int = 10,
    ) -> "BroadcastIndex":
        """Build the index from a packed column — same tree, bulk-loaded.

        The STR packing reads the column's bbox arrays directly (expanded
        by the radius with the same float arithmetic as ``expand_by``), so
        the resulting tree, entry order, counters and probe answers are
        byte-identical to the object constructor over ``column.entries()``.
        """
        if operator.needs_radius and radius <= 0.0:
            raise ReproError(f"{operator} requires a positive radius")
        self = cls.__new__(cls)
        self.operator = operator
        self.radius = radius if operator.needs_radius else 0.0
        self.engine = create_engine(engine) if isinstance(engine, str) else engine
        self._tree = STRtree(node_capacity=node_capacity)
        counts = column.num_points_array()
        keep = np.flatnonzero(counts > 0)  # num_points > 0 <=> not is_empty
        kept = column if len(keep) == len(column) else column.take(keep)
        prepare = self.engine.prepare
        items = []
        for i in range(len(kept)):
            geometry = kept.geometry(i)
            items.append((kept.payload(i), geometry, prepare(geometry)))
        min_x, min_y, max_x, max_y = kept.bounds()
        radius = self.radius
        # Same IEEE ops as Envelope.expand_by (x - 0.0 == x bitwise).
        self._tree.bulk_load_arrays(
            items, min_x - radius, min_y - radius, max_x + radius, max_y + radius
        )
        self.build_entries = len(items)
        self.build_vertex_total = int(counts[keep].sum())
        self._tree.build()
        # Retained so pickling (pool shipping, spawn-style broadcast)
        # moves the compact encoded column instead of the object graph;
        # the receiver rebuilds an identical tree from the buffers.
        self._column = kept
        self._node_capacity = node_capacity
        return self

    def __reduce_ex__(self, protocol):
        column = self.__dict__.get("_column")
        if column is None:
            return super().__reduce_ex__(protocol)
        return (
            _index_from_column,
            (
                column,
                self.operator,
                self.radius,
                self.engine.name,
                self._node_capacity,
            ),
        )

    def __len__(self) -> int:
        return self.build_entries

    @property
    def tree(self) -> STRtree:
        return self._tree

    def build_cost_units(self) -> dict[str, float]:
        """Resource units to charge whoever builds a copy of this index."""
        return {Resource.INDEX_BUILD: float(self.build_entries)}

    def probe(self, geometry: Geometry) -> list[Any]:
        """Return payloads of build entries satisfying the predicate."""
        if geometry.is_empty:
            return []
        candidates = self._tree.query(geometry.envelope)
        matches = []
        for payload, build_geometry, handle in candidates:
            if refine_pair(
                self.engine, self.operator, geometry, build_geometry, handle, self.radius
            ):
                matches.append(payload)
        return matches

    def probe_with_cost(
        self, geometry: Geometry
    ) -> tuple[list[Any], dict[str, float]]:
        """Probe and also return the resource units this probe consumed.

        Used by schedulers that need per-row costs (ISP-MC's static OpenMP
        chunks; Spark task accounting does the same at task granularity).
        """
        counters = self.engine.counters
        visits_before = self._tree.nodes_visited
        vertex_before = counters.vertex_ops
        alloc_before = counters.allocations
        matches = self.probe(geometry)
        units: dict[str, float] = {
            Resource.INDEX_VISIT: float(self._tree.nodes_visited - visits_before),
            Resource.ROWS_OUT: float(len(matches)),
        }
        vertex_delta = counters.vertex_ops - vertex_before
        if vertex_delta:
            if self.engine.name == "slow":
                units[Resource.REFINE_VERTEX_SLOW] = float(vertex_delta)
            else:
                units[Resource.REFINE_VERTEX_FAST] = float(vertex_delta)
        alloc_delta = counters.allocations - alloc_before
        if alloc_delta:
            units[Resource.REFINE_ALLOC] = float(alloc_delta)
        return matches, units

    def probe_batch(
        self, geometries: Iterable[Geometry | None], per_row: bool = False
    ) -> tuple[list[list[Any]], dict[str, float] | list[dict[str, float] | None]]:
        """Probe many geometries with one index traversal and batched kernels.

        Matches — payloads per probe, in candidate order — and cost units
        are exactly what N :meth:`probe_with_cost` calls produce; the
        engine counters advance by the same totals.  ``None`` entries are
        skipped entirely (their units slot is ``None``) so row-pipeline
        callers can keep unparsable rows in place.  With ``per_row`` the
        second element is the per-probe units list; otherwise it is the
        summed totals dict.

        Point probes under Within/NearestD take the columnar path: one
        Morton-sorted bulk index probe, then candidates grouped by build
        geometry so each polygon/polyline refines its whole point set with
        one batch kernel call.  Everything else falls back to per-probe
        scalar refinement (same answers, no batching benefit — mirroring
        the scalar engines).

        ``geometries`` may also be a :class:`GeometryColumn`: the point
        coordinates are then read straight from the packed buffer with no
        per-row object access (identical answers and counters).
        """
        if isinstance(geometries, GeometryColumn):
            return self._probe_batch_column(geometries, per_row)
        geometries = list(geometries)
        n = len(geometries)
        matches: list[list[Any]] = [[] for _ in range(n)]
        row_units: list[dict[str, float] | None] = [None] * n
        batchable: list[int] = []
        batch_ok = self.operator in (
            SpatialOperator.WITHIN,
            SpatialOperator.NEAREST_D,
        ) and hasattr(self.engine, "contains_batch_counted")
        for i, geometry in enumerate(geometries):
            if geometry is None:
                continue
            if geometry.is_empty:
                row_units[i] = {
                    Resource.INDEX_VISIT: 0.0,
                    Resource.ROWS_OUT: 0.0,
                }
                continue
            if batch_ok and isinstance(geometry, Point):
                batchable.append(i)
            else:
                matches[i], row_units[i] = self.probe_with_cost(geometry)
        batch_totals: dict[str, float] | None = None
        if batchable:
            m = len(batchable)
            xs = np.fromiter(
                (geometries[i].x for i in batchable), dtype=np.float64, count=m
            )
            ys = np.fromiter(
                (geometries[i].y for i in batchable), dtype=np.float64, count=m
            )
            batch_totals = self._probe_points_arrays(
                xs, ys, batchable, matches, row_units, per_row
            )
        if per_row:
            return matches, row_units
        return matches, self._sum_units(row_units, batch_totals)

    def _probe_batch_column(
        self, column: GeometryColumn, per_row: bool
    ) -> tuple[list[list[Any]], dict[str, float] | list[dict[str, float] | None]]:
        """:meth:`probe_batch` over a packed column.

        Classification (empty / batchable point / scalar fallback) is
        vectorised over the column's type and count arrays; the batched
        point kernel reads xs/ys straight from the coordinate buffer.
        Non-point rows materialise their geometry once and take the exact
        scalar path.
        """
        n = len(column)
        matches: list[list[Any]] = [[] for _ in range(n)]
        row_units: list[dict[str, float] | None] = [None] * n
        counts = column.num_points_array()
        batch_ok = self.operator in (
            SpatialOperator.WITHIN,
            SpatialOperator.NEAREST_D,
        ) and hasattr(self.engine, "contains_batch_counted")
        for i in np.flatnonzero(counts == 0).tolist():
            row_units[i] = {
                Resource.INDEX_VISIT: 0.0,
                Resource.ROWS_OUT: 0.0,
            }
        batch_totals: dict[str, float] | None = None
        if batch_ok:
            positions, xs, ys = column.point_rows()
            scalar = np.flatnonzero(
                (counts > 0) & (column.types_array() != _POINT_CODE)
            ).tolist()
        else:
            positions, xs, ys = np.empty(0, dtype=np.int64), None, None
            scalar = np.flatnonzero(counts > 0).tolist()
        for i in scalar:
            matches[i], row_units[i] = self.probe_with_cost(column.geometry(i))
        if len(positions):
            batch_totals = self._probe_points_arrays(
                xs, ys, positions.tolist(), matches, row_units, per_row
            )
        if per_row:
            return matches, row_units
        return matches, self._sum_units(row_units, batch_totals)

    @staticmethod
    def _sum_units(
        row_units: list[dict[str, float] | None],
        batch_totals: dict[str, float] | None,
    ) -> dict[str, float]:
        totals: dict[str, float] = {}
        for units in row_units:
            if units is None:
                continue
            for resource, amount in units.items():
                totals[resource] = totals.get(resource, 0.0) + amount
        if batch_totals:
            for resource, amount in batch_totals.items():
                totals[resource] = totals.get(resource, 0.0) + amount
        return totals

    def _probe_points_arrays(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        batchable: list[int],
        matches: list[list[Any]],
        row_units: list[dict[str, float] | None],
        per_row: bool,
    ) -> dict[str, float] | None:
        """Columnar filter+refine for point probes at rows ``batchable``.

        ``xs``/``ys`` are the probe coordinates aligned with ``batchable``.
        Fills ``matches`` in place.  With ``per_row`` it also fills
        ``row_units`` (per-probe cost dicts, exactly what
        :meth:`probe_with_cost` yields); otherwise it skips the per-probe
        dicts and returns the batchable rows' summed totals — the floats
        are integer-valued, so the sum equals the per-row sum exactly.
        """
        m = len(batchable)
        # Each chunk is one build item plus every probe that reached it —
        # already the grouping a batched refinement kernel wants.
        chunks, visits = self._tree.query_batch_points_chunks(xs, ys)
        if per_row:
            vertex_acc = np.zeros(m, dtype=np.int64)
            alloc_acc = np.zeros(m, dtype=np.int64)
        vertex_total = 0
        alloc_total = 0
        engine = self.engine
        within = self.operator is SpatialOperator.WITHIN
        chunk_hits: list[np.ndarray] = []
        for item, positions in chunks:
            _, _, handle = item
            if within:
                hit, vertex, alloc = engine.contains_batch_counted(
                    handle, xs[positions], ys[positions]
                )
            else:
                hit, vertex, alloc = engine.within_distance_batch_counted(
                    handle, xs[positions], ys[positions], self.radius
                )
            chunk_hits.append(hit)
            if per_row:
                # A chunk holds each probe at most once, so the fancy
                # index has no duplicates and += accumulates correctly.
                vertex_acc[positions] += vertex
                alloc_acc[positions] += alloc
            else:
                vertex_total += int(vertex.sum())
                alloc_total += int(alloc.sum())
        hits_total = 0
        if chunks:
            pair_probe = np.concatenate([positions for _, positions in chunks])
            pair_chunk = np.repeat(
                np.arange(len(chunks), dtype=np.int64),
                np.fromiter(
                    (len(positions) for _, positions in chunks),
                    dtype=np.int64,
                    count=len(chunks),
                ),
            )
            pair_hit = np.concatenate(chunk_hits)
            hits_total = int(pair_hit.sum())
            # Chunks arrive in DFS order; a stable sort by probe restores
            # the scalar query's per-probe candidate order.
            order = np.argsort(pair_probe, kind="stable")
            sel = order[pair_hit[order]]
            payloads = [item[0] for item, _ in chunks]
            for j, k in zip(pair_probe[sel].tolist(), pair_chunk[sel].tolist()):
                matches[batchable[j]].append(payloads[k])
        slow = engine.name == "slow"
        if not per_row:
            totals: dict[str, float] = {
                Resource.INDEX_VISIT: float(visits.sum()),
                Resource.ROWS_OUT: float(hits_total),
            }
            if vertex_total:
                if slow:
                    totals[Resource.REFINE_VERTEX_SLOW] = float(vertex_total)
                else:
                    totals[Resource.REFINE_VERTEX_FAST] = float(vertex_total)
            if alloc_total:
                totals[Resource.REFINE_ALLOC] = float(alloc_total)
            return totals
        visits_list = visits.tolist()
        vertex_list = vertex_acc.tolist()
        alloc_list = alloc_acc.tolist()
        rows_out = np.zeros(m, dtype=np.int64)
        if hits_total:
            rows_out += np.bincount(pair_probe[pair_hit], minlength=m)
        rows_list = rows_out.tolist()
        vertex_key = Resource.REFINE_VERTEX_SLOW if slow else Resource.REFINE_VERTEX_FAST
        for j, i in enumerate(batchable):
            units: dict[str, float] = {
                Resource.INDEX_VISIT: float(visits_list[j]),
                Resource.ROWS_OUT: float(rows_list[j]),
            }
            if vertex_list[j]:
                units[vertex_key] = float(vertex_list[j])
            if alloc_list[j]:
                units[Resource.REFINE_ALLOC] = float(alloc_list[j])
            row_units[i] = units
        return None

    def nearest(
        self, point: Point, k: int = 1, max_distance: float = math.inf
    ) -> list[tuple[Any, float]]:
        """k-nearest build payloads to a probe point (kNN extension)."""

        def exact(x: float, y: float, item) -> float:
            _, _, handle = item
            return self.engine.point_distance(Point(x, y), handle)

        found = self._tree.nearest(
            point.x, point.y, k=k, max_distance=max_distance, item_distance=exact
        )
        return [(payload, dist) for (payload, _, _), dist in found]


def _index_from_column(column, operator, radius, engine, node_capacity):
    """Unpickle hook: rebuild a column-backed :class:`BroadcastIndex`.

    The column ships as its compact binary encoding (its own
    ``__reduce__``); rebuilding here gives a tree bit-identical to the
    sender's, with engine counters local to the fresh engine instance.
    """
    return BroadcastIndex.from_column(
        column, operator, radius=radius, engine=engine, node_capacity=node_capacity
    )


def naive_spatial_join(
    left: Iterable[tuple[Any, Geometry]],
    right: Iterable[tuple[Any, Geometry]],
    operator: SpatialOperator,
    radius: float = 0.0,
) -> list[tuple[Any, Any]]:
    """Reference O(|L|*|R|) nested-loop join (the baseline of Section II).

    Used by tests as ground truth and by the cross-join ablation; performs
    an envelope precheck per pair but no indexing.
    """
    right_list = [(payload, geom) for payload, geom in right if not geom.is_empty]
    expand = radius if operator.needs_radius else 0.0
    results: list[tuple[Any, Any]] = []
    for left_payload, left_geom in left:
        if left_geom.is_empty:
            continue
        probe_env = left_geom.envelope
        for right_payload, right_geom in right_list:
            if not probe_env.intersects(right_geom.envelope.expand_by(expand)):
                continue
            if _naive_refine(operator, left_geom, right_geom, radius):
                results.append((left_payload, right_payload))
    return results


def _naive_refine(
    operator: SpatialOperator, left: Geometry, right: Geometry, radius: float
) -> bool:
    if operator is SpatialOperator.WITHIN:
        return predicates.within(left, right)
    if operator is SpatialOperator.NEAREST_D:
        return distance_mod.distance(left, right) <= radius
    if operator is SpatialOperator.INTERSECTS:
        return predicates.intersects(left, right)
    if operator is SpatialOperator.CONTAINS:
        return predicates.within(right, left)
    raise ReproError(f"unsupported operator {operator}")
