"""k-nearest-neighbour spatial join — an extension beyond the paper.

The paper's NearestD finds *all* polylines within distance D; its natural
companion (supported by later systems like Apache Sedona, and a common
follow-up request for taxi analytics: "the k nearest streets to each
pickup") is the kNN join.  It reuses the broadcast R-tree with best-first
traversal (:meth:`repro.index.rtree.STRtree.nearest`), so it drops into
the same SpatialSpark plan shape as Fig 2.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.cluster.model import Resource
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry.point import Point
from repro.geometry.wkt import loads as wkt_loads
from repro.obs.tracer import get_tracer
from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.spark.taskcontext import current_task

__all__ = ["knn_join", "broadcast_knn_join"]


def _knn_index(
    right_entries: list[tuple[Any, Geometry]], max_distance: float
) -> BroadcastIndex:
    """Build a distance-capable broadcast index over the right side."""
    radius = max_distance if math.isfinite(max_distance) else 0.0
    if radius > 0.0:
        return BroadcastIndex(
            right_entries, SpatialOperator.NEAREST_D, radius=radius, engine="fast"
        )
    # Unbounded kNN: the WITHIN operator builds un-expanded envelopes and
    # the best-first traversal needs no expansion at all.
    return BroadcastIndex(right_entries, SpatialOperator.WITHIN, engine="fast")


def knn_join(
    left: Iterable[tuple[Any, Geometry | str]],
    right: Iterable[tuple[Any, Geometry | str]],
    k: int = 1,
    max_distance: float = math.inf,
) -> list[tuple[Any, Any, float]]:
    """For each left point, its up-to-k nearest right geometries.

    Returns ``(left_id, right_id, distance)`` triples ordered by distance
    per left id.  Left geometries must be points (the paper's probe side
    is always points); right geometries may be points, polylines or
    polygons.  ``max_distance`` optionally caps the search, turning this
    into "NearestD, keep the k closest".
    """
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")

    def normalise(entries):
        out = []
        for payload, geometry in entries:
            if isinstance(geometry, str):
                geometry = wkt_loads(geometry)
            out.append((payload, geometry))
        return out

    left_entries = normalise(left)
    right_entries = normalise(right)
    index = _knn_index(right_entries, max_distance)
    results: list[tuple[Any, Any, float]] = []
    for left_id, geometry in left_entries:
        if geometry.is_empty:
            continue
        if not isinstance(geometry, Point):
            raise ReproError("knn_join probes must be points")
        for right_id, dist in index.nearest(geometry, k=k, max_distance=max_distance):
            results.append((left_id, right_id, dist))
    return results


def broadcast_knn_join(
    sc: SparkContext,
    left: RDD[tuple[Any, Geometry]],
    right: RDD[tuple[Any, Geometry]],
    k: int = 1,
    max_distance: float = math.inf,
) -> RDD[tuple[Any, Any, float]]:
    """Distributed kNN join on the SpatialSpark plan shape.

    Same structure as :func:`~repro.core.broadcast_join.broadcast_spatial_join`:
    collect + index + broadcast the right side, flatMap the left side
    through best-first nearest search.
    """
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    tracer = get_tracer()
    with tracer.span("collect-build-side", category="phase"):
        right_local = right.collect()
    with tracer.span("build-index", category="phase") as build_span:
        index = _knn_index(right_local, max_distance)
        build_seconds = (
            sc.cost_model.task_seconds(index.build_cost_units())
            * sc.cost_model.spark_jvm_factor
        )
        sc.broadcast_overhead_seconds += build_seconds
        build_span.add_sim(build_seconds)
        build_span.set_attr("index_entries", len(index))
    with tracer.span("broadcast", category="phase") as bc_span:
        ship_before = sc.broadcast_overhead_seconds
        index_broadcast = sc.broadcast(index)
        bc_span.add_sim(sc.broadcast_overhead_seconds - ship_before)

    def query(pair: tuple[Any, Geometry]):
        left_id, geometry = pair
        if geometry.is_empty:
            return []
        if not isinstance(geometry, Point):
            raise ReproError("broadcast_knn_join probes must be points")
        shared = index_broadcast.value
        visits_before = shared.tree.nodes_visited
        found = shared.nearest(geometry, k=k, max_distance=max_distance)
        task = current_task()
        task.add(Resource.INDEX_VISIT, shared.tree.nodes_visited - visits_before)
        task.add(Resource.ROWS_OUT, len(found))
        return [(left_id, right_id, dist) for right_id, dist in found]

    return left.flat_map(query)
