"""ISP-MC: the indexed SpatialJoin exec node plugged into mini-Impala.

Fig 3 of the paper shows the four ISP-MC components; this module is the
third and fourth: the ``SpatialJoin`` subclass of Impala's blocking join
(build an in-memory R-tree from the broadcast right side, probe it with
every left row batch) and the OpenMP-style multi-core refinement over row
batches.  The frontend keyword and plan wiring live in
:mod:`repro.impala.planner`; the static inter-node scheduling lives in
:mod:`repro.impala.coordinator`.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.model import Resource
from repro.columnar.column import GeometryColumn
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.geometry.wkt import WKTReader
from repro.impala.exec_nodes import BlockingJoinNode, ExecNode, InstanceContext
from repro.impala.rowbatch import BATCH_SIZE, RowBatch

__all__ = ["build_spatial_index", "SpatialJoinNode"]

_READER = WKTReader()


def build_spatial_index(
    build_rows: Iterable[tuple],
    geometry_slot: int,
    operator: SpatialOperator,
    radius: float,
    engine: str = "slow",
    columnar: bool = False,
) -> tuple[BroadcastIndex, int, int]:
    """Build the broadcast R-tree over the right side's WKT geometry column.

    Returns ``(index, wkt_bytes_parsed, rows_dropped)``.  Rows whose WKT
    fails to parse are dropped, matching the scanners' dirty-row policy.
    The paper notes this parse ("building an R-Tree for all tuples of the
    table on the right side") is one of ISP-MC's three string-parsing
    costs — the byte count lets the coordinator charge it per instance.

    With ``columnar`` the parsed geometries are packed into a
    :class:`~repro.columnar.column.GeometryColumn` and the tree is
    bulk-loaded from its bbox arrays — same tree, same counters, and the
    resulting index ships to pool workers as the compact binary column.
    """
    entries = []
    wkt_bytes = 0
    dropped = 0
    for row in build_rows:
        text = row[geometry_slot]
        if not isinstance(text, str):
            dropped += 1
            continue
        wkt_bytes += len(text)
        geometry = _READER.try_read(text)
        if geometry is None:
            dropped += 1
            continue
        entries.append((row, geometry))
    index = None
    if columnar:
        column = GeometryColumn.from_entries(entries)
        if column is not None:
            index = BroadcastIndex.from_column(
                column, operator, radius=radius, engine=engine
            )
    if index is None:
        index = BroadcastIndex(entries, operator, radius=radius, engine=engine)
    return index, wkt_bytes, dropped


class SpatialJoinNode(BlockingJoinNode):
    """Indexed nested-loop spatial join over row batches (Fig 3's core).

    The build side arrives pre-indexed (the coordinator builds one
    :class:`~repro.core.probe.BroadcastIndex` and charges every instance
    for its own copy, as each real Impala instance builds its own tree
    from the broadcast stream).  Probing walks each probe batch row by
    row: parse the left WKT, query the R-tree, refine with the engine —
    with per-row costs recorded so the batch's duration reflects OpenMP
    *static* chunking across the node's cores.
    """

    def __init__(
        self,
        ctx: InstanceContext,
        probe: ExecNode,
        index: BroadcastIndex,
        probe_geometry_slot: int,
        build_cost_weight: float = 1.0,
        batch_refine: bool = True,
        batch_size: int = BATCH_SIZE,
    ):
        super().__init__(ctx, probe, build_rows=[], batch_size=batch_size)
        self.index = index
        self.probe_geometry_slot = probe_geometry_slot
        self.build_cost_weight = build_cost_weight
        self.batch_refine = batch_refine
        self.rows_dropped = 0

    def build(self) -> None:
        """Charge this instance for its copy of the broadcast index."""
        self.ctx.charge_serial(
            Resource.INDEX_BUILD, len(self.index) * self.build_cost_weight
        )

    def probe_batch(self, batch: RowBatch) -> list[tuple]:
        if self.batch_refine:
            return self._probe_batch_columnar(batch)
        return self._probe_batch_scalar(batch)

    def _probe_batch_columnar(self, batch: RowBatch) -> list[tuple]:
        """Consume the whole batch as a geometry column: parse, bulk-probe,
        refine with batched kernels.  The per-row unit dicts handed to
        ``charge_batch`` equal the scalar path's exactly, so the OpenMP
        static-chunk makespans (and with them Table 1/2) are unchanged."""
        slot = self.probe_geometry_slot
        rows = batch.rows
        base_units: list[dict[str, float]] = []
        geometries = []
        for text in batch.column(slot):
            units: dict[str, float] = {}
            if isinstance(text, str):
                units[Resource.WKT_BYTES] = float(len(text))
                geometry = _READER.try_read(text)
            else:
                geometry = None
            base_units.append(units)
            geometries.append(geometry)
        matches_per_row, probe_units = self.index.probe_batch(
            geometries, per_row=True
        )
        joined: list[tuple] = []
        per_row_units: list[dict[str, float]] = []
        for left_row, units, geometry, matches, row_units in zip(
            rows, base_units, geometries, matches_per_row, probe_units
        ):
            if geometry is None:
                self.rows_dropped += 1
                per_row_units.append(units)
                continue
            for resource, amount in row_units.items():
                units[resource] = units.get(resource, 0.0) + amount
            per_row_units.append(units)
            for right_row in matches:
                joined.append(left_row + right_row)
        self.ctx.charge_batch(per_row_units)
        return joined

    def _probe_batch_scalar(self, batch: RowBatch) -> list[tuple]:
        joined: list[tuple] = []
        per_row_units: list[dict[str, float]] = []
        slot = self.probe_geometry_slot
        for left_row in batch:
            text = left_row[slot]
            units: dict[str, float] = {}
            if isinstance(text, str):
                units[Resource.WKT_BYTES] = float(len(text))
                geometry = _READER.try_read(text)
            else:
                geometry = None
            if geometry is None:
                self.rows_dropped += 1
                per_row_units.append(units)
                continue
            matches, probe_units = self.index.probe_with_cost(geometry)
            for resource, amount in probe_units.items():
                units[resource] = units.get(resource, 0.0) + amount
            per_row_units.append(units)
            for right_row in matches:
                joined.append(left_row + right_row)
        self.ctx.charge_batch(per_row_units)
        return joined
