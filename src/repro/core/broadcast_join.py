"""SpatialSpark's broadcast spatial join — the port of the paper's Fig 2.

The right (smaller) side is collected to the driver, packed into an
STR-tree whose envelopes are expanded by the NearestD radius, broadcast to
every executor, and probed by a ``flatMap`` over the left side.  The
skeleton below deliberately mirrors the Scala code in Fig 2 line for line:

=====================================  =====================================
Fig 2 (Scala)                          here
=====================================  =====================================
``sc.textFile(...).map(_.split)``      :func:`read_geometry_pairs`
``.zipWithIndex()``                    ``.zip_with_index()``
``Try(new WKTReader().read(...))``     ``WKTReader.try_read`` + filter
``val strtree = new STRtree()``        :class:`~repro.core.probe.BroadcastIndex`
``y.expandBy(radius)``                 ``BroadcastIndex(radius=...)``
``sc.broadcast(strtree)``              ``sc.broadcast(index)``
``leftGeometryWithId.flatMap(...)``    ``left.flat_map(probe)``
=====================================  =====================================
"""

from __future__ import annotations

from typing import Any

from repro.cache import estimate_index_bytes, fingerprint_entries
from repro.cluster.model import Resource
from repro.columnar.column import GeometryColumn
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.errors import ReproError
from repro.geometry.base import Geometry
from repro.geometry import wkb as wkb_mod
from repro.geometry.wkt import WKTReader
from repro.obs.events import install_event_log
from repro.obs.tracer import get_tracer
from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.spark.taskcontext import current_task

__all__ = [
    "broadcast_spatial_join",
    "BroadcastSpatialJoin",
    "read_geometry_pairs",
    "read_geometry_pairs_wkb",
]


def read_geometry_pairs(
    sc: SparkContext,
    path: str,
    geometry_index: int,
    separator: str = "\t",
    num_partitions: int | None = None,
    cost_weight: float = 1.0,
) -> RDD[tuple[int, Geometry]]:
    """Load ``(record_index, geometry)`` pairs from a WKT text file.

    This is the pre-processing block of Fig 2: split each line on the
    separator, pair it with its global index, parse the geometry column,
    and *drop* rows whose WKT fails to parse (the ``Try``/``isSuccess``
    filter) instead of failing the job.
    """

    def parse(pair: tuple[list[str], int]):
        fields, record_id = pair
        if geometry_index >= len(fields):
            return []
        text = fields[geometry_index]
        task = current_task()
        task.add(Resource.WKT_BYTES, len(text) * cost_weight)
        # Two pipeline hops per record (zipWithIndex pass + parse pass).
        task.add(Resource.RDD_RECORDS, 2.0)
        geometry = WKTReader().try_read(text)
        if geometry is None:
            return []
        return [(record_id, geometry)]

    if num_partitions is None:
        # Spark's rule of thumb: ~2 tasks per core keeps the dynamic
        # scheduler's waves balanced (the a1 ablation varies this).
        num_partitions = sc.default_parallelism
    data = sc.text_file(path, num_partitions).map(
        lambda line: line.split(separator)
    ).zip_with_index()
    return data.flat_map(parse)


def read_geometry_pairs_wkb(
    sc: SparkContext,
    path: str,
    num_partitions: int | None = None,
    cost_weight: float = 1.0,
) -> RDD[tuple[int, Geometry]]:
    """Load ``(record_index, geometry)`` pairs from a binary WKB file.

    The paper's Section III future-work item, end to end: geometry stays
    binary on HDFS (paged record files) and in memory (numpy coordinate
    buffers), skipping string parsing entirely.  Decode cost is charged
    per WKB byte — roughly an order of magnitude below the WKT rate.
    Corrupt records are dropped, mirroring the WKT dirty-row filter.
    """
    from repro.errors import WKBParseError

    def parse(pair: tuple[bytes, int]):
        payload, record_id = pair
        current_task().add(Resource.WKB_BYTES, len(payload) * cost_weight)
        try:
            geometry = wkb_mod.loads(payload)
        except WKBParseError:
            return []
        return [(record_id, geometry)]

    if num_partitions is None:
        num_partitions = sc.default_parallelism
    data = sc.binary_records(path, num_partitions).zip_with_index()
    return data.flat_map(parse)


def broadcast_spatial_join(
    sc: SparkContext,
    left: RDD[tuple[Any, Geometry]],
    right: RDD[tuple[Any, Geometry]],
    operator: SpatialOperator,
    radius: float = 0.0,
    engine: str = "fast",
    build_cost_weight: float = 1.0,
    batch_refine: bool = True,
) -> RDD[tuple[Any, Any]]:
    """Join two (id, geometry) RDDs, returning matching (left_id, right_id).

    SpatialSpark pairs a JTS-like refinement engine (``engine="fast"``)
    with dynamic Spark scheduling; passing ``engine="slow"`` isolates the
    geometry-library axis for the ablation benchmarks.

    With ``batch_refine`` (the default) each task gathers its partition's
    probes into coordinate arrays and runs the columnar filter+refine
    pipeline — one bulk index probe, one batch kernel call per build
    geometry.  Pairs, their order, and every accrued task/engine counter
    are identical to the per-row path (``batch_refine=False``); only
    wall-clock changes.
    """
    if operator.needs_radius and radius <= 0.0:
        raise ReproError(f"{operator} requires a positive radius")
    sc.record_plan({"join": "broadcast"})
    tracer = get_tracer()
    # Driver side: collect + bulk-load + broadcast (Fig 2's apply()).
    # The collect always runs (its tasks charge parse/pipeline costs);
    # only the STR-tree construction is skippable via the cross-query
    # cache, keyed on the collected content — and the build charge below
    # is billed either way, so simulated seconds never see the cache.
    with tracer.span("collect-build-side", category="phase"):
        right_local = right.collect()
    cache = sc.cache
    cache_key = None
    if cache is not None:
        cache_key = fingerprint_entries(
            right_local, "spark-broadcast-index", operator.value,
            float(radius), engine,
        )
    with tracer.span("build-index", category="phase") as build_span:
        # The scheduler installs the context's event log only inside
        # run_job; this driver-side section installs it too so cache
        # hit/miss events reach the same events.jsonl stream.
        with install_event_log(sc.event_log):
            index = (
                cache.get(cache_key, "spark-broadcast-index")
                if cache is not None
                else None
            )
            if index is None:
                column = (
                    GeometryColumn.from_entries(right_local)
                    if getattr(sc.runtime, "columnar", False)
                    else None
                )
                if column is not None:
                    index = BroadcastIndex.from_column(
                        column, operator, radius=radius, engine=engine
                    )
                else:
                    index = BroadcastIndex(
                        right_local, operator, radius=radius, engine=engine
                    )
                if cache is not None:
                    cache.put(
                        cache_key, "spark-broadcast-index", index,
                        size_bytes=estimate_index_bytes(index),
                        build_cost=sum(index.build_cost_units().values()),
                    )
        build_units = {
            resource: units * build_cost_weight
            for resource, units in index.build_cost_units().items()
        }
        build_seconds = (
            sc.cost_model.task_seconds(build_units) * sc.cost_model.spark_jvm_factor
        )
        sc.broadcast_overhead_seconds += build_seconds
        build_span.add_sim(build_seconds)
        build_span.set_attr("index_entries", len(index))
    with tracer.span("broadcast", category="phase") as bc_span:
        ship_before = sc.broadcast_overhead_seconds
        index_broadcast = sc.broadcast(
            index, cost_weight=build_cost_weight, fingerprint=cache_key
        )
        bc_span.add_sim(sc.broadcast_overhead_seconds - ship_before)

    def query_rtree(pair: tuple[Any, Geometry]):
        left_id, geometry = pair
        matches, units = index_broadcast.value.probe_with_cost(geometry)
        task = current_task()
        for resource, amount in units.items():
            task.add(resource, amount)
        return [(left_id, right_id) for right_id in matches]

    def query_rtree_partition(rows):
        rows = list(rows)
        if not rows:
            return []
        matches_per_row, totals = index_broadcast.value.probe_batch(
            geometry for _, geometry in rows
        )
        task = current_task()
        for resource, amount in totals.items():
            task.add(resource, amount)
        return [
            (left_id, right_id)
            for (left_id, _), matches in zip(rows, matches_per_row)
            for right_id in matches
        ]

    if batch_refine:
        return left.map_partitions(query_rtree_partition)
    return left.flat_map(query_rtree)


# The paper's object name, for Fig 2-style call sites.
BroadcastSpatialJoin = broadcast_spatial_join
