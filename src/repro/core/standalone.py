"""Standalone ISP-MC: the join core without Impala's infrastructure.

Section V.B builds "a standalone version of ISP-MC" to isolate Impala's
system overhead (measured at 7.3-13.9% of runtime in Table 1).  This
module is that program: it reads the same WKT files, builds the same
R-tree with the same (slow/GEOS-like) engine, probes with the same
multi-core row batches — but pays no query planning, no fragment startup,
no row-batch exchange bookkeeping and no result exchange.

It also exposes the intra-node scheduling policy as a parameter
(``static`` vs ``dynamic``), enabling the a2 ablation: the paper was
forced into OpenMP static scheduling by GEOS thread-safety and LLVM JIT
constraints and conjectures that dynamic scheduling (TBB work stealing)
"might achieve better load balancing and better performance".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import TaskMetrics
from repro.cluster.model import CostModel, Resource
from repro.cluster.simulation import simulate_dynamic, simulate_static_chunked
from repro.core.isp import build_spatial_index
from repro.core.operators import SpatialOperator
from repro.errors import ReproError
from repro.geometry.wkt import WKTReader
from repro.hdfs import SimulatedHDFS, read_lines
from repro.impala.rowbatch import BATCH_SIZE
from repro.obs.profile import ProfileNode, QueryProfile
from repro.obs.tracer import get_tracer
from repro.spark.taskcontext import task_scope

__all__ = ["StandaloneResult", "standalone_spatial_join"]

_READER = WKTReader()


@dataclass
class StandaloneResult:
    """Join pairs plus the simulated single-node runtime."""

    pairs: list[tuple]
    simulated_seconds: float
    metrics: TaskMetrics = field(default_factory=TaskMetrics)
    rows_dropped: int = 0
    serial_seconds: float = 0.0
    parallel_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def to_profile(self, name: str = "standalone-query") -> QueryProfile:
        """Render the run as a query profile tree.

        The per-phase children partition ``simulated_seconds`` exactly:
        scan/build phases are serial, the probe phase is the summed
        makespan of the statically- or dynamically-scheduled row batches.
        """
        root = ProfileNode(
            name,
            sim_seconds=self.simulated_seconds,
            counters=dict(self.metrics.counts),
            info={
                "engine": "ISP-MC standalone",
                "rows_out": len(self.pairs),
                "rows_dropped": self.rows_dropped,
                "serial_seconds": self.serial_seconds,
                "parallel_seconds": self.parallel_seconds,
            },
        )
        for phase, seconds in self.phase_seconds.items():
            root.add_child(ProfileNode(phase, sim_seconds=seconds))
        return QueryProfile(root)


def standalone_spatial_join(
    hdfs: SimulatedHDFS,
    left_path: str,
    right_path: str,
    operator: SpatialOperator,
    radius: float = 0.0,
    left_geometry_index: int = 1,
    right_geometry_index: int = 1,
    separator: str = "\t",
    cores: int = 8,
    engine: str = "slow",
    scheduling: str = "static",
    cost_model: CostModel | None = None,
    batch_size: int = BATCH_SIZE,
    build_cost_weight: float = 1.0,
) -> StandaloneResult:
    """Join two WKT text files on a single multi-core machine.

    Returns (left_id, right_id) pairs where ids are the files' first
    columns (parsed as-is, usually integers).  ``scheduling`` selects how
    each probe batch's rows are divided across cores: ``static``
    (contiguous OpenMP chunks — ISP-MC as shipped) or ``dynamic``
    (work-stealing — the paper's conjectured improvement).
    """
    if scheduling not in ("static", "dynamic"):
        raise ReproError(f"scheduling must be static|dynamic, got {scheduling!r}")
    model = cost_model or CostModel()
    metrics = TaskMetrics()
    serial_seconds = 0.0
    parallel_seconds = 0.0
    rows_dropped = 0
    phase_seconds: dict[str, float] = {}
    tracer = get_tracer()
    with task_scope(metrics):
        # Right side: scan + parse + build (all single-threaded, as in
        # ISP-MC's blocking build phase).
        with tracer.span("scan-build-side", category="phase") as span:
            right_rows, right_bytes = _read_rows(hdfs, right_path, separator)
            metrics.add(Resource.HDFS_BYTES, right_bytes)
            # File reads use all cores (the standalone program reads with
            # the same multi-threaded I/O the Impala scanners use).
            scan_build = (
                model.task_seconds(
                    {Resource.HDFS_BYTES: right_bytes * build_cost_weight}
                )
                / cores
            )
            span.add_sim(scan_build)
        with tracer.span("build-index", category="phase") as span:
            index, wkt_bytes, dropped = build_spatial_index(
                right_rows, right_geometry_index, operator, radius, engine
            )
            rows_dropped += dropped
            metrics.add(Resource.WKT_BYTES, wkt_bytes)
            metrics.add(Resource.INDEX_BUILD, float(len(index)))
            # WKT parse and the R-tree bulk load stay single-threaded, as
            # in ISP-MC's blocking build phase.
            build_index = model.task_seconds(
                {
                    Resource.WKT_BYTES: wkt_bytes * build_cost_weight,
                    Resource.INDEX_BUILD: len(index) * build_cost_weight,
                }
            )
            span.add_sim(build_index)
            span.set_attr("index_entries", len(index))
        with tracer.span("scan-probe-side", category="phase") as span:
            left_rows, left_bytes = _read_rows(hdfs, left_path, separator)
            metrics.add(Resource.HDFS_BYTES, left_bytes)
            scan_probe = model.task_seconds({Resource.HDFS_BYTES: left_bytes}) / cores
            span.add_sim(scan_probe)
        serial_seconds = scan_build + build_index + scan_probe
        pairs: list[tuple] = []
        with tracer.span("probe", category="phase") as span:
            for start in range(0, len(left_rows), batch_size):
                batch = left_rows[start : start + batch_size]
                per_row_seconds: list[float] = []
                for row in batch:
                    text = (
                        row[left_geometry_index]
                        if len(row) > left_geometry_index
                        else None
                    )
                    units: dict[str, float] = {}
                    geometry = None
                    if isinstance(text, str):
                        units[Resource.WKT_BYTES] = float(len(text))
                        geometry = _READER.try_read(text)
                    if geometry is None:
                        rows_dropped += 1
                        per_row_seconds.append(model.task_seconds(units))
                        continue
                    matches, probe_units = index.probe_with_cost(geometry)
                    for resource, amount in probe_units.items():
                        units[resource] = units.get(resource, 0.0) + amount
                    for resource, amount in units.items():
                        metrics.add(resource, amount)
                    per_row_seconds.append(model.task_seconds(units))
                    left_id = _coerce_id(row[0])
                    pairs.extend(
                        (left_id, _coerce_id(match[0])) for match in matches
                    )
                if scheduling == "static":
                    parallel_seconds += simulate_static_chunked(
                        per_row_seconds, cores
                    )
                else:
                    parallel_seconds += simulate_dynamic(per_row_seconds, cores)
            span.add_sim(parallel_seconds)
            span.set_attr("scheduling", scheduling)
    phase_seconds = {
        "scan-build-side": scan_build,
        "build-index": build_index,
        "scan-probe-side": scan_probe,
        "probe": parallel_seconds,
    }
    return StandaloneResult(
        pairs=pairs,
        simulated_seconds=serial_seconds + parallel_seconds,
        metrics=metrics,
        rows_dropped=rows_dropped,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        phase_seconds=phase_seconds,
    )


def _coerce_id(value: str):
    """Integer ids stay comparable with the typed engines' BIGINT columns."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


def _read_rows(
    hdfs: SimulatedHDFS, path: str, separator: str
) -> tuple[list[tuple], int]:
    """Read a delimited text file into raw field tuples."""
    lines = read_lines(hdfs, path)
    size = hdfs.status(path).size
    return [tuple(line.split(separator)) for line in lines], size
