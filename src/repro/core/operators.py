"""Spatial join operators (the paper's predicate vocabulary).

Fig 2 of the paper selects the join predicate with
``SpatialOperator.Within``; ``NearestD`` is "applied similarly".  We add
``Intersects``/``Contains`` — both supported by the same filter+refine
machinery — as the natural extensions the prototypes' UDF list mentions.
"""

from __future__ import annotations

import enum

__all__ = ["SpatialOperator"]


class SpatialOperator(enum.Enum):
    """Predicate joining a left (probe) geometry to a right (build) one."""

    WITHIN = "within"          # probe within build (point-in-polygon joins)
    NEAREST_D = "nearestd"     # probe within distance D of build (polylines)
    INTERSECTS = "intersects"  # probe intersects build
    CONTAINS = "contains"      # probe contains build

    # Scala-style aliases so ports of Fig 2 read naturally.
    @classmethod
    def Within(cls) -> "SpatialOperator":
        return cls.WITHIN

    @classmethod
    def NearestD(cls) -> "SpatialOperator":
        return cls.NEAREST_D

    @property
    def needs_radius(self) -> bool:
        """True when the operator takes a distance parameter."""
        return self is SpatialOperator.NEAREST_D

    @staticmethod
    def from_sql(function_name: str) -> "SpatialOperator":
        """Map an ST_ function name to an operator."""
        mapping = {
            "ST_WITHIN": SpatialOperator.WITHIN,
            "ST_NEARESTD": SpatialOperator.NEAREST_D,
            "ST_INTERSECTS": SpatialOperator.INTERSECTS,
            "ST_CONTAINS": SpatialOperator.CONTAINS,
        }
        try:
            return mapping[function_name.upper()]
        except KeyError:
            raise ValueError(f"no spatial operator for {function_name!r}") from None
