"""Binary record files over simulated HDFS.

Section III of the paper leaves "represent[ing] geometry in SpatialSpark
as binary both in-memory and on HDFS" as future work; this module is the
on-HDFS half.  The format is SequenceFile-flavoured: the file is a chain
of self-describing *pages*, each holding length-prefixed records::

    page   := magic:u32  payload_len:u32  record_count:u32  payload
    payload:= (record_len:u32 record_bytes)*

Pages never split records, so any page boundary is a valid input-split
boundary — the binary analogue of the TextInputFormat line rule, without
the scan-past-the-end fixup text files need.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

from repro.errors import HDFSError
from repro.hdfs.filesystem import SimulatedHDFS

__all__ = [
    "write_records",
    "read_records",
    "read_split_records",
    "record_split_boundaries",
    "DEFAULT_PAGE_SIZE",
]

_MAGIC = 0x5245504F  # "REPO"
_HEADER = struct.Struct("<III")
_LEN = struct.Struct("<I")
DEFAULT_PAGE_SIZE = 64 * 1024


def write_records(
    fs: SimulatedHDFS,
    path: str,
    records: Iterable[bytes],
    page_size: int = DEFAULT_PAGE_SIZE,
    block_size: int | None = None,
) -> int:
    """Write binary records into a paged file; returns the byte size."""
    if page_size < 16:
        raise HDFSError(f"page_size must be >= 16, got {page_size}")
    pages: list[bytes] = []
    current: list[bytes] = []
    current_size = 0
    count = 0

    def flush() -> None:
        nonlocal current, current_size, count
        if count == 0:
            return
        payload = b"".join(current)
        pages.append(_HEADER.pack(_MAGIC, len(payload), count) + payload)
        current = []
        current_size = 0
        count = 0

    for record in records:
        if not isinstance(record, (bytes, bytearray)):
            raise HDFSError(
                f"records must be bytes, got {type(record).__name__}"
            )
        encoded = _LEN.pack(len(record)) + bytes(record)
        if current_size + len(encoded) > page_size and count > 0:
            flush()
        current.append(encoded)
        current_size += len(encoded)
        count += 1
    flush()
    data = b"".join(pages)
    fs.write(path, data, block_size=block_size)
    return len(data)


def _iter_pages(fs: SimulatedHDFS, path: str) -> Iterator[tuple[int, int, int]]:
    """Yield (page_offset, payload_length, record_count) for every page."""
    size = fs.status(path).size
    offset = 0
    while offset < size:
        header = fs.read_range(path, offset, _HEADER.size)
        if len(header) < _HEADER.size:
            raise HDFSError(f"truncated page header at offset {offset} in {path}")
        magic, payload_len, record_count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise HDFSError(f"bad page magic at offset {offset} in {path}")
        yield (offset, payload_len, record_count)
        offset += _HEADER.size + payload_len
    if offset != size:
        raise HDFSError(f"trailing bytes after last page in {path}")


def _decode_page(fs: SimulatedHDFS, path: str, offset: int, payload_len: int,
                 record_count: int) -> list[bytes]:
    payload = fs.read_range(path, offset + _HEADER.size, payload_len)
    records: list[bytes] = []
    cursor = 0
    for _ in range(record_count):
        if cursor + _LEN.size > len(payload):
            raise HDFSError(f"truncated record in page at {offset} in {path}")
        (length,) = _LEN.unpack_from(payload, cursor)
        cursor += _LEN.size
        records.append(payload[cursor : cursor + length])
        cursor += length
    if cursor != payload_len:
        raise HDFSError(f"page payload length mismatch at {offset} in {path}")
    return records


def read_records(fs: SimulatedHDFS, path: str) -> list[bytes]:
    """Read every record in the file."""
    records: list[bytes] = []
    for offset, payload_len, count in _iter_pages(fs, path):
        records.extend(_decode_page(fs, path, offset, payload_len, count))
    return records


def record_split_boundaries(
    fs: SimulatedHDFS, path: str, min_splits: int = 1
) -> list[tuple[int, int]]:
    """Return (offset, length) splits aligned to page boundaries.

    Pages are grouped into roughly ``min_splits`` byte-balanced splits
    (at least one page per split).  An empty file yields one empty split.
    """
    pages = list(_iter_pages(fs, path))
    if not pages:
        return [(0, 0)]
    size = fs.status(path).size
    target = max(1, size // max(1, min_splits))
    splits: list[tuple[int, int]] = []
    split_start = pages[0][0]
    split_bytes = 0
    for offset, payload_len, _ in pages:
        page_bytes = _HEADER.size + payload_len
        split_bytes += page_bytes
        if split_bytes >= target:
            splits.append((split_start, offset + page_bytes - split_start))
            split_start = offset + page_bytes
            split_bytes = 0
    if split_bytes > 0:
        splits.append((split_start, size - split_start))
    return splits


def read_split_records(
    fs: SimulatedHDFS, path: str, offset: int, length: int
) -> list[bytes]:
    """Read the records of every page starting inside the split."""
    records: list[bytes] = []
    end = offset + length
    for page_offset, payload_len, count in _iter_pages(fs, path):
        if page_offset >= end:
            break
        if page_offset >= offset:
            records.extend(_decode_page(fs, path, page_offset, payload_len, count))
    return records
