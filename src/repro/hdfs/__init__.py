"""Simulated HDFS substrate shared by the Spark and Impala engines."""

from repro.hdfs.filesystem import (
    BlockInfo,
    DEFAULT_BLOCK_SIZE,
    FileStatus,
    SimulatedHDFS,
)
from repro.hdfs.recordfile import (
    DEFAULT_PAGE_SIZE,
    read_records,
    read_split_records,
    record_split_boundaries,
    write_records,
)
from repro.hdfs.textfile import (
    read_lines,
    read_split_lines,
    split_boundaries,
    write_text,
)

__all__ = [
    "BlockInfo",
    "DEFAULT_BLOCK_SIZE",
    "FileStatus",
    "SimulatedHDFS",
    "read_lines",
    "read_split_lines",
    "split_boundaries",
    "write_text",
    "DEFAULT_PAGE_SIZE",
    "read_records",
    "read_split_records",
    "record_split_boundaries",
    "write_records",
]
