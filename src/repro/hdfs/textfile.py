"""Line-oriented text records over simulated HDFS blocks.

Hadoop's ``TextInputFormat`` rule for records straddling block boundaries:
a split owner reads *past* its end to finish the last line, and every
split except the first discards the partial line at its start.  Both the
Spark ``textFile`` RDD and the Impala HDFS scan node rely on this module,
so both engines see the identical record stream for a given file.
"""

from __future__ import annotations

from repro.hdfs.filesystem import SimulatedHDFS

__all__ = ["write_text", "read_lines", "read_split_lines", "split_boundaries"]


def write_text(
    fs: SimulatedHDFS, path: str, lines: "Iterator[str] | list[str]",
    block_size: int | None = None,
) -> int:
    """Write newline-terminated lines to a file; returns the byte size.

    Every line — including empty ones — is terminated by ``\\n`` (POSIX
    text-file convention), so the line list round-trips exactly through
    :func:`read_lines`.
    """
    lines = list(lines)
    payload = "\n".join(lines) + "\n" if lines else ""
    data = payload.encode("utf-8")
    fs.write(path, data, block_size=block_size)
    return len(data)


def read_lines(fs: SimulatedHDFS, path: str) -> list[str]:
    """Read a whole file as a list of lines (no trailing newline chars)."""
    text = fs.read(path).decode("utf-8")
    if not text:
        return []
    if text.endswith("\n"):
        text = text[:-1]
    return text.split("\n")


def split_boundaries(fs: SimulatedHDFS, path: str, min_splits: int = 1) -> list[tuple[int, int]]:
    """Return (offset, length) byte splits for a file.

    Defaults to one split per HDFS block; when ``min_splits`` exceeds the
    block count, blocks are subdivided evenly (mirroring how Spark's
    ``textFile(path, minPartitions)`` requests more splits than blocks).
    """
    status = fs.status(path)
    if status.size == 0:
        return [(0, 0)]
    base = [(b.offset, b.length) for b in status.blocks]
    if len(base) >= min_splits:
        return base
    per_split = max(1, status.size // min_splits)
    splits = []
    offset = 0
    while offset < status.size:
        length = min(per_split, status.size - offset)
        # Last split absorbs the remainder to avoid a tiny tail split.
        if status.size - (offset + length) < per_split // 2:
            length = status.size - offset
        splits.append((offset, length))
        offset += length
    return splits


def read_split_lines(
    fs: SimulatedHDFS, path: str, offset: int, length: int
) -> list[str]:
    """Return the complete lines owned by the split ``[offset, offset+length)``.

    Ownership follows the TextInputFormat rule: a line belongs to the split
    containing its first byte; a split that starts mid-line skips forward
    to the next newline, and every split reads past its end to complete its
    final line.
    """
    status = fs.status(path)
    size = status.size
    if size == 0 or length <= 0:
        return []
    start = offset
    if start > 0:
        # Skip the partial line: find the first newline at or after start-1.
        probe = start - 1
        chunk = b""
        while probe < size:
            chunk = fs.read_range(path, probe, min(64 * 1024, size - probe))
            newline = chunk.find(b"\n")
            if newline >= 0:
                start = probe + newline + 1
                break
            probe += len(chunk)
        else:
            return []
        if start >= offset + length and start >= size:
            return []
        if start >= offset + length:
            # The whole split was inside one line owned by a predecessor…
            # …unless the line *starts* inside this split, handled above.
            return []
    end = offset + length
    if start >= size:
        return []
    # Read from start to the end of the line containing byte end-1; when
    # the split already ends on a newline there is nothing to extend.
    stop = end
    if stop < size and fs.read_range(path, stop - 1, 1) != b"\n":
        while stop < size:
            chunk = fs.read_range(path, stop, min(64 * 1024, size - stop))
            newline = chunk.find(b"\n")
            if newline >= 0:
                stop = stop + newline + 1
                break
            stop += len(chunk)
    data = fs.read_range(path, start, stop - start).decode("utf-8")
    if not data:
        return []
    if data.endswith("\n"):
        data = data[:-1]
    return data.split("\n")
