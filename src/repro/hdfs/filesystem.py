"""Simulated HDFS: block-oriented files with replica placement.

Both prototypes in the paper read WKT text files from HDFS; SpatialSpark
through ``sc.textFile`` and ISP-MC through Impala's HDFS scanners.  This
module provides the shared storage layer: a namespace of files split into
fixed-size blocks, each block replicated on ``replication`` datanodes, with
locality metadata the schedulers use for locality-aware task placement.

Blocks live in memory (the datasets this repo generates are far below the
paper's 6.9 GB taxi file); the behavioural contract — block boundaries,
line-straddling records, per-block locality — matches real HDFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HDFSError
from repro.obs.registry import REGISTRY

__all__ = ["BlockInfo", "FileStatus", "SimulatedHDFS", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 4 * 1024 * 1024  # small blocks keep sim datasets multi-block


@dataclass(frozen=True)
class BlockInfo:
    """Metadata for one block: where it starts and which nodes hold it."""

    index: int
    offset: int
    length: int
    hosts: tuple[str, ...]


@dataclass
class FileStatus:
    """Metadata for one file."""

    path: str
    size: int
    block_size: int
    blocks: list[BlockInfo] = field(default_factory=list)


class SimulatedHDFS:
    """An in-memory distributed file system with HDFS-like semantics.

    Paths are ``/``-separated absolute strings.  Files are byte oriented;
    :mod:`repro.hdfs.textfile` layers line-record semantics on top.
    """

    def __init__(
        self,
        datanodes: tuple[str, ...] = ("node0", "node1", "node2"),
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 2,
    ):
        if not datanodes:
            raise HDFSError("an HDFS cluster needs at least one datanode")
        if block_size < 1:
            raise HDFSError(f"block_size must be positive, got {block_size}")
        self.datanodes = tuple(datanodes)
        self.block_size = block_size
        self.replication = min(replication, len(self.datanodes))
        self._files: dict[str, bytes] = {}
        self._status: dict[str, FileStatus] = {}
        self._next_placement = 0

    @staticmethod
    def _normalise(path: str) -> str:
        if not path.startswith("/"):
            raise HDFSError(f"HDFS paths must be absolute, got {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") if path != "/" else path

    def exists(self, path: str) -> bool:
        """True when a file exists at ``path``."""
        return self._normalise(path) in self._files

    def list_dir(self, path: str) -> list[str]:
        """Return files under a directory prefix (non-recursive semantics
        are not needed here; this returns every file whose path starts with
        the prefix, as globbing ``dir/*`` would)."""
        prefix = self._normalise(path)
        if prefix != "/":
            prefix += "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def write(self, path: str, data: bytes, block_size: int | None = None) -> FileStatus:
        """Create or replace a file, splitting it into placed blocks."""
        path = self._normalise(path)
        if isinstance(data, str):
            raise HDFSError("HDFS stores bytes; encode text before writing")
        block_size = block_size or self.block_size
        self._files[path] = bytes(data)
        blocks = []
        for index, offset in enumerate(range(0, max(len(data), 1), block_size)):
            length = min(block_size, len(data) - offset)
            if length <= 0 and len(data) > 0:
                break
            hosts = self._place_replicas()
            blocks.append(BlockInfo(index, offset, max(length, 0), hosts))
        status = FileStatus(path, len(data), block_size, blocks)
        self._status[path] = status
        REGISTRY.inc("hdfs.writes")
        REGISTRY.inc("hdfs.bytes_written", len(data))
        return status

    def _place_replicas(self) -> tuple[str, ...]:
        hosts = []
        for r in range(self.replication):
            hosts.append(
                self.datanodes[(self._next_placement + r) % len(self.datanodes)]
            )
        self._next_placement = (self._next_placement + 1) % len(self.datanodes)
        return tuple(hosts)

    def read(self, path: str) -> bytes:
        """Return the whole file's bytes."""
        path = self._normalise(path)
        try:
            data = self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path}") from None
        REGISTRY.inc("hdfs.reads")
        REGISTRY.inc("hdfs.bytes_read", len(data))
        return data

    def read_block(self, path: str, block_index: int) -> bytes:
        """Return one block's bytes."""
        status = self.status(path)
        if not 0 <= block_index < len(status.blocks):
            raise HDFSError(
                f"{path} has {len(status.blocks)} blocks, asked for {block_index}"
            )
        block = status.blocks[block_index]
        data = self._files[status.path]
        REGISTRY.inc("hdfs.reads")
        REGISTRY.inc("hdfs.bytes_read", block.length)
        return data[block.offset : block.offset + block.length]

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """Return an arbitrary byte range (used for line-boundary fixup)."""
        path = self._normalise(path)
        try:
            data = self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path}") from None
        chunk = data[offset : offset + length]
        REGISTRY.inc("hdfs.reads")
        REGISTRY.inc("hdfs.bytes_read", len(chunk))
        return chunk

    def status(self, path: str) -> FileStatus:
        """Return the file's metadata (size, blocks, locality)."""
        path = self._normalise(path)
        try:
            return self._status[path]
        except KeyError:
            raise HDFSError(f"no such file: {path}") from None

    def delete(self, path: str) -> None:
        """Remove a file."""
        path = self._normalise(path)
        if path not in self._files:
            raise HDFSError(f"no such file: {path}")
        del self._files[path]
        del self._status[path]

    def total_bytes(self) -> int:
        """Sum of all file sizes (for test assertions and reports)."""
        return sum(len(data) for data in self._files.values())
