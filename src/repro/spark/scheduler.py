"""DAG scheduler: stages, tasks, dynamic placement, cost accounting.

Spark's scheduler splits the lineage DAG into stages at shuffle
dependencies, runs each stage as a set of per-partition tasks, and places
tasks *dynamically* onto free executor slots.  Section III of the paper
observes that Spark "selects a new leader and reconstructs an actor system
to exchange the metadata of partitions for every job stage that involves
shuffling", with overhead proportional to the partition count — both
charged here per shuffle stage, which is what the partition-count ablation
(a1) measures.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.metrics import QueryMetrics, StageMetrics, TaskMetrics
from repro.cluster.model import Resource
from repro.columnar.block import ColumnBlock
from repro.errors import SparkError
from repro.obs.events import get_event_log, install_event_log
from repro.obs.tracer import get_tracer
from repro.runtime.faults import InjectedFaultError
from repro.runtime.pool import SerialBackend, current_worker_id, picklable_error
from repro.runtime.recovery import run_recovered
from repro.runtime.shipping import ObsCapture, apply_capture, capture_observability
from repro.spark.rdd import RDD, NarrowDependency, ShuffleDependency
from repro.spark.shuffle import ShuffleStore
from repro.spark.taskcontext import task_scope
from repro.cluster.simulation import simulate_dynamic

__all__ = ["DAGScheduler"]


@dataclass
class _TaskShipment:
    """Everything one pool task sends back to the driver.

    Worker processes can't touch driver state, so every side effect a
    serial task would have — counter increments, spans, cache fills,
    scheduler failure counts, shuffle-store writes — rides back here and
    is replayed by :meth:`DAGScheduler._absorb_shipment` in deterministic
    task order.
    """

    task: TaskMetrics
    capture: ObsCapture
    value: object = None
    seconds: float = 0.0
    failures: int = 0  # failed attempts (the driver's task_failures delta)
    error: BaseException | None = None  # fatal/terminal error to re-raise
    cache_entries: dict = field(default_factory=dict)


class DAGScheduler:
    """Executes RDD jobs stage by stage with simulated-time accounting.

    Fault tolerance follows Spark's model (Section III: "Spark provides
    fault tolerance through re-computing as RDDs keep track of data
    processing workflows"): a failing task is retried up to
    ``MAX_TASK_ATTEMPTS`` times, recomputing its partition from lineage;
    only then does the job fail.  Failed attempts still cost simulated
    time — the work was done before the crash.
    """

    MAX_TASK_ATTEMPTS = 4  # Spark's spark.task.maxFailures default

    def __init__(self, sc):
        self.sc = sc
        self._job_counter = 0
        self.task_failures = 0
        self._events_query: int | None = None  # current job's event-log query id
        # Per-stage scheduling outcomes (name, tasks, makespan, overhead,
        # skew), appended as stages finish — the EXPLAIN ANALYZE feed for
        # SpatialSpark runs.  Observational only; never read by execution.
        self.stage_summaries: list[dict] = []
        # The attempt budget is a RuntimeConfig knob now; the class
        # attribute stays as the documented Spark default.
        self.max_task_attempts = getattr(
            sc.runtime, "max_task_attempts", self.MAX_TASK_ATTEMPTS
        )

    # -- event emission ---------------------------------------------------------
    #
    # Ids (query, stage, task index) are always allocated on the driver so
    # they are identical whether tasks run serially or on a pool; pooled
    # tasks receive them via closure and emit into the worker's buffering
    # sink, which ships back and replays in task order.

    def _emit_stage(self, name: str, num_tasks: int) -> int | None:
        """Allocate a stage id and emit StageSubmitted (None while disabled)."""
        log = get_event_log()
        if not log.enabled or self._events_query is None:
            return None
        stage_id = log.next_id("stage")
        log.emit(
            "StageSubmitted",
            query=self._events_query,
            stage=stage_id,
            name=name,
            num_tasks=num_tasks,
        )
        return stage_id

    def _attempt_task(
        self,
        task: TaskMetrics,
        body,
        label: str = "task",
        events_ctx: tuple[int, int, int] | None = None,
        partition: int | None = None,
    ) -> float:
        """Run ``body`` with retries; returns the task's total seconds.

        Each attempt accrues into ``task`` (lineage recomputation repeats
        the work); the exception from the final failed attempt propagates
        wrapped in :class:`SparkError`.  ``events_ctx`` is the
        ``(query, stage, task)`` id triple for event emission (None while
        the event sink is disabled).
        """
        model = self.sc.cost_model
        log = get_event_log()
        if events_ctx is not None and log.enabled:
            query_id, stage_id, task_index = events_ctx
            log.emit(
                "TaskStart",
                query=query_id,
                stage=stage_id,
                task=task_index,
                partition=partition,
                label=label,
                worker=current_worker_id(),
                pid=os.getpid(),
                wall_start=time.perf_counter(),
            )
        last_error: Exception | None = None
        failures_before = self.task_failures
        with get_tracer().span(label, category="task") as span:
            for attempt in range(self.max_task_attempts):
                try:
                    with task_scope(task):
                        body()
                    seconds = task.seconds(model) * model.spark_jvm_factor
                    span.add_sim(seconds)
                    span.add_counts(task.counts)
                    if attempt:
                        span.set_attr("attempts", attempt + 1)
                    if events_ctx is not None and log.enabled:
                        log.emit(
                            "TaskEnd",
                            query=query_id,
                            stage=stage_id,
                            task=task_index,
                            partition=partition,
                            label=label,
                            worker=current_worker_id(),
                            pid=os.getpid(),
                            wall_end=time.perf_counter(),
                            sim_seconds=seconds,
                            counters=dict(task.counts),
                            failures=self.task_failures - failures_before,
                        )
                    return seconds
                except SparkError:
                    raise
                except Exception as error:  # noqa: BLE001 - any task crash retries
                    self.task_failures += 1
                    last_error = error
        raise SparkError(
            f"task failed {self.max_task_attempts} times; last error: "
            f"{last_error!r}"
        ) from last_error

    # -- pool execution ---------------------------------------------------------

    def _pool(self):
        """The context's task pool when it can run this scheduler's closures."""
        pool = self.sc.task_pool
        if pool.is_serial or not pool.supports_closures:
            return None
        return pool

    def _dispatch_pool(self):
        """The pool the shipment path should use, or None for inline serial.

        With a fault plan active every stage routes through the shipment
        path — even serially, on a :class:`SerialBackend` — because the
        recovery loop needs capture-based tasks it can re-run (and whose
        losing duplicates it can discard).  Without a plan this returns
        exactly what :meth:`_pool` does, leaving the fault-free paths
        untouched.
        """
        pool = self._pool()
        if pool is None and self.sc.recovery.active:
            return SerialBackend()
        return pool

    def _pool_run_tasks(
        self, pool, specs, stage_id=None, scope="stage", repair=None
    ) -> list[_TaskShipment]:
        """Run ``(label, body, partition)`` specs on the pool, in task order.

        Each worker wrapper mirrors :meth:`_attempt_task` exactly — same
        retry loop, same span shape, same simulated-seconds arithmetic,
        same TaskStart/TaskEnd events — but accumulates every side effect
        into a :class:`_TaskShipment` instead of touching (its forked copy
        of) driver state.  Failures never raise in the worker; the driver
        re-raises at merge time so error semantics match the serial path.

        With a fault plan active, dispatch goes through
        :func:`run_recovered` under the stage's logical ``scope``:
        injected faults are retried/speculated/blacklisted driver-side,
        ``repair`` restores lost shuffle output from lineage, and an
        exhausted budget surfaces as :class:`SparkError` like any other
        terminal task failure.
        """
        model = self.sc.cost_model
        max_attempts = self.max_task_attempts
        cache = self.sc._cache
        query_id = self._events_query if get_event_log().enabled else None

        def make_task(index: int, label: str, body: Callable, partition):
            def run_one() -> _TaskShipment:
                task = TaskMetrics()
                capture = ObsCapture()
                shipment = _TaskShipment(task=task, capture=capture)
                cache_before = set(cache)
                with capture_observability(capture):
                    log = get_event_log()
                    emit_events = (
                        log.enabled and query_id is not None and stage_id is not None
                    )
                    if emit_events:
                        log.emit(
                            "TaskStart",
                            query=query_id,
                            stage=stage_id,
                            task=index,
                            partition=partition,
                            label=label,
                            worker=current_worker_id(),
                            pid=os.getpid(),
                            wall_start=time.perf_counter(),
                        )
                    with get_tracer().span(label, category="task") as span:
                        last_error: Exception | None = None
                        for attempt in range(max_attempts):
                            try:
                                with task_scope(task):
                                    value = body(task)
                                seconds = (
                                    task.seconds(model) * model.spark_jvm_factor
                                )
                                span.add_sim(seconds)
                                span.add_counts(task.counts)
                                if attempt:
                                    span.set_attr("attempts", attempt + 1)
                                shipment.value = value
                                shipment.seconds = seconds
                                last_error = None
                                break
                            except SparkError as error:
                                # Fatal in the serial path: no retry.
                                shipment.error = picklable_error(error)
                                last_error = None
                                break
                            except Exception as error:  # noqa: BLE001
                                shipment.failures += 1
                                last_error = error
                        if last_error is not None:
                            shipment.error = picklable_error(
                                SparkError(
                                    f"task failed {max_attempts} times; "
                                    f"last error: {last_error!r}"
                                )
                            )
                    if emit_events and shipment.error is None:
                        log.emit(
                            "TaskEnd",
                            query=query_id,
                            stage=stage_id,
                            task=index,
                            partition=partition,
                            label=label,
                            worker=current_worker_id(),
                            pid=os.getpid(),
                            wall_end=time.perf_counter(),
                            sim_seconds=shipment.seconds,
                            counters=dict(task.counts),
                            failures=shipment.failures,
                        )
                shipment.cache_entries = {
                    key: cache[key] for key in cache.keys() - cache_before
                }
                return shipment

            return run_one

        thunks = [
            make_task(index, label, body, partition)
            for index, (label, body, partition) in enumerate(specs)
        ]
        recovery = self.sc.recovery
        if recovery.active:
            try:
                outcomes = run_recovered(
                    pool,
                    thunks,
                    recovery,
                    scope=scope,
                    events=(query_id, stage_id),
                    sim_seconds=lambda index, shipment: shipment.seconds,
                    repair=repair,
                )
            except InjectedFaultError as error:
                raise SparkError(f"{scope}: {error}") from error
            return [outcome.value for outcome in outcomes]
        return pool.run(thunks)

    def _absorb_shipment(self, shipment: _TaskShipment, stage: StageMetrics):
        """Replay one task's side effects on the driver (deterministic order)."""
        self.task_failures += shipment.failures
        apply_capture(shipment.capture)
        for key, value in shipment.cache_entries.items():
            self.sc._cache.setdefault(key, value)
        if shipment.error is not None:
            raise shipment.error
        stage.tasks.append(shipment.task)
        return shipment

    # -- public entry ---------------------------------------------------------

    def run_job(
        self,
        rdd: RDD,
        func: Callable,
        partitions: Sequence[int] | None = None,
    ) -> list:
        """Run ``func`` over each requested partition; returns its results.

        Side effects: shuffle map stages for unmaterialised shuffle
        dependencies are executed first, and a :class:`QueryMetrics` entry
        is appended to the context's job log.
        """
        if partitions is None:
            partitions = range(rdd.num_partitions)
        self._job_counter += 1
        metrics = QueryMetrics(name=f"job-{self._job_counter}")
        with install_event_log(self.sc._event_log):
            log = get_event_log()
            self._events_query = log.next_id("query") if log.enabled else None
            if self._events_query is not None:
                log.emit(
                    "QueryStart",
                    query=self._events_query,
                    name=metrics.name,
                    engine="spark",
                    wall_start=time.perf_counter(),
                )
            try:
                with get_tracer().span(metrics.name, category="job") as span:
                    if self.sc._charge_jar_ship():
                        metrics.overhead_seconds += self.sc.cost_model.spark_jar_ship
                    for dep in self._unmaterialised_shuffles(rdd):
                        self._run_shuffle_stage(dep, metrics)
                    results = self._run_result_stage(rdd, func, partitions, metrics)
                    span.add_sim(metrics.simulated_seconds)
                    span.set_attr("stages", len(metrics.stages))
                if self._events_query is not None:
                    log.emit(
                        "QueryEnd",
                        query=self._events_query,
                        name=metrics.name,
                        sim_seconds=metrics.simulated_seconds,
                        rows=len(results),
                        wall_end=time.perf_counter(),
                    )
            finally:
                self._events_query = None
        self.sc._record_job(metrics)
        return results

    # -- stage discovery --------------------------------------------------------

    def _unmaterialised_shuffles(self, rdd: RDD) -> list[ShuffleDependency]:
        """Shuffle dependencies reachable from ``rdd``, parents first."""
        ordered: list[ShuffleDependency] = []
        seen_rdds: set[int] = set()

        def visit(node: RDD) -> None:
            if node.id in seen_rdds:
                return
            seen_rdds.add(node.id)
            for dep in node.dependencies:
                visit(dep.parent)
                if isinstance(dep, ShuffleDependency) and dep.shuffle_id is None:
                    ordered.append(dep)

        visit(rdd)
        return ordered

    # -- stage execution --------------------------------------------------------

    def _run_shuffle_stage(self, dep: ShuffleDependency, metrics: QueryMetrics) -> None:
        store = self.sc._shuffle_store
        dep.shuffle_id = store.new_shuffle_id()
        parent = dep.parent
        partitioner = dep.partitioner
        stage = StageMetrics(name=f"shuffle-{dep.shuffle_id}")
        with get_tracer().span(stage.name, category="stage"):
            self._run_shuffle_tasks(dep, store, parent, partitioner, stage, metrics)

    @staticmethod
    def _shuffle_buckets(dep, parent, partitioner, split: int) -> dict[int, list]:
        """One map task's output, bucketed by reduce partition."""
        bucketed: dict[int, list] = {}
        if dep.combiner is not None:
            create, merge_value, _ = dep.combiner
            combined: dict[int, dict] = {}
            for key, value in parent.iterator(split):
                bucket = partitioner.partition(key)
                per_bucket = combined.setdefault(bucket, {})
                if key in per_bucket:
                    per_bucket[key] = merge_value(per_bucket[key], value)
                else:
                    per_bucket[key] = create(value)
            for bucket, pairs in combined.items():
                bucketed[bucket] = list(pairs.items())
        else:
            for record in parent.iterator(split):
                key = record[0]
                bucketed.setdefault(partitioner.partition(key), []).append(record)
        return bucketed

    def _pack_buckets(self, bucketed: dict[int, list]) -> dict[int, object]:
        """Pack geometry-record buckets into columnar shuffle blocks.

        With the runtime's ``columnar`` knob on, every bucket whose records
        are ``(key, (id, geometry))`` tuples becomes a
        :class:`~repro.columnar.block.ColumnBlock` — iterating it yields
        value-identical records, the store charges the same byte total,
        and pickling it (pooled map tasks ship buckets back to the
        driver) moves the packed binary encoding instead of the object
        graph.  Non-matching buckets (combiner output, plain key/value
        jobs) pass through untouched.
        """
        if not getattr(self.sc.runtime, "columnar", False):
            return bucketed
        packed: dict[int, object] = {}
        for reduce_partition, records in bucketed.items():
            block = ColumnBlock.from_records(records)
            packed[reduce_partition] = records if block is None else block
        return packed

    def _emit_shuffle_write(
        self, stage_id, task_index: int, dep, task: TaskMetrics
    ) -> None:
        """ShuffleWrite is always driver-side so serial/pooled order matches."""
        log = get_event_log()
        if stage_id is None or not log.enabled:
            return
        log.emit(
            "ShuffleWrite",
            query=self._events_query,
            stage=stage_id,
            task=task_index,
            shuffle_id=dep.shuffle_id,
            bytes=task.get(Resource.SHUFFLE_BYTES),
        )

    def _run_shuffle_tasks(
        self, dep, store, parent, partitioner, stage, metrics
    ) -> None:
        stage_id = self._emit_stage(stage.name, parent.num_partitions)
        pool = self._dispatch_pool()
        if pool is not None:
            self._run_shuffle_tasks_pooled(
                pool, dep, store, parent, partitioner, stage, metrics, stage_id
            )
            return
        task_seconds: list[float] = []
        for split in range(parent.num_partitions):
            task = TaskMetrics()

            def map_task(split=split, task=task):
                bucketed = self._pack_buckets(
                    self._shuffle_buckets(dep, parent, partitioner, split)
                )
                written = store.write(dep.shuffle_id, split, bucketed)
                task.add(Resource.SHUFFLE_BYTES, written)

            events_ctx = (
                (self._events_query, stage_id, split) if stage_id is not None else None
            )
            task_seconds.append(
                self._attempt_task(
                    task,
                    map_task,
                    label=f"map-{split}",
                    events_ctx=events_ctx,
                    partition=split,
                )
            )
            stage.tasks.append(task)
            self._emit_shuffle_write(stage_id, split, dep, task)
        self._finish_stage(stage, task_seconds, shuffling=True, metrics=metrics)

    def _run_shuffle_tasks_pooled(
        self, pool, dep, store, parent, partitioner, stage, metrics, stage_id=None
    ) -> None:
        """Map tasks on the pool; the driver replays the store writes.

        Workers charge ``SHUFFLE_BYTES`` via :meth:`ShuffleStore.bucket_bytes`
        (byte-for-byte what ``write`` returns) and ship the buckets; the
        actual store write — and its registry increments — happens here,
        in task order, exactly as the serial path would have done it.
        """

        def make_body(split: int):
            def body(task: TaskMetrics):
                bucketed = self._pack_buckets(
                    self._shuffle_buckets(dep, parent, partitioner, split)
                )
                task.add(Resource.SHUFFLE_BYTES, ShuffleStore.bucket_bytes(bucketed))
                return bucketed

            return body

        specs = [
            (f"map-{split}", make_body(split), split)
            for split in range(parent.num_partitions)
        ]
        shipments = self._pool_run_tasks(
            pool, specs, stage_id=stage_id, scope=f"{metrics.name}:{stage.name}"
        )
        task_seconds: list[float] = []
        for split, shipment in enumerate(shipments):
            self._absorb_shipment(shipment, stage)
            store.write(dep.shuffle_id, split, shipment.value)
            task_seconds.append(shipment.seconds)
            self._emit_shuffle_write(stage_id, split, dep, shipment.task)
        self._finish_stage(stage, task_seconds, shuffling=True, metrics=metrics)

    def _run_result_stage(
        self,
        rdd: RDD,
        func: Callable,
        partitions: Sequence[int],
        metrics: QueryMetrics,
    ) -> list:
        stage = StageMetrics(name="result")
        results = []
        task_seconds: list[float] = []
        reads_shuffle = self._pipeline_reads_shuffle(rdd)
        pool = self._dispatch_pool()
        stage_id = self._emit_stage(stage.name, len(partitions))
        with get_tracer().span(stage.name, category="stage"):
            if pool is not None:
                specs = [
                    (
                        f"task-{split}",
                        lambda task, split=split: func(rdd.iterator(split)),
                        split,
                    )
                    for split in partitions
                ]
                shipments = self._pool_run_tasks(
                    pool,
                    specs,
                    stage_id=stage_id,
                    scope=f"{metrics.name}:{stage.name}",
                    repair=self._make_repair(rdd, stage_id),
                )
                for shipment in shipments:
                    self._absorb_shipment(shipment, stage)
                    results.append(shipment.value)
                    task_seconds.append(shipment.seconds)
            else:
                for index, split in enumerate(partitions):
                    task = TaskMetrics()

                    def result_task(split=split):
                        results.append(func(rdd.iterator(split)))

                    events_ctx = (
                        (self._events_query, stage_id, index)
                        if stage_id is not None
                        else None
                    )
                    task_seconds.append(
                        self._attempt_task(
                            task,
                            result_task,
                            label=f"task-{split}",
                            events_ctx=events_ctx,
                            partition=split,
                        )
                    )
                    stage.tasks.append(task)
            self._finish_stage(
                stage, task_seconds, shuffling=reads_shuffle, metrics=metrics
            )
        return results

    def _pipeline_reads_shuffle(self, rdd: RDD) -> bool:
        """True when the result stage's pipeline starts at a shuffle read."""
        node = rdd
        while True:
            narrow_parents = [
                dep for dep in node.dependencies if isinstance(dep, NarrowDependency)
            ]
            if any(
                isinstance(dep, ShuffleDependency) for dep in node.dependencies
            ):
                return True
            if not narrow_parents:
                return False
            node = narrow_parents[0].parent

    # -- lineage recovery --------------------------------------------------------

    def _pipeline_shuffle_deps(self, rdd: RDD) -> list[ShuffleDependency]:
        """The materialised shuffle dependencies the result pipeline reads."""
        node = rdd
        while True:
            shuffles = [
                dep
                for dep in node.dependencies
                if isinstance(dep, ShuffleDependency) and dep.shuffle_id is not None
            ]
            if shuffles:
                return shuffles
            narrow_parents = [
                dep for dep in node.dependencies if isinstance(dep, NarrowDependency)
            ]
            if not narrow_parents:
                return []
            node = narrow_parents[0].parent

    def _make_repair(self, rdd: RDD, stage_id):
        """Lineage-based recovery hook for ``shuffle_loss`` faults.

        This is Spark's answer to the static model's whole-query restart
        (Section III: RDDs "keep track of data processing workflows"): a
        reduce task that finds its shuffle input gone re-derives *only*
        the lost map output by re-running the parent stage's bucketing
        for that map partition, then retries.  The recompute happens
        under a discarded observability capture and writes back via
        :meth:`ShuffleStore.restore` — recovery restores state, it never
        re-bills counters or simulated time, which keeps chaos runs
        byte-identical to fault-free ones.  Returns ``None`` when the
        pipeline reads no shuffle (the fault then degrades to a
        transient).
        """
        deps = self._pipeline_shuffle_deps(rdd)
        if not deps:
            return None
        store = self.sc._shuffle_store

        def repair(task_index: int, fault) -> None:
            for dep in deps:
                parent = dep.parent
                map_split = task_index % parent.num_partitions
                store.drop_map_output(dep.shuffle_id, map_split)
                with capture_observability(ObsCapture()):
                    bucketed = self._shuffle_buckets(
                        dep, parent, dep.partitioner, map_split
                    )
                store.restore(dep.shuffle_id, map_split, bucketed)
                log = get_event_log()
                if log.enabled and self._events_query is not None:
                    log.emit(
                        "StageRecomputed",
                        query=self._events_query,
                        stage=stage_id,
                        shuffle_id=dep.shuffle_id,
                        map_partition=map_split,
                        reason=fault.kind,
                    )

        return repair

    def _finish_stage(
        self,
        stage: StageMetrics,
        task_seconds: list[float],
        shuffling: bool,
        metrics: QueryMetrics,
    ) -> None:
        model = self.sc.cost_model
        stage.makespan_seconds = simulate_dynamic(
            task_seconds,
            workers=self.sc.cluster.total_cores,
            per_task_overhead=model.spark_task_launch,
        )
        # Partition-metadata exchange: the driver tracks per-task metadata
        # for every stage, so this grows with the partition count (the a1
        # ablation's tradeoff).  Stages that shuffle additionally pay the
        # actor-system reconstruction the paper observed (Section III).
        stage.overhead_seconds = model.spark_stage_per_partition * max(
            1, stage.num_tasks
        )
        if shuffling:
            stage.overhead_seconds += model.spark_stage_base
        metrics.add_stage(stage)
        # The enclosing stage span (a no-op while tracing is disabled)
        # gets the scheduling outcome: makespan + overhead as duration,
        # straggler statistics as attributes.
        span = get_tracer().current_span()
        span.add_sim(stage.makespan_seconds + stage.overhead_seconds)
        span.set_attr("tasks", stage.num_tasks)
        span.set_attr("makespan_seconds", stage.makespan_seconds)
        span.set_attr("max_task_seconds", stage.max_task_seconds(model))
        span.set_attr("median_task_seconds", stage.median_task_seconds(model))
        span.set_attr("skew", stage.skew(model))
        self.stage_summaries.append(
            {
                "name": stage.name,
                "tasks": stage.num_tasks,
                "makespan_seconds": stage.makespan_seconds,
                "overhead_seconds": stage.overhead_seconds,
                "max_task_seconds": stage.max_task_seconds(model),
                "median_task_seconds": stage.median_task_seconds(model),
                "skew": stage.skew(model),
                "shuffling": shuffling,
            }
        )
