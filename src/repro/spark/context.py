"""SparkContext: the mini-Spark driver entry point.

Owns the cluster spec, cost model, simulated HDFS, shuffle store, block
cache and broadcast registry, and exposes the ``parallelize`` /
``textFile`` / ``broadcast`` API that Fig 2 of the paper uses.
"""

from __future__ import annotations

from typing import TypeVar

from repro.cache import cache_for
from repro.cluster.metrics import QueryMetrics
from repro.cluster.model import ClusterSpec, CostModel
from repro.hdfs import SimulatedHDFS
from repro.obs.events import EventLog
from repro.obs.profile import ProfileNode, QueryProfile
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import make_pool
from repro.runtime.recovery import RecoveryContext
from repro.spark.broadcast import Broadcast
from repro.spark.rdd import BinaryRecordsRDD, ParallelCollectionRDD, RDD, TextFileRDD
from repro.spark.scheduler import DAGScheduler
from repro.spark.shuffle import ShuffleStore, estimate_bytes

__all__ = ["SparkContext"]

T = TypeVar("T")


class SparkContext:
    """Driver-side handle to the simulated Spark cluster.

    ``default_parallelism`` follows Spark's rule of thumb (2 tasks per
    core) unless overridden.  All simulated-time accounting accumulates in
    ``job_log``; :meth:`simulated_seconds` sums it, and
    :meth:`reset_metrics` clears it between benchmark measurements (also
    re-arming the once-per-run JAR-shipping charge of Section VI).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        hdfs: SimulatedHDFS | None = None,
        cost_model: CostModel | None = None,
        default_parallelism: int | None = None,
        executors: int | str | None = None,
        events_out: str | None = None,
        runtime: RuntimeConfig | None = None,
    ):
        self.cluster = cluster
        # Unified runtime policy.  Precedence rule: an explicit
        # RuntimeConfig wins over the loose executors/events_out
        # keywords; without one, the loose keywords are packed into an
        # implicit RuntimeConfig and behave exactly as before.
        if runtime is None:
            runtime = RuntimeConfig(executors=executors, events_out=events_out)
        self.runtime = runtime
        # Driver-side recovery state (fault plan, virtual-worker
        # blacklist); inert unless the runtime carries a FaultPlan.
        self.recovery = RecoveryContext(runtime)
        # Cross-query cache handle (None unless the runtime sets
        # cache_budget_bytes); the broadcast/partitioned joins reuse
        # built indexes through it.
        self.cache = cache_for(runtime)
        # Structured event log: given a JSONL path, every job emits the
        # QueryStart/StageSubmitted/TaskStart/... stream the monitor
        # replays.  None keeps the disabled global sink — a strict no-op.
        self._event_log = (
            EventLog(path=runtime.events_out) if runtime.events_out else None
        )
        # Real-parallelism knob: "serial"/None/1 runs tasks inline (the
        # default, and what tests use); an int > 1 dispatches each stage's
        # tasks to that many worker processes.  Results are byte-identical
        # either way; a TaskPool instance passes through for tests.
        self.task_pool = make_pool(runtime.executors)
        self.hdfs = hdfs or SimulatedHDFS(
            datanodes=tuple(f"node{i}" for i in range(cluster.num_nodes))
        )
        self.cost_model = cost_model or CostModel()
        self.default_parallelism = default_parallelism or (cluster.total_cores * 2)
        self._scheduler = DAGScheduler(self)
        self._shuffle_store = ShuffleStore()
        self._cache: dict[tuple[int, int], list] = {}
        self._broadcast_counter = 0
        self.job_log: list[QueryMetrics] = []
        self._jar_shipped = False
        self.broadcast_overhead_seconds = 0.0
        self.last_plan: dict | None = None

    # -- dataset creation -------------------------------------------------------

    def parallelize(self, data: list[T], num_partitions: int | None = None) -> RDD[T]:
        """Distribute a driver-side list into an RDD."""
        if num_partitions is None:
            num_partitions = self.default_parallelism
        return ParallelCollectionRDD(self, data, num_partitions)

    def text_file(self, path: str, min_partitions: int | None = None) -> RDD[str]:
        """Lines of an HDFS text file (one partition per split)."""
        return TextFileRDD(self, path, min_partitions or 1)

    textFile = text_file

    def binary_records(self, path: str, min_partitions: int | None = None) -> RDD[bytes]:
        """Records of a paged binary HDFS file (one partition per split).

        The input side of the binary-geometry pipeline (Section III's
        future work, implemented here as the a3 ablation's fast path).
        """
        return BinaryRecordsRDD(self, path, min_partitions or 1)

    # -- broadcast ---------------------------------------------------------------

    def broadcast(
        self,
        value: T,
        cost_weight: float = 1.0,
        fingerprint: bytes | None = None,
    ) -> Broadcast[T]:
        """Replicate a read-only value to every executor node.

        Charges simulated network time for shipping the payload to each
        node (pipelined torrent-style: one serialisation plus a per-extra-
        node factor), which is how the broadcast join pays for a growing
        cluster.  The shipping charge is identical whether the payload was
        freshly built or reused from the cross-query cache — the simulated
        cluster still has to ship it; ``fingerprint`` only links the
        :class:`Broadcast` to its cache entry for destroy-time
        invalidation.
        """
        self._broadcast_counter += 1
        size = self._broadcast_size(value) * cost_weight
        model = self.cost_model
        nodes = self.cluster.num_nodes
        self.broadcast_overhead_seconds += (
            size * model.broadcast_byte * (1.0 + model.broadcast_node_factor * (nodes - 1))
        )
        return Broadcast(self._broadcast_counter, value, size, fingerprint)

    @staticmethod
    def _broadcast_size(value) -> int:
        # Spatial indexes expose their entries; other values use the
        # generic estimator.
        iter_all = getattr(value, "iter_all", None)
        if iter_all is not None:
            total = 0
            count = 0
            for item, envelope in iter_all():
                total += estimate_bytes(item) + 32
                count += 1
            return total + 48 * max(1, count // 8)  # interior-node overhead
        return estimate_bytes(value)

    # -- metrics ------------------------------------------------------------------

    def _charge_jar_ship(self) -> bool:
        """True exactly once per measured run (per-run JAR shipping)."""
        if self._jar_shipped:
            return False
        self._jar_shipped = True
        return True

    def _record_job(self, metrics: QueryMetrics) -> None:
        self.job_log.append(metrics)

    def record_plan(self, info: dict) -> None:
        """Attach the optimizer's plan summary to the next profile.

        Join helpers call this with :meth:`PlanChoice.to_info`-style dicts
        so :meth:`to_profile` can render an explain()-style header without
        perturbing any simulated-seconds accounting.
        """
        self.last_plan = dict(info)

    def simulated_seconds(self) -> float:
        """Total simulated runtime of every job since the last reset."""
        return self.broadcast_overhead_seconds + sum(
            job.simulated_seconds for job in self.job_log
        )

    def reset_metrics(self) -> None:
        """Clear the job log and re-arm per-run overheads."""
        self.job_log.clear()
        self.broadcast_overhead_seconds = 0.0
        self._jar_shipped = False
        self.last_plan = None

    def totals(self) -> dict[str, float]:
        """Aggregate resource counters over the whole job log."""
        merged: dict[str, float] = {}
        for job in self.job_log:
            for resource, units in job.totals().items():
                merged[resource] = merged.get(resource, 0.0) + units
        return merged

    def to_profile(self, name: str = "spark-query") -> QueryProfile:
        """Profile tree for everything run since the last metrics reset.

        Children are the driver-side broadcast cost (when any) plus one
        subtree per job (stages with task-skew stats); their simulated
        seconds sum to :meth:`simulated_seconds` exactly.
        """
        root = ProfileNode(
            name,
            sim_seconds=self.simulated_seconds(),
            info={
                "engine": "SpatialSpark",
                "nodes": self.cluster.num_nodes,
                "cores": self.cluster.total_cores,
                "jobs": len(self.job_log),
            },
        )
        if self.last_plan:
            for key, value in self.last_plan.items():
                root.info[f"plan_{key}"] = value
        if self.broadcast_overhead_seconds:
            root.add_child(
                ProfileNode(
                    "broadcast",
                    sim_seconds=self.broadcast_overhead_seconds,
                    info={"kind": "collect + index build + torrent fan-out"},
                )
            )
        for job in self.job_log:
            root.add_child(job.to_profile(self.cost_model).root)
        return QueryProfile(root)

    # -- cache & internal helpers ----------------------------------------------

    def _cache_get_or_compute(self, rdd: RDD, split: int) -> list:
        key = (rdd.id, split)
        if key not in self._cache:
            self._cache[key] = list(rdd.compute(split))
        return self._cache[key]

    def _run_partition_sizes_job(self, rdd: RDD) -> list[int]:
        """Count records per partition (zipWithIndex's helper job)."""
        return self._scheduler.run_job(rdd, lambda it: sum(1 for _ in it))

    def clear_state(self) -> None:
        """Drop shuffle blocks and cached partitions (between benchmarks)."""
        self._shuffle_store.clear()
        self._cache.clear()

    # -- event log ---------------------------------------------------------------

    @property
    def event_log(self) -> EventLog | None:
        """The context-owned event log (None when ``events_out`` unset)."""
        return self._event_log

    def close_events(self) -> None:
        """Flush and close the events file (the in-memory stream stays)."""
        if self._event_log is not None:
            self._event_log.close()
