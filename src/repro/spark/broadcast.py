"""Broadcast variables.

Fig 2 of the paper broadcasts the right-side STRtree to every executor
(``sc.broadcast(strtree)``).  In this single-process simulation the value
is shared by reference; the *cost* of shipping it to each node is charged
by the context when the broadcast is created, using the same byte
estimator as the shuffle path.
"""

from __future__ import annotations

from typing import Generic, TypeVar

__all__ = ["Broadcast"]

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value replicated to every executor node."""

    __slots__ = ("_value", "id", "size_bytes", "_destroyed")

    def __init__(self, broadcast_id: int, value: T, size_bytes: int):
        self.id = broadcast_id
        self._value = value
        self.size_bytes = size_bytes
        self._destroyed = False

    @property
    def value(self) -> T:
        """The broadcast payload."""
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} has been destroyed")
        return self._value

    def destroy(self) -> None:
        """Release the payload (subsequent access raises)."""
        self._destroyed = True
        self._value = None
