"""Broadcast variables.

Fig 2 of the paper broadcasts the right-side STRtree to every executor
(``sc.broadcast(strtree)``).  In this single-process simulation the value
is shared by reference; the *cost* of shipping it to each node is charged
by the context when the broadcast is created, using the same byte
estimator as the shuffle path.
"""

from __future__ import annotations

from typing import Generic, TypeVar

__all__ = ["Broadcast"]

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value replicated to every executor node.

    ``fingerprint`` is the payload's content key in the cross-query cache
    when the value came from (or went into) it; :meth:`destroy` then also
    drops the cache entry, so an explicitly released payload can never be
    served to a later query.
    """

    __slots__ = ("_value", "id", "size_bytes", "_destroyed", "fingerprint")

    def __init__(
        self,
        broadcast_id: int,
        value: T,
        size_bytes: int,
        fingerprint: bytes | None = None,
    ):
        self.id = broadcast_id
        self._value = value
        self.size_bytes = size_bytes
        self._destroyed = False
        self.fingerprint = fingerprint

    @property
    def value(self) -> T:
        """The broadcast payload."""
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} has been destroyed")
        return self._value

    def destroy(self) -> None:
        """Release the payload (subsequent access raises).

        A cache-resident payload is invalidated too: destroy means "this
        data is gone", and the cross-query cache must agree.
        """
        if self.fingerprint is not None:
            from repro.cache import get_cache

            get_cache().invalidate(self.fingerprint)
        self._destroyed = True
        self._value = None
