"""Resilient Distributed Datasets: the lazy collection API of mini-Spark.

Implements the subset of the RDD API that Fig 2 of the paper exercises
(``textFile``/``map``/``flatMap``/``filter``/``zipWithIndex``/``collect``)
plus the pair-RDD operations (``reduceByKey``/``groupByKey``/``join``/
``cogroup``) that the partitioned spatial join and the example analytics
need.  Transformations are lazy and build a lineage DAG; actions hand the
DAG to the :class:`~repro.spark.scheduler.DAGScheduler`, which splits it
into stages at shuffle dependencies — exactly Spark's execution model, at
miniature scale.
"""

from __future__ import annotations

import random as _random_mod
from typing import Any, Callable, Generic, Iterable, Iterator, TypeVar

from repro.cluster.model import Resource
from repro.errors import SparkError
from repro.hdfs import read_split_lines
from repro.spark.shuffle import HashPartitioner, estimate_bytes
from repro.spark.taskcontext import current_task

__all__ = [
    "RDD",
    "Dependency",
    "NarrowDependency",
    "ShuffleDependency",
    "ParallelCollectionRDD",
    "TextFileRDD",
    "MapPartitionsRDD",
    "ShuffledRDD",
    "CoGroupedRDD",
    "UnionRDD",
]

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


class Dependency:
    """Edge in the lineage DAG."""

    def __init__(self, parent: "RDD"):
        self.parent = parent


class NarrowDependency(Dependency):
    """Child partition i depends only on parent partition i (pipelined)."""


class ShuffleDependency(Dependency):
    """Child partitions depend on all parent partitions (stage boundary).

    ``key_func`` extracts the routing key from a record; ``combiner`` is an
    optional (create, merge_value, merge_combiners) triple enabling
    map-side combining (reduceByKey).
    """

    def __init__(
        self,
        parent: "RDD",
        partitioner,
        combiner: tuple[Callable, Callable, Callable] | None = None,
    ):
        super().__init__(parent)
        self.partitioner = partitioner
        self.combiner = combiner
        self.shuffle_id: int | None = None  # assigned by the scheduler


class RDD(Generic[T]):
    """An immutable, lazily evaluated, partitioned collection."""

    _next_id = 0

    def __init__(self, sc, dependencies: list[Dependency]):
        self.sc = sc
        self.dependencies = dependencies
        self.id = RDD._next_id
        RDD._next_id += 1
        self.cached = False

    # -- to be provided by subclasses --------------------------------------

    @property
    def num_partitions(self) -> int:
        raise NotImplementedError

    def compute(self, split: int) -> Iterator[T]:
        """Produce the records of one partition (scheduler-invoked)."""
        raise NotImplementedError

    # -- lineage helpers ----------------------------------------------------

    def _narrow_parent(self) -> "RDD":
        for dep in self.dependencies:
            if isinstance(dep, NarrowDependency):
                return dep.parent
        raise SparkError(f"RDD {self.id} has no narrow parent")

    def iterator(self, split: int) -> Iterator[T]:
        """Compute or fetch-from-cache one partition."""
        if self.cached:
            return iter(self.sc._cache_get_or_compute(self, split))
        return self.compute(split)

    # -- transformations (lazy) ---------------------------------------------

    def map(self, f: Callable[[T], U]) -> "RDD[U]":
        """Apply ``f`` to every record."""
        return MapPartitionsRDD(self, lambda split, it: (f(x) for x in it))

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD[U]":
        """Apply ``f`` and flatten the results."""
        return MapPartitionsRDD(
            self, lambda split, it: (y for x in it for y in f(x))
        )

    # CamelCase aliases keep ports of the paper's Scala skeleton readable.
    flatMap = flat_map

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        """Keep records satisfying ``predicate``."""
        return MapPartitionsRDD(
            self, lambda split, it: (x for x in it if predicate(x))
        )

    def map_partitions(
        self, f: Callable[[Iterator[T]], Iterable[U]]
    ) -> "RDD[U]":
        """Apply ``f`` to each whole partition."""
        return MapPartitionsRDD(self, lambda split, it: f(it))

    mapPartitions = map_partitions

    def map_partitions_with_index(
        self, f: Callable[[int, Iterator[T]], Iterable[U]]
    ) -> "RDD[U]":
        """Apply ``f(split_index, iterator)`` to each partition."""
        return MapPartitionsRDD(self, f)

    def zip_with_index(self) -> "RDD[tuple[T, int]]":
        """Pair each record with its global index (requires a size job).

        Mirrors Spark: a lightweight count job determines per-partition
        offsets, then indexing is a narrow transformation.
        """
        sizes = self.sc._run_partition_sizes_job(self)
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def index_partition(split: int, it: Iterator[T]):
            base = offsets[split]
            for i, record in enumerate(it):
                yield (record, base + i)

        return MapPartitionsRDD(self, index_partition)

    zipWithIndex = zip_with_index

    def key_by(self, f: Callable[[T], K]) -> "RDD[tuple[K, T]]":
        """Turn records into (f(record), record) pairs."""
        return self.map(lambda x: (f(x), x))

    keyBy = key_by

    def union(self, other: "RDD[T]") -> "RDD[T]":
        """Concatenate two RDDs (partitions are appended)."""
        return UnionRDD(self.sc, [self, other])

    def distinct(self, num_partitions: int | None = None) -> "RDD[T]":
        """Remove duplicate records (via a shuffle)."""
        paired = self.map(lambda x: (x, None))
        reduced = paired.reduce_by_key(lambda a, b: a, num_partitions)
        return reduced.map(lambda kv: kv[0])

    def repartition(self, num_partitions: int) -> "RDD[T]":
        """Redistribute records across ``num_partitions`` via a shuffle."""
        paired = self.map_partitions_with_index(
            lambda split, it: ((split + i, x) for i, x in enumerate(it))
        )
        shuffled = ShuffledRDD(paired, HashPartitioner(num_partitions))
        return shuffled.map(lambda kv: kv[1])

    def sample(self, fraction: float, seed: int = 17) -> "RDD[T]":
        """Bernoulli sample of the records (deterministic per partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise SparkError(f"fraction must be in [0, 1], got {fraction}")

        def sample_partition(split: int, it: Iterator[T]):
            rng = _random_mod.Random(seed * 1_000_003 + split)
            return (x for x in it if rng.random() < fraction)

        return MapPartitionsRDD(self, sample_partition)

    def sort_by(
        self,
        key_func: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD[T]":
        """Globally sort records by ``key_func`` (range-partitioned shuffle)."""
        from repro.spark.shuffle import RangePartitioner

        num_partitions = num_partitions or self.num_partitions
        sample = [key_func(x) for x in self.sample(min(1.0, 0.1)).collect()]
        if not sample:
            sample = [key_func(x) for x in self.take(100)]
        sample.sort()
        if num_partitions > 1 and sample:
            step = max(1, len(sample) // num_partitions)
            boundaries = sample[step::step][: num_partitions - 1]
        else:
            boundaries = []
        paired = self.map(lambda x: (key_func(x), x))
        shuffled = ShuffledRDD(paired, RangePartitioner(boundaries))

        def sort_partition(split: int, it):
            records = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return (v for _, v in records)

        result = MapPartitionsRDD(shuffled, sort_partition)
        if not ascending:
            # Range partitions are ascending; reverse partition order too.
            return result  # partition-internal order reversed is sufficient
        return result

    sortBy = sort_by

    # -- pair-RDD transformations -------------------------------------------

    def _default_partitioner(self, num_partitions: int | None) -> HashPartitioner:
        return HashPartitioner(num_partitions or self.num_partitions)

    def reduce_by_key(
        self, f: Callable[[V, V], V], num_partitions: int | None = None
    ) -> "RDD[tuple[K, V]]":
        """Merge values per key with map-side combining."""
        combiner = (lambda v: v, lambda acc, v: f(acc, v), lambda a, b: f(a, b))
        return ShuffledRDD(self, self._default_partitioner(num_partitions), combiner)

    reduceByKey = reduce_by_key

    def group_by_key(
        self, num_partitions: int | None = None
    ) -> "RDD[tuple[K, list[V]]]":
        """Collect all values per key into lists."""
        combiner = (
            lambda v: [v],
            lambda acc, v: (acc.append(v), acc)[1],
            lambda a, b: a + b,
        )
        return ShuffledRDD(self, self._default_partitioner(num_partitions), combiner)

    groupByKey = group_by_key

    def combine_by_key(
        self,
        create: Callable[[V], U],
        merge_value: Callable[[U, V], U],
        merge_combiners: Callable[[U, U], U],
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, U]]":
        """General aggregation with distinct combiner/accumulator types."""
        return ShuffledRDD(
            self,
            self._default_partitioner(num_partitions),
            (create, merge_value, merge_combiners),
        )

    def cogroup(
        self, other: "RDD[tuple[K, Any]]", num_partitions: int | None = None
    ) -> "RDD[tuple[K, tuple[list, list]]]":
        """Group both RDDs' values per key: (key, (left_vals, right_vals))."""
        partitioner = self._default_partitioner(num_partitions)
        return CoGroupedRDD(self, other, partitioner)

    def join(
        self, other: "RDD[tuple[K, Any]]", num_partitions: int | None = None
    ) -> "RDD[tuple[K, tuple[Any, Any]]]":
        """Inner equi-join of two pair RDDs."""
        grouped = self.cogroup(other, num_partitions)

        def emit(kv):
            key, (left_vals, right_vals) = kv
            return (
                (key, (lv, rv)) for lv in left_vals for rv in right_vals
            )

        return grouped.flat_map(emit)

    def map_values(self, f: Callable[[V], U]) -> "RDD[tuple[K, U]]":
        """Apply ``f`` to the value of every (key, value) pair."""
        return self.map(lambda kv: (kv[0], f(kv[1])))

    mapValues = map_values

    # -- actions (eager) ------------------------------------------------------

    def collect(self) -> list[T]:
        """Materialise every record on the driver."""
        chunks = self.sc._scheduler.run_job(self, lambda it: list(it))
        return [record for chunk in chunks for record in chunk]

    def count(self) -> int:
        """Number of records."""
        counts = self.sc._scheduler.run_job(self, lambda it: sum(1 for _ in it))
        return sum(counts)

    def take(self, n: int) -> list[T]:
        """First ``n`` records in partition order.

        Computes partitions one at a time (like Spark's incremental take)
        until enough records are gathered.
        """
        taken: list[T] = []
        for split in range(self.num_partitions):
            if len(taken) >= n:
                break
            chunk = self.sc._scheduler.run_job(
                self, lambda it: list(it), partitions=[split]
            )[0]
            taken.extend(chunk[: n - len(taken)])
        return taken

    def first(self) -> T:
        """The first record; raises on an empty RDD."""
        records = self.take(1)
        if not records:
            raise SparkError("RDD is empty")
        return records[0]

    def reduce(self, f: Callable[[T, T], T]) -> T:
        """Fold all records with ``f``; raises on an empty RDD."""

        def reduce_partition(it: Iterator[T]):
            acc = None
            present = False
            for record in it:
                acc = record if not present else f(acc, record)
                present = True
            return (present, acc)

        partials = self.sc._scheduler.run_job(self, reduce_partition)
        values = [acc for present, acc in partials if present]
        if not values:
            raise SparkError("reduce of empty RDD")
        result = values[0]
        for value in values[1:]:
            result = f(result, value)
        return result

    def count_by_key(self) -> dict:
        """Count records per key (drives a reduce_by_key job)."""
        return dict(self.map_values(lambda _: 1).reduce_by_key(lambda a, b: a + b).collect())

    countByKey = count_by_key

    def cache(self) -> "RDD[T]":
        """Keep computed partitions in memory for reuse across jobs."""
        self.cached = True
        return self

    persist = cache


class ParallelCollectionRDD(RDD[T]):
    """An RDD over a driver-side list, sliced into partitions."""

    def __init__(self, sc, data: list[T], num_partitions: int):
        super().__init__(sc, [])
        if num_partitions < 1:
            raise SparkError(f"need >= 1 partition, got {num_partitions}")
        self._data = list(data)
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def compute(self, split: int) -> Iterator[T]:
        n = len(self._data)
        start = split * n // self._num_partitions
        end = (split + 1) * n // self._num_partitions
        return iter(self._data[start:end])


class TextFileRDD(RDD[str]):
    """Lines of an HDFS text file, one partition per input split."""

    def __init__(self, sc, path: str, min_partitions: int = 1):
        super().__init__(sc, [])
        from repro.hdfs import split_boundaries

        self.path = path
        self._splits = split_boundaries(sc.hdfs, path, min_partitions)

    @property
    def num_partitions(self) -> int:
        return len(self._splits)

    def compute(self, split: int) -> Iterator[str]:
        offset, length = self._splits[split]
        current_task().add(Resource.HDFS_BYTES, length)
        return iter(read_split_lines(self.sc.hdfs, self.path, offset, length))

    def preferred_hosts(self, split: int) -> tuple[str, ...]:
        """Datanodes holding the split's first block (locality hint)."""
        status = self.sc.hdfs.status(self.path)
        offset, _ = self._splits[split]
        for block in status.blocks:
            if block.offset <= offset < block.offset + max(block.length, 1):
                return block.hosts
        return ()


class BinaryRecordsRDD(RDD[bytes]):
    """Records of a paged binary HDFS file, one partition per split.

    The binary counterpart of :class:`TextFileRDD` — the on-HDFS half of
    the paper's future-work binary geometry representation.
    """

    def __init__(self, sc, path: str, min_partitions: int = 1):
        super().__init__(sc, [])
        from repro.hdfs import record_split_boundaries

        self.path = path
        self._splits = record_split_boundaries(sc.hdfs, path, min_partitions)

    @property
    def num_partitions(self) -> int:
        return len(self._splits)

    def compute(self, split: int) -> Iterator[bytes]:
        from repro.hdfs import read_split_records

        offset, length = self._splits[split]
        current_task().add(Resource.HDFS_BYTES, length)
        return iter(read_split_records(self.sc.hdfs, self.path, offset, length))


class MapPartitionsRDD(RDD[U]):
    """Narrow transformation: ``f(split, parent_iterator)``."""

    def __init__(self, parent: RDD, f: Callable[[int, Iterator], Iterable[U]]):
        super().__init__(parent.sc, [NarrowDependency(parent)])
        self._f = f

    @property
    def num_partitions(self) -> int:
        return self._narrow_parent().num_partitions

    def compute(self, split: int) -> Iterator[U]:
        parent = self._narrow_parent()
        return iter(self._f(split, parent.iterator(split)))


class ShuffledRDD(RDD[tuple]):
    """Reduce side of a shuffle: yields (key, value-or-combined) pairs."""

    def __init__(self, parent: RDD, partitioner, combiner=None):
        self.shuffle_dep = ShuffleDependency(parent, partitioner, combiner)
        super().__init__(parent.sc, [self.shuffle_dep])

    @property
    def num_partitions(self) -> int:
        return self.shuffle_dep.partitioner.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        store = self.sc._shuffle_store
        dep = self.shuffle_dep
        if dep.shuffle_id is None:
            raise SparkError("shuffle has not been materialised (scheduler bug)")
        num_maps = dep.parent.num_partitions
        task = current_task()
        if dep.combiner is None:
            for record in store.read(dep.shuffle_id, num_maps, split):
                task.add(Resource.SHUFFLE_BYTES, estimate_bytes(record))
                yield record
            return
        _, _, merge_combiners = dep.combiner
        merged: dict = {}
        for key, combined in store.read(dep.shuffle_id, num_maps, split):
            task.add(Resource.SHUFFLE_BYTES, estimate_bytes((key, combined)))
            if key in merged:
                merged[key] = merge_combiners(merged[key], combined)
            else:
                merged[key] = combined
        yield from merged.items()


class CoGroupedRDD(RDD[tuple]):
    """Joint grouping of two pair RDDs under one partitioner."""

    def __init__(self, left: RDD, right: RDD, partitioner):
        self.left_dep = ShuffleDependency(left, partitioner)
        self.right_dep = ShuffleDependency(right, partitioner)
        super().__init__(left.sc, [self.left_dep, self.right_dep])
        self._partitioner = partitioner

    @property
    def num_partitions(self) -> int:
        return self._partitioner.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        store = self.sc._shuffle_store
        task = current_task()
        groups: dict = {}
        for side, dep in ((0, self.left_dep), (1, self.right_dep)):
            if dep.shuffle_id is None:
                raise SparkError("shuffle has not been materialised (scheduler bug)")
            for key, value in store.read(
                dep.shuffle_id, dep.parent.num_partitions, split
            ):
                task.add(Resource.SHUFFLE_BYTES, estimate_bytes((key, value)))
                groups.setdefault(key, ([], []))[side].append(value)
        yield from groups.items()


class UnionRDD(RDD[T]):
    """Concatenation: child partitions are the parents' partitions appended."""

    def __init__(self, sc, parents: list[RDD[T]]):
        super().__init__(sc, [NarrowDependency(p) for p in parents])
        self._parents = parents

    @property
    def num_partitions(self) -> int:
        return sum(p.num_partitions for p in self._parents)

    def compute(self, split: int) -> Iterator[T]:
        for parent in self._parents:
            if split < parent.num_partitions:
                return parent.iterator(split)
            split -= parent.num_partitions
        raise SparkError(f"partition {split} out of range for union")
