"""Mini-Spark substrate: RDDs, DAG scheduler, shuffle, broadcast."""

from repro.spark.broadcast import Broadcast
from repro.spark.context import SparkContext
from repro.spark.rdd import (
    BinaryRecordsRDD,
    CoGroupedRDD,
    MapPartitionsRDD,
    ParallelCollectionRDD,
    RDD,
    ShuffledRDD,
    TextFileRDD,
    UnionRDD,
)
from repro.spark.shuffle import HashPartitioner, RangePartitioner, estimate_bytes
from repro.spark.taskcontext import current_task, task_scope

__all__ = [
    "Broadcast",
    "SparkContext",
    "RDD",
    "BinaryRecordsRDD",
    "ParallelCollectionRDD",
    "TextFileRDD",
    "MapPartitionsRDD",
    "ShuffledRDD",
    "CoGroupedRDD",
    "UnionRDD",
    "HashPartitioner",
    "RangePartitioner",
    "estimate_bytes",
    "current_task",
    "task_scope",
]
