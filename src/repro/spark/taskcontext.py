"""Per-task metric context.

While an executor computes a partition, instrumented code anywhere in the
stack (WKT readers, refinement engines, join operators) accrues resource
counts against the *current task* without threading a handle through every
call — mirroring how Spark's ``TaskContext.get()`` works.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.cluster.metrics import TaskMetrics

__all__ = ["current_task", "task_scope"]

_LOCAL = threading.local()


def current_task() -> TaskMetrics:
    """The metrics sink for the task being computed.

    Outside any task (driver-side code, plain unit tests) a throwaway
    sink is returned, so instrumented code never needs a null check.
    """
    task = getattr(_LOCAL, "task", None)
    if task is None:
        return TaskMetrics()
    return task


@contextlib.contextmanager
def task_scope(task: TaskMetrics) -> Iterator[TaskMetrics]:
    """Install ``task`` as the current task for the duration of the block."""
    previous = getattr(_LOCAL, "task", None)
    _LOCAL.task = task
    try:
        yield task
    finally:
        _LOCAL.task = previous
