"""Shuffle machinery: partitioners, in-memory shuffle blocks, size estimates.

Spark splits a job into stages at shuffle dependencies; map-side tasks
write their output bucketed by reduce partition, and reduce-side tasks
fetch their bucket from every map task.  We keep the blocks in an
in-memory store (the simulation is single-process) and account the bytes
moved so the cost model can charge network time.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

import numpy as np

from repro.errors import SparkError
from repro.obs.registry import REGISTRY

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "ShuffleStore",
    "estimate_bytes",
    "records_bytes",
]


def estimate_bytes(record: Any) -> int:
    """Cheap serialized-size estimate for shuffle/broadcast accounting.

    Not exact serialisation — a stable, fast heuristic: containers are the
    sum of their elements plus a small header, strings weigh their UTF-8
    byte length, geometries 16 bytes per vertex (two float64 coordinates),
    numpy arrays their buffer size plus a header, scalars 8.  The
    container walk is iterative (explicit stack) so deeply nested records
    can't hit the interpreter recursion limit.
    """
    total = 0
    stack = [record]
    while stack:
        item = stack.pop()
        if item is None:
            total += 1
        elif isinstance(item, (bytes, bytearray)):
            total += len(item)
        elif isinstance(item, str):
            total += len(item.encode("utf-8"))
        elif isinstance(item, (int, float, bool)):
            total += 8
        elif isinstance(item, (tuple, list)):
            total += 8
            stack.extend(item)
        elif isinstance(item, dict):
            total += 16
            for key, value in item.items():
                stack.append(key)
                stack.append(value)
        elif isinstance(item, np.ndarray):
            total += 16 + item.nbytes
        else:
            num_points = getattr(item, "num_points", None)
            if num_points is not None:
                total += 24 + 16 * int(num_points)
            else:
                column_nbytes = getattr(item, "column_nbytes", None)
                if column_nbytes is not None:
                    total += 16 + int(column_nbytes)
                else:
                    total += 64  # opaque object
    return total


_SCALAR_TYPES = (int, float, bool)


def records_bytes(records) -> int:
    """Bulk :func:`estimate_bytes` over one shuffle bucket.

    Three cases, cheapest first:

    * a :class:`~repro.columnar.block.ColumnBlock` carries its exact
      object-path total in ``charge_bytes`` — return it directly;
    * the dominant spatial-join record shape ``(key, (id, geometry))``
      with scalar key/id sizes to ``56 + 16 * num_points`` without
      walking the container (byte-for-byte what the generic walk
      produces for that shape);
    * anything else falls back to the per-record estimator.

    The returned total is identical to ``sum(estimate_bytes(r) for r in
    records)`` for every input — this is a hot-loop optimisation, not a
    new size model, so ``SHUFFLE_BYTES`` charges cannot drift.
    """
    charge = getattr(records, "charge_bytes", None)
    if charge is not None:
        return int(charge)
    total = 0
    for record in records:
        if (
            type(record) is tuple
            and len(record) == 2
            and type(record[0]) in _SCALAR_TYPES
            and type(record[1]) is tuple
            and len(record[1]) == 2
            and type(record[1][0]) in _SCALAR_TYPES
        ):
            num_points = getattr(record[1][1], "num_points", None)
            if num_points is not None:
                total += 56 + 16 * int(num_points)
                continue
        total += estimate_bytes(record)
    return total


class HashPartitioner:
    """Route keys to ``hash(key) % num_partitions``."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise SparkError(f"need >= 1 partition, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Hashable) -> int:
        return hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("hash", self.num_partitions))


class RangePartitioner:
    """Route ordered keys into contiguous ranges given sorted boundaries.

    ``boundaries`` has ``num_partitions - 1`` entries; key k goes to the
    first partition whose boundary exceeds it (binary search).
    """

    def __init__(self, boundaries: list):
        self.boundaries = list(boundaries)
        self.num_partitions = len(self.boundaries) + 1

    def partition(self, key) -> int:
        lo, hi = 0, len(self.boundaries)
        while lo < hi:
            mid = (lo + hi) // 2
            if key <= self.boundaries[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and other.boundaries == self.boundaries
        )

    def __hash__(self) -> int:
        return hash(("range", tuple(self.boundaries)))


class ShuffleStore:
    """In-memory shuffle block store.

    Blocks are keyed ``(shuffle_id, map_partition, reduce_partition)``;
    byte counters are tracked per shuffle for cost accounting.
    """

    def __init__(self) -> None:
        self._blocks: dict[tuple[int, int, int], list] = {}
        self._bytes_by_shuffle: dict[int, int] = {}
        self._next_shuffle_id = 0

    def new_shuffle_id(self) -> int:
        shuffle_id = self._next_shuffle_id
        self._next_shuffle_id += 1
        return shuffle_id

    def write(
        self,
        shuffle_id: int,
        map_partition: int,
        bucketed: dict[int, list],
    ) -> int:
        """Store one map task's buckets; returns bytes written.

        Buckets may be plain record lists or packed
        :class:`~repro.columnar.block.ColumnBlock` values; blocks charge
        their exact object-path byte total (so the registry counters and
        cost model cannot tell the representations apart) while their
        honest encoded size is tracked in
        :data:`~repro.columnar.stats.COLUMNAR_STATS`.
        """
        from repro.columnar.stats import COLUMNAR_STATS

        written = 0
        for reduce_partition, records in bucketed.items():
            self._blocks[(shuffle_id, map_partition, reduce_partition)] = records
            written += records_bytes(records)
            nbytes = getattr(records, "nbytes", None)
            if nbytes is not None:
                COLUMNAR_STATS.shuffle_blocks += 1
                COLUMNAR_STATS.shuffle_block_nbytes += int(nbytes)
                COLUMNAR_STATS.shuffle_object_bytes += int(records.charge_bytes)
        self._bytes_by_shuffle[shuffle_id] = (
            self._bytes_by_shuffle.get(shuffle_id, 0) + written
        )
        REGISTRY.inc("shuffle.blocks_written", len(bucketed))
        REGISTRY.inc("shuffle.bytes_written", written)
        return written

    @staticmethod
    def bucket_bytes(bucketed: dict[int, list]) -> int:
        """Bytes :meth:`write` would report for these buckets — no side effects.

        Pool workers charge ``SHUFFLE_BYTES`` with this (the actual
        ``write`` happens on the driver at merge time, so the store and
        its registry counters only ever mutate in one process).
        """
        return sum(records_bytes(records) for records in bucketed.values())

    def read(
        self, shuffle_id: int, num_map_partitions: int, reduce_partition: int
    ) -> Iterable:
        """Yield every record destined for ``reduce_partition``."""
        REGISTRY.inc("shuffle.reduce_fetches")
        for map_partition in range(num_map_partitions):
            block = self._blocks.get((shuffle_id, map_partition, reduce_partition))
            if block:
                REGISTRY.inc("shuffle.blocks_read")
                yield from block

    def bytes_for(self, shuffle_id: int) -> int:
        """Total bytes written for a shuffle."""
        return self._bytes_by_shuffle.get(shuffle_id, 0)

    # -- lineage recovery --------------------------------------------------------

    def drop_map_output(self, shuffle_id: int, map_partition: int) -> int:
        """Simulate storage loss of one map task's output; returns blocks dropped.

        Byte accounting is left untouched: the original write happened and
        was legitimately charged; losing the blocks costs nothing on the
        simulated clock until someone recomputes them.
        """
        keys = [
            key
            for key in self._blocks
            if key[0] == shuffle_id and key[1] == map_partition
        ]
        for key in keys:
            del self._blocks[key]
        return len(keys)

    def restore(
        self,
        shuffle_id: int,
        map_partition: int,
        bucketed: dict[int, list],
    ) -> None:
        """Re-insert recomputed buckets *without* charging any counters.

        Lineage recovery restores state, it does not re-bill: the
        fault-free run already paid for this map output once, and the
        byte-identity invariant (counters and profiles equal to the
        fault-free run) requires the recompute to stay off the books.
        """
        for reduce_partition, records in bucketed.items():
            self._blocks[(shuffle_id, map_partition, reduce_partition)] = records

    def clear(self) -> None:
        """Drop all blocks (between benchmark runs)."""
        self._blocks.clear()
        self._bytes_by_shuffle.clear()
