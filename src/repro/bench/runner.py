"""Benchmark runner: execute a workload on an engine at a cluster size.

Every run performs the *real* join (real parsing, indexing, refinement —
the result row count is asserted identical across engines) and reports
the deterministic simulated runtime from the cost model, which is what
Tables 1-2 and Figs 4-5 plot.  See DESIGN.md section 5 for why simulated
makespans replace EC2 wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.model import ClusterSpec, CostModel
from repro.core.broadcast_join import broadcast_spatial_join, read_geometry_pairs
from repro.core.standalone import standalone_spatial_join
from repro.errors import BenchError
from repro.bench.workloads import MaterializedWorkload, materialize
from repro.impala.catalog import ColumnType
from repro.impala.coordinator import ImpalaBackend
from repro.obs.profile import QueryProfile
from repro.runtime.config import RuntimeConfig
from repro.spark.context import SparkContext

__all__ = [
    "RunResult",
    "run_spatialspark",
    "run_ispmc",
    "run_isp_standalone",
    "run_engine",
    "SINGLE_NODE_SPEC",
    "cluster_spec",
]

# Table 1's single node is the in-house machine: 16 cores, 128 GB.
SINGLE_NODE_SPEC = ClusterSpec(num_nodes=1, cores_per_node=16, mem_per_node_gb=128.0,
                               name="in-house")


def cluster_spec(num_nodes: int) -> ClusterSpec:
    """The paper's EC2 fleet (g2.2xlarge: 8 vCPU, 15 GB) at any size."""
    if num_nodes == 1:
        return SINGLE_NODE_SPEC
    return ClusterSpec(num_nodes=num_nodes, cores_per_node=8, mem_per_node_gb=15.0,
                       name="g2.2xlarge")


@dataclass
class RunResult:
    """One engine's execution of one workload."""

    engine: str
    workload: str
    num_nodes: int
    scale: float
    simulated_seconds: float
    result_rows: int
    profile: QueryProfile | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return (
            f"{self.workload:>14} {self.engine:>14} nodes={self.num_nodes:<3} "
            f"rows={self.result_rows:<9} t={self.simulated_seconds:.4f}"
        )


def run_spatialspark(
    mat: MaterializedWorkload,
    num_nodes: int,
    cost_model: CostModel | None = None,
    engine: str = "fast",
    num_partitions: int | None = None,
    profile: bool = False,
    batch_refine: bool = True,
    executors: int | str | None = None,
    events_out: str | None = None,
    runtime: RuntimeConfig | None = None,
) -> RunResult:
    """SpatialSpark: broadcast join on the mini-Spark substrate."""
    sc = SparkContext(
        cluster_spec(num_nodes),
        hdfs=mat.hdfs,
        cost_model=cost_model,
        executors=executors,
        events_out=events_out,
        runtime=runtime,
    )
    left = read_geometry_pairs(sc, mat.left_path, 1, num_partitions=num_partitions)
    right = read_geometry_pairs(
        sc, mat.right_path, 1, cost_weight=mat.build_cost_weight
    )
    pairs = broadcast_spatial_join(
        sc,
        left,
        right,
        mat.workload.operator,
        radius=mat.radius,
        engine=engine,
        build_cost_weight=mat.build_cost_weight,
        batch_refine=batch_refine,
    )
    count = pairs.count()
    sc.close_events()
    return RunResult(
        engine="SpatialSpark",
        workload=mat.workload.name,
        num_nodes=num_nodes,
        scale=mat.scale,
        simulated_seconds=sc.simulated_seconds(),
        result_rows=count,
        profile=(
            sc.to_profile(f"SpatialSpark:{mat.workload.name}") if profile else None
        ),
    )


_SQL = {
    "within": (
        "SELECT l.id, r.id FROM {left} l SPATIAL JOIN {right} r "
        "WHERE ST_WITHIN(l.geom, r.geom)"
    ),
    "nearestd": (
        "SELECT l.id, r.id FROM {left} l SPATIAL JOIN {right} r "
        "WHERE ST_NEARESTD(l.geom, r.geom, {radius})"
    ),
}


def run_ispmc(
    mat: MaterializedWorkload,
    num_nodes: int,
    cost_model: CostModel | None = None,
    engine: str = "slow",
    assignment: str = "round_robin",
    profile: bool = False,
    batch_refine: bool = True,
    batch_size: int | None = None,
    executors: int | str | None = None,
    events_out: str | None = None,
    runtime: RuntimeConfig | None = None,
) -> RunResult:
    """ISP-MC: SQL spatial join on the mini-Impala substrate."""
    backend = ImpalaBackend(
        cluster_spec(num_nodes),
        hdfs=mat.hdfs,
        cost_model=cost_model,
        engine=engine,
        assignment=assignment,
        build_cost_weight=mat.build_cost_weight,
        batch_refine=batch_refine,
        batch_size=batch_size,
        executors=executors,
        events_out=events_out,
        runtime=runtime,
    )
    schema = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
    left_name = f"left_{mat.left.name}"
    right_name = f"right_{mat.right.name}"
    backend.metastore.create_table(left_name, schema, mat.left_path)
    backend.metastore.create_table(right_name, schema, mat.right_path)
    template = _SQL[mat.workload.operator.value]
    sql = template.format(left=left_name, right=right_name, radius=mat.radius)
    result = backend.execute(sql)
    backend.close_events()
    return RunResult(
        engine="ISP-MC",
        workload=mat.workload.name,
        num_nodes=num_nodes,
        scale=mat.scale,
        simulated_seconds=result.simulated_seconds,
        result_rows=len(result),
        profile=(
            result.to_profile(f"ISP-MC:{mat.workload.name}") if profile else None
        ),
    )


def run_isp_standalone(
    mat: MaterializedWorkload,
    cost_model: CostModel | None = None,
    engine: str = "slow",
    cores: int = 16,
    scheduling: str = "static",
    profile: bool = False,
) -> RunResult:
    """Standalone ISP-MC on the Table-1 single machine (16 cores)."""
    result = standalone_spatial_join(
        mat.hdfs,
        mat.left_path,
        mat.right_path,
        mat.workload.operator,
        radius=mat.radius,
        cores=cores,
        engine=engine,
        scheduling=scheduling,
        cost_model=cost_model,
        build_cost_weight=mat.build_cost_weight,
    )
    return RunResult(
        engine="Standalone ISP-MC",
        workload=mat.workload.name,
        num_nodes=1,
        scale=mat.scale,
        simulated_seconds=result.simulated_seconds,
        result_rows=len(result),
        profile=(
            result.to_profile(f"Standalone:{mat.workload.name}") if profile else None
        ),
    )


def run_engine(
    workload_name: str,
    engine: str,
    num_nodes: int,
    scale: float = 0.1,
    cost_model: CostModel | None = None,
    profile: bool = False,
    batch_refine: bool = True,
    executors: int | str | None = None,
    events_out: str | None = None,
    runtime: RuntimeConfig | None = None,
) -> RunResult:
    """Dispatch by engine label (the harness entry used by benches)."""
    mat = materialize(workload_name, scale=scale)
    if engine == "spatialspark":
        return run_spatialspark(
            mat,
            num_nodes,
            cost_model,
            profile=profile,
            batch_refine=batch_refine,
            executors=executors,
            events_out=events_out,
            runtime=runtime,
        )
    if engine == "isp-mc":
        return run_ispmc(
            mat,
            num_nodes,
            cost_model,
            profile=profile,
            batch_refine=batch_refine,
            executors=executors,
            events_out=events_out,
            runtime=runtime,
        )
    if engine == "isp-standalone":
        if num_nodes != 1:
            raise BenchError("standalone ISP-MC runs on a single node")
        if events_out is not None:
            raise BenchError(
                "events_out is not supported by the standalone engine; "
                "use spatialspark or isp-mc"
            )
        if runtime is not None and runtime.fault_plan is not None:
            raise BenchError(
                "fault injection is not supported by the standalone engine; "
                "use spatialspark or isp-mc"
            )
        return run_isp_standalone(mat, cost_model, profile=profile)
    raise BenchError(
        f"unknown engine {engine!r}; choose spatialspark|isp-mc|isp-standalone"
    )
