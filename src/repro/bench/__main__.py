"""Command-line entry: ``python -m repro.bench [scale]``.

Prints the full reproduction report — Table 1, Table 2, Fig 4, Fig 5 —
with the paper's numbers inline, at the requested scale factor (default
0.12, the calibration scale).
"""

import sys

from repro.bench.report import DEFAULT_SCALE, experiments_report


def main(argv: list[str]) -> int:
    scale = float(argv[1]) if len(argv) > 1 else DEFAULT_SCALE
    print(experiments_report(scale=scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
