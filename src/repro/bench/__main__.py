"""Command-line entry: ``python -m repro.bench [scale] [options]``.

Default mode prints the full reproduction report — Table 1, Table 2,
Fig 4, Fig 5 — with the paper's numbers inline, at the requested scale
factor (default 0.12, the calibration scale).  ``--json`` emits the same
data as a machine-readable document.

``--profile`` switches to single-run mode: one workload on one engine,
rendered as an Impala-style query profile tree.  ``--trace-out PATH``
additionally captures the run's wall-clock spans and writes a Chrome
``trace_event`` file (open it at chrome://tracing or
https://ui.perfetto.dev) containing both the simulated timeline and the
real one.

``--method auto`` switches to the optimizer study: the stats-driven plan
chooser prices every join strategy per workload, and the skewed
``hotspot-nycb`` workload demonstrates the makespan win from hot-tile
splitting (see ``repro.bench.optimizer_study``).
"""

import argparse
import json
import sys

from repro.bench.optimizer_study import optimizer_study, render_optimizer_study
from repro.bench.report import (
    DEFAULT_SCALE,
    WORKLOAD_ORDER,
    experiments_json,
    experiments_report,
)
from repro.bench.runner import run_engine
from repro.obs import spans_to_chrome_trace, tracing, write_chrome_trace

ENGINES = ("spatialspark", "isp-mc", "isp-standalone")


def _scale_or_mode(value: str):
    """Positional argument: a float scale factor, or a named bench mode."""
    if value in ("kernels", "parallel", "monitor", "chaos", "cache",
                 "columnar", "regress"):
        return value
    try:
        return float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a scale factor, 'kernels', 'parallel', 'monitor', "
            f"'chaos', 'cache', 'columnar' or 'regress', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures, profile "
        "a single spatial-join query, or (with 'kernels') measure the "
        "columnar batch kernels' wall-clock against the scalar path.",
    )
    parser.add_argument(
        "scale",
        nargs="?",
        type=_scale_or_mode,
        default=DEFAULT_SCALE,
        help=f"dataset scale factor (default {DEFAULT_SCALE}), 'kernels' "
        "for the columnar-kernels microbenchmark, 'parallel' for the "
        "process-pool runtime benchmark, 'monitor' to replay an "
        "events.jsonl file as per-worker timelines, 'chaos' for the "
        "fault-injection equivalence sweep, 'cache' for the "
        "cross-query cache cold-vs-warm benchmark, 'columnar' for "
        "the packed-buffer data plane vs object path benchmark, or "
        "'regress' to gate a fresh run against the committed "
        "BENCH_*.json baselines (exits nonzero on regression)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for monitor mode: path of the events.jsonl file to replay",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=100_000,
        help="probe points for the kernels/parallel/columnar benchmarks "
        "(default 100000)",
    )
    parser.add_argument(
        "--polygons",
        type=int,
        default=2000,
        help="build-side polygons for the columnar benchmark (default 2000)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="for columnar mode: repetitions per arm, best-of reported "
        "(default 3)",
    )
    parser.add_argument(
        "--assert-bytes-ratio",
        type=float,
        metavar="RATIO",
        default=None,
        help="for columnar mode: exit nonzero unless both the shuffle "
        "bucket and the broadcast index ship at least RATIOx fewer bytes "
        "than the pickled object path",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="for kernels/parallel modes: also write the JSON document "
        "to PATH",
    )
    parser.add_argument(
        "--assert-not-slower",
        action="store_true",
        help="for kernels mode: exit nonzero if the batch path is slower "
        "than the scalar path or any equivalence check fails",
    )
    parser.add_argument(
        "--executors",
        default=None,
        help="executor pool size for --profile runs ('serial' or an "
        "integer >= 1); in parallel mode, comma-separated pool sizes to "
        "benchmark (default 2,4)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        metavar="RATIO",
        default=None,
        help="for parallel mode: exit nonzero unless the largest pool "
        "reaches RATIOx speedup over serial (use on multi-core CI "
        "runners; meaningless on one core) or any equivalence check fails",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit JSON instead of text (report or profile)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run one workload/engine and print its query profile tree",
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_ORDER,
        default="taxi-nycb",
        help="workload for --profile/--trace-out (default taxi-nycb)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="spatialspark",
        help="engine for --profile/--trace-out (default spatialspark)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="cluster size for --profile/--trace-out (default 1)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace_event JSON file for the profiled run "
        "(implies --profile)",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="for --profile runs: write the structured JSONL event log "
        "to PATH (replay it with 'python -m repro.bench monitor PATH'); "
        "in chaos mode PATH is a directory receiving one recovery-"
        "annotated log per (case, fault-rate) cell",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="for --profile runs: also write the profile tree as JSON "
        "to PATH (QueryProfile.to_dict form)",
    )
    parser.add_argument(
        "--straggler-k",
        type=float,
        metavar="K",
        default=2.0,
        help="for monitor mode: flag tasks slower than K x their stage "
        "median as stragglers (default 2.0)",
    )
    parser.add_argument(
        "--assert-events-overhead",
        type=float,
        metavar="RATIO",
        default=None,
        help="for parallel mode: exit nonzero if enabling the event log "
        "slows the engine run by more than RATIO (e.g. 0.10 for 10%%)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="for chaos mode: the fault plan's seed (default 7)",
    )
    parser.add_argument(
        "--fault-rate",
        metavar="RATES",
        default="0.1,0.3",
        help="for chaos mode: comma-separated per-attempt injection "
        "probabilities to sweep (default 0.1,0.3)",
    )
    parser.add_argument(
        "--assert-identical",
        action="store_true",
        help="for chaos mode: exit nonzero unless every seeded-fault run "
        "is byte-identical to its fault-free baseline",
    )
    parser.add_argument(
        "--assert-warm-speedup",
        type=float,
        metavar="RATIO",
        default=None,
        help="for cache mode: exit nonzero unless the best warm-over-cold "
        "repeated-query speedup reaches RATIOx, or any cold-vs-warm "
        "equivalence check fails",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=12,
        help="for cache mode: point batches per repeat-query workload "
        "(default 12)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="for regress mode: skip the slower fresh benchmark runs and "
        "check the committed artifacts' internal invariants instead "
        "(the CI regress-smoke configuration)",
    )
    parser.add_argument(
        "--baseline-dir",
        metavar="DIR",
        default=".",
        help="for regress mode: directory holding the committed "
        "BENCH_*.json baselines (default: current directory)",
    )
    parser.add_argument(
        "--explain-out",
        metavar="PATH",
        default=None,
        help="for regress mode: write the hotspot EXPLAIN ANALYZE "
        "report produced by the live invariant check as JSON to PATH",
    )
    parser.add_argument(
        "--method",
        choices=("auto",),
        default=None,
        help="run the stats-driven optimizer study instead of the "
        "reproduction report (plan choices per workload plus the "
        "hot-tile-splitting makespan comparison)",
    )
    return parser


def _profile_run(args: argparse.Namespace) -> int:
    executors = args.executors
    if isinstance(executors, str) and executors != "serial":
        executors = int(executors)
    with tracing() as tracer:
        result = run_engine(
            args.workload,
            args.engine,
            args.nodes,
            scale=args.scale,
            profile=True,
            executors=executors,
            events_out=args.events_out,
        )
    profile = result.profile
    if args.json:
        print(json.dumps(profile.to_json(), indent=1))
    else:
        print(profile.render())
        print(
            f"\nrows={result.result_rows}  "
            f"simulated={result.simulated_seconds:.3f}s"
        )
    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as handle:
            json.dump(profile.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote profile JSON to {args.profile_out}", file=sys.stderr)
    if args.events_out:
        print(f"wrote event log to {args.events_out}", file=sys.stderr)
    if args.trace_out:
        write_chrome_trace(
            args.trace_out,
            profile.to_chrome_trace(),
            spans_to_chrome_trace(tracer.roots),
        )
        print(f"wrote Chrome trace to {args.trace_out}", file=sys.stderr)
    return 0


def _kernels_run(args: argparse.Namespace) -> int:
    from repro.bench.kernels import (
        render_kernels,
        run_kernels_benchmark,
        write_kernels_json,
    )

    doc = run_kernels_benchmark(points=args.points)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_kernels(doc))
    if args.out:
        write_kernels_json(doc, args.out)
        print(f"wrote kernels benchmark to {args.out}", file=sys.stderr)
    identical = all(k["identical"] for k in doc["kernels"].values())
    identical = identical and doc["equivalence"]["all_identical"]
    if not identical:
        print("FAIL: batch and scalar results differ", file=sys.stderr)
        return 1
    if args.assert_not_slower:
        slower = [
            k["kernel"]
            for k in doc["kernels"].values()
            if k["batch_seconds"] > k["scalar_seconds"]
        ]
        if slower:
            print(
                f"FAIL: batch path slower than scalar for {', '.join(slower)}",
                file=sys.stderr,
            )
            return 1
    return 0


def _parallel_run(args: argparse.Namespace) -> int:
    from repro.bench.parallel import (
        render_parallel,
        run_parallel_benchmark,
        write_parallel_json,
    )

    counts = tuple(
        int(part) for part in (args.executors or "2,4").split(",") if part
    )
    doc = run_parallel_benchmark(points=args.points, executor_counts=counts)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_parallel(doc))
    if args.out:
        write_parallel_json(doc, args.out)
        print(f"wrote parallel benchmark to {args.out}", file=sys.stderr)
    identical = doc["equivalence"]["all_identical"] and all(
        pool["identical"]
        for entry in doc["workloads"].values()
        for pool in entry["pools"].values()
    )
    if not identical:
        print("FAIL: pooled and serial results differ", file=sys.stderr)
        return 1
    if args.assert_speedup is not None:
        best = max(
            pool["speedup"]
            for entry in doc["workloads"].values()
            for pool in entry["pools"].values()
        )
        if best < args.assert_speedup:
            print(
                f"FAIL: best pool speedup {best:.2f}x < "
                f"{args.assert_speedup:.2f}x "
                f"({doc['available_cores']} core(s) available)",
                file=sys.stderr,
            )
            return 1
    if args.assert_events_overhead is not None:
        delta = doc["events_overhead"]["delta_fraction"]
        if delta > args.assert_events_overhead:
            print(
                f"FAIL: event-log overhead {delta * 100.0:.1f}% > "
                f"{args.assert_events_overhead * 100.0:.1f}%",
                file=sys.stderr,
            )
            return 1
    return 0


def _chaos_run(args: argparse.Namespace) -> int:
    from repro.bench.chaos import render_chaos, run_chaos_benchmark, write_chaos_json

    try:
        rates = tuple(
            float(part) for part in str(args.fault_rate).split(",") if part
        )
    except ValueError:
        print(f"bad --fault-rate list {args.fault_rate!r}", file=sys.stderr)
        return 2
    doc = run_chaos_benchmark(
        seed=args.seed, fault_rates=rates, events_dir=args.events_out
    )
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True, default=str))
    else:
        print(render_chaos(doc))
    if args.out:
        write_chaos_json(doc, args.out)
        print(f"wrote chaos benchmark to {args.out}", file=sys.stderr)
    if args.events_out:
        print(
            f"wrote recovery-annotated event logs to {args.events_out}/",
            file=sys.stderr,
        )
    if args.assert_identical and not doc["all_identical"]:
        print(
            "FAIL: seeded-fault runs diverged from the fault-free baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def _cache_run(args: argparse.Namespace) -> int:
    from repro.bench.cache_study import (
        render_cache,
        run_cache_benchmark,
        write_cache_json,
    )

    doc = run_cache_benchmark(
        batches=args.batches, events_out=args.events_out
    )
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_cache(doc))
    if args.out:
        write_cache_json(doc, args.out)
        print(f"wrote cache benchmark to {args.out}", file=sys.stderr)
    if args.events_out:
        print(
            f"wrote cache-annotated event log to {args.events_out}",
            file=sys.stderr,
        )
    if not doc["all_identical"]:
        print(
            "FAIL: cache-on results diverged from the cache-off baseline",
            file=sys.stderr,
        )
        return 1
    if args.assert_warm_speedup is not None:
        best = doc["best_warm_speedup"]
        if best < args.assert_warm_speedup:
            print(
                f"FAIL: best warm speedup {best:.2f}x < "
                f"{args.assert_warm_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def _columnar_run(args: argparse.Namespace) -> int:
    from repro.bench.columnar_study import (
        render_columnar,
        run_columnar_benchmark,
        write_columnar_json,
    )

    doc = run_columnar_benchmark(
        points=args.points, polygons=args.polygons, repeat=args.repeat
    )
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(render_columnar(doc))
    if args.out:
        write_columnar_json(doc, args.out)
        print(f"wrote columnar benchmark to {args.out}", file=sys.stderr)
    if not doc["all_identical"]:
        print("FAIL: columnar and object results differ", file=sys.stderr)
        return 1
    if args.assert_speedup is not None and doc["speedup"] < args.assert_speedup:
        print(
            f"FAIL: columnar speedup {doc['speedup']:.2f}x < "
            f"{args.assert_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.assert_bytes_ratio is not None:
        worst = min(
            doc["shipping"]["shuffle_bytes_ratio"],
            doc["shipping"]["index_bytes_ratio"],
        )
        if worst < args.assert_bytes_ratio:
            print(
                f"FAIL: shipped-bytes reduction {worst:.2f}x < "
                f"{args.assert_bytes_ratio:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def _monitor_run(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.events import read_events
    from repro.obs.monitor import monitor_report

    if not args.target:
        print(
            "monitor mode needs an events.jsonl path: "
            "python -m repro.bench monitor <events.jsonl>",
            file=sys.stderr,
        )
        return 2
    try:
        events = read_events(args.target)
    except (OSError, ReproError) as error:
        print(f"cannot replay {args.target}: {error}", file=sys.stderr)
        return 1
    print(monitor_report(events, k=args.straggler_k))
    return 0


def _regress_run(args: argparse.Namespace) -> int:
    from repro.obs.regress import run_regress

    return run_regress(
        baseline_dir=args.baseline_dir,
        quick=args.quick,
        explain_out=args.explain_out,
        out=args.out,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scale == "kernels":
        return _kernels_run(args)
    if args.scale == "parallel":
        return _parallel_run(args)
    if args.scale == "monitor":
        return _monitor_run(args)
    if args.scale == "chaos":
        return _chaos_run(args)
    if args.scale == "cache":
        return _cache_run(args)
    if args.scale == "columnar":
        return _columnar_run(args)
    if args.scale == "regress":
        return _regress_run(args)
    if args.method == "auto":
        study = optimizer_study(scale=args.scale, nodes=args.nodes)
        if args.json:
            print(json.dumps(study, indent=1))
        else:
            print(render_optimizer_study(study))
        return 0
    if args.profile or args.trace_out:
        return _profile_run(args)
    if args.json:
        print(json.dumps(experiments_json(scale=args.scale), indent=1))
        return 0
    print(experiments_report(scale=args.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
