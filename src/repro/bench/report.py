"""Table/figure renderers: regenerate every artefact of Section V.

Each ``table*``/``fig*`` function runs the workloads through the engines
and returns structured rows; ``render_*`` turns them into the same
row/series layout the paper prints.  ``experiments_report`` assembles the
full paper-vs-measured comparison used by EXPERIMENTS.md.

Runs are memoised per (workload, engine, nodes, scale) because Table 2
and Fig 4/5 share their 10-node measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import (
    RunResult,
    run_isp_standalone,
    run_ispmc,
    run_spatialspark,
)
from repro.bench.workloads import materialize

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "GENERATED_BY",
    "stamp_bench_doc",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "BenchCache",
    "table1",
    "table2",
    "fig4",
    "fig5",
    "render_table1",
    "render_table2",
    "render_scaling",
    "experiments_report",
    "experiments_json",
    "DEFAULT_SCALE",
    "SCALING_NODES",
]

DEFAULT_SCALE = 0.12
SCALING_NODES = (4, 6, 8, 10)
WORKLOAD_ORDER = ("taxi-nycb", "taxi-lion-100", "taxi-lion-500", "G10M-wwf")

# Every BENCH_*.json artifact is stamped so `bench regress` can reject
# stale or foreign baselines before comparing numbers against them.
BENCH_SCHEMA_VERSION = 1


def _generated_by() -> str:
    from repro import __version__

    return f"repro.bench/{__version__}"


GENERATED_BY = _generated_by()


def stamp_bench_doc(doc: dict) -> dict:
    """Add the baseline provenance fields to one BENCH document (in place).

    Idempotent, and key-insertion only — stamping never reorders or
    rewrites measurement fields (the files are dumped with
    ``sort_keys=True`` anyway).
    """
    doc["schema_version"] = BENCH_SCHEMA_VERSION
    doc["generated_by"] = GENERATED_BY
    return doc

# The paper's numbers (seconds), for side-by-side reporting.
PAPER_TABLE1 = {
    # workload: (SpatialSpark, ISP-MC, Standalone ISP-MC)
    "taxi-nycb": (682.0, 588.0, 507.0),
    "taxi-lion-100": (696.0, 1061.0, 983.0),
    "taxi-lion-500": (825.0, 5720.0, 4922.0),
    "G10M-wwf": (2445.0, 12736.0, 11634.0),
}
PAPER_TABLE2 = {
    # workload: (SpatialSpark, ISP-MC) on 10 EC2 nodes
    "taxi-nycb": (110.0, 758.0),
    "taxi-lion-100": (65.0, 307.0),
    "taxi-lion-500": (249.0, 1785.0),
    "G10M-wwf": (735.0, 7728.0),
}


@dataclass
class BenchCache:
    """Memoised engine runs shared across tables and figures."""

    scale: float = DEFAULT_SCALE
    _runs: dict[tuple[str, str, int], RunResult] = field(default_factory=dict)

    def run(self, workload: str, engine: str, nodes: int) -> RunResult:
        key = (workload, engine, nodes)
        if key not in self._runs:
            mat = materialize(workload, scale=self.scale)
            if engine == "spatialspark":
                self._runs[key] = run_spatialspark(mat, nodes)
            elif engine == "isp-mc":
                self._runs[key] = run_ispmc(mat, nodes)
            elif engine == "isp-standalone":
                self._runs[key] = run_isp_standalone(mat)
            else:
                raise ValueError(f"unknown engine {engine!r}")
        return self._runs[key]


def table1(cache: BenchCache) -> list[dict]:
    """Single-node runtimes: the three systems on the in-house machine."""
    rows = []
    for workload in WORKLOAD_ORDER:
        ss = cache.run(workload, "spatialspark", 1)
        isp = cache.run(workload, "isp-mc", 1)
        sta = cache.run(workload, "isp-standalone", 1)
        rows.append(
            {
                "workload": workload,
                "SpatialSpark": ss.simulated_seconds,
                "ISP-MC": isp.simulated_seconds,
                "Standalone ISP-MC": sta.simulated_seconds,
                "result_rows": ss.result_rows,
            }
        )
    return rows


def table2(cache: BenchCache) -> list[dict]:
    """10-node EC2 runtimes for both systems."""
    rows = []
    for workload in WORKLOAD_ORDER:
        ss = cache.run(workload, "spatialspark", 10)
        isp = cache.run(workload, "isp-mc", 10)
        rows.append(
            {
                "workload": workload,
                "SpatialSpark": ss.simulated_seconds,
                "ISP-MC": isp.simulated_seconds,
                "speedup": isp.simulated_seconds / ss.simulated_seconds,
                "result_rows": ss.result_rows,
            }
        )
    return rows


def _scaling(cache: BenchCache, engine: str) -> dict[str, list[tuple[int, float]]]:
    series: dict[str, list[tuple[int, float]]] = {}
    for workload in WORKLOAD_ORDER:
        series[workload] = [
            (nodes, cache.run(workload, engine, nodes).simulated_seconds)
            for nodes in SCALING_NODES
        ]
    return series


def fig4(cache: BenchCache) -> dict[str, list[tuple[int, float]]]:
    """SpatialSpark runtime vs cluster size (4-10 nodes)."""
    return _scaling(cache, "spatialspark")


def fig5(cache: BenchCache) -> dict[str, list[tuple[int, float]]]:
    """ISP-MC runtime vs cluster size (4-10 nodes)."""
    return _scaling(cache, "isp-mc")


def parallel_efficiency_of(series: list[tuple[int, float]]) -> float:
    """Speedup over the node increase across a scaling series."""
    (n0, t0), (n1, t1) = series[0], series[-1]
    return (t0 / t1) / (n1 / n0)


# -- text rendering ------------------------------------------------------------


def render_table1(rows: list[dict], with_paper: bool = True) -> str:
    lines = [
        "Table 1: Runtimes (simulated seconds) on a single node",
        f"{'':>14} | {'SpatialSpark':>12} | {'ISP-MC':>12} | {'Standalone ISP-MC':>18}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:>14} | {row['SpatialSpark']:12.0f} | "
            f"{row['ISP-MC']:12.0f} | {row['Standalone ISP-MC']:18.0f}"
        )
        if with_paper:
            p = PAPER_TABLE1[row["workload"]]
            lines.append(
                f"{'(paper)':>14} | {p[0]:12.0f} | {p[1]:12.0f} | {p[2]:18.0f}"
            )
    return "\n".join(lines)


def render_table2(rows: list[dict], with_paper: bool = True) -> str:
    lines = [
        "Table 2: Runtimes (simulated seconds) using 10 EC2 nodes",
        f"{'':>14} | {'SpatialSpark':>12} | {'ISP-MC':>12} | {'ISP/SS':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:>14} | {row['SpatialSpark']:12.0f} | "
            f"{row['ISP-MC']:12.0f} | {row['speedup']:7.1f}"
        )
        if with_paper:
            p = PAPER_TABLE2[row["workload"]]
            lines.append(
                f"{'(paper)':>14} | {p[0]:12.0f} | {p[1]:12.0f} | {p[1]/p[0]:7.1f}"
            )
    return "\n".join(lines)


def render_scaling(series: dict[str, list[tuple[int, float]]], title: str) -> str:
    nodes = [n for n, _ in next(iter(series.values()))]
    lines = [title, f"{'':>14} | " + " | ".join(f"{n:>3d} nodes" for n in nodes) + " | efficiency"]
    for workload, points in series.items():
        cells = " | ".join(f"{t:9.0f}" for _, t in points)
        lines.append(
            f"{workload:>14} | {cells} | {parallel_efficiency_of(points):10.2f}"
        )
    return "\n".join(lines)


def experiments_report(scale: float = DEFAULT_SCALE) -> str:
    """Full text report: every table and figure, measured vs paper."""
    cache = BenchCache(scale=scale)
    parts = [
        f"Reproduction report (scale factor {scale}; simulated seconds)",
        "",
        render_table1(table1(cache)),
        "",
        render_table2(table2(cache)),
        "",
        render_scaling(fig4(cache), "Fig 4: Scalability of SpatialSpark (runtime vs nodes)"),
        "(paper: ~80% parallel efficiency from 4 to 10 nodes)",
        "",
        render_scaling(fig5(cache), "Fig 5: Scalability of ISP-MC (runtime vs nodes)"),
        "(paper: near-linear, with G10M-wwf flattening from 8 to 10 nodes)",
    ]
    return "\n".join(parts)


def experiments_json(scale: float = DEFAULT_SCALE) -> dict:
    """The full report as a JSON-safe dict (``--json`` output mode).

    Scaling series become ``[[nodes, seconds], ...]`` lists; the paper's
    published numbers ride along under ``paper`` keys so downstream
    tooling can diff measured vs published without re-parsing text.
    """
    cache = BenchCache(scale=scale)
    return {
        "scale": scale,
        "units": "simulated_seconds",
        "table1": table1(cache),
        "table2": table2(cache),
        "fig4": {w: [list(p) for p in pts] for w, pts in fig4(cache).items()},
        "fig5": {w: [list(p) for p in pts] for w, pts in fig5(cache).items()},
        "paper": {
            "table1": {w: list(v) for w, v in PAPER_TABLE1.items()},
            "table2": {w: list(v) for w, v in PAPER_TABLE2.items()},
        },
    }
