"""Columnar data plane benchmark: packed buffers vs the object path.

Measures the three stages the columnar plane (DESIGN.md section 13)
accelerates, each against the exact code the ``columnar=False`` oracle
runs:

- **load** — bulk WKT parsing (:func:`repro.columnar.column_from_wkt`,
  one regex capture + one vectorised strtod) vs one
  :func:`repro.geometry.wkt.loads` call per row;
- **index** — STR bulk-load straight from the column's bbox arrays
  (:meth:`BroadcastIndex.from_column`) vs the per-geometry object
  constructor;
- **join** — the batched probe reading packed coordinate buffers vs the
  same probe fed geometry objects.

Both arms must produce bit-identical coordinates, identical match lists
and identical probe cost totals — the benchmark fails loudly otherwise.

The second half weighs what actually *ships*: a routed shuffle bucket as
a pickled record list vs a packed :class:`~repro.columnar.ColumnBlock`
(record envelopes are touched first, as the routing step has always done
by the time records reach a shuffle write), and a broadcast build side as
a pickled object index vs a column-backed one.

Run it with ``python -m repro.bench columnar``; the committed
``BENCH_columnar.json`` at the repo root is this benchmark's output on
the container it was generated in.
"""

from __future__ import annotations

import json
import pickle
import random
import time
from typing import Any

from repro.columnar import COLUMNAR_STATS, ColumnBlock, column_from_wkt
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.errors import BenchError
from repro.geometry.polygon import Polygon
from repro.geometry.wkt import clear_wkt_cache, dumps
from repro.geometry.wkt import loads as wkt_loads

__all__ = ["run_columnar_benchmark", "render_columnar", "write_columnar_json"]

_SHUFFLE_SAMPLE = 5000
_SHUFFLE_TILES = 16


def _workload(points: int, polygons: int, seed: int) -> tuple[list[str], list[str]]:
    """WKT texts shaped like the paper's taxi-vs-blocks query."""
    rng = random.Random(seed)
    point_texts = [
        f"POINT ({rng.uniform(0, 100):.12f} {rng.uniform(0, 100):.12f})"
        for _ in range(points)
    ]
    poly_texts = []
    for _ in range(polygons):
        x, y = rng.uniform(0, 95), rng.uniform(0, 95)
        w, h = rng.uniform(0.5, 4.0), rng.uniform(0.5, 4.0)
        poly_texts.append(
            dumps(Polygon([(x, y), (x + w, y), (x + w, y + h), (x, y + h)]))
        )
    return point_texts, poly_texts


def _object_arm(point_texts, poly_texts, op):
    clear_wkt_cache()
    start = time.perf_counter()
    point_geoms = [wkt_loads(text) for text in point_texts]
    poly_geoms = [wkt_loads(text) for text in poly_texts]
    load_s = time.perf_counter() - start
    start = time.perf_counter()
    index = BroadcastIndex(enumerate(poly_geoms), op)
    index_s = time.perf_counter() - start
    start = time.perf_counter()
    matches, totals = index.probe_batch(point_geoms)
    join_s = time.perf_counter() - start
    return {"load": load_s, "index": index_s, "join": join_s}, (
        point_geoms,
        index,
        matches,
        totals,
    )


def _columnar_arm(point_texts, poly_texts, op):
    clear_wkt_cache()
    start = time.perf_counter()
    point_column = column_from_wkt(point_texts)
    poly_column = column_from_wkt(
        poly_texts, payloads=list(range(len(poly_texts)))
    )
    load_s = time.perf_counter() - start
    start = time.perf_counter()
    index = BroadcastIndex.from_column(poly_column, op)
    index_s = time.perf_counter() - start
    start = time.perf_counter()
    matches, totals = index.probe_batch(point_column)
    join_s = time.perf_counter() - start
    return {"load": load_s, "index": index_s, "join": join_s}, (
        point_column,
        index,
        matches,
        totals,
    )


def _shipping_study(point_geoms, obj_index, col_index) -> dict[str, Any]:
    """Honest wire sizes: pickled object graphs vs binary column encodings."""
    sample = point_geoms[:_SHUFFLE_SAMPLE]
    for geometry in sample:
        geometry.envelope  # routing computes these before any shuffle write
    records = [
        (i % _SHUFFLE_TILES, (i, geometry)) for i, geometry in enumerate(sample)
    ]
    block = ColumnBlock.from_records(records)
    pickled_records = len(pickle.dumps(records))
    pickled_block = len(pickle.dumps(block))
    pickled_obj_index = len(pickle.dumps(obj_index))
    pickled_col_index = len(pickle.dumps(col_index))
    return {
        "shuffle_records": len(records),
        "shuffle_object_bytes": pickled_records,
        "shuffle_column_bytes": pickled_block,
        "shuffle_bytes_ratio": pickled_records / pickled_block,
        "index_object_bytes": pickled_obj_index,
        "index_column_bytes": pickled_col_index,
        "index_bytes_ratio": pickled_obj_index / pickled_col_index,
    }


def run_columnar_benchmark(
    points: int = 100_000,
    polygons: int = 2000,
    repeat: int = 3,
    seed: int = 42,
) -> dict[str, Any]:
    """Object-arm vs columnar-arm sweep; returns a JSON-ready document.

    Each repetition runs both arms back to back on the same texts; the
    headline ``speedup`` compares the best (minimum) end-to-end totals,
    the per-stage table reports best stage times.  Every repetition's
    results are checked identical across arms.
    """
    if points < 1 or polygons < 1:
        raise BenchError(
            f"need positive dataset sizes, got points={points} polygons={polygons}"
        )
    if repeat < 1:
        raise BenchError(f"repeat must be >= 1, got {repeat}")
    op = SpatialOperator.WITHIN
    point_texts, poly_texts = _workload(points, polygons, seed)

    object_runs: list[dict[str, float]] = []
    columnar_runs: list[dict[str, float]] = []
    identical = True
    shipping: dict[str, Any] = {}
    matched_rows = 0
    for rep in range(repeat):
        obj_times, (point_geoms, obj_index, obj_matches, obj_totals) = _object_arm(
            point_texts, poly_texts, op
        )
        col_times, (point_column, col_index, col_matches, col_totals) = _columnar_arm(
            point_texts, poly_texts, op
        )
        object_runs.append(obj_times)
        columnar_runs.append(col_times)
        coords_equal = all(
            point_column.geometry(i).x == g.x and point_column.geometry(i).y == g.y
            for i, g in enumerate(point_geoms[:1000])
        )
        identical = identical and (
            obj_matches == col_matches
            and obj_totals == col_totals
            and coords_equal
        )
        matched_rows = sum(len(m) for m in obj_matches)
        if rep == 0:
            shipping = _shipping_study(point_geoms, obj_index, col_index)

    def best(runs: list[dict[str, float]]) -> dict[str, float]:
        stages = {k: min(r[k] for r in runs) for k in ("load", "index", "join")}
        stages["total"] = min(sum(r.values()) for r in runs)
        return stages

    object_best = best(object_runs)
    columnar_best = best(columnar_runs)
    return {
        "benchmark": "columnar",
        "points": points,
        "polygons": polygons,
        "repeat": repeat,
        "seed": seed,
        "matched_rows": matched_rows,
        "object_seconds": object_best,
        "columnar_seconds": columnar_best,
        "stage_speedups": {
            stage: object_best[stage] / columnar_best[stage]
            if columnar_best[stage] > 0
            else float("inf")
            for stage in ("load", "index", "join")
        },
        "speedup": (
            object_best["total"] / columnar_best["total"]
            if columnar_best["total"] > 0
            else float("inf")
        ),
        "shipping": shipping,
        "columnar_stats": COLUMNAR_STATS.as_dict(),
        "all_identical": identical,
    }


def render_columnar(doc: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_columnar_benchmark` output."""
    ship = doc["shipping"]
    lines = [
        f"Columnar data plane benchmark ({doc['points']} points, "
        f"{doc['polygons']} polygons, best of {doc['repeat']})",
        "",
        f"{'stage':>8} {'object s':>10} {'columnar s':>11} {'speedup':>8}",
    ]
    for stage in ("load", "index", "join", "total"):
        obj_s = doc["object_seconds"][stage]
        col_s = doc["columnar_seconds"][stage]
        ratio = (
            doc["speedup"]
            if stage == "total"
            else doc["stage_speedups"][stage]
        )
        lines.append(
            f"{stage:>8} {obj_s:>10.3f} {col_s:>11.3f} {ratio:>7.2f}x"
        )
    lines += [
        "",
        f"shuffle bucket ({ship['shuffle_records']} routed records): "
        f"{ship['shuffle_object_bytes']} B pickled objects vs "
        f"{ship['shuffle_column_bytes']} B packed block "
        f"({ship['shuffle_bytes_ratio']:.2f}x smaller)",
        f"broadcast index: {ship['index_object_bytes']} B pickled objects "
        f"vs {ship['index_column_bytes']} B column-backed "
        f"({ship['index_bytes_ratio']:.2f}x smaller)",
        "",
        f"results {'identical' if doc['all_identical'] else 'MISMATCH'} "
        f"across arms ({doc['matched_rows']} matched rows)",
    ]
    return "\n".join(lines)


def write_columnar_json(doc: dict[str, Any], path: str) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    from repro.bench.report import stamp_bench_doc

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stamp_bench_doc(doc), handle, indent=1, sort_keys=True)
        handle.write("\n")
