"""Parallel-runtime benchmark: serial vs process-pool wall clock.

Like the kernels microbenchmark, this measures the one thing the
simulation model deliberately does *not* capture: real Python wall-clock.
It times the 100k-point probe workload (taxi pickups against the NYC
census blocks / LION indexes) executed chunk-by-chunk serially and on
:class:`~repro.runtime.pool.ProcessBackend` pools of increasing size,
asserting the results identical, and runs the full substrate-equivalence
suite — rows, simulated seconds and registry counters byte-identical for
both engines and both predicates with the pool on or off.

Speedup is bounded by the machine: a pool of 4 on a single-core container
is pure overhead, so the document records ``available_cores`` alongside
every ratio.  CI runs this on multi-core runners (the ``parallel-smoke``
job), where the 4-worker pool is expected to clear 2x.

Run it with ``python -m repro.bench parallel``; the committed
``BENCH_parallel.json`` at the repo root is this benchmark's output on
the container it was generated in.
"""

from __future__ import annotations

import json
import math
import multiprocessing as mp
import os
import time
from typing import Any

from repro.bench.kernels import _probe_points
from repro.bench.runner import run_engine
from repro.bench.workloads import WORKLOADS, materialize
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex
from repro.data.catalog import load_dataset
from repro.errors import BenchError
from repro.obs.registry import collecting
from repro.runtime.pool import ProcessBackend

__all__ = [
    "run_parallel_benchmark",
    "render_parallel",
    "write_parallel_json",
    "substrate_equivalence",
    "events_overhead",
]


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_probe_workload(
    name: str,
    index: BroadcastIndex,
    points: list,
    executor_counts: tuple[int, ...],
    chunk_size: int,
    repeat: int,
) -> dict[str, Any]:
    """Best-of-``repeat`` wall clock: serial chunk loop vs pooled chunks.

    The unit of dispatch is one ``chunk_size`` bulk probe — exactly the
    task granularity the executors knob fans out in the join paths — and
    every pooled run's matches must equal the serial run's, match for
    match, row for row.
    """
    chunks = [
        points[start : start + chunk_size]
        for start in range(0, len(points), chunk_size)
    ]

    def serial_run() -> list:
        return [index.probe_batch(chunk) for chunk in chunks]

    serial_best = math.inf
    serial_result = None
    for _ in range(repeat):
        start = time.perf_counter()
        serial_result = serial_run()
        serial_best = min(serial_best, time.perf_counter() - start)
    serial_matches = [matches for matches, _ in serial_result]

    pools: dict[str, Any] = {}
    for workers in executor_counts:
        pool = ProcessBackend(workers)
        tasks = [
            (lambda chunk=chunk: index.probe_batch(chunk)) for chunk in chunks
        ]
        pool_best = math.inf
        pool_result = None
        for _ in range(repeat):
            start = time.perf_counter()
            pool_result = pool.run(tasks)
            pool_best = min(pool_best, time.perf_counter() - start)
        pools[str(workers)] = {
            "workers": workers,
            "seconds": pool_best,
            "speedup": serial_best / pool_best if pool_best else math.inf,
            # matches AND cost units, chunk for chunk
            "identical": pool_result == serial_result,
        }

    pairs = sum(len(matches) for matches in serial_matches)
    return {
        "workload": name,
        "points": len(points),
        "chunks": len(chunks),
        "pairs": pairs,
        "serial_seconds": serial_best,
        "pools": pools,
    }


def substrate_equivalence(
    scale: float = 0.02,
    executor_counts: tuple[int, ...] = (2, 4),
    nodes: int = 2,
) -> dict[str, Any]:
    """Serial vs pooled runs of both substrates and both predicates.

    Each case re-runs the full engine pipeline and compares result rows,
    simulated seconds and the registry-counter snapshot against the
    serial baseline — the hard byte-identity invariant, exercised at the
    system level rather than per-kernel.
    """
    cases = []
    for workload_name in ("taxi-nycb", "taxi-lion-100"):
        # Warm the materialization memo first: the first materialize() at a
        # given scale writes the datasets to HDFS, which bumps hdfs.* write
        # counters that later (cached) runs never see.  That first-run
        # artifact has nothing to do with the pool, so keep it out of the
        # serial-vs-pooled comparison.
        materialize(workload_name, scale=scale)
        for engine in ("spatialspark", "isp-mc"):

            def measure(executors):
                with collecting() as reg:
                    result = run_engine(
                        workload_name,
                        engine,
                        nodes,
                        scale=scale,
                        executors=executors,
                    )
                    counters = reg.snapshot()["counters"]
                return result.result_rows, result.simulated_seconds, counters

            base_rows, base_seconds, base_counters = measure("serial")
            for workers in executor_counts:
                rows, seconds, counters = measure(workers)
                cases.append(
                    {
                        "workload": workload_name,
                        "engine": engine,
                        "executors": workers,
                        "rows": rows,
                        "identical": (
                            rows == base_rows
                            and seconds == base_seconds
                            and counters == base_counters
                        ),
                    }
                )
    return {
        "scale": scale,
        "nodes": nodes,
        "cases": cases,
        "all_identical": all(c["identical"] for c in cases),
    }


def events_overhead(
    scale: float = 0.05,
    nodes: int = 2,
    repeat: int = 5,
    workload_name: str = "taxi-nycb",
) -> dict[str, Any]:
    """Wall-clock cost of the structured event log on a full engine run.

    ``repeat`` interleaved pairs of the same SpatialSpark run with the
    event sink disabled and with ``events_out`` writing JSONL to a
    scratch file.  ``delta_fraction`` is the minimum paired relative
    slowdown; the CI smoke job asserts it stays under 10% via
    ``--assert-events-overhead 0.10``.

    The default scale is deliberately larger than the equivalence
    suite's: the event count is fixed by the partition count while the
    real work grows with the data, so a microscopic run (~80 ms) would
    measure the sink's constant cost against almost no work.
    """
    import tempfile

    # Warm the materialization memo so neither arm pays the one-time
    # dataset write.
    materialize(workload_name, scale=scale)

    def one(events: bool) -> float:
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, "events.jsonl") if events else None
            start = time.perf_counter()
            run_engine(
                workload_name,
                "spatialspark",
                nodes,
                scale=scale,
                events_out=path,
            )
            return time.perf_counter() - start

    one(False)  # warm both code paths before timing
    one(True)
    # Interleave the arms so machine drift (CI neighbours, thermal
    # throttling) lands on both equally instead of biasing whichever arm
    # ran last.  The guard statistic is the *minimum* paired delta: a
    # noisy sample inflates individual pairs, but a real regression slows
    # every pair, so min-of-pairs is a stable upper-bound check.
    off_seconds = math.inf
    on_seconds = math.inf
    delta = math.inf
    for _ in range(repeat):
        off_one = one(False)
        on_one = one(True)
        off_seconds = min(off_seconds, off_one)
        on_seconds = min(on_seconds, on_one)
        if off_one > 0:
            delta = min(delta, (on_one - off_one) / off_one)
    if delta == math.inf:  # pragma: no cover - repeat >= 1 always measures
        delta = 0.0
    return {
        "workload": workload_name,
        "scale": scale,
        "nodes": nodes,
        "repeat": repeat,
        "events_off_seconds": off_seconds,
        "events_on_seconds": on_seconds,
        "delta_fraction": delta,
    }


def run_parallel_benchmark(
    points: int = 100_000,
    executor_counts: tuple[int, ...] = (2, 4),
    chunk_size: int = 2048,
    repeat: int = 3,
    equivalence_scale: float = 0.02,
) -> dict[str, Any]:
    """Time serial vs pooled probes and run the substrate equivalence suite.

    Returns a JSON-ready document; ``python -m repro.bench parallel``
    both prints it and (with ``--out``) writes it to disk.
    """
    if points < 1:
        raise BenchError(f"points must be positive, got {points}")
    if not executor_counts:
        raise BenchError("need at least one executor count")
    probes = _probe_points(points)
    nycb = load_dataset("nycb", 1.0)
    within_index = BroadcastIndex(
        nycb.records, SpatialOperator.WITHIN, engine="fast"
    )
    lion = load_dataset("lion", 1.0)
    radius = WORKLOADS["taxi-lion-100"].radius_at(1.0)
    nearestd_index = BroadcastIndex(
        lion.records, SpatialOperator.NEAREST_D, radius=radius, engine="fast"
    )
    workloads = {
        "within": _time_probe_workload(
            "within", within_index, probes, executor_counts, chunk_size, repeat
        ),
        "nearestd": _time_probe_workload(
            "nearestd", nearestd_index, probes, executor_counts, chunk_size,
            repeat,
        ),
    }
    return {
        "benchmark": "parallel",
        "points": points,
        "chunk_size": chunk_size,
        "repeat": repeat,
        "executor_counts": list(executor_counts),
        "available_cores": _available_cores(),
        "start_method": (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ),
        "workloads": workloads,
        "equivalence": substrate_equivalence(
            equivalence_scale, executor_counts
        ),
        "events_overhead": events_overhead(),
    }


def render_parallel(doc: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_parallel_benchmark` output."""
    lines = [
        f"Process-pool runtime benchmark ({doc['points']} points, "
        f"chunk={doc['chunk_size']}, best of {doc['repeat']}, "
        f"{doc['available_cores']} core(s) available, "
        f"{doc['start_method']} workers)",
        "",
        f"{'workload':>10} {'pairs':>9} {'serial s':>10} "
        f"{'pool':>6} {'pool s':>10} {'speedup':>8} {'identical':>10}",
    ]
    for entry in doc["workloads"].values():
        for pool in entry["pools"].values():
            lines.append(
                f"{entry['workload']:>10} {entry['pairs']:>9} "
                f"{entry['serial_seconds']:>10.4f} {pool['workers']:>5}w "
                f"{pool['seconds']:>10.4f} {pool['speedup']:>7.2f}x "
                f"{str(pool['identical']):>10}"
            )
    eq = doc["equivalence"]
    lines.append("")
    lines.append(
        f"Substrate equivalence (scale {eq['scale']}, {eq['nodes']} nodes): "
        f"{'all identical' if eq['all_identical'] else 'MISMATCH'}"
    )
    for case in eq["cases"]:
        lines.append(
            f"  {case['workload']:>14} {case['engine']:>13} "
            f"executors={case['executors']} rows={case['rows']:<7} "
            f"identical={case['identical']}"
        )
    overhead = doc.get("events_overhead")
    if overhead:
        lines.append("")
        lines.append(
            f"Event-log overhead ({overhead['workload']}, scale "
            f"{overhead['scale']}, best of {overhead['repeat']}): "
            f"off={overhead['events_off_seconds']:.4f}s "
            f"on={overhead['events_on_seconds']:.4f}s "
            f"delta={overhead['delta_fraction'] * 100.0:+.1f}%"
        )
    if doc["available_cores"] < max(doc["executor_counts"], default=1):
        lines.append("")
        lines.append(
            f"note: only {doc['available_cores']} core(s) available — pool "
            "speedup is bounded by hardware; see the CI parallel-smoke job "
            "for multi-core numbers"
        )
    return "\n".join(lines)


def write_parallel_json(doc: dict[str, Any], path: str) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    from repro.bench.report import stamp_bench_doc

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stamp_bench_doc(doc), handle, indent=1, sort_keys=True)
        handle.write("\n")
