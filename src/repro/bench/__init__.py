"""Benchmark harness reproducing every table and figure of the paper."""

from repro.bench.runner import (
    RunResult,
    cluster_spec,
    run_engine,
    run_isp_standalone,
    run_ispmc,
    run_spatialspark,
)
from repro.bench.workloads import WORKLOADS, Workload, materialize
from repro.bench.calibrate import calibration_report, derive_work_scale, micro_ratio
from repro.bench.report import (
    BenchCache,
    DEFAULT_SCALE,
    experiments_report,
    fig4,
    fig5,
    table1,
    table2,
)

__all__ = [
    "RunResult",
    "cluster_spec",
    "run_engine",
    "run_spatialspark",
    "run_ispmc",
    "run_isp_standalone",
    "WORKLOADS",
    "Workload",
    "materialize",
    "BenchCache",
    "DEFAULT_SCALE",
    "experiments_report",
    "table1",
    "table2",
    "fig4",
    "fig5",
    "calibration_report",
    "derive_work_scale",
    "micro_ratio",
]
