"""Cross-query cache benchmark: cold vs warm repeated-query wall clock.

The cache targets the interactive pattern of Section V's workloads — an
analyst keeps probing the *same* right-side table (census blocks,
streets, ecoregions) with successive point batches.  This benchmark cuts
each workload's left stream into K batches (see
:func:`~repro.bench.workloads.materialize_repeat_query`) and runs the
sweep twice per engine:

- **cold**: caching disabled, and every process-level content cache
  (prepared-geometry handles, the WKT parse memo) cleared before each
  batch — every query pays the full parse + index-build cost;
- **warm**: ``cache_budget_bytes`` set, caches cleared once up front —
  batch 0 misses and populates, batches 1..K-1 reuse the fingerprinted
  build side.

Wall-clock is the *only* thing allowed to differ: the benchmark asserts
rows and simulated seconds byte-identical per batch across the two arms
(the cache's hard invariant, measured end to end).  The headline
``best_warm_speedup`` is the best per-case tail speedup — the repeated
batches 1..K-1, where a warm cache actually applies.  Build-dominated
workloads (G10M-wwf's large ecoregion polygons) clear 2x; probe-bound
ones (taxi points against small polygon tables) show honest modest wins,
and ISP-MC with the paper's slow refinement engine is refinement-bound,
which caching cannot help.

Run it with ``python -m repro.bench cache``; the committed
``BENCH_cache.json`` at the repo root is this benchmark's output on the
container it was generated in.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import Any

from repro.bench.runner import run_ispmc, run_spatialspark
from repro.bench.workloads import materialize_repeat_query
from repro.cache import CacheManager, get_cache, set_cache
from repro.errors import BenchError
from repro.geometry.prepared import clear_prepared_cache
from repro.geometry.wkt import clear_wkt_cache
from repro.runtime.config import RuntimeConfig

__all__ = ["run_cache_benchmark", "render_cache", "write_cache_json"]

DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024
_WORKLOADS = ("taxi-nycb", "taxi-lion-100", "G10M-wwf")
_ENGINES = ("spatialspark", "isp-mc")


def _clear_process_caches() -> None:
    """Reset every cross-query cache to a cold start."""
    set_cache(CacheManager(budget_bytes=None, emit_events=True))
    clear_prepared_cache()
    clear_wkt_cache()


def _run_batch(engine: str, mat, nodes: int, runtime: RuntimeConfig,
               events_out: str | None = None):
    if events_out is not None:
        runtime = replace(runtime, events_out=events_out)
    if engine == "spatialspark":
        # Few, fat partitions: the study measures parse/build/probe cost,
        # not scheduler bookkeeping (results are partition-independent).
        return run_spatialspark(mat, nodes, num_partitions=8, runtime=runtime)
    if engine == "isp-mc":
        return run_ispmc(mat, nodes, runtime=runtime)
    raise BenchError(f"unknown engine {engine!r}")


def run_cache_benchmark(
    batches: int = 12,
    scale: float = 0.12,
    nodes: int = 1,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    workload_names: tuple[str, ...] = _WORKLOADS,
    engines: tuple[str, ...] = _ENGINES,
    events_out: str | None = None,
) -> dict[str, Any]:
    """Cold vs warm repeated-query sweep; returns a JSON-ready document.

    With ``events_out``, one extra warm batch is re-run afterwards with
    the structured event log enabled, so the written JSONL carries the
    ``CacheHit`` events of a warm build side (the CI artifact).
    """
    if batches < 2:
        raise BenchError(f"need at least 2 batches to warm a cache, got {batches}")
    if budget_bytes < 1:
        raise BenchError(f"budget_bytes must be positive, got {budget_bytes}")
    warm_runtime = RuntimeConfig(cache_budget_bytes=budget_bytes)
    cases: list[dict[str, Any]] = []
    for name in workload_names:
        runs = materialize_repeat_query(name, batches=batches, scale=scale)
        for engine in engines:
            cold: list[dict[str, Any]] = []
            for mat in runs:
                _clear_process_caches()
                start = time.perf_counter()
                result = _run_batch(engine, mat, nodes, RuntimeConfig())
                cold.append(
                    {
                        "seconds": time.perf_counter() - start,
                        "rows": result.result_rows,
                        "simulated_seconds": result.simulated_seconds,
                    }
                )
            _clear_process_caches()
            warm: list[dict[str, Any]] = []
            for mat in runs:
                start = time.perf_counter()
                result = _run_batch(engine, mat, nodes, warm_runtime)
                warm.append(
                    {
                        "seconds": time.perf_counter() - start,
                        "rows": result.result_rows,
                        "simulated_seconds": result.simulated_seconds,
                    }
                )
            stats = get_cache().stats.as_dict()
            identical = all(
                c["rows"] == w["rows"]
                and c["simulated_seconds"] == w["simulated_seconds"]
                for c, w in zip(cold, warm)
            )
            cold_tail = sum(b["seconds"] for b in cold[1:])
            warm_tail = sum(b["seconds"] for b in warm[1:])
            cases.append(
                {
                    "workload": name,
                    "engine": engine,
                    "batches": batches,
                    "rows_per_batch": [b["rows"] for b in cold],
                    "cold_seconds": [b["seconds"] for b in cold],
                    "warm_seconds": [b["seconds"] for b in warm],
                    "cold_tail_seconds": cold_tail,
                    "warm_tail_seconds": warm_tail,
                    # batches 1..K-1: the repeated-query portion a warm
                    # cache can serve (batch 0 is cold in both arms).
                    "warm_speedup": (
                        cold_tail / warm_tail if warm_tail > 0 else float("inf")
                    ),
                    "identical": identical,
                    "cache_stats": stats,
                }
            )
    doc: dict[str, Any] = {
        "benchmark": "cache",
        "batches": batches,
        "scale": scale,
        "nodes": nodes,
        "budget_bytes": budget_bytes,
        "cases": cases,
        "best_warm_speedup": max(c["warm_speedup"] for c in cases),
        "all_identical": all(c["identical"] for c in cases),
    }
    if events_out is not None:
        # Annotated artifact: populate the cache with one silent batch,
        # then re-run the next batch with the event log on — its stream
        # carries CacheHit events alongside the usual query events.
        runs = materialize_repeat_query(
            workload_names[-1], batches=batches, scale=scale
        )
        _clear_process_caches()
        _run_batch(engines[0], runs[0], nodes, warm_runtime)
        _run_batch(
            engines[0], runs[1], nodes, warm_runtime, events_out=events_out
        )
        doc["events_out"] = events_out
    return doc


def render_cache(doc: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_cache_benchmark` output."""
    lines = [
        f"Cross-query cache benchmark ({doc['batches']} point batches per "
        f"workload, scale {doc['scale']}, budget "
        f"{doc['budget_bytes'] // (1024 * 1024)} MiB)",
        "",
        f"{'workload':>14} {'engine':>12} {'cold tail s':>12} "
        f"{'warm tail s':>12} {'speedup':>8} {'hits':>6} {'identical':>10}",
    ]
    for case in doc["cases"]:
        lines.append(
            f"{case['workload']:>14} {case['engine']:>12} "
            f"{case['cold_tail_seconds']:>12.3f} "
            f"{case['warm_tail_seconds']:>12.3f} "
            f"{case['warm_speedup']:>7.2f}x "
            f"{case['cache_stats']['hits']:>6} "
            f"{str(case['identical']):>10}"
        )
    lines.append("")
    lines.append(
        f"best warm speedup: {doc['best_warm_speedup']:.2f}x  "
        f"(cold batch 0 excluded from both arms; rows and simulated "
        f"seconds {'identical' if doc['all_identical'] else 'MISMATCH'} "
        f"across arms)"
    )
    return "\n".join(lines)


def write_cache_json(doc: dict[str, Any], path: str) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    from repro.bench.report import stamp_bench_doc

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stamp_bench_doc(doc), handle, indent=1, sort_keys=True)
        handle.write("\n")
