"""Calibration utilities: derive the cost model's global scale from a run.

DESIGN.md §5 describes the calibration; this module *is* that procedure,
so the constants in :class:`~repro.cluster.model.CostModel` are
reproducible rather than folklore:

* ``derive_work_scale`` re-derives ``work_scale`` by anchoring one
  experiment to one paper number (the standalone ISP-MC taxi-nycb run,
  507 s in Table 1);
* ``micro_ratio`` measures the refinement engines' charged cost ratio on
  a workload sample — the JTS-vs-GEOS band (3.3–3.9x) the per-vertex
  rates were tuned to;
* ``calibration_report`` prints every calibrated knob next to its paper
  evidence.
"""

from __future__ import annotations

import dataclasses

from repro.bench.report import DEFAULT_SCALE
from repro.bench.runner import run_isp_standalone
from repro.bench.workloads import materialize
from repro.cluster.model import CostModel, Resource
from repro.core.operators import SpatialOperator
from repro.core.probe import BroadcastIndex

__all__ = ["derive_work_scale", "micro_ratio", "calibration_report"]

# The anchor: standalone ISP-MC on taxi-nycb took 507 s on the paper's
# in-house machine (Table 1, last column, first row).
ANCHOR_WORKLOAD = "taxi-nycb"
ANCHOR_SECONDS = 507.0


def derive_work_scale(
    scale: float = DEFAULT_SCALE,
    target_seconds: float = ANCHOR_SECONDS,
    workload: str = ANCHOR_WORKLOAD,
) -> float:
    """Return the ``work_scale`` that maps the anchor run to the paper.

    Runs the anchor experiment under a unit-scale cost model and divides
    the paper's seconds by the raw simulated seconds.  The derived value
    is scale-dependent (half the data means half the raw cost), so it is
    only meaningful at the calibration scale (0.12).  The shipped default
    (36,000) sits deliberately *below* the pure anchor value (~78,000 at
    scale 0.12): charging the full anchor would shrink the fixed
    control-plane overheads (JAR shipping, stage metadata, plan/JIT) to
    irrelevance relative to work, pushing Fig 4's parallel efficiency to
    ~1.0 where the paper measured ~0.8.  The shipped value balances the
    anchor against those overhead fractions.
    """
    mat = materialize(workload, scale=scale)
    unit_model = dataclasses.replace(CostModel(), work_scale=1.0)
    raw = run_isp_standalone(mat, cost_model=unit_model).simulated_seconds
    if raw <= 0.0:
        raise ZeroDivisionError("anchor run accrued no cost")
    return target_seconds / raw


def micro_ratio(
    workload: str = "taxi-nycb",
    scale: float = DEFAULT_SCALE,
    sample: int = 1500,
    model: CostModel | None = None,
) -> float:
    """Charged slow/fast refinement-cost ratio on a workload sample.

    This is the §V.B micro-benchmark in cost-model units; the per-vertex
    rates were tuned so it lands in the paper's 3.3–3.9x GEOS/JTS band.
    """
    model = model or CostModel()
    mat = materialize(workload, scale=scale)
    points = mat.left.records[:sample]
    fast = BroadcastIndex(mat.right.records, SpatialOperator.WITHIN, engine="fast")
    slow = BroadcastIndex(mat.right.records, SpatialOperator.WITHIN, engine="slow")
    for _, point in points:
        fast.probe(point)
        slow.probe(point)
    fast_cost = model.task_seconds(
        {Resource.REFINE_VERTEX_FAST: fast.engine.counters.vertex_ops}
    )
    slow_cost = model.task_seconds(
        {
            Resource.REFINE_VERTEX_SLOW: slow.engine.counters.vertex_ops,
            Resource.REFINE_ALLOC: slow.engine.counters.allocations,
        }
    )
    return slow_cost / fast_cost


def calibration_report(scale: float = DEFAULT_SCALE) -> str:
    """Human-readable table of every calibrated knob and its evidence."""
    model = CostModel()
    derived = derive_work_scale(scale=scale)
    nycb_ratio = micro_ratio("taxi-nycb", scale=scale)
    wwf_ratio = micro_ratio("G10M-wwf", scale=scale)
    lines = [
        f"Calibration report (scale {scale})",
        "",
        f"{'knob':>32} | {'shipped':>10} | evidence",
        f"{'work_scale':>32} | {model.work_scale:>10.0f} | "
        f"re-derived from Table 1 anchor: {derived:.0f}",
        f"{'refine slow/fast (nycb)':>32} | {nycb_ratio:>10.2f} | paper 3.3x (SV.B)",
        f"{'refine slow/fast (wwf)':>32} | {wwf_ratio:>10.2f} | paper 3.9x (SV.B)",
        f"{'spark_jvm_factor':>32} | {model.spark_jvm_factor:>10.2f} | "
        "SVI JVM-vs-native",
        f"{'impala_infra_factor':>32} | {model.impala_infra_factor:>10.3f} | "
        "Table 1: 7.3-13.9% over standalone",
        f"{'impala_memory_pressure':>32} | "
        f"{model.impala_memory_pressure_factor:>10.2f} | cross-table per-core "
        "arithmetic (DESIGN.md S5)",
    ]
    return "\n".join(lines)
