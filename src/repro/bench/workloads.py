"""The paper's four evaluation workloads, at configurable scale.

Section V runs exactly four spatial joins:

=============  ========================  =========================
label          predicate                 datasets (left, right)
=============  ========================  =========================
taxi-nycb      Within                    taxi pickups, census blocks
taxi-lion-100  NearestD, D = 100 feet    taxi pickups, streets
taxi-lion-500  NearestD, D = 500 feet    taxi pickups, streets
G10M-wwf       Within                    GBIF occurrences, ecoregions
=============  ========================  =========================

The paper's D values relate to NYC's ~264-foot block pitch (100 ft ~ 0.38
blocks, 500 ft ~ 1.9 blocks); we scale D by the synthetic street-grid
pitch so the two NearestD variants keep the same candidate-density ratio
at every scale — which is what makes taxi-lion-500 several times more
expensive than taxi-lion-100, as in Table 1.

Files are written to HDFS in spatial (Morton) order.  Real exports are
spatially correlated the same way (taxi trips by time-of-day zone
rotation, GBIF by contributing survey), and that correlation is what
static scan-range assignment turns into the stragglers of Section V.C.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.operators import SpatialOperator
from repro.data.catalog import DATASETS, load_dataset
from repro.data.gbif import generate_gbif
from repro.data.synthetic import SyntheticDataset
from repro.errors import BenchError
from repro.hdfs import SimulatedHDFS
from repro.index.morton import morton_code

__all__ = [
    "Workload",
    "WORKLOADS",
    "materialize",
    "materialize_repeat_query",
    "MaterializedWorkload",
    "morton_key",
]


@dataclass(frozen=True)
class Workload:
    """One named experiment: datasets, predicate, radius rule."""

    name: str
    left: str
    right: str
    operator: SpatialOperator
    radius_blocks: float = 0.0  # D in units of street-grid pitch

    def radius_at(self, scale: float) -> float:
        """Concrete D for the synthetic street grid at this scale."""
        if self.operator is not SpatialOperator.NEAREST_D:
            return 0.0
        lion = load_dataset("lion", scale)
        grid = lion.metadata["grid"]
        pitch = lion.extent.width / grid
        return self.radius_blocks * pitch


WORKLOADS = {
    "taxi-nycb": Workload("taxi-nycb", "taxi", "nycb", SpatialOperator.WITHIN),
    "taxi-lion-100": Workload(
        "taxi-lion-100", "taxi", "lion", SpatialOperator.NEAREST_D, radius_blocks=0.38
    ),
    "taxi-lion-500": Workload(
        "taxi-lion-500", "taxi", "lion", SpatialOperator.NEAREST_D, radius_blocks=1.9
    ),
    "G10M-wwf": Workload("G10M-wwf", "g10m", "wwf", SpatialOperator.WITHIN),
    # Not from the paper: the adversarially clustered workload the
    # optimizer study uses to demonstrate skew-aware splitting.
    "hotspot-nycb": Workload(
        "hotspot-nycb", "hotspot", "nycb", SpatialOperator.WITHIN
    ),
}


@dataclass
class MaterializedWorkload:
    """Datasets written to a shared HDFS, ready for every engine."""

    workload: Workload
    scale: float
    left: SyntheticDataset
    right: SyntheticDataset
    radius: float
    hdfs: SimulatedHDFS
    left_path: str
    right_path: str

    @property
    def build_cost_weight(self) -> float:
        """Representativity correction for build-side (right) work.

        The left stream calibrates ``work_scale``: one synthetic left
        record stands for ``left_rep`` paper records.  A scaled-down right
        side keeps enough polygons for realistic geometry, which makes one
        right record stand for *fewer* paper records than a left record
        does — so per-record right-side work (parse, broadcast, index
        build, done in full per instance) must be down-weighted by the
        ratio, or the scaled benchmark overstates build cost ~10x.
        """
        left_rep = DATASETS[self.workload.left].representativity(self.scale)
        right_rep = DATASETS[self.workload.right].representativity(self.scale)
        return right_rep / left_rep


def morton_key(x: float, y: float, extent) -> int:
    """Interleave 16-bit normalised coordinates into a Morton (Z) code."""
    return morton_code(x, y, extent)


def _spatially_sorted(dataset: SyntheticDataset) -> SyntheticDataset:
    """Reorder records by the Morton code of their envelope centre."""
    ordered = sorted(
        dataset.records,
        key=lambda rec: morton_key(*rec[1].envelope.center, dataset.extent),
    )
    return SyntheticDataset(
        name=dataset.name,
        records=ordered,
        extent=dataset.extent,
        description=dataset.description,
        metadata={**dataset.metadata, "order": "morton"},
    )


_MATERIALIZED: dict[tuple[str, float, int], MaterializedWorkload] = {}


def materialize(
    name: str,
    scale: float = 0.1,
    num_datanodes: int = 10,
    blocks_per_file: int = 40,
) -> MaterializedWorkload:
    """Generate, sort and write one workload's datasets to a fresh HDFS.

    Memoised per (workload, scale, datanodes): every engine and cluster
    size joins the identical bytes, so result counts must agree exactly.
    """
    try:
        workload = WORKLOADS[name]
    except KeyError:
        raise BenchError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    key = (name, scale, num_datanodes)
    if key in _MATERIALIZED:
        return _MATERIALIZED[key]
    right = _spatially_sorted(load_dataset(workload.right, scale))
    if workload.name == "G10M-wwf":
        # Occurrences cluster on "land": survey hotspots sit on ecoregion
        # *parts* (tight sigma keeps most samples inside some region, as
        # real GBIF records overwhelmingly fall on land).
        spec = DATASETS[workload.left]
        centers = []
        for _, geometry in right.records:
            for part in geometry.parts:
                c = part.centroid()
                centers.append((c.x, c.y, part.envelope.width / 5.0))
        left = _spatially_sorted(
            generate_gbif(spec.count_at(scale), centers=centers)
        )
    else:
        left = _spatially_sorted(load_dataset(workload.left, scale))
    hdfs = SimulatedHDFS(
        datanodes=tuple(f"node{i}" for i in range(num_datanodes)),
        replication=2,
    )
    left_path = f"/data/{left.name}.txt"
    right_path = f"/data/{right.name}.txt"
    _write_blocked(hdfs, left, left_path, blocks_per_file)
    _write_blocked(hdfs, right, right_path, max(4, blocks_per_file // 4))
    result = MaterializedWorkload(
        workload=workload,
        scale=scale,
        left=left,
        right=right,
        radius=workload.radius_at(scale),
        hdfs=hdfs,
        left_path=left_path,
        right_path=right_path,
    )
    _MATERIALIZED[key] = result
    return result


_REPEAT_MATERIALIZED: dict[tuple[str, float, int, int], list[MaterializedWorkload]] = {}


def materialize_repeat_query(
    name: str,
    batches: int = 4,
    scale: float = 0.1,
    num_datanodes: int = 10,
    blocks_per_file: int = 40,
) -> list[MaterializedWorkload]:
    """The repeat-query workload: one polygon table, K point batches.

    Models the interactive pattern the cross-query cache targets — an
    analyst keeps probing the *same* right-side table (census blocks,
    streets, ecoregions) with successive point batches.  The base
    workload's left stream is cut into ``batches`` contiguous slices,
    each written to its own HDFS file over the shared right table; the
    result is one :class:`MaterializedWorkload` per batch, differing only
    in ``left_path``, so every engine runner works unchanged.  The
    build-side index is identical across batches by construction — a
    warm cache serves batches 2..K from the first batch's build.
    """
    if not isinstance(batches, int) or batches < 1:
        raise BenchError(f"batches must be a positive integer, got {batches!r}")
    key = (name, scale, num_datanodes, batches)
    if key in _REPEAT_MATERIALIZED:
        return _REPEAT_MATERIALIZED[key]
    base = materialize(name, scale, num_datanodes, blocks_per_file)
    records = base.left.records
    if len(records) < batches:
        raise BenchError(
            f"workload {name!r} has {len(records)} left records, "
            f"fewer than {batches} batches"
        )
    size = len(records) // batches
    runs: list[MaterializedWorkload] = []
    for i in range(batches):
        start = i * size
        stop = start + size if i < batches - 1 else len(records)
        # Underscore, not hyphen: the name doubles as an ISP-MC table name.
        batch = SyntheticDataset(
            name=f"{base.left.name}_batch{i}",
            records=records[start:stop],
            extent=base.left.extent,
            description=f"{base.left.description} (repeat-query batch {i})",
            metadata={**base.left.metadata, "batch": i},
        )
        batch_path = f"/data/{batch.name}.txt"
        _write_blocked(
            base.hdfs, batch, batch_path, max(4, blocks_per_file // batches)
        )
        runs.append(
            replace(base, left=batch, left_path=batch_path)
        )
    _REPEAT_MATERIALIZED[key] = runs
    return runs


def _write_blocked(
    hdfs: SimulatedHDFS, dataset: SyntheticDataset, path: str, target_blocks: int
) -> None:
    """Write with a block size yielding roughly ``target_blocks`` blocks."""
    lines = list(dataset.to_lines())
    payload_size = sum(len(line) + 1 for line in lines)
    block_size = max(1024, payload_size // max(1, target_blocks))
    from repro.hdfs import write_text

    write_text(hdfs, path, lines, block_size=block_size)
