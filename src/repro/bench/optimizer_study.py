"""Stats-driven plan study: ``python -m repro.bench --method auto``.

For each study workload the plan chooser samples both inputs, prices
every join strategy against the simulated cluster, and reports the
winner.  For the skewed ``hotspot-nycb`` workload the study additionally
compares the predicted makespan of a fixed tile grid — the static
decomposition the paper blames for ISP-MC's stragglers — before and
after LocationSpark-style hot-tile splitting, under each scheduler in
:mod:`repro.cluster.simulation`.  ``BENCH_optimizer.json`` at the repo
root is a committed run of :func:`optimizer_study`.
"""

from __future__ import annotations

from repro.bench.workloads import materialize
from repro.cluster.model import ClusterSpec
from repro.index.partitioner import FixedGridPartitioner
from repro.optimizer import choose_plan, predicted_makespans, split_hot_tiles
from repro.optimizer.stats import collect_join_stats, tile_histogram

__all__ = [
    "STUDY_WORKLOADS",
    "SKEW_WORKLOAD",
    "optimizer_study",
    "render_optimizer_study",
]

STUDY_WORKLOADS = ("taxi-nycb", "taxi-lion-500", "G10M-wwf", "hotspot-nycb")
SKEW_WORKLOAD = "hotspot-nycb"
# A 6x6 fixed grid stands in for the static tile decomposition; the skew
# section measures how much hot-tile splitting repairs it.
BASE_GRID = 6


def _plan_for(name: str, scale: float, cluster: ClusterSpec) -> dict:
    mat = materialize(name, scale=scale, num_datanodes=cluster.num_nodes)
    plan = choose_plan(
        mat.left.records,
        mat.right.records,
        operator=mat.workload.operator,
        radius=mat.radius,
        cluster=cluster,
    )
    info = plan.to_info()
    info["workload"] = name
    info["explain"] = plan.explain()
    return info


def _skew_section(scale: float, cluster: ClusterSpec) -> dict:
    """Makespans of a fixed grid before/after hot-tile splitting."""
    mat = materialize(SKEW_WORKLOAD, scale=scale, num_datanodes=cluster.num_nodes)
    stats = collect_join_stats(
        mat.left.records, mat.right.records, radius=mat.radius
    )
    base = FixedGridPartitioner(BASE_GRID, BASE_GRID).partition(mat.left.extent)
    before_hist = tile_histogram(base, stats)
    refined, after_hist, added = split_hot_tiles(base, stats)
    workers = cluster.total_cores
    before = predicted_makespans(before_hist, workers)
    after = predicted_makespans(after_hist, workers)
    return {
        "workload": SKEW_WORKLOAD,
        "base_tiles": len(base),
        "refined_tiles": len(refined),
        "split_tiles_added": added,
        "workers": workers,
        "makespan_before": {k: round(v, 6) for k, v in before.items()},
        "makespan_after": {k: round(v, 6) for k, v in after.items()},
        "speedup": {
            k: round(before[k] / after[k], 4) if after[k] > 0 else 1.0
            for k in before
        },
    }


def optimizer_study(scale: float, nodes: int = 4) -> dict:
    """Run the plan chooser over the study workloads plus the skew demo."""
    from repro.bench.report import stamp_bench_doc

    cluster = ClusterSpec(num_nodes=nodes)
    return stamp_bench_doc(
        {
            "scale": scale,
            "nodes": nodes,
            "workers": cluster.total_cores,
            "plans": [
                _plan_for(name, scale, cluster) for name in STUDY_WORKLOADS
            ],
            "skew": _skew_section(scale, cluster),
        }
    )


def render_optimizer_study(study: dict) -> str:
    """Text rendering of :func:`optimizer_study` for the default mode."""
    lines = [
        f"Optimizer study (scale factor {study['scale']}, "
        f"{study['nodes']} nodes / {study['workers']} workers)",
        "",
    ]
    for plan in study["plans"]:
        lines.append(f"{plan['workload']}:")
        lines.extend(f"  {line}" for line in plan["explain"])
        lines.append("")
    skew = study["skew"]
    lines.append(
        f"Skew-aware splitting on {skew['workload']}: "
        f"{skew['base_tiles']} fixed tiles -> {skew['refined_tiles']} "
        f"({skew['split_tiles_added']} added)"
    )
    lines.append(
        f"{'scheduler':>20} | {'before (s)':>10} | {'after (s)':>10} | speedup"
    )
    for scheduler in skew["makespan_before"]:
        lines.append(
            f"{scheduler:>20} | {skew['makespan_before'][scheduler]:10.2f} | "
            f"{skew['makespan_after'][scheduler]:10.2f} | "
            f"{skew['speedup'][scheduler]:7.2f}x"
        )
    return "\n".join(lines)
