"""Kernels microbenchmark: columnar batch execution vs scalar, wall-clock.

Everything else in :mod:`repro.bench` reports *simulated* seconds from the
cost model — deliberately identical between the scalar and batch code
paths.  This module measures the one thing that does change: real Python
wall-clock.  It times the scalar probe loop (R-tree query + per-candidate
refinement per point) against the columnar path (one Morton-sorted bulk
index probe + one numpy kernel call per build geometry) on a taxi-vs-NYCB
style workload, and cross-checks that every join method on both
substrates returns byte-identical pairs with batching on or off.

Run it with ``python -m repro.bench kernels``; the committed
``BENCH_kernels.json`` at the repo root is this benchmark's output.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any

from repro.bench.workloads import WORKLOADS, materialize
from repro.core.broadcast_join import broadcast_spatial_join
from repro.core.operators import SpatialOperator
from repro.core.partitioned_join import derive_partitioning, partitioned_spatial_join
from repro.core.probe import BroadcastIndex
from repro.data.catalog import DATASETS, load_dataset
from repro.errors import BenchError
from repro.impala.catalog import ColumnType
from repro.impala.coordinator import ImpalaBackend
from repro.impala.parser import parse as parse_sql
from repro.optimizer import choose_plan
from repro.spark.context import SparkContext

__all__ = ["run_kernels_benchmark", "render_kernels"]

_EQUIV_SQL = {
    SpatialOperator.WITHIN: (
        "SELECT l.id, r.id FROM {left} l SPATIAL JOIN {right} r "
        "WHERE ST_WITHIN(l.geom, r.geom)"
    ),
    SpatialOperator.NEAREST_D: (
        "SELECT l.id, r.id FROM {left} l SPATIAL JOIN {right} r "
        "WHERE ST_NEARESTD(l.geom, r.geom, {radius})"
    ),
}


def _probe_points(num_points: int) -> list:
    """Taxi pickup points, at whatever scale yields ``num_points``."""
    full = DATASETS["taxi"].count_at(1.0)
    scale = num_points / full
    dataset = load_dataset("taxi", scale)
    points = [geometry for _, geometry in dataset.records][:num_points]
    if len(points) < num_points:
        raise BenchError(
            f"taxi at scale {scale} yields {len(points)} < {num_points} points"
        )
    return points


def _time_kernel(
    name: str,
    index: BroadcastIndex,
    points: list,
    repeat: int,
) -> dict[str, Any]:
    """Best-of-``repeat`` wall-clock for the scalar loop vs one bulk probe."""
    scalar_best = math.inf
    batch_best = math.inf
    scalar_result = batch_result = None
    for _ in range(repeat):
        start = time.perf_counter()
        scalar_result = [index.probe_with_cost(p) for p in points]
        scalar_best = min(scalar_best, time.perf_counter() - start)
        start = time.perf_counter()
        batch_result = index.probe_batch(points, per_row=True)
        batch_best = min(batch_best, time.perf_counter() - start)
    scalar_matches = [m for m, _ in scalar_result]
    scalar_units = [u for _, u in scalar_result]
    batch_matches, batch_units = batch_result
    identical = scalar_matches == batch_matches and scalar_units == batch_units
    pairs = sum(len(m) for m in scalar_matches)
    return {
        "kernel": name,
        "points": len(points),
        "build_geometries": len(index),
        "pairs": pairs,
        "scalar_seconds": scalar_best,
        "batch_seconds": batch_best,
        "speedup": scalar_best / batch_best if batch_best > 0 else math.inf,
        "identical": identical,
    }


def _spark_context(mat) -> SparkContext:
    from repro.cluster.model import ClusterSpec

    return SparkContext(ClusterSpec(2, 2), hdfs=mat.hdfs)


def _spark_pairs(
    mat, method: str, batch_refine: bool, partitioning
) -> tuple[list, str]:
    sc = _spark_context(mat)
    left = sc.parallelize(mat.left.records, 4)
    right = sc.parallelize(mat.right.records, 4)
    operator = mat.workload.operator
    resolved = method
    if method == "auto":
        plan = choose_plan(
            mat.left.records,
            mat.right.records,
            operator,
            radius=mat.radius,
            cluster=sc.cluster,
        )
        resolved = plan.method if plan.method in ("broadcast", "partitioned") else "broadcast"
    if resolved == "partitioned":
        pairs = partitioned_spatial_join(
            sc,
            left,
            right,
            operator,
            radius=mat.radius,
            partitioning=partitioning,
            batch_refine=batch_refine,
        ).collect()
    else:
        pairs = broadcast_spatial_join(
            sc, left, right, operator, radius=mat.radius, batch_refine=batch_refine
        ).collect()
    return sorted(pairs), resolved


def _impala_pairs(mat, method: str, batch_refine: bool) -> tuple[list, str]:
    from repro.cluster.model import ClusterSpec

    backend = ImpalaBackend(
        ClusterSpec(2, 4),
        hdfs=mat.hdfs,
        engine="fast",
        build_cost_weight=mat.build_cost_weight,
        batch_refine=batch_refine,
    )
    schema = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
    left_name = f"kern_left_{mat.left.name}"
    right_name = f"kern_right_{mat.right.name}"
    backend.metastore.create_table(left_name, schema, mat.left_path)
    backend.metastore.create_table(right_name, schema, mat.right_path)
    sql = _EQUIV_SQL[mat.workload.operator].format(
        left=left_name, right=right_name, radius=mat.radius
    )
    plan = backend._planner.plan(parse_sql(sql))
    resolved = plan.join.distribution
    if method != "auto":
        # JoinSpec is mutable by design: force the exchange strategy the
        # matrix row asks for (billing differs; rows must not).
        plan.join.distribution = method
        resolved = method
    result = backend._execute_plan(plan)
    return sorted(result.rows), resolved


def _equivalence_matrix(scale: float) -> dict[str, Any]:
    """batch == scalar, pair for pair, on every method x substrate."""
    cases = []
    for workload_name in ("taxi-nycb", "taxi-lion-100"):
        mat = materialize(workload_name, scale=scale)
        partitioning = derive_partitioning(
            _spark_context(mat).parallelize(mat.left.records, 4), num_tiles=4
        )
        for method in ("broadcast", "partitioned", "auto"):
            batch, resolved = _spark_pairs(mat, method, True, partitioning)
            scalar, _ = _spark_pairs(mat, method, False, partitioning)
            cases.append(
                {
                    "workload": workload_name,
                    "substrate": "spark",
                    "method": method,
                    "resolved": resolved,
                    "pairs": len(batch),
                    "identical": batch == scalar,
                }
            )
            batch, resolved = _impala_pairs(mat, method, True)
            scalar, _ = _impala_pairs(mat, method, False)
            cases.append(
                {
                    "workload": workload_name,
                    "substrate": "impala",
                    "method": method,
                    "resolved": resolved,
                    "pairs": len(batch),
                    "identical": batch == scalar,
                }
            )
    return {
        "scale": scale,
        "cases": cases,
        "all_identical": all(c["identical"] for c in cases),
    }


def run_kernels_benchmark(
    points: int = 100_000,
    repeat: int = 3,
    equivalence_scale: float = 0.02,
) -> dict[str, Any]:
    """Time scalar vs batch probes and run the equivalence matrix.

    Returns a JSON-ready document; ``python -m repro.bench kernels`` both
    prints it and (with ``--out``) writes it to disk.
    """
    if points < 1:
        raise BenchError(f"points must be positive, got {points}")
    probes = _probe_points(points)
    nycb = load_dataset("nycb", 1.0)
    within_index = BroadcastIndex(
        nycb.records, SpatialOperator.WITHIN, engine="fast"
    )
    lion = load_dataset("lion", 1.0)
    radius = WORKLOADS["taxi-lion-100"].radius_at(1.0)
    nearestd_index = BroadcastIndex(
        lion.records, SpatialOperator.NEAREST_D, radius=radius, engine="fast"
    )
    kernels = {
        "within": _time_kernel("within", within_index, probes, repeat),
        "nearestd": _time_kernel("nearestd", nearestd_index, probes, repeat),
    }
    return {
        "benchmark": "kernels",
        "points": points,
        "repeat": repeat,
        "kernels": kernels,
        "equivalence": _equivalence_matrix(equivalence_scale),
    }


def render_kernels(doc: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_kernels_benchmark` output."""
    lines = [
        f"Columnar kernels microbenchmark ({doc['points']} points, "
        f"best of {doc['repeat']})",
        "",
        f"{'kernel':>10} {'build':>6} {'pairs':>9} {'scalar s':>10} "
        f"{'batch s':>10} {'speedup':>8} {'identical':>10}",
    ]
    for entry in doc["kernels"].values():
        lines.append(
            f"{entry['kernel']:>10} {entry['build_geometries']:>6} "
            f"{entry['pairs']:>9} {entry['scalar_seconds']:>10.4f} "
            f"{entry['batch_seconds']:>10.4f} {entry['speedup']:>7.2f}x "
            f"{str(entry['identical']):>10}"
        )
    eq = doc["equivalence"]
    lines.append("")
    lines.append(
        f"Equivalence matrix (scale {eq['scale']}): "
        f"{'all identical' if eq['all_identical'] else 'MISMATCH'}"
    )
    for case in eq["cases"]:
        lines.append(
            f"  {case['workload']:>14} {case['substrate']:>7} "
            f"{case['method']:>12} (-> {case['resolved']:<12}) "
            f"pairs={case['pairs']:<7} identical={case['identical']}"
        )
    return "\n".join(lines)


def write_kernels_json(doc: dict[str, Any], path: str) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    from repro.bench.report import stamp_bench_doc

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stamp_bench_doc(doc), handle, indent=1, sort_keys=True)
        handle.write("\n")
