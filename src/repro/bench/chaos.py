"""Chaos benchmark: seeded fault injection must not change any answer.

``python -m repro.bench chaos`` sweeps fault rates over both substrates
(SpatialSpark broadcast join, a mini-Spark shuffle job with lineage
recovery, ISP-MC SQL) and the in-memory core API (broadcast and
partitioned methods).  For every ``(case, fault rate)`` cell it runs the
workload twice — once fault-free, once under a seeded
:class:`~repro.runtime.faults.FaultPlan` — and asserts the chaos run is
**byte-identical** to the baseline: same result rows, same counters,
same rendered profile, same simulated seconds, and the same normalized
event stream once the recovery events themselves are filtered out.

That equivalence is the whole point of the fault-tolerance layer:
injection happens driver-side before dispatch (a crashed attempt charges
nothing) and recovery bookkeeping lives only in the event log, so a
flaky simulated cluster still reproduces the paper's numbers exactly.
The recovery events are counted per cell — the visible trace that faults
really were injected and survived.
"""

from __future__ import annotations

import json
import os
import random
import tempfile

from repro.cluster.model import ClusterSpec
from repro.core.api import JoinConfig, spatial_join
from repro.geometry import Point, Polygon
from repro.obs.events import (
    RECOVERY_EVENT_TYPES,
    normalize_events,
    read_events,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.faults import DEFAULT_KINDS, FaultPlan
from repro.spark.context import SparkContext

__all__ = ["run_chaos_benchmark", "render_chaos", "write_chaos_json"]

DEFAULT_FAULT_RATES = (0.1, 0.3)

_SPEC = ClusterSpec(num_nodes=2, cores_per_node=2, mem_per_node_gb=4.0)


def _grid_polygons(n: int = 3, cell: float = 4.0) -> list[tuple[str, Polygon]]:
    polygons = []
    for i in range(n):
        for j in range(n):
            x0, y0 = i * cell, j * cell
            polygons.append(
                (
                    f"cell-{i}-{j}",
                    Polygon(
                        [(x0, y0), (x0 + cell, y0), (x0 + cell, y0 + cell), (x0, y0 + cell)]
                    ),
                )
            )
    return polygons


def _points(count: int = 96, extent: float = 12.0, seed: int = 13):
    rng = random.Random(seed)
    return [
        (k, Point(rng.uniform(0.0, extent), rng.uniform(0.0, extent)))
        for k in range(count)
    ]


def _core_case(method: str):
    """One in-memory join; chaos exercises the chunk/tile dispatch path."""

    def run(runtime: RuntimeConfig, events_out: str | None) -> dict:
        config = JoinConfig(
            method=method,
            profile=True,
            batch_size=16,
            workers=4,
            runtime=runtime.with_(events_out=events_out),
        )
        result = spatial_join(_points(), _grid_polygons(), config=config)
        return {
            "rows": sorted(result.pairs),
            "sim_seconds": result.profile.root.sim_seconds,
            "profile": result.profile.render(),
        }

    return run


def _spark_broadcast_case(runtime: RuntimeConfig, events_out: str | None) -> dict:
    """The paper's broadcast join on the mini-Spark substrate."""
    from repro.core.broadcast_join import broadcast_spatial_join
    from repro.core.operators import SpatialOperator

    sc = SparkContext(_SPEC, runtime=runtime.with_(events_out=events_out))
    left = sc.parallelize(_points(), 4)
    right = sc.parallelize(_grid_polygons(), 2)
    pairs = broadcast_spatial_join(
        sc, left, right, SpatialOperator.WITHIN
    ).collect()
    snapshot = {
        "rows": sorted(pairs),
        "sim_seconds": sc.simulated_seconds(),
        "counters": sc.totals(),
        "profile": sc.to_profile("chaos-spark-broadcast").render(),
    }
    sc.close_events()
    return snapshot


def _spark_shuffle_case(runtime: RuntimeConfig, events_out: str | None) -> dict:
    """A shuffle job — the lineage-recovery (``shuffle_loss``) surface."""
    sc = SparkContext(_SPEC, runtime=runtime.with_(events_out=events_out))
    rows = (
        sc.parallelize(list(range(48)), 4)
        .map(lambda value: (value % 6, value))
        .group_by_key(3)
        .map_values(sum)
        .collect()
    )
    snapshot = {
        "rows": sorted(rows),
        "sim_seconds": sc.simulated_seconds(),
        "counters": sc.totals(),
        "profile": sc.to_profile("chaos-spark-shuffle").render(),
    }
    sc.close_events()
    return snapshot


def _impala_case(runtime: RuntimeConfig, events_out: str | None) -> dict:
    """ISP-MC SQL on the mini-Impala substrate (restart-based recovery)."""
    from repro.hdfs import SimulatedHDFS, write_text
    from repro.impala.catalog import ColumnType
    from repro.impala.coordinator import ImpalaBackend

    hdfs = SimulatedHDFS(datanodes=("node0", "node1"), block_size=2048)
    write_text(
        hdfs,
        "/chaos/points.tsv",
        [f"{k}\tPOINT ({geom.x} {geom.y})" for k, geom in _points()],
    )
    write_text(
        hdfs,
        "/chaos/cells.tsv",
        [f"{name}\t{geom.wkt()}" for name, geom in _grid_polygons()],
    )
    backend = ImpalaBackend(
        _SPEC, hdfs=hdfs, runtime=runtime.with_(events_out=events_out)
    )
    schema_points = [("id", ColumnType.BIGINT), ("geom", ColumnType.STRING)]
    schema_cells = [("id", ColumnType.STRING), ("geom", ColumnType.STRING)]
    backend.metastore.create_table("points", schema_points, "/chaos/points.tsv")
    backend.metastore.create_table("cells", schema_cells, "/chaos/cells.tsv")
    result = backend.execute(
        "SELECT l.id, r.id FROM points l SPATIAL JOIN cells r "
        "WHERE ST_WITHIN(l.geom, r.geom)"
    )
    snapshot = {
        "rows": sorted(result.rows),
        "sim_seconds": result.simulated_seconds,
        "counters": {
            f"instance-{ctx.node_id}": dict(sorted(ctx.metrics.counts.items()))
            for ctx in result.instances
        },
        "profile": result.to_profile("chaos-impala").render(),
    }
    backend.close_events()
    return snapshot


def _case_plan(name: str, seed: int, fault_rate: float) -> FaultPlan:
    """The per-case plan.

    On top of the random sweep, each substrate pins one explicit fault at
    its marquee recovery path so every chaos report demonstrates it: the
    shuffle case loses a map output (Spark recomputes it from lineage,
    ``StageRecomputed``), the SQL case crashes a fragment (Impala cancels
    and restarts the whole query, ``QueryRestarted``).  Pinned faults
    fire on round 0 only — the retry/restart runs clean.
    """
    if name == "spark-shuffle":
        return FaultPlan(
            seed=seed,
            fault_rate=fault_rate,
            kinds=DEFAULT_KINDS + ("shuffle_loss",),
        ).at("*", task=0, kind="shuffle_loss")
    if name == "impala-sql":
        return FaultPlan(seed=seed, fault_rate=fault_rate).at(
            "*", task=1, kind="crash"
        )
    return FaultPlan(seed=seed, fault_rate=fault_rate)


def _events_of(path: str | None) -> list[dict]:
    if path is None or not os.path.exists(path):
        return []
    return read_events(path)


def _comparable_events(events: list[dict]) -> list[dict]:
    """Normalized stream minus the recovery events chaos adds on top."""
    return [
        record
        for record in normalize_events(events)
        if record.get("event") not in RECOVERY_EVENT_TYPES
    ]


def _recovery_counts(events: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in events:
        kind = record.get("event")
        if kind in RECOVERY_EVENT_TYPES:
            counts[kind] = counts.get(kind, 0) + 1
    return counts


CASES = {
    "core-broadcast": _core_case("broadcast"),
    "core-partitioned": _core_case("partitioned"),
    "spark-broadcast": _spark_broadcast_case,
    "spark-shuffle": _spark_shuffle_case,
    "impala-sql": _impala_case,
}


def run_chaos_benchmark(
    seed: int = 7,
    fault_rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    events_dir: str | None = None,
) -> dict:
    """Run every case fault-free and at each fault rate; compare snapshots.

    With ``events_dir`` set, each cell's event log is kept there as
    ``<case>-rate<rate>.jsonl`` (the baseline as ``<case>-baseline.jsonl``)
    for ``bench monitor`` replay; otherwise logs land in a temp dir that
    only lives for the comparison.
    """
    owned_tmp = None
    if events_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        events_dir = owned_tmp.name
    else:
        os.makedirs(events_dir, exist_ok=True)
    try:
        doc: dict = {
            "seed": seed,
            "fault_rates": list(fault_rates),
            "cases": {},
            "all_identical": True,
        }
        for name, case in CASES.items():
            base_path = os.path.join(events_dir, f"{name}-baseline.jsonl")
            baseline = case(RuntimeConfig(), base_path)
            base_events = _comparable_events(_events_of(base_path))
            entry: dict = {
                "baseline": {
                    "rows": len(baseline["rows"]),
                    "sim_seconds": baseline["sim_seconds"],
                },
                "rates": {},
                "all_identical": True,
            }
            for rate in fault_rates:
                path = os.path.join(events_dir, f"{name}-rate{rate}.jsonl")
                runtime = RuntimeConfig(
                    fault_plan=_case_plan(name, seed, rate)
                )
                chaos = case(runtime, path)
                events = _events_of(path)
                checks = {
                    "rows": chaos["rows"] == baseline["rows"],
                    "sim_seconds": chaos["sim_seconds"] == baseline["sim_seconds"],
                    "counters": chaos.get("counters") == baseline.get("counters"),
                    "profile": chaos["profile"] == baseline["profile"],
                    "events": _comparable_events(events) == base_events,
                }
                identical = all(checks.values())
                entry["rates"][str(rate)] = {
                    "identical": identical,
                    "mismatches": sorted(k for k, ok in checks.items() if not ok),
                    "recovery_events": _recovery_counts(events),
                }
                if not identical:
                    entry["all_identical"] = False
                    doc["all_identical"] = False
            doc["cases"][name] = entry
        return doc
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()


def render_chaos(doc: dict) -> str:
    lines = [
        f"chaos sweep: seed={doc['seed']} "
        f"fault_rates={','.join(str(r) for r in doc['fault_rates'])}",
        "",
    ]
    for name, entry in doc["cases"].items():
        base = entry["baseline"]
        lines.append(
            f"{name:>17}: {base['rows']} rows, "
            f"sim={base['sim_seconds']:.4f}s fault-free"
        )
        for rate, cell in entry["rates"].items():
            recovered = (
                ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(cell["recovery_events"].items())
                )
                or "no faults drawn"
            )
            verdict = (
                "identical"
                if cell["identical"]
                else f"DIFFERS ({', '.join(cell['mismatches'])})"
            )
            lines.append(f"{'':>17}  rate {rate}: {verdict} [{recovered}]")
    lines.append("")
    lines.append(
        "all identical"
        if doc["all_identical"]
        else "FAIL: some chaos runs diverged from their fault-free baseline"
    )
    return "\n".join(lines)


def write_chaos_json(doc: dict, path: str) -> None:
    from repro.bench.report import stamp_bench_doc

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            stamp_bench_doc(doc), handle, indent=1, sort_keys=True, default=str
        )
        handle.write("\n")
