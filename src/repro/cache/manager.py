"""Memory-budgeted cross-query cache with cost-aware LRU eviction.

One process-wide :class:`CacheManager` holds every reusable artifact the
join paths produce: built broadcast/STR-tree indexes, parsed geometry
columns, skew-aware partitioning layouts, prepared-geometry handles, and
Impala build-side bundles.  Entries are keyed by content fingerprints
(:mod:`repro.cache.fingerprint`), sized with
:func:`repro.spark.shuffle.estimate_bytes`, and evicted against a byte
budget by *cost-aware LRU*: the victim is the entry with the lowest
``build_cost / size`` density, oldest-access first on ties, so a cheap
bulky parse column is dropped before an expensive compact index.

The hard invariant (DESIGN.md section 12): a cache hit changes **nothing**
observable about a query except wall-clock.  All bookkeeping lives in the
manager's own counters and in dedicated ``CacheHit``/``CacheMiss``/
``CacheEvict`` events — never in :data:`repro.obs.metrics.REGISTRY`, query
profiles, or simulated costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cache.fingerprint import Fingerprint

__all__ = ["CacheEntry", "CacheManager", "CacheStats", "estimate_index_bytes"]


def estimate_index_bytes(index) -> int:
    """Byte estimate for a built spatial index.

    :func:`~repro.spark.shuffle.estimate_bytes` sees an index object as
    opaque (64 bytes), which would let arbitrarily large indexes slip
    under any budget.  Walk the underlying tree's entries instead — the
    same arithmetic :meth:`SparkContext._broadcast_size` uses for
    tree-likes — falling back to the generic estimator when there is no
    tree to walk.
    """
    from repro.spark.shuffle import estimate_bytes

    column = getattr(index, "_column", None)
    if column is not None:
        # Column-backed index: the coordinate/offset/bbox buffers are
        # sized exactly (``nbytes`` is the encoded size); tree leaf and
        # interior-node overheads match the object-path walk below.
        count = len(column)
        return int(column.nbytes) + 32 * count + 48 * max(1, count // 8)
    tree = getattr(index, "tree", None)
    iter_all = getattr(tree, "iter_all", None)
    if iter_all is None:
        return estimate_bytes(index)
    total = 0
    count = 0
    for item, _envelope in iter_all():
        total += estimate_bytes(item) + 32
        count += 1
    return total + 48 * max(1, count // 8)  # interior-node overhead


@dataclass
class CacheEntry:
    """One cached artifact plus the metadata eviction needs."""

    key: Fingerprint
    kind: str
    value: object
    size_bytes: int
    build_cost: float
    last_used: int = 0
    inserted: int = 0

    @property
    def density(self) -> float:
        """Build cost per byte — eviction drops the least dense entry."""
        return self.build_cost / max(1, self.size_bytes)


@dataclass
class CacheStats:
    """The manager's own counters (never mixed into REGISTRY)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    rejected: int = 0
    hits_by_kind: dict[str, int] = field(default_factory=dict)
    misses_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "rejected": self.rejected,
            "hits_by_kind": dict(sorted(self.hits_by_kind.items())),
            "misses_by_kind": dict(sorted(self.misses_by_kind.items())),
        }


class CacheManager:
    """Process-wide cache: typed entries, byte budget, cost-aware LRU.

    ``budget_bytes`` bounds the sum of entry sizes; ``None`` means
    unbounded (used by the always-on prepared-geometry handle cache).
    ``emit_events`` controls whether lookups emit ``CacheHit``/``CacheMiss``
    /``CacheEvict`` events to the installed event log; the prepared-handle
    path keeps it off to avoid per-geometry event spam.
    """

    def __init__(self, budget_bytes: int | None = None, *,
                 emit_events: bool = False) -> None:
        self.budget_bytes = budget_bytes
        self.emit_events = emit_events
        self._entries: dict[Fingerprint, CacheEntry] = {}
        self._clock = 0
        self._seq = 0
        self.stats = CacheStats()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        # A manager with zero entries is still an *enabled* cache; callers
        # write ``if cache:`` to mean "is caching on", not "is it non-empty".
        return True

    def __contains__(self, key: Fingerprint) -> bool:
        return key in self._entries

    @property
    def total_bytes(self) -> int:
        """Current size of all resident entries."""
        return sum(e.size_bytes for e in self._entries.values())

    def entries(self) -> list[CacheEntry]:
        """Resident entries in insertion order (for tests/tooling)."""
        return sorted(self._entries.values(), key=lambda e: e.inserted)

    def residency(self) -> dict:
        """JSON-safe occupancy summary (the EXPLAIN ``cache=`` annotation).

        Purely introspective — reads entry metadata without touching the
        LRU clock or the hit/miss counters, so asking "what is resident"
        never changes what stays resident.
        """
        by_kind: dict[str, dict[str, int]] = {}
        for entry in self._entries.values():
            bucket = by_kind.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
        return {
            "entries": len(self._entries),
            "total_bytes": self.total_bytes,
            "budget_bytes": self.budget_bytes,
            "by_kind": dict(sorted(by_kind.items())),
        }

    # -- events -----------------------------------------------------------

    def _emit(self, event_type: str, **fields) -> None:
        if not self.emit_events:
            return
        from repro.obs.events import get_event_log

        log = get_event_log()
        if log is not None:
            log.emit(event_type, **fields)

    # -- core operations --------------------------------------------------

    def get(self, key: Fingerprint, kind: str):
        """Return the cached value or ``None``; counts a hit or miss."""
        entry = self._entries.get(key)
        if entry is not None and entry.kind == kind:
            self._clock += 1
            entry.last_used = self._clock
            self.stats.hits += 1
            self.stats.hits_by_kind[kind] = self.stats.hits_by_kind.get(kind, 0) + 1
            self._emit("CacheHit", kind=kind, key=key.hex(),
                       size_bytes=entry.size_bytes)
            return entry.value
        self.stats.misses += 1
        self.stats.misses_by_kind[kind] = self.stats.misses_by_kind.get(kind, 0) + 1
        self._emit("CacheMiss", kind=kind, key=key.hex())
        return None

    def get_or_build(self, key: Fingerprint, kind: str,
                     build: Callable[[], object], *,
                     size_bytes: int | None = None,
                     build_cost: float = 1.0):
        """Convenience: hit, or build + insert and return the fresh value."""
        value = self.get(key, kind)
        if value is not None:
            return value
        value = build()
        self.put(key, kind, value, size_bytes=size_bytes, build_cost=build_cost)
        return value

    def put(self, key: Fingerprint, kind: str, value: object, *,
            size_bytes: int | None = None, build_cost: float = 1.0) -> bool:
        """Insert an entry, evicting as needed.  Returns False when the
        entry alone exceeds the whole budget (it is not cached)."""
        if size_bytes is None:
            from repro.spark.shuffle import estimate_bytes

            size_bytes = estimate_bytes(value)
        size_bytes = int(size_bytes)
        if self.budget_bytes is not None and size_bytes > self.budget_bytes:
            self.stats.rejected += 1
            return False
        self._clock += 1
        self._seq += 1
        old = self._entries.pop(key, None)
        self._entries[key] = CacheEntry(
            key=key, kind=kind, value=value, size_bytes=size_bytes,
            build_cost=float(build_cost), last_used=self._clock,
            inserted=old.inserted if old is not None else self._seq,
        )
        self.stats.puts += 1
        self._shrink_to_budget(protect=key)
        return key in self._entries

    def _shrink_to_budget(self, protect: Fingerprint | None = None) -> None:
        if self.budget_bytes is None:
            return
        while self.total_bytes > self.budget_bytes and self._entries:
            victim = min(
                (e for e in self._entries.values()
                 if protect is None or e.key != protect),
                key=lambda e: (e.density, e.last_used, e.inserted),
                default=None,
            )
            if victim is None:  # only the protected entry remains
                break
            self._evict(victim, reason="budget")

    def _evict(self, entry: CacheEntry, reason: str) -> None:
        del self._entries[entry.key]
        self.stats.evictions += 1
        self._emit("CacheEvict", kind=entry.kind, key=entry.key.hex(),
                   size_bytes=entry.size_bytes, reason=reason)

    def invalidate(self, key: Fingerprint) -> bool:
        """Drop one entry explicitly (True when it was resident)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._evict(entry, reason="invalidate")
        return True

    def invalidate_kind(self, kind: str) -> int:
        """Drop every entry of one kind; returns how many were evicted."""
        victims = [e for e in self._entries.values() if e.kind == kind]
        for entry in victims:
            self._evict(entry, reason="invalidate")
        return len(victims)

    def clear(self) -> None:
        """Drop everything and reset counters (cold-start state)."""
        self._entries.clear()
        self._clock = 0
        self._seq = 0
        self.stats = CacheStats()
