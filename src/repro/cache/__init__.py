"""Cross-query caching layer (see DESIGN.md section 12).

Two process-wide managers live here:

* :func:`get_cache` — the query-artifact cache (indexes, parsed columns,
  partitionings, Impala build bundles).  It is **off** unless a query runs
  with ``RuntimeConfig.cache_budget_bytes`` set; :func:`cache_for` applies
  the runtime's budget and returns ``None`` when caching is disabled, so
  call sites stay one-``if`` no-ops on the cold path.
* the prepared-geometry handle cache inside
  :mod:`repro.geometry.prepared`, which is always on (it replaced the
  PR-3 identity memo with fingerprint keys) and never emits events.
"""

from __future__ import annotations

from repro.cache.fingerprint import (
    Fingerprint,
    fingerprint_entries,
    fingerprint_geometry,
    fingerprint_rows,
    fingerprint_value,
)
from repro.cache.manager import (
    CacheEntry,
    CacheManager,
    CacheStats,
    estimate_index_bytes,
)

__all__ = [
    "CacheEntry",
    "CacheManager",
    "CacheStats",
    "Fingerprint",
    "cache_for",
    "estimate_index_bytes",
    "fingerprint_entries",
    "fingerprint_geometry",
    "fingerprint_rows",
    "fingerprint_value",
    "get_cache",
    "set_cache",
]

_CACHE: CacheManager | None = None


def get_cache() -> CacheManager:
    """The process-wide query-artifact cache (created on first use)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = CacheManager(budget_bytes=None, emit_events=True)
    return _CACHE


def set_cache(manager: CacheManager | None) -> CacheManager | None:
    """Replace the process-wide cache (tests); returns the old one."""
    global _CACHE
    old = _CACHE
    _CACHE = manager
    return old


def cache_for(runtime) -> CacheManager | None:
    """The cache to use under ``runtime``, or ``None`` when disabled.

    ``cache_budget_bytes=None`` (the default) and ``0`` both disable
    caching for the query.  A positive budget enables it and (re)applies
    the budget to the shared manager — the budget is process-wide state,
    like the cache itself, so the most recent query's setting wins.
    """
    budget = getattr(runtime, "cache_budget_bytes", None)
    if not budget:
        return None
    cache = get_cache()
    cache.budget_bytes = int(budget)
    cache._shrink_to_budget()
    return cache
