"""Content fingerprints for the cross-query cache.

Cache keys must identify *datasets*, not Python objects: the same polygon
table loaded twice (or rebuilt by a pooled worker) must hash to the same
key, while an in-place mutation of a coordinate array must change it.  We
therefore stream the raw coordinate bytes of every geometry — plus payloads
and the operator/engine context — through BLAKE2b and key the cache on the
digest.  There is deliberately no ``id()``-based shortcut layer: content is
re-hashed on every lookup so mutated inputs can never serve stale entries.

Hashing coordinate bytes is orders of magnitude cheaper than re-parsing
WKT or rebuilding an STR-tree, which is what makes a content-keyed cache
profitable in the first place (see DESIGN.md section 12).
"""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import Iterable

import numpy as np

from repro.columnar.column import GeometryColumn
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import _MultiGeometry
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

__all__ = [
    "Fingerprint",
    "fingerprint_entries",
    "fingerprint_geometry",
    "fingerprint_rows",
    "fingerprint_value",
]

# A digest is compact enough to use directly as a dict key.
_DIGEST_SIZE = 16

Fingerprint = bytes

_pack_d = struct.Struct("<d").pack
_pack_dd = struct.Struct("<dd").pack
_pack_q = struct.Struct("<q").pack


def _update_geometry(h, geometry: Geometry) -> None:
    """Stream one geometry's type tag + coordinate bytes into ``h``."""
    h.update(geometry.geometry_type.value.encode("ascii"))
    if isinstance(geometry, Point):
        if geometry._empty:
            h.update(b"E")
        else:
            h.update(_pack_dd(geometry.x, geometry.y))
    elif isinstance(geometry, LineString):
        h.update(geometry.coords.tobytes())
    elif isinstance(geometry, Polygon):
        h.update(geometry.shell.coords.tobytes())
        for hole in geometry.holes:
            h.update(b"H")
            h.update(hole.coords.tobytes())
    elif isinstance(geometry, _MultiGeometry):
        for part in geometry.parts:
            h.update(b"P")
            _update_geometry(h, part)
    else:  # GeometryCollection or future types: WKB is canonical if slower.
        h.update(geometry.wkb())


def _update_value(h, value) -> None:
    """Stream an arbitrary payload/context value into ``h``.

    Covers the value shapes that actually appear in cache keys: scalars,
    strings, bytes, containers, numpy arrays, and geometries.  Type tags
    keep ``1`` / ``1.0`` / ``"1"`` distinct.
    """
    if value is None:
        h.update(b"n")
    elif isinstance(value, bool):
        h.update(b"b1" if value else b"b0")
    elif isinstance(value, (int, np.integer)):
        h.update(b"i")
        h.update(str(int(value)).encode("ascii"))
    elif isinstance(value, (float, np.floating)):
        h.update(b"f")
        h.update(_pack_d(float(value)))
    elif isinstance(value, str):
        h.update(b"s")
        h.update(_pack_q(len(value)))
        h.update(value.encode("utf-8"))
    elif isinstance(value, bytes):
        h.update(b"y")
        h.update(_pack_q(len(value)))
        h.update(value)
    elif isinstance(value, Geometry):
        h.update(b"g")
        _update_geometry(h, value)
    elif isinstance(value, GeometryColumn):
        # Stream the packed buffers directly — no per-geometry object
        # walk; an in-place coordinate mutation still changes the digest.
        h.update(b"C")
        value.update_hash(h, _update_value)
    elif isinstance(value, np.ndarray):
        h.update(b"a")
        h.update(str(value.dtype).encode("ascii"))
        h.update(str(value.shape).encode("ascii"))
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (tuple, list)):
        h.update(b"T" if isinstance(value, tuple) else b"L")
        h.update(_pack_q(len(value)))
        for item in value:
            _update_value(h, item)
    elif isinstance(value, dict):
        h.update(b"D")
        h.update(_pack_q(len(value)))
        for key in sorted(value, key=repr):
            _update_value(h, key)
            _update_value(h, value[key])
    else:
        raise TypeError(
            f"cannot fingerprint {type(value).__name__!r}; "
            "add a case to repro.cache.fingerprint"
        )


def fingerprint_geometry(geometry: Geometry) -> Fingerprint:
    """Digest of one geometry's content (type + coordinates)."""
    h = blake2b(digest_size=_DIGEST_SIZE)
    _update_geometry(h, geometry)
    return h.digest()


def fingerprint_value(*values) -> Fingerprint:
    """Digest of an arbitrary tuple of key components."""
    h = blake2b(digest_size=_DIGEST_SIZE)
    for value in values:
        h.update(b"|")
        _update_value(h, value)
    return h.digest()


def fingerprint_entries(
    entries: Iterable[tuple[object, Geometry]], *context
) -> Fingerprint:
    """Digest of a ``(payload, geometry)`` dataset plus context values.

    This is the key shape used for parsed geometry columns, broadcast
    indexes, and partitioning layouts: the dataset content first, then
    whatever distinguishes the derived artifact (operator, radius, engine,
    tile count, ...).
    """
    h = blake2b(digest_size=_DIGEST_SIZE)
    count = 0
    for payload, geometry in entries:
        h.update(b"|")
        _update_value(h, payload)
        _update_geometry(h, geometry)
        count += 1
    h.update(_pack_q(count))
    for value in context:
        h.update(b"#")
        _update_value(h, value)
    return h.digest()


def fingerprint_rows(rows: Iterable[tuple], *context) -> Fingerprint:
    """Digest of Impala row tuples (mixed scalars/strings) plus context."""
    h = blake2b(digest_size=_DIGEST_SIZE)
    count = 0
    for row in rows:
        h.update(b"|")
        _update_value(h, row)
        count += 1
    h.update(_pack_q(count))
    for value in context:
        h.update(b"#")
        _update_value(h, value)
    return h.digest()
