"""repro — a reproduction of "Large-Scale Spatial Join Query Processing in Cloud".

Simin You, Jianting Zhang, Le Gruenwald (ICDE Workshops 2015) built two
prototypes for large-scale spatial joins: **SpatialSpark** (on Apache
Spark) and **ISP-MC** (on Cloudera Impala).  This package re-implements
both systems *and every substrate they stand on* in pure Python:

* :mod:`repro.geometry` — geometry model, WKT/WKB, predicates, and two
  refinement engines reproducing the paper's JTS-vs-GEOS axis;
* :mod:`repro.index` — STR-packed and dynamic R-trees, grid, quadtree,
  spatial partitioners;
* :mod:`repro.hdfs` — a block-oriented simulated HDFS;
* :mod:`repro.spark` — a mini-Spark: lazy RDDs, DAG scheduler, shuffles,
  broadcast, dynamic task placement;
* :mod:`repro.impala` — a mini-Impala: SQL frontend with the paper's
  ``SPATIAL JOIN`` extension, plan fragments, row batches, static
  scheduling;
* :mod:`repro.core` — the paper's contribution: broadcast and partitioned
  spatial joins on the Spark substrate, the SpatialJoin plan node on the
  Impala substrate, the standalone ISP-MC program, and a simple in-memory
  API (:func:`spatial_join`);
* :mod:`repro.data` — synthetic stand-ins for the taxi/nycb/lion/GBIF/WWF
  datasets;
* :mod:`repro.obs` — observability: trace spans, a counter registry,
  Impala-style query profiles and Chrome-trace exporters;
* :mod:`repro.bench` — the harness regenerating every table and figure.

Quickstart::

    >>> from repro import spatial_join
    >>> result = spatial_join(
    ...     [(0, "POINT (1 1)"), (1, "POINT (9 9)")],
    ...     [("cell", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")],
    ... )
    >>> result == [(0, 'cell')]
    True
"""

from repro.core.api import JoinConfig, JoinResult, spatial_join, spatial_join_pairs
from repro.optimizer import PlanChoice, choose_plan
from repro.core.operators import SpatialOperator
from repro.core.broadcast_join import BroadcastSpatialJoin, broadcast_spatial_join
from repro.core.partitioned_join import partitioned_spatial_join
from repro.core.standalone import standalone_spatial_join
from repro.geometry import (
    Envelope,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkt_dumps,
    wkt_loads,
)
from repro.errors import ReproError
from repro.obs import QueryProfile, tracing
from repro.runtime import FaultPlan, RuntimeConfig

__version__ = "1.0.0"

__all__ = [
    "spatial_join",
    "spatial_join_pairs",
    "JoinConfig",
    "JoinResult",
    "PlanChoice",
    "choose_plan",
    "SpatialOperator",
    "broadcast_spatial_join",
    "BroadcastSpatialJoin",
    "partitioned_spatial_join",
    "standalone_spatial_join",
    "Geometry",
    "Envelope",
    "Point",
    "LineString",
    "Polygon",
    "MultiPoint",
    "MultiLineString",
    "MultiPolygon",
    "wkt_loads",
    "wkt_dumps",
    "ReproError",
    "QueryProfile",
    "tracing",
    "RuntimeConfig",
    "FaultPlan",
    "__version__",
]
