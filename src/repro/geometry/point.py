"""Point geometry — the left side of every join in the paper's evaluation."""

from __future__ import annotations

import math

from repro.errors import GeometryError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.envelope import Envelope

__all__ = ["Point"]


class Point(Geometry):
    """A single immutable coordinate pair.

    An *empty* point (``Point.empty()``) serialises to ``POINT EMPTY`` and
    participates in no predicate.
    """

    __slots__ = ("x", "y", "_empty")

    def __init__(self, x: float, y: float):
        super().__init__()
        x = float(x)
        y = float(y)
        if math.isnan(x) or math.isnan(y):
            raise GeometryError(f"point coordinates may not be NaN: ({x}, {y})")
        self.x = x
        self.y = y
        self._empty = False

    @staticmethod
    def empty() -> "Point":
        """Return the empty point singleton-style instance."""
        point = Point.__new__(Point)
        Geometry.__init__(point)
        point.x = math.nan
        point.y = math.nan
        point._empty = True
        return point

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.POINT

    @property
    def is_empty(self) -> bool:
        return self._empty

    @property
    def num_points(self) -> int:
        return 0 if self._empty else 1

    def _compute_envelope(self) -> Envelope:
        if self._empty:
            return Envelope.empty()
        return Envelope.of_point(self.x, self.y)

    def _coordinates_equal(self, other: Geometry) -> bool:
        assert isinstance(other, Point)
        if self._empty or other._empty:
            return self._empty and other._empty
        return self.x == other.x and self.y == other.y

    def coords(self) -> tuple[float, float]:
        """Return ``(x, y)``; raises on the empty point."""
        if self._empty:
            raise GeometryError("empty point has no coordinates")
        return (self.x, self.y)
