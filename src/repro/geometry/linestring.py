"""LineString geometry — street polylines in the paper's NearestD joins."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.envelope import Envelope

__all__ = ["LineString", "coordinate_array"]


def coordinate_array(coords: Iterable[Sequence[float]]) -> np.ndarray:
    """Normalise an iterable of ``(x, y)`` pairs to a float64 ``(n, 2)`` array.

    Accepts lists of tuples, numpy arrays, or generators.  Raises
    :class:`GeometryError` on ragged input or NaN coordinates so dirty rows
    fail fast at construction (the engines' text scanners rely on this to
    filter bad records the way Fig 2's ``Try(...)`` filter does).
    """
    array = np.asarray(list(coords), dtype=np.float64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) coordinates, got shape {array.shape}")
    if np.isnan(array).any():
        raise GeometryError("coordinates may not contain NaN")
    return array


class LineString(Geometry):
    """An immutable polyline of two or more vertices.

    Coordinates are stored as a contiguous float64 numpy array, which is the
    "binary, cache-friendly" layout the paper's Section III describes as
    future work for SpatialSpark; the slow refinement engine deliberately
    bypasses this layout (see :mod:`repro.geometry.engine`).
    """

    __slots__ = ("coords",)

    def __init__(self, coords: Iterable[Sequence[float]]):
        super().__init__()
        array = coordinate_array(coords)
        if len(array) == 1:
            raise GeometryError("a linestring needs 0 or >= 2 vertices, got 1")
        self.coords = array
        self.coords.setflags(write=False)

    @staticmethod
    def empty() -> "LineString":
        return LineString([])

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.LINESTRING

    @property
    def is_empty(self) -> bool:
        return len(self.coords) == 0

    @property
    def num_points(self) -> int:
        return len(self.coords)

    @property
    def is_closed(self) -> bool:
        """True when first and last vertices coincide (and non-empty)."""
        if self.is_empty:
            return False
        return bool(np.array_equal(self.coords[0], self.coords[-1]))

    def length(self) -> float:
        """Total Euclidean length of the polyline."""
        if len(self.coords) < 2:
            return 0.0
        deltas = np.diff(self.coords, axis=0)
        return float(np.hypot(deltas[:, 0], deltas[:, 1]).sum())

    def segments(self) -> np.ndarray:
        """Return segments as an ``(n-1, 4)`` array of ``x1, y1, x2, y2``."""
        if len(self.coords) < 2:
            return np.empty((0, 4), dtype=np.float64)
        return np.hstack([self.coords[:-1], self.coords[1:]])

    def _compute_envelope(self) -> Envelope:
        if self.is_empty:
            return Envelope.empty()
        return Envelope(
            float(self.coords[:, 0].min()),
            float(self.coords[:, 1].min()),
            float(self.coords[:, 0].max()),
            float(self.coords[:, 1].max()),
        )

    def _coordinates_equal(self, other: Geometry) -> bool:
        assert isinstance(other, LineString)
        return self.coords.shape == other.coords.shape and bool(
            np.array_equal(self.coords, other.coords)
        )

    def interpolate(self, fraction: float) -> tuple[float, float]:
        """Return the point at ``fraction`` (0..1) of the polyline's length."""
        if self.is_empty:
            raise GeometryError("cannot interpolate on an empty linestring")
        if not 0.0 <= fraction <= 1.0:
            raise GeometryError(f"fraction must be in [0, 1], got {fraction}")
        if len(self.coords) == 1 or fraction == 0.0:
            return (float(self.coords[0, 0]), float(self.coords[0, 1]))
        target = self.length() * fraction
        walked = 0.0
        for (x1, y1), (x2, y2) in zip(self.coords[:-1], self.coords[1:]):
            seg = math.hypot(x2 - x1, y2 - y1)
            if walked + seg >= target and seg > 0.0:
                t = (target - walked) / seg
                return (x1 + t * (x2 - x1), y1 + t * (y2 - y1))
            walked += seg
        return (float(self.coords[-1, 0]), float(self.coords[-1, 1]))
