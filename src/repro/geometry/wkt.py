"""Well-Known Text reader and writer.

The paper stores every dataset as WKT strings in HDFS text files and pays
for parsing in three places (building the right-side R-tree, probing it,
and in refinement UDFs).  This module is therefore on the hot path of both
engines and is instrumented via an optional counter callback so the
cluster cost model can charge for bytes parsed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.errors import WKTParseError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.linestring import LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import LinearRing, Polygon

__all__ = [
    "loads",
    "dumps",
    "WKTReader",
    "WKTWriter",
    "clear_wkt_cache",
    "set_wkt_cache_limits",
    "wkt_cache_stats",
]

# Process-wide parse memo: WKT text -> parsed geometry (LRU).  The string
# itself is the content key, so there is no staleness to manage; repeated
# queries over the same stored table skip re-tokenising its polygons.
# Short strings (points) parse faster than a cache probe pays for and
# would churn the LRU, so only texts above the threshold participate.
# Parsing is pure (the per-byte charge is the caller's ``on_parse``
# callback, invoked on hits too), which is what keeps results, counters
# and simulated seconds byte-identical with the memo on or off.
#
# The memo is bounded two ways: an entry-count cap and a byte budget over
# the retained text + geometry estimates, whichever bites first.  An
# always-on unbounded-byte memo would quietly pin multi-megabyte polygon
# tables in memory for the life of the process.
_parse_cache: OrderedDict[str, tuple[Geometry, int]] = OrderedDict()
_PARSE_CACHE_CAPACITY = 8192
_PARSE_CACHE_MIN_CHARS = 64
_PARSE_CACHE_BYTE_BUDGET = 8 << 20  # 8 MiB of retained text+geometry
_parse_cache_capacity = _PARSE_CACHE_CAPACITY
_parse_cache_byte_budget = _PARSE_CACHE_BYTE_BUDGET
_parse_cache_bytes = 0


def _entry_bytes(text: str, geometry: Geometry) -> int:
    # Retained footprint estimate: the key string plus the parsed
    # geometry at the shuffle estimator's 16 bytes/vertex rate.
    return len(text) + 48 + 16 * geometry.num_points


def clear_wkt_cache() -> None:
    """Drop every memoised WKT parse (for tests and cold benchmarks)."""
    global _parse_cache_bytes
    _parse_cache.clear()
    _parse_cache_bytes = 0


def set_wkt_cache_limits(
    capacity: int | None = None, byte_budget: int | None = None
) -> None:
    """Re-bound the parse memo (None keeps a limit unchanged).

    Shrinks immediately when the new limits are tighter.  Passing ``0``
    for either limit disables memoisation outright.
    """
    global _parse_cache_capacity, _parse_cache_byte_budget
    if capacity is not None:
        _parse_cache_capacity = int(capacity)
    if byte_budget is not None:
        _parse_cache_byte_budget = int(byte_budget)
    _shrink_parse_cache()


def wkt_cache_stats() -> dict[str, int]:
    """Current memo footprint and limits (for tests and diagnostics)."""
    return {
        "entries": len(_parse_cache),
        "bytes": _parse_cache_bytes,
        "capacity": _parse_cache_capacity,
        "byte_budget": _parse_cache_byte_budget,
    }


def _shrink_parse_cache() -> None:
    global _parse_cache_bytes
    while _parse_cache and (
        len(_parse_cache) > _parse_cache_capacity
        or _parse_cache_bytes > _parse_cache_byte_budget
    ):
        _, (_, dropped) = _parse_cache.popitem(last=False)
        _parse_cache_bytes -= dropped

_WORD_CHARS = frozenset("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NUMBER_CHARS = frozenset("0123456789+-.eE")


class _Tokenizer:
    """Splits WKT into word / number / punctuation tokens with positions."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        text = self.text
        n = len(text)
        while self.pos < n and text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str | None:
        """Return the next token without consuming it (None at end)."""
        saved = self.pos
        token = self.next()
        self.pos = saved
        return token

    def next(self) -> str | None:
        """Consume and return the next token (None at end of input)."""
        self._skip_ws()
        text = self.text
        if self.pos >= len(text):
            return None
        ch = text[self.pos]
        if ch in "(),":
            self.pos += 1
            return ch
        if ch.upper() in _WORD_CHARS:
            start = self.pos
            while self.pos < len(text) and text[self.pos].upper() in _WORD_CHARS:
                self.pos += 1
            return text[start : self.pos].upper()
        if ch in _NUMBER_CHARS:
            start = self.pos
            while self.pos < len(text) and text[self.pos] in _NUMBER_CHARS:
                self.pos += 1
            return text[start : self.pos]
        raise WKTParseError(f"unexpected character {ch!r}", self.pos)

    def expect(self, token: str) -> None:
        """Consume the next token, requiring it to equal ``token``."""
        got = self.next()
        if got != token:
            raise WKTParseError(f"expected {token!r}, got {got!r}", self.pos)

    def number(self) -> float:
        """Consume the next token as a float."""
        token = self.next()
        if token is None:
            raise WKTParseError("expected a number, got end of input", self.pos)
        try:
            return float(token)
        except ValueError:
            raise WKTParseError(f"expected a number, got {token!r}", self.pos) from None


class WKTReader:
    """Parses WKT strings into geometry objects.

    ``on_parse`` is an optional callback invoked with the number of
    characters parsed — the cluster cost model uses it to charge engines
    for string parsing, one of the inefficiencies the paper calls out for
    its WKT-on-HDFS representation.
    """

    def __init__(self, on_parse: Callable[[int], None] | None = None):
        self._on_parse = on_parse

    def read(self, text: str) -> Geometry:
        """Parse a single WKT geometry; raises :class:`WKTParseError`."""
        if not isinstance(text, str):
            raise WKTParseError(f"expected str, got {type(text).__name__}")
        memoise = len(text) >= _PARSE_CACHE_MIN_CHARS
        if memoise:
            cached = _parse_cache.get(text)
            if cached is not None:
                _parse_cache.move_to_end(text)
                if self._on_parse is not None:
                    self._on_parse(len(text))
                return cached[0]
        tokenizer = _Tokenizer(text)
        geometry = self._geometry(tokenizer)
        trailing = tokenizer.next()
        if trailing is not None:
            raise WKTParseError(f"trailing content {trailing!r}", tokenizer.pos)
        if memoise:
            size = _entry_bytes(text, geometry)
            if size <= _parse_cache_byte_budget and _parse_cache_capacity > 0:
                global _parse_cache_bytes
                _parse_cache[text] = (geometry, size)
                _parse_cache_bytes += size
                _shrink_parse_cache()
        if self._on_parse is not None:
            self._on_parse(len(text))
        return geometry

    def try_read(self, text: str) -> Geometry | None:
        """Parse, returning None on failure.

        This is the Python analogue of ``Try(new WKTReader().read(...))``
        followed by ``.filter(_._2.isSuccess)`` in the paper's Fig 2 —
        dirty rows are dropped rather than failing the job.
        """
        try:
            return self.read(text)
        except WKTParseError:
            return None

    # -- grammar ----------------------------------------------------------

    def _geometry(self, tz: _Tokenizer) -> Geometry:
        tag = tz.next()
        if tag is None:
            raise WKTParseError("empty WKT input", 0)
        try:
            geometry_type = GeometryType(tag)
        except ValueError:
            raise WKTParseError(f"unknown geometry type {tag!r}", tz.pos) from None
        if tz.peek() == "EMPTY":
            tz.next()
            return _EMPTY_FACTORIES[geometry_type]()
        dispatch = {
            GeometryType.POINT: self._point,
            GeometryType.LINESTRING: self._linestring,
            GeometryType.POLYGON: self._polygon,
            GeometryType.MULTIPOINT: self._multipoint,
            GeometryType.MULTILINESTRING: self._multilinestring,
            GeometryType.MULTIPOLYGON: self._multipolygon,
            GeometryType.GEOMETRYCOLLECTION: self._collection,
        }
        return dispatch[geometry_type](tz)

    def _coord(self, tz: _Tokenizer) -> tuple[float, float]:
        return (tz.number(), tz.number())

    def _coord_list(self, tz: _Tokenizer) -> list[tuple[float, float]]:
        tz.expect("(")
        coords = [self._coord(tz)]
        while tz.peek() == ",":
            tz.next()
            coords.append(self._coord(tz))
        tz.expect(")")
        return coords

    def _point(self, tz: _Tokenizer) -> Point:
        tz.expect("(")
        x, y = self._coord(tz)
        tz.expect(")")
        return Point(x, y)

    def _linestring(self, tz: _Tokenizer) -> LineString:
        return LineString(self._coord_list(tz))

    def _polygon(self, tz: _Tokenizer) -> Polygon:
        tz.expect("(")
        rings = [LinearRing(self._coord_list(tz))]
        while tz.peek() == ",":
            tz.next()
            rings.append(LinearRing(self._coord_list(tz)))
        tz.expect(")")
        return Polygon(rings[0], rings[1:])

    def _multipoint(self, tz: _Tokenizer) -> MultiPoint:
        tz.expect("(")
        points = [self._multipoint_member(tz)]
        while tz.peek() == ",":
            tz.next()
            points.append(self._multipoint_member(tz))
        tz.expect(")")
        return MultiPoint(points)

    def _multipoint_member(self, tz: _Tokenizer) -> Point:
        # Both MULTIPOINT ((1 2), (3 4)) and MULTIPOINT (1 2, 3 4) are legal.
        if tz.peek() == "(":
            tz.next()
            x, y = self._coord(tz)
            tz.expect(")")
            return Point(x, y)
        x, y = self._coord(tz)
        return Point(x, y)

    def _multilinestring(self, tz: _Tokenizer) -> MultiLineString:
        tz.expect("(")
        lines = [LineString(self._coord_list(tz))]
        while tz.peek() == ",":
            tz.next()
            lines.append(LineString(self._coord_list(tz)))
        tz.expect(")")
        return MultiLineString(lines)

    def _multipolygon(self, tz: _Tokenizer) -> MultiPolygon:
        tz.expect("(")
        polygons = [self._polygon(tz)]
        while tz.peek() == ",":
            tz.next()
            polygons.append(self._polygon(tz))
        tz.expect(")")
        return MultiPolygon(polygons)

    def _collection(self, tz: _Tokenizer) -> GeometryCollection:
        tz.expect("(")
        members = [self._geometry(tz)]
        while tz.peek() == ",":
            tz.next()
            members.append(self._geometry(tz))
        tz.expect(")")
        return GeometryCollection(members)


class WKTWriter:
    """Serialises geometry objects to WKT strings."""

    def __init__(self, precision: int | None = None):
        self._precision = precision

    def _fmt(self, value: float) -> str:
        value = float(value)  # numpy scalars repr as np.float64(...) otherwise
        if self._precision is not None:
            text = f"{value:.{self._precision}f}".rstrip("0").rstrip(".")
            return text if text not in ("", "-") else "0"
        return repr(value) if value != int(value) else str(int(value))

    def _coords(self, coords) -> str:
        return ", ".join(f"{self._fmt(x)} {self._fmt(y)}" for x, y in coords)

    def write(self, geometry: Geometry) -> str:
        """Serialise one geometry (dispatches on its type tag)."""
        tag = geometry.geometry_type
        if geometry.is_empty:
            return f"{tag.value} EMPTY"
        if tag is GeometryType.POINT:
            return f"POINT ({self._fmt(geometry.x)} {self._fmt(geometry.y)})"
        if tag is GeometryType.LINESTRING:
            return f"LINESTRING ({self._coords(geometry.coords)})"
        if tag is GeometryType.POLYGON:
            return f"POLYGON {self._polygon_body(geometry)}"
        if tag is GeometryType.MULTIPOINT:
            body = ", ".join(
                f"({self._fmt(p.x)} {self._fmt(p.y)})" for p in geometry.parts
            )
            return f"MULTIPOINT ({body})"
        if tag is GeometryType.MULTILINESTRING:
            body = ", ".join(
                f"({self._coords(part.coords)})" for part in geometry.parts
            )
            return f"MULTILINESTRING ({body})"
        if tag is GeometryType.MULTIPOLYGON:
            body = ", ".join(self._polygon_body(p) for p in geometry.parts)
            return f"MULTIPOLYGON ({body})"
        if tag is GeometryType.GEOMETRYCOLLECTION:
            body = ", ".join(self.write(g) for g in geometry.parts)
            return f"GEOMETRYCOLLECTION ({body})"
        raise WKTParseError(f"cannot serialise geometry type {tag}")

    def _polygon_body(self, polygon: Polygon) -> str:
        rings = ", ".join(f"({self._coords(ring.coords)})" for ring in polygon.rings)
        return f"({rings})"


_EMPTY_FACTORIES = {
    GeometryType.POINT: Point.empty,
    GeometryType.LINESTRING: LineString.empty,
    GeometryType.POLYGON: Polygon.empty,
    GeometryType.MULTIPOINT: lambda: MultiPoint(()),
    GeometryType.MULTILINESTRING: lambda: MultiLineString(()),
    GeometryType.MULTIPOLYGON: lambda: MultiPolygon(()),
    GeometryType.GEOMETRYCOLLECTION: lambda: GeometryCollection(()),
}

_DEFAULT_READER = WKTReader()
_DEFAULT_WRITER = WKTWriter()


def loads(text: str) -> Geometry:
    """Parse a WKT string using a shared default reader."""
    return _DEFAULT_READER.read(text)


def dumps(geometry: Geometry, precision: int | None = None) -> str:
    """Serialise a geometry to WKT (optionally with fixed precision)."""
    if precision is None:
        return _DEFAULT_WRITER.write(geometry)
    return WKTWriter(precision=precision).write(geometry)
