"""Polygon geometry with holes — census blocks and ecoregions in the paper."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import coordinate_array

__all__ = ["LinearRing", "Polygon"]


class LinearRing:
    """A closed ring of vertices used as a polygon shell or hole.

    The closing vertex is stored explicitly (first == last), matching the
    WKT convention.  Rings with fewer than 4 stored vertices (triangle +
    closure) are rejected.
    """

    __slots__ = ("coords",)

    def __init__(self, coords: Iterable[Sequence[float]]):
        array = coordinate_array(coords)
        if len(array) != 0:
            if len(array) < 3:
                raise GeometryError(f"a ring needs >= 3 distinct vertices, got {len(array)}")
            if not np.array_equal(array[0], array[-1]):
                array = np.vstack([array, array[:1]])
            if len(array) < 4:
                raise GeometryError("a closed ring needs >= 4 stored vertices")
        self.coords = array
        self.coords.setflags(write=False)

    @property
    def is_empty(self) -> bool:
        return len(self.coords) == 0

    @property
    def num_points(self) -> int:
        return len(self.coords)

    def signed_area(self) -> float:
        """Shoelace signed area: positive for counter-clockwise rings."""
        if self.is_empty:
            return 0.0
        x = self.coords[:, 0]
        y = self.coords[:, 1]
        return float(np.sum(x[:-1] * y[1:] - x[1:] * y[:-1]) / 2.0)

    def is_ccw(self) -> bool:
        """True when the ring winds counter-clockwise."""
        return self.signed_area() > 0.0

    def envelope(self) -> Envelope:
        if self.is_empty:
            return Envelope.empty()
        return Envelope(
            float(self.coords[:, 0].min()),
            float(self.coords[:, 1].min()),
            float(self.coords[:, 0].max()),
            float(self.coords[:, 1].max()),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearRing):
            return NotImplemented
        return self.coords.shape == other.coords.shape and bool(
            np.array_equal(self.coords, other.coords)
        )

    def __hash__(self) -> int:
        return hash(self.coords.tobytes())


class Polygon(Geometry):
    """A polygon with one exterior shell and zero or more interior holes.

    The refinement predicates the paper measures — point-in-polygon for the
    ``Within`` joins — walk every ring, so the per-polygon vertex count
    (avg ~9 for nycb, ~279 for wwf) directly drives refinement cost.
    """

    __slots__ = ("shell", "holes")

    def __init__(
        self,
        shell: Iterable[Sequence[float]] | LinearRing,
        holes: Iterable[Iterable[Sequence[float]] | LinearRing] = (),
    ):
        super().__init__()
        self.shell = shell if isinstance(shell, LinearRing) else LinearRing(shell)
        self.holes = tuple(
            hole if isinstance(hole, LinearRing) else LinearRing(hole) for hole in holes
        )
        if self.shell.is_empty and self.holes:
            raise GeometryError("polygon with empty shell cannot have holes")

    @staticmethod
    def empty() -> "Polygon":
        return Polygon(LinearRing([]))

    @staticmethod
    def from_envelope(envelope: Envelope) -> "Polygon":
        """Build the rectangular polygon covering ``envelope``."""
        if envelope.is_empty:
            return Polygon.empty()
        return Polygon(
            [
                (envelope.min_x, envelope.min_y),
                (envelope.max_x, envelope.min_y),
                (envelope.max_x, envelope.max_y),
                (envelope.min_x, envelope.max_y),
                (envelope.min_x, envelope.min_y),
            ]
        )

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.POLYGON

    @property
    def is_empty(self) -> bool:
        return self.shell.is_empty

    @property
    def num_points(self) -> int:
        return self.shell.num_points + sum(hole.num_points for hole in self.holes)

    @property
    def rings(self) -> tuple[LinearRing, ...]:
        """Shell followed by holes."""
        return (self.shell, *self.holes)

    def area(self) -> float:
        """Unsigned area of shell minus holes."""
        if self.is_empty:
            return 0.0
        area = abs(self.shell.signed_area())
        for hole in self.holes:
            area -= abs(hole.signed_area())
        return area

    def _compute_envelope(self) -> Envelope:
        return self.shell.envelope()

    def _coordinates_equal(self, other: Geometry) -> bool:
        assert isinstance(other, Polygon)
        return self.shell == other.shell and self.holes == other.holes
